"""Benchmark configuration: these tests regenerate every table and figure
of the paper at full scale (all 18 models, every framework).

Run with: pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture(scope="session", autouse=True)
def warm_model_cache():
    """Model graphs are cached session-wide so benchmark timings measure
    the experiment pipelines, not graph construction."""
    yield
