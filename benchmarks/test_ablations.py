"""Ablation benchmarks: each SmartMem design decision must pay its way."""

from repro.bench import ablations


def test_ablations(benchmark):
    exp = benchmark.pedantic(ablations.run, rounds=1, iterations=1)
    print("\n" + exp.render())
    for model, data in exp.data.items():
        for variant, d in data.items():
            assert d["slowdown"] >= 0.999, (model, variant, d)
        # transformers lose more from disabling LTE than ConvNets
        if model in ("Swin", "CSwin", "ViT"):
            assert data["no-lte"]["slowdown"] > 1.15, model
            assert data["no-texture (k=1)"]["slowdown"] > 1.02, model
        # raw index expressions cost something on transform-heavy models
        if model in ("Swin", "CSwin"):
            assert data["raw-index"]["slowdown"] > 1.005, model
