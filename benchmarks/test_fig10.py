"""Regenerates Figure 10: Swin across batch sizes."""

from repro.bench import fig10


def test_fig10(benchmark):
    exp = benchmark.pedantic(fig10.run, rounds=1, iterations=1)
    print("\n" + exp.render())
    for batch in (1, 2, 4, 8, 16):
        lat = exp.data[batch]
        if lat["Ours"] is None:
            continue
        for fw in ("MNN", "TVM", "DNNF"):
            if lat[fw] is not None:
                assert lat[fw] > lat["Ours"], (batch, fw)
    # speedups stay roughly constant across batch sizes (paper: 11.6-13.2x
    # vs MNN at every batch) - check stability within 25%
    ratios = [exp.data[b]["MNN"] / exp.data[b]["Ours"]
              for b in (1, 4, 16)
              if exp.data[b]["MNN"] and exp.data[b]["Ours"]]
    assert max(ratios) / min(ratios) < 1.25
