"""Regenerates Figure 11: portability on Dimensity 700 and Snapdragon 835."""

from repro.bench import fig11
from repro.bench.harness import run_cell
from repro.runtime.device import DIMENSITY700, SD8GEN2


def test_fig11(benchmark):
    experiments = benchmark.pedantic(fig11.run, rounds=1, iterations=1)
    for exp in experiments:
        print("\n" + exp.render())
    d700, sd835 = experiments
    for exp in experiments:
        for name, lat in exp.data.items():
            supported = [v for v in lat.values() if v is not None]
            assert min(supported) == lat["Ours"], (exp.name, name)
    # the weaker Mali device is slower than the Adreno 540 everywhere
    for name in d700.data:
        assert d700.data[name]["Ours"] > sd835.data[name]["Ours"]


def test_speedups_hold_on_constrained_devices(benchmark):
    """Paper: 'SmartMem achieves similar speedup on these platforms'."""
    def ratios():
        out = {}
        for device in (SD8GEN2, DIMENSITY700):
            mnn = run_cell("Swin", "MNN", device).latency_ms
            ours = run_cell("Swin", "Ours", device).latency_ms
            out[device.name] = mnn / ours
        return out
    r = benchmark.pedantic(ratios, rounds=1, iterations=1)
    values = list(r.values())
    assert all(v > 3 for v in values)
    # similar order of magnitude across devices
    assert max(values) / min(values) < 2.5
