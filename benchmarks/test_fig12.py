"""Regenerates Figure 12: roofline analysis."""

from repro.bench import fig12
from repro.bench.paper_data import FIG12


def test_fig12(benchmark):
    exp = benchmark.pedantic(fig12.run, rounds=1, iterations=1)
    print("\n" + exp.render())
    gmacs = {m: exp.data[m]["gmacs"] for m in exp.data}
    # the paper's monotone ordering across the four models
    assert (gmacs["Swin"] < gmacs["ViT"] < gmacs["ResNext"]
            < gmacs["SD-VAEDecoder"])
    # achieved GMACS within 2x of each paper point (149/204/271/360)
    for name, (paper_gmacs, _frac) in FIG12.items():
        assert paper_gmacs / 2 < gmacs[name] < paper_gmacs * 2, name
    # nothing exceeds its roofline bound
    for name, d in exp.data.items():
        assert d["gmacs"] <= d["roof"] * 1.001
