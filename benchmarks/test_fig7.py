"""Regenerates Figure 7: memory access and cache miss counts."""

from repro.bench import fig7
from repro.bench.harness import geomean


def test_fig7(benchmark):
    exp = benchmark.pedantic(fig7.run, rounds=1, iterations=1)
    print("\n" + exp.render())
    all_access, all_miss = [], []
    for model in ("CSwin", "ResNext"):
        access = exp.data[model]["mem access"]
        miss = exp.data[model]["cache miss"]
        assert access["Ours"] == 1.0
        for fw, value in access.items():
            if value is not None and fw != "Ours":
                all_access.append(value)
        for fw, value in miss.items():
            if value is not None and fw != "Ours":
                all_miss.append(value)
    # paper: 1.8x fewer accesses, 2.0x fewer misses on average
    assert 1.2 < geomean(all_access) < 4.0
    assert 1.2 < geomean(all_miss) < 6.0
