"""Regenerates Figure 8: per-stage speedup over DNNFusion."""

from repro.bench import fig8
from repro.bench.paper_data import FIG8_RANGES


def test_fig8(benchmark):
    exp = benchmark.pedantic(fig8.run, rounds=1, iterations=1)
    print("\n" + exp.render())
    transformers = ["AutoFormer", "BiFormer", "EfficientVit", "CSwin", "ViT"]
    convnets = ["ConvNext", "RegNet", "ResNext"]
    for name in transformers + convnets:
        d = exp.data[name]
        # stages are cumulative improvements
        assert d["+LTE"] <= d["+LayoutSelect"] * 1.001
        assert d["+LayoutSelect"] <= d["+OtherOpt"] * 1.001
    # LTE matters much more for transformers than pure ConvNets
    lte_tf = sum(exp.data[n]["+LTE"] for n in transformers) / len(transformers)
    lte_cnn = sum(exp.data[n]["+LTE"] for n in convnets) / len(convnets)
    assert lte_tf > lte_cnn
    # Index Comprehension contributes 1.1-1.3x within LTE (paper Sec 4.3)
    for name in transformers:
        gain = exp.data[name]["index_comprehension"]
        assert 1.0 <= gain <= 1.45, (name, gain)
    # final cumulative speedups within the plausible band of Fig. 8
    for name in transformers:
        assert 1.5 < exp.data[name]["+OtherOpt"] < 6.0
