"""Regenerates Figure 9: per-stage memory access / cache miss reduction."""

from repro.bench import fig9


def test_fig9(benchmark):
    exp = benchmark.pedantic(fig9.run, rounds=1, iterations=1)
    print("\n" + exp.render())
    cswin_access = exp.data["CSwin"]["mem access"]
    cswin_miss = exp.data["CSwin"]["cache miss"]
    # LTE removes data reorganizations: accesses drop sharply from DNNF
    assert cswin_access["DNNF"] > cswin_access["+LTE"] * 1.2
    # the fully optimized version has the fewest of both
    for metric in (cswin_access, cswin_miss):
        assert metric["+OtherOpt"] == min(metric.values())
