"""Regenerates the Section 4.6 memory-impact analysis."""

from repro.bench import memory_footprint


def test_memory_footprint(benchmark):
    exp = benchmark.pedantic(memory_footprint.run, rounds=1, iterations=1)
    print("\n" + exp.render())
    for name in ("Swin", "ViT"):
        d = exp.data[name]
        # operators drop (paper: 24%/33%) and materialized memory drops
        # (paper: 14%/15%); redundant copies stay small (paper: 3.0/2.3 MB)
        assert d["op_reduction_pct"] > 15
        assert d["memory_reduction_pct"] > 5
        assert d["max_copy_mb"] < 10
