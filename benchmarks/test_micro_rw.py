"""Regenerates the Section 3.2.2 read-vs-write microbenchmark."""

import pytest

from repro.bench import micro_rw


def test_micro_rw(benchmark):
    exp = benchmark.pedantic(micro_rw.run, rounds=1, iterations=1)
    print("\n" + exp.render())
    # paper: 1.7x / 1.4x / 1.1x for conv / matmul / activation
    assert exp.data["conv2d"] == pytest.approx(1.7, abs=0.4)
    assert exp.data["matmul"] == pytest.approx(1.4, abs=0.3)
    assert exp.data["activation"] == pytest.approx(1.1, abs=0.15)
    assert exp.data["conv2d"] > exp.data["matmul"] > exp.data["activation"] > 1.0
