"""Regenerates Table 1: MNN latency/transformation breakdown."""

from repro.bench import table1


def test_table1(benchmark):
    exp = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    print("\n" + exp.render())
    # Transformer rows spend most of their time on transformations;
    # ConvNet rows don't.  Speeds collapse by ~an order of magnitude.
    transform = lambda d: d["implicit_pct"] + d["explicit_pct"]
    for cnn in ("ResNet50", "RegNet"):
        assert transform(exp.data[cnn]) < 30
    for tf in ("Swin", "AutoFormer", "CrossFormer", "CSwin"):
        assert transform(exp.data[tf]) > 35
    assert exp.data["ResNet50"]["gmacs"] > 5 * exp.data["Swin"]["gmacs"]
    # FST: the InstanceNorm model is dominated by implicit conversions
    assert exp.data["FST"]["implicit_pct"] > 25
