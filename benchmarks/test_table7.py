"""Regenerates Table 7: operator counts per framework across 18 models."""

from repro.bench import table7
from repro.models import EVAL_MODELS


def test_table7(benchmark):
    exp = benchmark.pedantic(table7.run, rounds=1, iterations=1)
    print("\n" + exp.render())
    transformer_like = [n for n, info in EVAL_MODELS.items()
                        if info.model_type in ("Transformer", "Hybrid")]
    for name in EVAL_MODELS:
        counts = exp.data[name]
        # SmartMem always produces the fewest operators
        supported = {k: v for k, v in counts.items()
                     if k not in ("unoptimized",) and v}
        assert counts["Ours"] == min(supported.values()), name
        # NCNN/TFLite only support ConvNets (the '-' cells)
        if name in transformer_like:
            assert counts["NCNN"] is None and counts["TFLite"] is None
    # elimination gains vs DNNFusion: 1.1-1.7x on Transformer/Hybrid
    ratios = [exp.data[n]["DNNF"] / exp.data[n]["Ours"]
              for n in transformer_like]
    assert all(r > 1.05 for r in ratios)
    assert max(ratios) < 3.0
