"""Regenerates Table 8: end-to-end latency on the Snapdragon 8 Gen 2."""

from repro.bench import table8
from repro.bench.paper_data import TABLE8_GEOMEAN


def test_table8(benchmark):
    exp = benchmark.pedantic(table8.run, rounds=1, iterations=1)
    print("\n" + exp.render())
    gm = exp.data["geomean"]
    # Every framework ordering matches the paper: Ours fastest everywhere,
    # DNNF the strongest baseline, MNN and TVM far behind.
    assert gm["DNNF"] > 1.5
    assert gm["MNN"] > gm["DNNF"]
    assert gm["TVM"] > gm["DNNF"]
    # Geomean speedups land within 2x of the paper's headline factors
    # (7.9 / 6.9 / 2.8 for MNN / TVM / DNNF).
    for fw, target in TABLE8_GEOMEAN.items():
        measured = gm[fw]
        assert target / 2.2 <= measured <= target * 2.2, (fw, measured, target)
    # per-model: Ours is fastest on every single model
    for name, lat in exp.data.items():
        if name == "geomean":
            continue
        supported = [v for v in lat.values() if v is not None]
        assert min(supported) == lat["Ours"], name
