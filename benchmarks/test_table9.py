"""Regenerates Table 9: V100 FP32, TorchInductor vs Ours."""

from repro.bench import table9


def test_table9(benchmark):
    exp = benchmark.pedantic(table9.run, rounds=1, iterations=1)
    print("\n" + exp.render())
    for name in ("Swin", "AutoFormer"):
        speedup = exp.data[name]["speedup"]
        # modest desktop gains, as the paper reports (1.23x / 1.11x)
        assert 1.02 < speedup < 2.0, (name, speedup)
