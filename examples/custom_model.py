"""Bring your own model: build a custom hybrid network with GraphBuilder,
watch SmartMem eliminate its layout transformations, and verify the
optimized graph computes exactly the same function.

This is the paper's Fig. 1 scenario: a ConvNet stage feeding a
transformer stage, with the usual Reshape/Transpose glue in between.

Run:  python examples/custom_model.py
"""

import numpy as np

from repro import GraphBuilder, SD8GEN2, estimate_cost, optimize
from repro.core import quadrant_histogram
from repro.runtime import execute, make_inputs


def build_hybrid(batch: int = 1) -> "Graph":
    b = GraphBuilder("my_hybrid")
    img = b.input("image", (batch, 3, 64, 64))

    # --- conv stage (image domain) ---
    x = b.conv2d(img, 32, 3, stride=2, padding=1, bias=False)
    x = b.batchnorm(x)
    x = b.relu(x)
    x = b.conv2d(x, 64, 3, stride=2, padding=1, bias=False)
    x = b.batchnorm(x)
    x = b.relu(x)                                   # (B, 64, 16, 16)

    # --- the Fig. 1 glue: explicit layout transformations ---
    n, c, h, w = b.shape(x)
    seq = b.reshape(x, (n, c, h * w))
    seq = b.transpose(seq, (0, 2, 1))               # (B, 256, 64)

    # --- transformer stage (sequence domain) ---
    seq = b.layernorm(seq)
    qkv = b.dense(seq, 3 * c)
    qkv = b.reshape(qkv, (n, h * w, 3, 4, c // 4))
    qkv = b.transpose(qkv, (2, 0, 3, 1, 4))
    q = b.reshape(b.slice_axis(qkv, 0, 0, 1), (n, 4, h * w, c // 4))
    k = b.reshape(b.slice_axis(qkv, 0, 1, 2), (n, 4, h * w, c // 4))
    v = b.reshape(b.slice_axis(qkv, 0, 2, 3), (n, 4, h * w, c // 4))
    attn = b.softmax(b.mul(b.matmul(q, k, transpose_b=True), b.const(0.125)))
    o = b.matmul(attn, v)
    o = b.reshape(b.transpose(o, (0, 2, 1, 3)), (n, h * w, c))
    o = b.dense(o, c)
    seq = b.add(seq, o)

    # --- classification head ---
    seq = b.layernorm(seq)
    pooled = b.reduce(seq, "reduce_mean", axes=1)
    b.output(b.dense(pooled, 10))
    return b.finish()


def main() -> None:
    graph = build_hybrid()
    print(f"custom hybrid: {len(graph.nodes)} operators")

    # Where does each operator land in the paper's 4-quadrant taxonomy?
    print("\noperator classification (Table 3 quadrants):")
    for quadrant, count in quadrant_histogram(graph).items():
        print(f"  {quadrant.value:14s} {count}")

    module = optimize(graph)
    print(f"\nafter SmartMem: {module.operator_count} kernels "
          f"({module.elimination_stats.total_eliminated} transforms "
          f"eliminated, {module.fusion_stats.merged_edges} edges fused)")

    report = estimate_cost(module, SD8GEN2)
    print(f"estimated latency on {SD8GEN2.name}: {report.latency_ms:.2f} ms")

    # numerical equivalence on real data
    inputs = make_inputs(graph, seed=42)
    reference = execute(graph, inputs)
    optimized = execute(module.graph,
                        {k: v for k, v in inputs.items()
                         if k in module.graph.tensors})
    for name in reference:
        np.testing.assert_allclose(reference[name], optimized[name],
                                   rtol=1e-4, atol=1e-5)
    print("outputs identical between original and optimized graphs  [OK]")


if __name__ == "__main__":
    main()
