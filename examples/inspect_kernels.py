"""Look inside the compiler: graph dumps and generated kernels.

Shows what SmartMem actually did to a model - the optimized graph with
fusion groups, attached views and chosen layouts, and the pseudo-OpenCL
kernel for an operator that absorbed eliminated Reshape/Transpose
operators (the paper's Q3: implementing operators on chosen layouts with
simplified index computation).

Run:  python examples/inspect_kernels.py
"""

from repro import GraphBuilder, optimize
from repro.ir.printer import format_graph, summarize
from repro.runtime.codegen import generate_kernel


def main() -> None:
    # The Fig. 3 pattern: reshape + transpose feeding a reduction op.
    b = GraphBuilder("fig3")
    x = b.input("x", (2, 256, 4))
    t = b.reshape(x, (16, 8, 4, 4))
    t = b.transpose(t, (0, 2, 1, 3))
    out = b.softmax(t, axis=-1)
    b.output(out)
    graph = b.finish()

    print(summarize(graph))
    print("\n--- source graph ---")
    print(format_graph(graph))

    module = optimize(graph)
    print("\n--- optimized graph (views, groups, layouts) ---")
    print(format_graph(module.graph))

    softmax = next(n for n in module.graph.iter_nodes()
                   if n.op_type == "softmax")
    print("\n--- generated kernel (strength-reduced index math) ---")
    print(generate_kernel(module.graph, softmax, module.plan).source)

    print("\n--- same kernel without Index Comprehension ---")
    raw = generate_kernel(module.graph, softmax, module.plan,
                          simplify_index=False)
    print(raw.source)
    simplified = generate_kernel(module.graph, softmax, module.plan)
    print(f"\nindex cost: {raw.index_cost_units} -> "
          f"{simplified.index_cost_units} units per element")


if __name__ == "__main__":
    main()
