"""LLM inference on mobile: Pythia-1B prefill under every framework.

The paper's motivation: decoder LLMs spend 40%+ of their mobile runtime
on layout transformations (Table 1's Pythia row).  This example sweeps
sequence lengths and devices and shows where SmartMem's elimination pays.

Run:  python examples/llm_on_mobile.py
"""

from repro import DIMENSITY700, SD8GEN2, build_model
from repro.baselines import make_framework
from repro.bench.harness import format_table


def main() -> None:
    frameworks = ("MNN", "TVM", "DNNF", "Ours")

    # -- sequence-length sweep on the flagship phone ----------------------
    rows = []
    for seq in (32, 64, 128, 256):
        graph = build_model("Pythia", seq=seq)
        lat = {}
        for fw_name in frameworks:
            result = make_framework(fw_name).compile(graph, SD8GEN2)
            lat[fw_name] = result.cost(SD8GEN2).latency_ms
        rows.append([str(seq), f"{graph.total_macs() / 1e9:.0f}"]
                    + [f"{lat[f]:,.0f}" for f in frameworks]
                    + [f"{lat['DNNF'] / lat['Ours']:.2f}x"])
    print(format_table(
        ["seq len", "GMACs"] + list(frameworks) + ["Ours vs DNNF"], rows,
        title="Pythia-1B prefill latency (ms) on Snapdragon 8 Gen 2"))

    # -- what did SmartMem remove? ----------------------------------------
    graph = build_model("Pythia", seq=128)
    ours = make_framework("Ours").compile(graph, SD8GEN2)
    print(f"\nPythia operators: {len(graph.nodes)} -> {ours.operator_count}")
    print(f"eliminated transforms: {ours.extra['eliminated']}")
    print("(rotary-embedding slices/concats and attention head "
          "reshape/transpose pairs all became index computation)")

    # -- a weaker device: the gap widens ----------------------------------
    print("\nOn the 4GB Dimensity 700 (Mali-G57):")
    graph = build_model("Pythia", seq=64)
    for fw_name in frameworks:
        result = make_framework(fw_name).compile(graph, DIMENSITY700)
        if result.supported:
            print(f"  {fw_name:6s} {result.cost(DIMENSITY700).latency_ms:10,.0f} ms")
        else:
            print(f"  {fw_name:6s} unsupported: {result.reason}")


if __name__ == "__main__":
    main()
