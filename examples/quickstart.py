"""Quickstart: optimize Swin Transformer for a mobile GPU with SmartMem.

Run:  python examples/quickstart.py
"""

from repro import SD8GEN2, build_model, estimate_cost, optimize
from repro.baselines import make_framework
from repro.runtime import outputs_equal

# 1. Build a model graph (operator-faithful Swin-T).
graph = build_model("Swin")
print(f"Swin-T: {len(graph.nodes)} operators, "
      f"{graph.num_params / 1e6:.1f}M params, "
      f"{graph.total_macs() / 1e9:.1f} GMACs")

# 2. Run the SmartMem pipeline: layout transformation elimination,
#    DNNFusion-style fusion, reduction-dimension layout selection,
#    2.5D texture mapping.
module = optimize(graph)
elim = module.elimination_stats
print(f"\nEliminated layout transformations: {dict(elim.eliminated)}")
print(f"Operators after optimization: {module.operator_count} "
      f"(from {module.source_operator_count})")
print(f"Remaining explicit transforms: {module.remaining_layout_transforms}")

# 3. Estimate latency on the paper's main platform (Snapdragon 8 Gen 2).
report = estimate_cost(module, SD8GEN2)
print(f"\nEstimated latency on {SD8GEN2.name}: {report.latency_ms:.1f} ms "
      f"({report.gmacs_per_s:.0f} GMACS)")

# 4. Compare against the strongest baseline, DNNFusion.
dnnf = make_framework("DNNF").compile(graph, SD8GEN2)
dnnf_report = dnnf.cost(SD8GEN2)
print(f"DNNFusion baseline: {dnnf_report.latency_ms:.1f} ms "
      f"-> speedup {dnnf_report.latency_ms / report.latency_ms:.2f}x "
      f"(paper: 4.4x on a real phone)")

# 5. The rewrites are semantics-preserving: verify numerically on a
#    downscaled Swin (full-size verification works too, just slower).
small = build_model("Swin", image=56, dim=24, depths=(1, 1), heads=(2, 4))
small_module = optimize(small)
assert outputs_equal(small, small_module.graph)
print("\nNumerical check: optimized graph == original graph  [OK]")

# 6. To actually *serve* the optimized model, use the typed front door:
#    repro.compile wraps the whole pipeline plus lowering in a
#    CompiledModel (see examples/serving.py for repro.serve and the
#    micro-batching scheduler).
import repro

model = repro.compile(small)
response = model.run(model.make_request(seed=0))
print(f"served one request in {response.stats.wall_s * 1e3:.2f} ms "
      f"(estimated on-device: {response.stats.est_latency_ms:.1f} ms)")
