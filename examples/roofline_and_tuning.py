"""Roofline analysis and GA kernel tuning (Fig. 12 + Sec. 3.3).

Plots (as text) where each model sits against the texture-memory and
global-memory rooflines, then demonstrates the genetic-algorithm kernel
tuner on Swin's matmul shapes.

Run:  python examples/roofline_and_tuning.py
"""

from repro import SD8GEN2, build_model, optimize, estimate_cost
from repro.bench.fig12 import roofline_bound
from repro.tuning import GAParams, KernelConfig, fitness, kernel_shapes, tune_kernel


def roofline() -> None:
    device = SD8GEN2
    print(f"roofline on {device.name}: peak {device.peak_gmacs:.0f} GMACS, "
          f"texture {device.texture_bw_gbps:.0f} GB/s, "
          f"global {device.global_bw_gbps:.0f} GB/s\n")
    for name in ("Swin", "ViT", "ResNext", "SD-VAEDecoder"):
        graph = build_model(name)
        module = optimize(graph)
        report = estimate_cost(module, device)
        bytes_moved = sum(k.bytes_read + k.bytes_written
                          for k in report.kernels)
        intensity = report.total_macs / max(1, bytes_moved)
        tex_roof = roofline_bound(intensity, device.texture_bw_gbps,
                                  device.peak_gmacs)
        glob_roof = roofline_bound(intensity, device.global_bw_gbps,
                                   device.peak_gmacs)
        bar = "#" * int(40 * report.gmacs_per_s / device.peak_gmacs)
        print(f"{name:14s} intensity {intensity:7.1f} MACs/B  "
              f"achieved {report.gmacs_per_s:5.0f} GMACS "
              f"(tex roof {tex_roof:5.0f}, buf roof {glob_roof:5.0f})  {bar}")


def tuning_demo() -> None:
    print("\nGA kernel tuning on Swin's heavy-operator shapes:")
    graph = build_model("Swin")
    default = KernelConfig()
    for shape in kernel_shapes(graph, limit=5):
        tuned = tune_kernel(shape, GAParams(population=24, generations=15))
        base = fitness(default, shape)
        print(f"  ({shape.m:6d} x {shape.n:4d} x {shape.k:4d}): "
              f"default eff {base:.3f} -> tuned {tuned.efficiency:.3f}  "
              f"config wg=({tuned.config.workgroup_x},{tuned.config.workgroup_y}) "
              f"tile=({tuned.config.tile_m},{tuned.config.tile_n}) "
              f"unroll={tuned.config.unroll} vec={tuned.config.vector_width}")


if __name__ == "__main__":
    roofline()
    tuning_demo()
