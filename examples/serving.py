"""Serving: compile once, run many - the lowered-program execution path.

A Session compiles a (model, framework, device) triple once - the graph
is optimized, lowered to an ExecutionProgram (pre-bound kernels,
pre-resolved views, static buffer-slot plan), and parameters are
materialized once - then serves repeated run()/run_batch() requests with
steady-state pool reuse.

Run:  python examples/serving.py
"""

from repro.models import build_smoke
from repro.runtime import Engine

# 1. An Engine keeps one live session per compiled triple, bounded by an
#    LRU so a long-lived server cannot grow sessions without bound.
engine = Engine(max_sessions=8)
graph = build_smoke("Pythia")          # serving-scale config
session = engine.compile(graph, "Ours")
program = session.program
print(f"Pythia (smoke): {len(session.graph.nodes)} nodes lowered to "
      f"{program.num_steps} steps on backend {session.backend!r}")
print(f"slot plan: {program.slot_plan.num_slots} buffer slots, "
      f"peak {program.slot_plan.peak_bytes / 1024:.1f} KiB")

# 2. Serve requests.  The first run warms the pool (allocates blocks);
#    every later run is served entirely from reused blocks.
inputs = session.make_inputs(seed=0)
for _ in range(10):
    session.run(inputs)
first, *_, last = session.stats.runs
print(f"\nrequest  1: {first.wall_s * 1e3:7.3f} ms  "
      f"pool allocations={first.pool.allocations:3d} reuses={first.pool.reuses}")
print(f"request {session.stats.requests:2d}: {last.wall_s * 1e3:7.3f} ms  "
      f"pool allocations={last.pool.allocations:3d} reuses={last.pool.reuses}")
assert last.pool.allocations == 0, "steady state must reuse every block"

# 3. Batched serving goes through one backend invocation.
batch = [session.make_inputs(seed=s) for s in range(4)]
outputs = session.run_batch(batch)
print(f"\nrun_batch: served {len(outputs)} requests "
      f"(total so far: {session.stats.requests}, "
      f"mean {session.stats.mean_wall_s * 1e3:.3f} ms)")

# 4. Requests are validated at admission: a malformed tensor fails with
#    an error naming it, never deep inside a kernel.
bad = dict(inputs)
name = next(iter(bad))
bad[name] = bad[name][..., :-1]
try:
    session.run(bad)
except ValueError as err:
    print(f"\nrejected malformed request: {err}")

# 5. The same triple compiles to the same live session; evict() drops it.
assert engine.compile(graph, "Ours") is session
engine.evict(graph, "Ours")
print(f"\nevicted; engine now holds {engine.num_sessions} session(s)")
