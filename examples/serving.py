"""Serving: repro.compile / repro.serve - the typed service-layer API.

``repro.compile`` turns a model into a CompiledModel serving typed
InferenceRequest/InferenceResponse objects (compile once, run many).
``repro.serve`` puts the same compiled model behind a dynamic
micro-batching scheduler: concurrent submit() calls are coalesced into
one backend invocation on the lowered-program path, so dispatch is paid
per micro-batch instead of per request.

Run:  python examples/serving.py
"""

import threading

import repro
from repro.models import build_smoke

# 1. Compile once.  Sessions are cached process-wide on the graph's
#    *content fingerprint*: rebuilding an identical graph hits the cache.
graph = build_smoke("Pythia")
model = repro.compile(graph)
program = model.program
print(f"Pythia (smoke): {len(model.graph.nodes)} nodes lowered to "
      f"{program.num_steps} steps")
print(f"admission spec: {model.input_signature}")
assert repro.compile(build_smoke("Pythia")).session is model.session

# 2. Typed request in, typed response out - with per-request RunStats.
request = model.make_request(seed=0)
response = model.run(request)
print(f"\nrun: outputs={sorted(response.outputs)}  "
      f"wall={response.stats.wall_s * 1e3:.3f} ms  "
      f"pool allocations={response.stats.pool.allocations}")

# 3. Malformed requests fail at admission with an error naming the
#    tensor - including wrong-*name* tensors, never deep inside a kernel.
try:
    model.run({"not_a_tensor": request.inputs[next(iter(request.inputs))]})
except ValueError as err:
    print(f"rejected: {err}")

# 4. repro.serve: a scheduler coalesces concurrent traffic into
#    micro-batches.  Four client threads submit 32 requests; the worker
#    drains them through one backend invocation per batch - a stacked
#    batch-N kernel pass when the program is batch-stackable (Pythia
#    is), the sequential run_many path otherwise.
service = repro.serve(graph, max_batch_size=8, max_wait_ms=20.0)
responses = []
record = responses.append
lock = threading.Lock()


def client(seeds):
    futures = [service.submit(model.make_request(seed=s)) for s in seeds]
    for future in futures:
        response = future.result(timeout=60)
        with lock:
            record(response)


threads = [threading.Thread(target=client, args=(range(i, 32, 4),))
           for i in range(4)]
for t in threads:
    t.start()
for t in threads:
    t.join()

report = service.report()
print(f"\nscheduler: {report.requests} requests in {report.batches} "
      f"micro-batches (mean {report.mean_batch_size:.1f}/batch, largest "
      f"{report.largest_batch}, queue peak {report.queue_depth_peak}, "
      f"{report.stacked_batches} stacked kernel passes)")
print(f"executor-side throughput: {report.throughput_rps:,.0f} req/s")
assert len(responses) == 32
assert report.largest_batch <= 8
assert any(r.batch_size > 1 for r in responses), "burst must coalesce"
assert report.stacked_batches > 0, "multi-request batches must stack"
assert any(r.stats.batched for r in responses)

# 5. Graceful shutdown: close() drains the queue, then joins the worker.
pending = [service.submit(model.make_request(seed=s)) for s in range(6)]
service.close()
assert all(f.done() for f in pending)
print(f"closed after draining: {service.report().requests} requests total, "
      f"queue depth {service.report().queue_depth}")

# 6. Async serving + the multi-process backend.  submit_async() wraps
#    the same scheduler in asyncio awaitables; backend="parallel" serves
#    each micro-batch as stacked shards across a pool of forked worker
#    processes, tensors crossing through shared memory.  Outputs stay
#    byte-identical to the in-process path.
import asyncio

vit_graph = build_smoke("ViT")
vit = repro.compile(vit_graph)
expected = [vit.run(vit.make_request(seed=s)) for s in range(64)]

with repro.serve(vit_graph,
                 repro.ServeOptions(backend="parallel", workers=4,
                                    max_batch_size=32,
                                    max_wait_ms=5.0)) as parallel:

    async def burst():
        calls = [parallel.submit_async(vit.make_request(seed=s))
                 for s in range(64)]
        return await asyncio.gather(*calls)

    async_responses = asyncio.run(burst())
    parallel_report = parallel.report()

for expect, got in zip(expected, async_responses):
    for name, value in expect.outputs.items():
        assert got.outputs[name].tobytes() == value.tobytes(), name
print(f"\nparallel backend: {len(async_responses)} async requests, "
      f"{parallel_report.stacked_batches} stacked shard passes, "
      f"{parallel_report.worker_restarts} worker restarts; outputs "
      f"byte-identical to in-process serving")

# 7. Execution backends are pluggable per compile: "codegen" fuses the
#    whole step loop into generated Python source (inspectable, like the
#    pseudo-OpenCL kernels) - same outputs, less per-step dispatch.
from repro.runtime import program_source

fast = repro.compile(graph, repro.CompileOptions(backend="codegen"))
fast_response = fast.run(fast.make_request(seed=0))
for name, value in response.outputs.items():
    assert (fast_response.outputs[name] == value).all(), name
source = program_source(fast.program)
print(f"\ncodegen backend: {fast.program.num_steps} steps fused into "
      f"{len(source.splitlines())} lines of generated Python; outputs match")
print("\n".join(source.splitlines()[:10]))
