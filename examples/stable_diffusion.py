"""Stable Diffusion on a phone: costing the full three-model pipeline.

A text-to-image step runs TextEncoder once, UNet once per denoising step,
and VAEDecoder once.  This example regenerates the per-model numbers of
Table 8 and composes them into an end-to-end image latency.

Run:  python examples/stable_diffusion.py
"""

from repro import SD8GEN2, build_model
from repro.baselines import make_framework
from repro.bench.harness import format_table

DENOISING_STEPS = 20


def main() -> None:
    frameworks = ("MNN", "TVM", "DNNF", "Ours")
    models = ("SD-TextEncoder", "SD-UNet", "SD-VAEDecoder")

    latency = {fw: {} for fw in frameworks}
    rows = []
    for model in models:
        graph = build_model(model)
        row = [model, f"{graph.total_macs() / 1e9:.0f}"]
        for fw_name in frameworks:
            result = make_framework(fw_name).compile(graph, SD8GEN2)
            ms = result.cost(SD8GEN2).latency_ms
            latency[fw_name][model] = ms
            row.append(f"{ms:,.0f}")
        rows.append(row)
    print(format_table(["model", "GMACs"] + list(frameworks), rows,
                       title="Stable Diffusion component latency (ms), "
                             "Snapdragon 8 Gen 2"))

    print(f"\nend-to-end image ({DENOISING_STEPS} denoising steps):")
    for fw_name in frameworks:
        lat = latency[fw_name]
        total = (lat["SD-TextEncoder"]
                 + DENOISING_STEPS * lat["SD-UNet"]
                 + lat["SD-VAEDecoder"]) / 1000.0
        print(f"  {fw_name:6s} {total:8.1f} s")

    ours = latency["Ours"]
    mnn = latency["MNN"]
    total_speedup = (mnn["SD-TextEncoder"] + DENOISING_STEPS * mnn["SD-UNet"]
                     + mnn["SD-VAEDecoder"]) / (
        ours["SD-TextEncoder"] + DENOISING_STEPS * ours["SD-UNet"]
        + ours["SD-VAEDecoder"])
    print(f"\nSmartMem makes on-device generation {total_speedup:.1f}x "
          f"faster than MNN end to end.")


if __name__ == "__main__":
    main()
