"""CI gate for the kernel-floor optimisations.

Asserts, against a freshly generated ``BENCH_pipeline.json``:

* the codegen backend reports >0 fused chains on ViT (framework-lowered
  program - the Ours pipeline absorbs ViT's views into ``input_views``)
  and on Conformer (through the full Ours pipeline);
* ViT and Conformer steady-state codegen ``Session.run`` beat the
  committed PR-5 walls (1.175 ms / 1.047 ms) by >=1.15x;
* the ``serve.roofline`` section covers every smoke model.

Usage: PYTHONPATH=src python scripts/check_kernel_floor.py [BENCH.json]
"""

import json
import sys

from repro.core import smartmem_optimize
from repro.models import SMOKE_CONFIGS, build
from repro.runtime import compile_program, lower

#: Committed PR-5 steady-state codegen Session.run walls (ms) for the
#: kernel-bound models - the pre-kernel-floor baseline this PR attacks.
BASELINE_MS = {"ViT": 1.175, "Conformer": 1.047}
MIN_SPEEDUP = 1.15


def main(path: str = "BENCH_pipeline.json") -> int:
    vit = compile_program(lower(build("ViT", **SMOKE_CONFIGS["ViT"])))
    assert vit.fused_chains > 0, "codegen reports no fused chains on ViT"
    conformer_graph = smartmem_optimize(
        build("Conformer", **SMOKE_CONFIGS["Conformer"])).graph
    conformer = compile_program(lower(conformer_graph))
    assert conformer.fused_chains > 0, \
        "codegen reports no fused chains on Conformer"
    print(f"fused chains: ViT {vit.fused_chains} (raw program), "
          f"Conformer {conformer.fused_chains} (Ours program)")

    serve = json.load(open(path))["serve"]
    walls = serve["backends"]["models"]
    for model, baseline in BASELINE_MS.items():
        now = walls[model]["codegen_run_ms"]
        speedup = baseline / now if now else 0.0
        print(f"{model}: {now:.3f} ms vs {baseline} ms committed "
              f"baseline = {speedup:.2f}x")
        assert speedup >= MIN_SPEEDUP, (
            f"{model} codegen steady-state regressed: "
            f"{speedup:.2f}x < {MIN_SPEEDUP}x over the committed baseline")

    roofline = serve["roofline"]["models"]
    missing = sorted(set(SMOKE_CONFIGS) - set(roofline))
    assert not missing, f"serve.roofline missing models: {missing}"
    print(f"roofline covers all {len(roofline)} smoke models")
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
