"""CI gate for the multi-process parallel serving backend.

Asserts, against a freshly generated ``BENCH_pipeline.json``:

* the ``serve.parallel`` section is present and covers ViT and
  Conformer (the kernel-bound smoke pair);
* 4-worker aggregate serving RPS is >= 2x the single-process
  ``Session.run`` baseline on both models;
* parallel outputs were byte-identical to single-process serving on
  both the numpy and codegen inner backends (``parity`` flags).

Then runs a live crash-absorption check: a pool under an injected
``worker_crash`` fault must respawn the dead worker, re-dispatch the
shard, return byte-identical outputs, count the restart, and leave no
shared-memory segments behind after close.

Usage: PYTHONPATH=src python scripts/check_parallel_scaling.py [BENCH.json]
"""

import json
import sys

from repro.api import CompileOptions, InferenceRequest, ServeOptions, serve
from repro.models import build_smoke
from repro.runtime import FaultPlan, FaultRule, active_segments
from repro.runtime.session import _compile_session

GATED_MODELS = ("ViT", "Conformer")
MIN_SCALING = 2.0


def check_bench(path: str) -> None:
    parallel = json.load(open(path))["serve"]["parallel"]
    models = parallel["models"]
    missing = sorted(set(GATED_MODELS) - set(models))
    assert not missing, f"serve.parallel missing models: {missing}"
    for name in GATED_MODELS:
        entry = models[name]
        sequential = entry["sequential_rps"]
        four = entry["parallel_rps"]["4"]
        scaling = four / sequential if sequential else 0.0
        print(f"{name}: 4-worker {four} RPS vs sequential {sequential} RPS "
              f"= {scaling:.2f}x")
        assert scaling >= MIN_SCALING, (
            f"{name}: 4-worker aggregate RPS is only {scaling:.2f}x the "
            f"single-process baseline (< {MIN_SCALING}x)")
        assert entry["parity"], f"{name}: parallel outputs not byte-identical"
        assert entry["codegen_parity"], (
            f"{name}: parallel-codegen outputs not byte-identical")


def check_crash_absorption() -> None:
    graph = build_smoke("ViT")
    reference = _compile_session(graph, "Ours")
    inputs = [reference.make_inputs(seed=seed) for seed in range(64)]
    expected = [reference.run(dict(values)) for values in inputs]

    plan = FaultPlan(rules=(
        FaultRule(kind="worker_crash", probability=1.0, times=2),))
    service = serve(graph, ServeOptions(
        backend="parallel", workers=2, max_batch_size=32, max_wait_ms=5.0,
        compile=CompileOptions(faults=plan)))
    try:
        futures = [service.submit(InferenceRequest(inputs=values))
                   for values in inputs]
        responses = [f.result() for f in futures]
        report = service.report()
    finally:
        service.close()
    for response, outputs in zip(responses, expected):
        for key, value in outputs.items():
            assert response.outputs[key].tobytes() == value.tobytes(), (
                f"outputs diverged after worker crash (tensor {key!r})")
    assert report.worker_restarts >= 1, (
        "injected worker_crash fault produced no counted restart")
    leaked = active_segments()
    assert not leaked, f"shared-memory segments leaked: {leaked}"
    print(f"crash absorption: {report.worker_restarts} restart(s), "
          f"byte-identical outputs, no leaked segments")


def main(path: str = "BENCH_pipeline.json") -> int:
    check_bench(path)
    check_crash_absorption()
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
