"""CI gate for symbolic-shape serving.

Asserts, against a freshly generated ``BENCH_pipeline.json``:

* the ``serve.symbolic`` section is present and covers Pythia and ViT;
* first-request latency at a new in-bucket shape is >= 10x lower than
  a cold concrete compile plus first request, on both models.

Then runs live checks:

* shape-sweep parity - one symbolic compile (both in-process backends)
  serves every extent in ``1..MAX_EXTENT`` byte-identical to a fresh
  concrete compile at that extent;
* compile-count ceiling - the sweep builds exactly one variant per
  power-of-two bucket and the codegen backend emits once per bucket
  (plus the base program), never per shape;
* cleanliness - no shared-memory segments leak after a symbolic
  parallel session closes.

Usage: PYTHONPATH=src python scripts/check_symbolic_shapes.py [BENCH.json]
"""

import json
import sys

from repro.models import build_smoke
from repro.runtime import active_segments
from repro.runtime.batching import bucket
from repro.runtime.codegen_backend import emission_count
from repro.runtime.parallel_backend import parallel_supported
from repro.runtime.session import _compile_session

GATED_MODELS = ("Pythia", "ViT")
MIN_SPEEDUP = 10.0
MAX_EXTENT = 8


def check_bench(path: str) -> None:
    symbolic = json.load(open(path))["serve"]["symbolic"]
    models = symbolic["models"]
    missing = sorted(set(GATED_MODELS) - set(models))
    assert not missing, f"serve.symbolic missing models: {missing}"
    for name in GATED_MODELS:
        entry = models[name]
        new_ms = entry["new_shape_request_ms"]
        cold_ms = entry["cold_compile_request_ms"]
        speedup = entry["speedup"]
        print(f"{name}: new in-bucket shape {new_ms} ms vs cold compile "
              f"{cold_ms} ms = {speedup:.1f}x")
        assert speedup >= MIN_SPEEDUP, (
            f"{name}: first request at a new in-bucket shape is only "
            f"{speedup:.1f}x faster than a cold concrete compile "
            f"(< {MIN_SPEEDUP:.0f}x)")


def symbolic_signature(graph):
    return {name: (None,) + tuple(graph.tensors[name].shape)[1:]
            for name in graph.inputs}


def check_shape_sweep_parity() -> None:
    for name in GATED_MODELS:
        references = {}
        for extent in range(1, MAX_EXTENT + 1):
            concrete = _compile_session(build_smoke(name, batch=extent),
                                        "Ours")
            values = concrete._admit(concrete.make_inputs(seed=extent))
            references[extent] = (
                values, concrete.execute_values([dict(values)])[0][0][0])
        for backend in ("numpy", "codegen"):
            graph = build_smoke(name, batch=1)
            session = _compile_session(
                build_smoke(name, batch=1), "Ours", backend=backend,
                signature=symbolic_signature(graph), max_extent=MAX_EXTENT)
            before = emission_count()
            for _sweep in range(2):
                for extent, (values, want) in references.items():
                    got = session.execute_values(
                        [session._admit(values)])[0][0][0]
                    for key in want:
                        assert got[key].shape == want[key].shape, (
                            f"{name}/{backend} S={extent}: shape mismatch "
                            f"on {key!r}")
                        assert got[key].tobytes() == want[key].tobytes(), (
                            f"{name}/{backend} S={extent}: outputs not "
                            f"byte-identical on {key!r}")
            variants = session.program.backend_cache.get(
                "batching.symbolic", {})
            expected = {bucket(extent)
                        for extent in range(2, MAX_EXTENT + 1)}
            assert set(variants) == expected, (
                f"{name}/{backend}: buckets {sorted(variants)} != "
                f"expected {sorted(expected)}")
            emitted = emission_count() - before
            ceiling = len(expected) + 1  # one per bucket + base program
            assert emitted <= ceiling, (
                f"{name}/{backend}: {emitted} codegen emissions for a "
                f"{MAX_EXTENT}-shape sweep (ceiling {ceiling}: one per "
                f"bucket plus the base program)")
            print(f"{name}/{backend}: {MAX_EXTENT}-extent sweep "
                  f"byte-identical, {len(variants)} bucket variants, "
                  f"{emitted} emissions (ceiling {ceiling})")


def check_no_leaked_segments() -> None:
    if not parallel_supported():
        print("fork unavailable: skipping parallel segment check")
        return
    graph = build_smoke("Pythia", batch=1)
    session = _compile_session(
        build_smoke("Pythia", batch=1), "Ours", backend="parallel",
        workers=2, signature=symbolic_signature(graph),
        max_extent=MAX_EXTENT)
    try:
        import numpy as np
        base = session.make_inputs(seed=0)
        grown = {key: np.resize(value, (5,) + value.shape[1:])
                 for key, value in base.items()}
        session.execute_values(
            [session._admit(grown) for _ in range(4)])
    finally:
        session.close()
    leaked = active_segments()
    assert not leaked, f"shared-memory segments leaked: {leaked}"
    print("symbolic parallel session: served extent 5, no leaked segments")


def main(path: str = "BENCH_pipeline.json") -> int:
    check_bench(path)
    check_shape_sweep_parity()
    check_no_leaked_segments()
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
