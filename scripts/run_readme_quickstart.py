"""Execute the README's python snippets, failing on drift.

Extracts every fenced ```python block from README.md and runs them in
order in one shared namespace (later blocks may reuse names defined by
earlier ones, exactly as a reader following along would).  Any raise -
an API rename, a changed default, a stale assert - fails the run, so CI
keeps the documented quickstart honest.

    PYTHONPATH=src python scripts/run_readme_quickstart.py [README.md]
"""

from __future__ import annotations

import re
import sys
import time
from pathlib import Path

FENCE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def extract_blocks(text: str) -> list[str]:
    """All fenced ```python blocks, in document order."""
    return [match.group(1) for match in FENCE.finditer(text)]


def main(argv: list[str]) -> int:
    readme = Path(argv[1]) if len(argv) > 1 else \
        Path(__file__).resolve().parent.parent / "README.md"
    blocks = extract_blocks(readme.read_text())
    if not blocks:
        print(f"no ```python blocks found in {readme}")
        return 1
    namespace: dict = {"__name__": "__readme__"}
    for index, block in enumerate(blocks, start=1):
        print(f"== {readme.name} python block {index}/{len(blocks)} ==")
        start = time.perf_counter()
        code = compile(block, f"<{readme.name}:block-{index}>", "exec")
        exec(code, namespace)
        print(f"   ok ({time.perf_counter() - start:.2f}s)")
    print(f"all {len(blocks)} blocks ran clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
