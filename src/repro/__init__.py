"""SmartMem reproduction: layout transformation elimination and adaptation
for efficient DNN execution on mobile (Niu et al., ASPLOS 2024).

Quickstart::

    from repro import build_model, optimize, estimate_cost, SD8GEN2

    graph = build_model("Swin")
    module = optimize(graph)                      # the SmartMem pipeline
    report = estimate_cost(module, SD8GEN2)       # analytical device model
    print(report.latency_ms, module.operator_count)
"""

from .core.pipeline import OptimizeResult, PipelineStages, smartmem_optimize
from .ir.builder import GraphBuilder
from .ir.graph import Graph
from .models import build as build_model
from .runtime.cost_model import CostModelConfig, CostReport, estimate
from .runtime.device import DEVICES, DIMENSITY700, DeviceSpec, SD835, SD8GEN2, V100

__version__ = "1.0.0"


def optimize(graph: Graph, stages: PipelineStages | None = None) -> OptimizeResult:
    """Run the full SmartMem optimization pipeline on a model graph."""
    return smartmem_optimize(graph, stages)


def estimate_cost(module: OptimizeResult, device: DeviceSpec = SD8GEN2,
                  config: CostModelConfig | None = None) -> CostReport:
    """Cost an optimized module on a device model."""
    config = config or CostModelConfig(extra_efficiency=module.extra_efficiency)
    return estimate(module.graph, device, module.plan, config)


__all__ = [
    "CostModelConfig", "CostReport", "DEVICES", "DIMENSITY700", "DeviceSpec",
    "Graph", "GraphBuilder", "OptimizeResult", "PipelineStages", "SD835",
    "SD8GEN2", "V100", "build_model", "estimate", "estimate_cost", "optimize",
    "smartmem_optimize", "__version__",
]
