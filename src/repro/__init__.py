"""SmartMem reproduction: layout transformation elimination and adaptation
for efficient DNN execution on mobile (Niu et al., ASPLOS 2024).

Quickstart - compile once, serve typed requests::

    import repro

    model = repro.compile("Pythia")               # SmartMem pipeline + lowering
    request = model.make_request(seed=0)          # or InferenceRequest(inputs={...})
    response = model.run(request)
    print(response.outputs.keys(), response.stats.wall_s)

Execution backends are pluggable per compile -
``CompileOptions(backend="codegen")`` runs the program through fused
generated Python instead of the reference step interpreter (identical
outputs; see ``docs/architecture.md`` for the backend registry).

Serving concurrent traffic - a scheduler coalesces requests into
micro-batches on the lowered program path::

    with repro.serve("Pythia", max_batch_size=16) as service:
        futures = [service.submit(model.make_request(seed=s).inputs)
                   for s in range(64)]
        responses = [f.result() for f in futures]
        print(service.report().throughput_rps)

The analysis layer is unchanged: ``optimize()`` runs the SmartMem
pipeline on a graph and ``estimate_cost()`` prices it on a device model::

    graph = repro.build_model("Swin")
    module = repro.optimize(graph)
    report = repro.estimate_cost(module, repro.SD8GEN2)
"""

from .api import (
    AdmissionError, BackendCompilationError, CompiledModel, CompileOptions,
    DeadlineExceeded, ExecutionError, InferenceFuture, InferenceRequest,
    InferenceResponse, InvalidOptions, QueueFull, ReproError,
    RequestCancelled, RetryPolicy, ServeOptions, Service, ServiceClosed,
    ServiceReport, WorkerCrashed, compile, serve,
)
from .core.pipeline import OptimizeResult, PipelineStages, smartmem_optimize
from .ir.builder import GraphBuilder
from .ir.graph import Graph
from .ir.symbolic import SYM, SymDim
from .models import build as build_model
from .runtime.cost_model import CostModelConfig, CostReport, estimate
from .runtime.device import DEVICES, DIMENSITY700, DeviceSpec, SD835, SD8GEN2, V100
from .runtime.faults import FaultPlan, FaultRule

__version__ = "1.1.0"


def optimize(graph: Graph, stages: PipelineStages | None = None) -> OptimizeResult:
    """Run the full SmartMem optimization pipeline on a model graph."""
    return smartmem_optimize(graph, stages)


def estimate_cost(module: OptimizeResult, device: DeviceSpec = SD8GEN2,
                  config: CostModelConfig | None = None) -> CostReport:
    """Cost an optimized module on a device model."""
    config = config or CostModelConfig(extra_efficiency=module.extra_efficiency)
    return estimate(module.graph, device, module.plan, config)


__all__ = [
    "AdmissionError", "BackendCompilationError", "CompileOptions",
    "CompiledModel", "CostModelConfig", "CostReport", "DEVICES",
    "DIMENSITY700", "DeadlineExceeded", "DeviceSpec", "ExecutionError",
    "FaultPlan", "FaultRule", "Graph", "GraphBuilder", "InferenceFuture",
    "InferenceRequest", "InferenceResponse", "InvalidOptions",
    "OptimizeResult",
    "PipelineStages", "QueueFull", "ReproError", "RequestCancelled",
    "RetryPolicy", "SD835",
    "SD8GEN2", "SYM", "ServeOptions", "Service", "ServiceClosed",
    "ServiceReport", "SymDim",
    "V100", "WorkerCrashed", "build_model", "compile", "estimate",
    "estimate_cost", "optimize",
    "serve", "smartmem_optimize", "__version__",
]
