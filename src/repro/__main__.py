"""Library CLI: optimize a catalog model and report what happened.

    python -m repro Swin                       # optimize + cost on SD 8 Gen 2
    python -m repro Swin --device tesla-v100   # another device
    python -m repro Swin --compare             # against all frameworks
    python -m repro Swin --save swin.json      # write deployment artifact
    python -m repro --list                     # available models/devices
"""

from __future__ import annotations

import argparse
from .baselines import ALL_FRAMEWORKS, make_framework
from .core import smartmem_optimize
from .ir.printer import summarize
from .models import ALL_MODELS, build
from .runtime import DEVICES, SD8GEN2, estimate
from .runtime.artifact import Artifact
from .runtime.cost_model import CostModelConfig


_EPILOG = """\
other entry points:
  python -m repro.bench all              regenerate the paper tables/figures
  python -m repro.bench --all --timings  + perf trajectory (BENCH_pipeline.json:
                                         pass timings, serving walls, backend
                                         comparison, scheduler throughput)
  repro.compile / repro.serve            typed serving API (compile once, run
                                         many; micro-batching scheduler) - see
                                         the README quickstart

docs:
  README.md             install, quickstart, bench invocation, API migration
  docs/architecture.md  layer map + how to add a pass / an execution backend
"""


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SmartMem: optimize a DNN model for mobile execution",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("model", nargs="?", help="catalog model name")
    parser.add_argument("--device", default=SD8GEN2.name,
                        choices=sorted(DEVICES))
    parser.add_argument("--batch", type=int, default=1)
    parser.add_argument("--compare", action="store_true",
                        help="also cost every baseline framework")
    parser.add_argument("--save", metavar="PATH",
                        help="write the optimized module as an artifact")
    parser.add_argument("--list", action="store_true",
                        help="list models and devices")
    args = parser.parse_args(argv)

    if args.list or not args.model:
        print("models: ", ", ".join(sorted(ALL_MODELS)))
        print("devices:", ", ".join(sorted(DEVICES)))
        return 0

    device = DEVICES[args.device]
    graph = build(args.model, batch=args.batch)
    print(summarize(graph))

    result = smartmem_optimize(graph)
    elim = result.elimination_stats
    print(f"SmartMem: {result.operator_count} kernels "
          f"(from {result.source_operator_count} operators); eliminated "
          f"{elim.total_eliminated} layout transforms {dict(elim.eliminated)}")
    report = estimate(graph=result.graph, device=device, plan=result.plan,
                      config=CostModelConfig(
                          extra_efficiency=result.extra_efficiency))
    print(f"{device.name}: {report.latency_ms:.1f} ms, "
          f"{report.gmacs_per_s:.0f} GMACS, "
          f"peak memory {report.peak_memory_bytes / 2**20:.0f} MiB")

    if args.compare:
        print("\nframework comparison:")
        for fw_name in ALL_FRAMEWORKS:
            fw_result = make_framework(fw_name).compile(graph, device)
            if not fw_result.supported:
                print(f"  {fw_name:8s} -            ({fw_result.reason})")
                continue
            fw_report = fw_result.cost(device)
            print(f"  {fw_name:8s} {fw_report.latency_ms:10.1f} ms  "
                  f"({fw_report.latency_ms / report.latency_ms:.2f}x ours)")

    if args.save:
        Artifact.from_result(result, metadata={
            "model": args.model, "batch": args.batch,
            "device": device.name}).save(args.save)
        print(f"\nwrote artifact to {args.save}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
