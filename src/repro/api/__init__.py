"""The canonical public surface: typed compile & serve front doors.

Two entry points replace the historical trio of idioms
(``optimize()``/``estimate_cost()``, ``compile_session()`` with raw
ndarray dicts, positional ``Engine`` tuples):

* :func:`repro.compile` - compile once, run many, synchronously::

      model = repro.compile(graph)                    # CompiledModel
      response = model.run(InferenceRequest(inputs))  # InferenceResponse
      response.outputs, response.stats.wall_s

* :func:`repro.serve` - the same compiled model behind a dynamic
  micro-batching scheduler for concurrent traffic::

      with repro.serve(graph, max_batch_size=16) as service:
          futures = [service.submit(r) for r in requests]
          responses = [f.result() for f in futures]

Both are configured by frozen options dataclasses
(:class:`CompileOptions`, :class:`ServeOptions`) and speak typed
:class:`InferenceRequest`/:class:`InferenceResponse` objects instead of
raw ndarray dicts.
"""

from .compiled import CompiledModel, compile, compile_private, session_cache
from .errors import (
    AdmissionError, BackendCompilationError, DeadlineExceeded, ExecutionError,
    InvalidOptions, QueueFull, ReproError, RequestCancelled, ServiceClosed,
    WorkerCrashed,
)
from .messages import InferenceRequest, InferenceResponse, as_request
from .options import CompileOptions, RetryPolicy, ServeOptions, merge_options
from .service import InferenceFuture, Service, ServiceReport, serve

__all__ = [
    "AdmissionError", "BackendCompilationError", "CompileOptions",
    "CompiledModel", "DeadlineExceeded", "ExecutionError", "InferenceFuture",
    "InferenceRequest", "InferenceResponse", "InvalidOptions", "QueueFull",
    "ReproError", "RequestCancelled", "RetryPolicy", "Service",
    "ServeOptions", "ServiceClosed", "ServiceReport", "WorkerCrashed",
    "as_request", "compile", "compile_private", "merge_options", "serve",
    "session_cache",
]
