"""``repro.compile``: the typed compile-once front door.

A :class:`CompiledModel` wraps one
:class:`~repro.runtime.session.Session` behind typed
request/response objects with *strict* admission: a request must name
exactly the compiled graph's declared inputs, and every tensor is
checked against the program's
:attr:`~repro.runtime.program.ExecutionProgram.input_signature`, so a
wrong-*name* tensor fails as loudly as a wrong-shape one.

``compile()`` fronts a process-wide :class:`SessionRegistry` keyed on
graph content fingerprints: recompiling a structurally identical user
graph returns the same live session (and its warmed pool).
"""

from __future__ import annotations

import time
from typing import Mapping

import numpy as np

from ..ir.graph import Graph
from ..runtime.session import Session, SessionRegistry, _compile_session
from .errors import AdmissionError
from .messages import InferenceRequest, InferenceResponse, as_request
from .options import CompileOptions, merge_options

_REGISTRY = SessionRegistry(max_sessions=64)
"""Process-wide session cache behind :func:`compile`, LRU-bounded so a
long-lived server compiling many distinct triples cannot grow sessions
(graphs, materialized parameters, pools) without bound."""


def session_cache() -> SessionRegistry:
    """The process-wide registry (for explicit ``evict()``/``clear()``)."""
    return _REGISTRY


class CompiledModel:
    """One compiled model serving typed requests.

    The synchronous face of the compile-once/run-many contract:
    :meth:`run` serves one :class:`~repro.api.InferenceRequest` and
    returns an :class:`~repro.api.InferenceResponse` carrying the named
    outputs plus per-request :class:`~repro.runtime.session.RunStats`
    (wall time, estimated on-device latency, pool delta);
    :meth:`run_batch` serves a list through **one** backend invocation.
    Admission is strict - see :meth:`admit`.  Introspection:
    :attr:`input_signature` (the admission spec), :attr:`program` (the
    lowered steps/slot plan), :attr:`est_latency_ms`, :attr:`stats`,
    and :attr:`session` for the underlying execution session.

    Not thread-safe: concurrent callers should go through
    :func:`repro.serve`, whose scheduler owns a private session.
    """

    def __init__(self, session: Session) -> None:
        self._session = session
        # Admission spec: symbolic sessions spell the leading dim SYM
        # (rendered "?"); concrete sessions get exact graph shapes.
        self._signature = session.serving_signature

    # -- introspection -----------------------------------------------------

    @property
    def session(self) -> Session:
        """The underlying execution session (pool, stats, program)."""
        return self._session

    @property
    def graph(self) -> Graph:
        return self._session.graph

    @property
    def program(self):
        return self._session.program

    @property
    def input_signature(self):
        """(name, shape, dtype) per declared input - the admission spec."""
        return self._session.program.input_signature

    @property
    def est_latency_ms(self) -> float:
        return self._session.est_latency_ms

    @property
    def stats(self):
        return self._session.stats

    def make_request(self, seed: int = 0, **meta) -> InferenceRequest:
        """Deterministic random request (tests, warmup, load generators)."""
        return InferenceRequest(inputs=self._session.make_inputs(seed), **meta)

    # -- admission ---------------------------------------------------------

    def admit(self, request: InferenceRequest) -> dict[str, np.ndarray]:
        """Validate one request and merge it over the session parameters.

        Raises :class:`~repro.api.errors.AdmissionError` (a
        :class:`ValueError`) naming the offending tensor for empty
        requests, unknown input names, missing inputs, wrong shapes, and
        wrong dtypes - before anything reaches the backend.  Under a
        symbolic compile the leading dim admits any extent in the served
        bucket range ``1..max_extent`` (shared across the request's
        inputs); everything past the leading dim stays exact.
        """
        inputs = request.inputs
        rid = request.request_id
        who = "request" if rid is None else f"request {rid!r}"
        session = self._session
        sym = session.symbolic

        def reject(message: str) -> AdmissionError:
            return AdmissionError(
                message, request_id=rid,
                model=session.model or session.graph.name)

        signature = self._signature
        if not inputs:
            raise reject(
                f"{who} has no input tensors; expected {sorted(signature)}")
        values = dict(session._params)
        extent = extent_name = None
        for name, value in inputs.items():
            spec = signature.get(name)
            if spec is None:
                raise reject(
                    f"{who}: unknown input tensor {name!r}; this "
                    f"model takes {sorted(signature)}")
            shape, dtype = spec
            if not isinstance(value, np.ndarray):
                value = np.asarray(value)
            if sym is not None and name in sym.inputs:
                got = tuple(value.shape)
                if len(got) != len(shape) or got[1:] != shape[1:]:
                    raise reject(
                        f"{who}: input {name!r}: got shape {got}, "
                        f"expected {shape} (symbolic leading extent, "
                        f"served bucket range 1..{sym.max_extent})")
                if not 1 <= got[0] <= sym.max_extent:
                    raise reject(
                        f"{who}: input {name!r}: leading extent {got[0]} "
                        f"is outside the served bucket range "
                        f"1..{sym.max_extent}")
                if extent is None:
                    extent, extent_name = got[0], name
                elif got[0] != extent:
                    raise reject(
                        f"{who}: input {name!r}: leading extent {got[0]} "
                        f"disagrees with input {extent_name!r} (extent "
                        f"{extent}); a request's inputs share one "
                        f"symbolic extent")
            elif value.shape != shape:
                raise reject(
                    f"{who}: input {name!r}: got shape "
                    f"{tuple(value.shape)}, expected {shape}")
            if value.dtype != dtype:
                raise reject(
                    f"{who}: input {name!r}: got dtype "
                    f"{value.dtype}, expected {dtype}")
            values[name] = value
        if len(inputs) < len(signature):
            missing = [n for n in signature if n not in inputs]
            raise reject(f"{who}: missing input tensors {missing}")
        return values

    # -- execution ---------------------------------------------------------

    def run(self, request: InferenceRequest | Mapping[str, np.ndarray],
            ) -> InferenceResponse:
        """Serve one request synchronously."""
        request = as_request(request)
        session = self._session
        start = time.perf_counter()
        values = self.admit(request)
        results, backend_name, _ = session.execute_values([values])
        outputs, report, _ = results[0]
        stats = session._record(
            time.perf_counter() - start, report, backend_name)
        return InferenceResponse(
            request_id=request.request_id, outputs=outputs, stats=stats)

    __call__ = run

    def run_batch(self, requests) -> list[InferenceResponse]:
        """Serve a list of requests through one backend invocation - a
        single stacked kernel pass when the program is batch-stackable
        (``stats.batched``), a sequential loop otherwise."""
        if not requests:
            raise AdmissionError(
                "run_batch() needs at least one request; got an empty batch")
        session = self._session
        requests = [as_request(r) for r in requests]
        perf = time.perf_counter
        admitted = []
        for request in requests:
            start = perf()
            values = self.admit(request)
            admitted.append((request, values, perf() - start))
        results, backend_name, batched = session.execute_values(
            [values for _, values, _ in admitted])
        n = len(results)
        responses = []
        for (request, _, admit_s), (outputs, report, wall_s) in zip(
                admitted, results):
            responses.append(InferenceResponse(
                request_id=request.request_id, outputs=outputs,
                stats=session._record(admit_s + wall_s, report,
                                      backend_name, batched=batched),
                batch_size=n))
        return responses

    def close(self) -> None:
        """Release process-external resources (the parallel backends'
        worker processes and shared-memory segments).  A no-op for the
        in-process backends; idempotent."""
        self._session.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self._session
        return (f"CompiledModel({s.model or s.graph.name!r}, "
                f"framework={s.framework!r}, backend={s.backend!r})")


def compile(model: str | Graph, options: CompileOptions | None = None,
            **overrides) -> CompiledModel:
    """Compile a model into a :class:`CompiledModel` (cached per triple).

    Runs the SmartMem pass pipeline once, lowers the optimized graph to
    an :class:`~repro.runtime.program.ExecutionProgram`, and wraps the
    resulting session behind typed request/response objects.  The
    compile-once/run-many contract holds at process scope: sessions are
    cached on the model's content fingerprint plus the options, so
    repeated compiles - including of a *rebuilt but identical* graph -
    return the same live session and its warmed pool.

    Arguments:
        model: a catalog name (``"Pythia"``, see
            ``repro.models.ALL_MODELS``) or a built
            :class:`~repro.ir.graph.Graph`.
        options: a :class:`CompileOptions` picking framework, device,
            batch, execution ``backend`` (``"numpy"`` or ``"codegen"``),
            and pipeline stages.  Defaults to ``CompileOptions()``.
        **overrides: loose keyword alternatives for any
            :class:`CompileOptions` field, e.g.
            ``compile(g, backend="codegen")``; they win field-by-field
            over ``options``.

    Returns:
        A :class:`CompiledModel` ready to serve
        :class:`~repro.api.InferenceRequest`\\ s synchronously.  For
        concurrent traffic put it behind :func:`repro.serve` instead.

    Raises:
        RuntimeError: the framework cannot serve the model (capability
            or device-memory limits).
        TypeError: unknown override names, or ``options`` of the wrong
            type.

    Example::

        model = repro.compile("Pythia", repro.CompileOptions(
            backend="codegen"))
        response = model.run(model.make_request(seed=0))
        response.outputs, response.stats.wall_s
    """
    options = merge_options(CompileOptions, options, overrides)
    session = _REGISTRY.compile(
        model, options.framework, options.device, options.batch,
        backend=options.backend, faults=options.faults,
        workers=options.workers,
        check_memory=options.check_memory,
        signature=options.signature, max_extent=options.max_extent,
        **options.framework_kwargs())
    return CompiledModel(session)


def compile_private(model: str | Graph,
                    options: CompileOptions) -> CompiledModel:
    """A CompiledModel over a *private* session (no registry).

    Used by :func:`repro.serve`: a service's worker thread must own its
    pool exclusively, so it never shares a session with direct callers.
    """
    session = _compile_session(
        model, options.framework, options.device, options.batch,
        check_memory=options.check_memory, backend=options.backend,
        faults=options.faults, workers=options.workers,
        signature=options.signature, max_extent=options.max_extent,
        **options.framework_kwargs())
    return CompiledModel(session)
