"""The serving-layer error taxonomy.

Every failure the compile/serve stack can produce is a
:class:`ReproError` carrying structured context - the request id, the
model's content fingerprint, the execution backend, and a ``retryable``
flag the scheduler's :class:`~repro.api.RetryPolicy` keys on.  Each
concrete error *also* subclasses the built-in exception the pre-taxonomy
code raised at that site (``ValueError`` for admission, ``TimeoutError``
for deadline misses, ``RuntimeError`` for execution), so existing
``except``/``pytest.raises`` callers keep working unchanged:

================================  ==============================  =========
error                             legacy base                     retryable
================================  ==============================  =========
:class:`AdmissionError`           ``ValueError``                  never
:class:`ExecutionError`           ``RuntimeError``                sometimes
:class:`BackendCompilationError`  ``RuntimeError``                yes
:class:`DeadlineExceeded`         ``TimeoutError``                never
:class:`ServiceClosed`            ``RuntimeError``                never
:class:`QueueFull`                ``RuntimeError``                yes
:class:`InvalidOptions`           ``ValueError``                  never
:class:`RequestCancelled`         ``RuntimeError``                never
:class:`WorkerCrashed`            ``RuntimeError``                yes
================================  ==============================  =========

``retryable`` describes whether *resubmitting the same request* could
succeed: a malformed request (:class:`AdmissionError`) or a missed
deadline (:class:`DeadlineExceeded`) cannot, a transient kernel fault or
a momentarily full queue can.  The scheduler only re-enqueues failures
whose error says ``retryable=True``.

This module is intentionally dependency-free (stdlib only): it sits
below both the runtime and api layers so either may import it without
cycles.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base of the serving-layer taxonomy.

    Attributes:
        request_id: the failing request's id, when the failure is
            attributable to one request (``None`` otherwise).
        model: the model/graph name, when known.
        fingerprint: the graph's content fingerprint
            (:meth:`~repro.ir.graph.Graph.fingerprint`), when known -
            stable across rebuilt-but-identical graphs, so logs from a
            fleet can be grouped per program.
        backend: the execution-backend registry name involved.
        retryable: whether resubmitting the same request could succeed.
    """

    def __init__(self, message: str = "", *,
                 request_id: str | int | None = None,
                 model: str | None = None,
                 fingerprint: str | None = None,
                 backend: str | None = None,
                 retryable: bool = False) -> None:
        super().__init__(message)
        self.request_id = request_id
        self.model = model
        self.fingerprint = fingerprint
        self.backend = backend
        self.retryable = retryable

    def context(self) -> dict:
        """The structured context as a dict (log/telemetry friendly)."""
        return {
            "request_id": self.request_id,
            "model": self.model,
            "fingerprint": self.fingerprint,
            "backend": self.backend,
            "retryable": self.retryable,
        }


class AdmissionError(ReproError, ValueError):
    """A request rejected before reaching any backend: empty, unknown or
    missing tensor names, wrong shapes, wrong dtypes.  Never retryable -
    the same request can only fail the same way."""


class ExecutionError(ReproError, RuntimeError):
    """A request failed while executing: a kernel raised, produced a
    shape its spec forbids, or an injected fault fired.  ``retryable``
    depends on the cause (a transient fault is, a deterministic kernel
    bug is not)."""


class BackendCompilationError(ReproError, RuntimeError):
    """An execution backend failed to compile its per-program runners
    (e.g. the codegen backend's generated module).  Retryable by nature:
    the session degrades to the reference backend for the request and
    may try the failing backend again later (until its circuit breaker
    opens)."""

    def __init__(self, message: str = "", *, retryable: bool = True,
                 **context) -> None:
        super().__init__(message, retryable=retryable, **context)


class DeadlineExceeded(ReproError, TimeoutError):
    """A request's submit-relative deadline passed before (or while) the
    scheduler could serve it.  Never retryable - the deadline is gone."""


class ServiceClosed(ReproError, RuntimeError):
    """``submit()`` after :meth:`~repro.api.Service.close`: the queue is
    dead and the request was never enqueued."""


class QueueFull(ReproError, RuntimeError):
    """Backpressure: the service queue is at ``max_queue``.  Retryable -
    the queue drains."""

    def __init__(self, message: str = "", *, retryable: bool = True,
                 **context) -> None:
        super().__init__(message, retryable=retryable, **context)


class InvalidOptions(ReproError, ValueError):
    """An options dataclass field is out of range or malformed -
    ``workers=0``, ``max_batch_size=-1``, negative ``max_wait_ms``.
    Raised at construction, naming the field, so misconfiguration
    fails at the front door instead of deep inside the scheduler.
    Never retryable - the same options only fail the same way."""


class RequestCancelled(ReproError, RuntimeError):
    """A queued request was cancelled (``InferenceFuture.cancel()`` or a
    cancelled ``submit_async`` awaitable) before the scheduler executed
    it.  Never retryable - the caller explicitly withdrew the work."""


class WorkerCrashed(ReproError, RuntimeError):
    """A parallel worker process died mid-batch and the pool exhausted
    its respawn/rescue budget for the shard.  Retryable - a fresh
    worker (or the in-process fallback) can serve the same request."""

    def __init__(self, message: str = "", *, retryable: bool = True,
                 **context) -> None:
        super().__init__(message, retryable=retryable, **context)


__all__ = [
    "AdmissionError", "BackendCompilationError", "DeadlineExceeded",
    "ExecutionError", "InvalidOptions", "QueueFull", "ReproError",
    "RequestCancelled", "ServiceClosed", "WorkerCrashed",
]
