"""Typed request/response objects for the service layer.

Requests carry *named input tensors* plus scheduling metadata (id,
priority, deadline); responses carry the named outputs plus the
per-request :class:`~repro.runtime.session.RunStats` the session
recorded, so callers observe wall time and pool behaviour per request
without reaching into the session.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..runtime.session import RunStats


@dataclass
class InferenceRequest:
    """One inference request against a compiled model.

    ``inputs`` maps graph-input names to arrays and must cover exactly
    the compiled model's declared inputs - unknown names, missing names,
    wrong shapes, and wrong dtypes are all rejected at admission with an
    error naming the tensor.

    ``request_id`` is echoed on the response (the scheduler substitutes
    its submission index when ``None``); ``priority`` orders queued
    requests (higher drains first, default ``0`` rides the FIFO fast
    path); ``deadline_ms`` is a submit-relative deadline after which the
    scheduler fails the request with :class:`TimeoutError` instead of
    executing it (``None``: never expires).  Scheduling metadata is
    ignored by the synchronous :meth:`CompiledModel.run` path, which
    executes immediately.
    """

    inputs: Mapping[str, np.ndarray]
    request_id: str | int | None = None
    priority: int = 0
    deadline_ms: float | None = None


@dataclass
class InferenceResponse:
    """The result of one served request.

    ``outputs`` maps graph-output names to arrays (:meth:`output` picks
    one, or the sole output when unnamed).  ``stats`` is the session's
    per-request accounting (``wall_s``, ``est_latency_ms``, and the
    ``pool`` delta - a steady-state session reports zero new
    allocations).  ``batch_size`` reports how many requests shared the
    backend invocation that produced this response.  When that
    invocation was a *stacked* batch-N kernel pass, ``stats.batched`` is
    True and the attribution is shared: ``stats.pool`` is the one
    PoolReport of the pass (identical object across the batchmates, not
    a per-request delta) and ``stats.wall_s`` carries this request's
    even share of the stacked execution time.  ``queued_ms`` is the time
    the request spent waiting to be coalesced (always ``0.0`` on the
    synchronous path); ``attempts`` counts executions of the request
    (``> 1`` only when the scheduler's :class:`~repro.api.RetryPolicy`
    re-enqueued a retryable failure).
    """

    request_id: str | int | None
    outputs: dict[str, np.ndarray]
    stats: RunStats
    batch_size: int = 1
    queued_ms: float = 0.0
    attempts: int = 1

    def output(self, name: str | None = None) -> np.ndarray:
        """One output array - by name, or the sole output when unnamed."""
        if name is not None:
            return self.outputs[name]
        if len(self.outputs) != 1:
            raise ValueError(
                f"model has {len(self.outputs)} outputs "
                f"({sorted(self.outputs)}); pass a name")
        return next(iter(self.outputs.values()))


def as_request(obj: InferenceRequest | Mapping[str, np.ndarray],
               ) -> InferenceRequest:
    """Adopt a plain inputs mapping as an :class:`InferenceRequest`."""
    if isinstance(obj, InferenceRequest):
        return obj
    if isinstance(obj, Mapping):
        return InferenceRequest(inputs=obj)
    raise TypeError(
        "expected an InferenceRequest or a {name: ndarray} mapping, "
        f"got {type(obj).__name__}")
