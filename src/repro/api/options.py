"""Typed configuration for the service-layer front doors.

The old surface spread configuration over positional tuples
(``Engine.compile(model, framework, device, batch)``) and loose keyword
arguments; the options dataclasses make every knob named, defaulted, and
hashable (so they can participate in session-cache keys).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from ..core.passes import PipelineStages
from ..runtime.device import DeviceSpec, SD8GEN2
from ..runtime.faults import FaultPlan
from .errors import InvalidOptions


@dataclass(frozen=True)
class RetryPolicy:
    """Retry schedule for retryable request failures in the scheduler.

    The :class:`~repro.api.Service` re-enqueues a failed request when its
    error is marked ``retryable`` (see :mod:`repro.api.errors`), up to
    ``max_attempts`` total attempts, backing off exponentially:
    attempt ``n`` (0-based) waits ``backoff_ms * 2**n`` milliseconds,
    multiplied by a factor drawn uniformly from ``1 ± jitter``.  A
    request is never retried past its deadline - if the backoff would
    overshoot it, the request fails with
    :class:`~repro.api.errors.DeadlineExceeded` instead of waiting.
    """

    max_attempts: int = 3
    backoff_ms: float = 1.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_ms < 0:
            raise ValueError("backoff_ms cannot be negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be within [0, 1)")

    def delay_s(self, attempt: int, rng=None) -> float:
        """Backoff before re-enqueueing attempt ``attempt + 1``."""
        delay = self.backoff_ms * (2 ** attempt) / 1e3
        if self.jitter and rng is not None:
            delay *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return delay


@dataclass(frozen=True)
class CompileOptions:
    """Everything :func:`repro.compile` needs besides the model.

    Fields (all defaulted; the instance is frozen and hashable so it can
    participate in session-cache keys):

    * ``framework`` - compiler pipeline to run (``"Ours"`` = SmartMem;
      baseline names from ``repro.baselines.ALL_FRAMEWORKS`` work too).
    * ``device`` - :class:`~repro.runtime.device.DeviceSpec` the cost
      model prices against (default Snapdragon 8 Gen 2).
    * ``batch`` - request batch size built into the graph; only applies
      to registry-name models (build a :class:`~repro.ir.graph.Graph`
      at the desired batch size otherwise).
    * ``backend`` - execution-backend registry name
      (:func:`repro.runtime.available_backends`): ``"numpy"`` is the
      reference interpreter over pre-compiled step closures,
      ``"codegen"`` compiles the whole step loop to Python source,
      ``"parallel"``/``"parallel-codegen"`` shard work across a pool of
      worker processes (see :mod:`repro.runtime.parallel_backend`).
      Outputs are identical; only the execution strategy differs.
    * ``workers`` - worker-process count for the parallel backends
      (ignored by the in-process backends).
    * ``check_memory`` - reject models whose peak footprint exceeds the
      device budget instead of just costing them.
    * ``stages`` - :class:`~repro.core.passes.PipelineStages` feeding
      the SmartMem pass pipeline (ablation toggles, tuned boost).
    * ``faults`` - a :class:`~repro.runtime.faults.FaultPlan` installed
      on the compiled session, deterministically injecting
      latency/kernel/alloc/compile faults at the backend-invocation
      level (reliability testing; ``None`` = the ambient
      ``REPRO_FAULT_SEED`` chaos plan, if set).
    * ``signature`` - optional symbolic input signature: a mapping from
      graph-input name to its shape with the *leading* dim replaced by a
      placeholder (``None`` or :data:`repro.ir.symbolic.SYM`), e.g.
      ``{"tokens": (None, 128)}``.  The compiled model then admits any
      leading extent up to ``max_extent`` through one compile - requests
      execute at their exact extent via per-bucket symbolic variants,
      byte-identical to a fresh concrete compile at that extent.
      Unnamed graph inputs default to the same symbolic leading dim (the
      leading extent is shared across inputs by construction).
    * ``max_extent`` - largest leading extent a symbolic compile admits;
      sizes the per-bucket slot plans, conv scratch, and shm layouts.
      Required alongside ``signature``.
    """

    framework: str = "Ours"
    device: DeviceSpec = SD8GEN2
    batch: int = 1
    backend: str = "numpy"
    workers: int = 1
    check_memory: bool = False
    stages: PipelineStages | None = None
    faults: FaultPlan | None = None
    signature: tuple | dict | None = None
    max_extent: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.batch, int) or self.batch < 1:
            raise InvalidOptions(
                f"CompileOptions.batch must be an int >= 1, got {self.batch!r}")
        if not isinstance(self.workers, int) or self.workers < 1:
            raise InvalidOptions(
                f"CompileOptions.workers must be an int >= 1, "
                f"got {self.workers!r}")
        if self.signature is not None:
            from ..ir.symbolic import SymDim
            if isinstance(self.signature, dict):
                items = self.signature.items()
            else:
                items = self.signature
            normalized = []
            for name, shape in items:
                dims = []
                for dim in shape:
                    if dim is None or isinstance(dim, SymDim):
                        dims.append(None)  # hashable placeholder spelling
                    else:
                        dims.append(int(dim))
                if not dims or dims[0] is not None:
                    raise InvalidOptions(
                        f"CompileOptions.signature: input {name!r} must "
                        f"lead with a symbolic placeholder (None/SYM), "
                        f"got {tuple(shape)!r}")
                if any(d is None for d in dims[1:]):
                    raise InvalidOptions(
                        f"CompileOptions.signature: input {name!r}: only "
                        f"the leading dim may be symbolic, got "
                        f"{tuple(shape)!r}")
                normalized.append((str(name), tuple(dims)))
            object.__setattr__(self, "signature", tuple(normalized))
            if not isinstance(self.max_extent, int) or self.max_extent < 1:
                raise InvalidOptions(
                    "CompileOptions.max_extent must be an int >= 1 when a "
                    f"symbolic signature is given, got {self.max_extent!r}")
        elif self.max_extent:
            raise InvalidOptions(
                "CompileOptions.max_extent requires a symbolic signature")

    def framework_kwargs(self) -> dict:
        """Keyword arguments forwarded to the framework constructor."""
        return {} if self.stages is None else {"stages": self.stages}


@dataclass(frozen=True)
class ServeOptions:
    """Scheduler configuration for :func:`repro.serve`.

    The service coalesces up to ``max_batch_size`` compatible requests
    arriving within ``max_wait_ms`` of each other into one backend
    invocation; ``max_wait_ms=0`` still coalesces whatever is already
    queued but never delays a lone request.  ``max_queue`` bounds the
    request queue (``submit`` raises once it is full) so a slow consumer
    exerts backpressure instead of growing memory without bound.
    ``compile`` nests the :class:`CompileOptions` the service's private
    session is compiled with (framework, device, execution backend);
    ``backend`` and ``workers`` are shorthands that override the nested
    compile options, so ``serve(model, backend="parallel", workers=4)``
    works without spelling out a ``CompileOptions``.

    Reliability knobs: ``retry`` is the :class:`RetryPolicy` the
    scheduler applies to retryable request failures (``None``: fail on
    first error); ``faults`` is a
    :class:`~repro.runtime.faults.FaultPlan` whose *service-level* rules
    (those naming a ``request_id``) the scheduler injects per request
    and attempt - kernel faults, worker crashes, latency.

    Out-of-range values raise
    :class:`~repro.api.errors.InvalidOptions` (a :class:`ValueError`)
    at construction, naming the offending field.
    """

    max_batch_size: int = 8
    max_wait_ms: float = 2.0
    max_queue: int | None = None
    backend: str | None = None
    workers: int | None = None
    compile: CompileOptions = field(default_factory=CompileOptions)
    retry: RetryPolicy | None = None
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.max_batch_size, int) or self.max_batch_size < 1:
            raise InvalidOptions(
                f"ServeOptions.max_batch_size must be an int >= 1, "
                f"got {self.max_batch_size!r}")
        if self.max_wait_ms < 0:
            raise InvalidOptions(
                f"ServeOptions.max_wait_ms cannot be negative, "
                f"got {self.max_wait_ms!r}")
        if self.max_queue is not None and self.max_queue < 1:
            raise InvalidOptions(
                f"ServeOptions.max_queue must be at least 1, "
                f"got {self.max_queue!r}")
        if self.workers is not None and (
                not isinstance(self.workers, int) or self.workers < 1):
            raise InvalidOptions(
                f"ServeOptions.workers must be an int >= 1, "
                f"got {self.workers!r}")

    def resolved_compile(self) -> CompileOptions:
        """The nested compile options with the ``backend``/``workers``
        shorthands folded in (shorthand wins when set)."""
        from dataclasses import replace
        overrides = {}
        if self.backend is not None:
            overrides["backend"] = self.backend
        if self.workers is not None:
            overrides["workers"] = self.workers
        return replace(self.compile, **overrides) if overrides else self.compile


def merge_options(cls, options, overrides: dict):
    """One options object from an optional instance + keyword overrides.

    Lets the front doors accept either a prebuilt dataclass, loose
    keywords, or both (keywords win field-by-field).
    """
    if options is None:
        return cls(**overrides)
    if not isinstance(options, cls):
        raise TypeError(
            f"options must be {cls.__name__}, got {type(options).__name__}")
    if not overrides:
        return options
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(overrides) - known)
    if unknown:
        raise TypeError(f"unknown {cls.__name__} fields: {unknown}")
    merged = {f.name: getattr(options, f.name) for f in fields(cls)}
    merged.update(overrides)
    return cls(**merged)
