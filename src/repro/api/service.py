"""``repro.serve``: a compiled model behind a micro-batching scheduler.

A :class:`Service` owns a private session and a worker thread draining a
thread-safe priority queue.  Concurrent ``submit()`` calls are admitted
in the submitting thread (fail-fast, and off the worker's critical
path), queued, and coalesced - up to ``max_batch_size`` batch-compatible
requests arriving within ``max_wait_ms`` of each other - into **one**
backend invocation on the lowered program path.  When the program is
batch-stackable (:func:`repro.runtime.batching.analyze`), that
invocation is a single *stacked* kernel pass: request tensors
concatenated along the batch axis, one kernel call per step for the
whole micro-batch (``ServiceReport.stacked_batches`` counts these) -
amortizing the kernel work itself, not just dispatch.  Results come
back through lightweight futures; the whole batch's futures are
resolved under one lock acquisition.

Failure semantics (see ``docs/architecture.md`` for the full contract):

* every scheduler-side failure is a typed :mod:`repro.api.errors` error
  naming the request - :class:`~repro.api.errors.ServiceClosed` for
  submits after :meth:`Service.close`,
  :class:`~repro.api.errors.QueueFull` for backpressure,
  :class:`~repro.api.errors.DeadlineExceeded` for deadline misses,
  :class:`~repro.api.errors.ExecutionError` for executor failures;
* a faulting request inside a coalesced micro-batch is **isolated**:
  the batch is re-run request-by-request so one bad request cannot fail
  its batchmates;
* with a :class:`~repro.api.RetryPolicy` on the options, retryable
  failures are re-enqueued with exponential backoff - never past the
  request's deadline;
* the worker thread is **supervised**: if it crashes, a replacement is
  spawned, unresolved in-flight requests are rescued back onto the
  queue, and the crash is counted in :meth:`Service.report`.

    service = repro.serve("Pythia")
    futures = [service.submit(req) for req in requests]
    responses = [f.result() for f in futures]
    print(service.report().throughput_rps)
    service.close()                     # drains the queue, joins the worker
"""

from __future__ import annotations

import asyncio
import heapq
import logging
import random
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..ir.graph import Graph
from ..runtime.faults import InjectedCrash
from .compiled import CompiledModel, compile_private
from .errors import (
    DeadlineExceeded, ExecutionError, QueueFull, ReproError,
    RequestCancelled, ServiceClosed,
)
from .messages import InferenceRequest, InferenceResponse, as_request
from .options import ServeOptions, merge_options

logger = logging.getLogger("repro.api.service")

_MAX_RESCUES = 2
"""Times one request may be rescued from a crashed worker before it is
failed as poisonous (a request whose execution keeps killing workers
must not crash-loop the service forever)."""


class InferenceFuture:
    """Handle to one submitted request.

    ``result()`` blocks until the scheduler resolves the request - with
    its :class:`~repro.api.InferenceResponse`, or by raising the error
    the request failed with (deadline misses raise
    :class:`~repro.api.errors.DeadlineExceeded`, a ``TimeoutError``).
    Futures share their service's condition variable, so resolving a
    coalesced batch wakes every waiter with one notification.
    ``add_done_callback`` registers resolution hooks (how
    :meth:`Service.submit_async` bridges to asyncio), and ``cancel``
    withdraws a still-queued request with
    :class:`~repro.api.errors.RequestCancelled`.
    """

    __slots__ = ("_service", "_response", "_error", "_resolved",
                 "_callbacks", "_request_id")

    def __init__(self, service: "Service") -> None:
        self._service = service
        self._response: InferenceResponse | None = None
        self._error: BaseException | None = None
        self._resolved = False
        self._callbacks: tuple = ()
        self._request_id: str | int | None = None

    def done(self) -> bool:
        return self._resolved

    def add_done_callback(self, fn) -> None:
        """Call ``fn(self)`` once the future resolves (immediately when
        it already has).  Callbacks run under the service lock in the
        resolving thread - keep them tiny and non-blocking (e.g.
        ``loop.call_soon_threadsafe``)."""
        with self._service._lock:
            if not self._resolved:
                self._callbacks += (fn,)
                return
        fn(self)

    def cancel(self) -> bool:
        """Withdraw the request if the scheduler has not resolved it
        yet; True when this call cancelled it.  A cancelled future's
        ``result()`` raises :class:`~repro.api.errors.RequestCancelled`;
        the scheduler drops the entry at dequeue time."""
        service = self._service
        with service._lock:
            if self._resolved:
                return False
            service._cancelled += 1
            _finish(self, error=RequestCancelled(
                f"request {self._request_id!r} cancelled before execution",
                request_id=self._request_id))
            service._completed.notify_all()
        return True

    def cancelled(self) -> bool:
        return self._resolved and isinstance(self._error, RequestCancelled)

    def result(self, timeout: float | None = None) -> InferenceResponse:
        if not self._resolved:
            deadline = None if timeout is None \
                else time.monotonic() + timeout
            with self._service._completed:
                while not self._resolved:
                    remaining = None if deadline is None \
                        else deadline - time.monotonic()
                    if remaining is not None and remaining <= 0:
                        raise TimeoutError("request is still pending")
                    self._service._completed.wait(remaining)
        if self._error is not None:
            raise self._error
        return self._response

    def exception(self, timeout: float | None = None) -> BaseException | None:
        try:
            self.result(timeout)
        except BaseException as err:  # noqa: BLE001 - the stored failure
            if err is self._error:
                return err
            raise  # still pending after `timeout`
        return None


def _finish(future: InferenceFuture, response=None, error=None) -> None:
    """Resolve a future and fire its done-callbacks.

    Must be called with the owning service's lock held (every resolution
    site already holds it); callers still notify ``_completed``
    themselves, usually once per batch.
    """
    future._response = response
    future._error = error
    future._resolved = True
    callbacks, future._callbacks = future._callbacks, ()
    for fn in callbacks:
        try:
            fn(future)
        except Exception:  # noqa: BLE001 - a hook must not kill the worker
            logger.exception("InferenceFuture done-callback raised")


class _Pending:
    """One queued request: heap-ordered by (priority desc, arrival)."""

    __slots__ = ("order", "priority", "request_id", "values", "future",
                 "enqueued_s", "deadline_s", "attempt", "rescues")

    def __init__(self, order, priority, request_id, values, future,
                 enqueued_s, deadline_s) -> None:
        self.order = order
        self.priority = priority
        self.request_id = request_id
        self.values = values
        self.future = future
        self.enqueued_s = enqueued_s
        self.deadline_s = deadline_s
        self.attempt = 0
        """0-based execution attempt (bumped by each retry re-enqueue)."""
        self.rescues = 0
        """Times this entry was rescued from a crashed worker."""

    def __lt__(self, other: "_Pending") -> bool:
        if self.priority != other.priority:
            return self.priority > other.priority  # higher drains first
        return self.order < other.order


@dataclass
class ServiceReport:
    """Lifetime scheduler statistics, surfaced by :meth:`Service.report`."""

    requests: int
    batches: int
    stacked_batches: int
    """Coalesced batches served as ONE stacked kernel pass (a batch-N
    program variant) instead of a sequential per-request loop."""
    mean_batch_size: float
    largest_batch: int
    queue_depth: int
    queue_depth_peak: int
    expired: int
    failed: int
    cancelled: int
    """Requests withdrawn (``InferenceFuture.cancel()`` / cancelled
    ``submit_async`` awaitables) before the scheduler executed them."""
    retries: int
    """Retryable failures re-enqueued under the :class:`RetryPolicy`."""
    isolated: int
    """Requests re-run solo after their coalesced batch failed."""
    worker_restarts: int
    """Workers lost and replaced: scheduler-thread crashes survived by
    spawning a replacement thread, plus worker-*process* respawns
    performed by the parallel backends' pool."""
    fallbacks: int
    """Backend invocations the session degraded to the reference
    backend (:attr:`~repro.runtime.session.SessionStats.fallbacks`)."""
    total_exec_s: float
    throughput_rps: float
    """Executor-side rate: requests served per second of backend time."""
    closed: bool


class Service:
    """A compiled model served by a dynamic micro-batching scheduler.

    Thread-safe: any number of threads may ``submit()`` concurrently.
    The service owns its session (and pool) exclusively - all execution
    happens on the single worker thread, so the compile-once/run-many
    pool discipline holds under concurrent traffic without locking the
    hot loop.

    Request lifecycle: :meth:`submit` admits the request in the calling
    thread (malformed requests raise
    :class:`~repro.api.errors.AdmissionError` immediately), enqueues it
    (FIFO for default priority, heap for prioritized;
    :class:`~repro.api.errors.QueueFull` once ``max_queue`` is hit), and
    returns an :class:`InferenceFuture`.  The worker coalesces up to
    ``max_batch_size`` queued requests arriving within ``max_wait_ms``
    into one ``backend.run_many`` invocation; expired deadlines resolve
    their futures with :class:`~repro.api.errors.DeadlineExceeded`, an
    executor failure is isolated per request (and retried under the
    options' :class:`~repro.api.RetryPolicy` when retryable).
    :meth:`infer` is the synchronous convenience, :meth:`report`
    snapshots lifetime statistics, and :meth:`close` (or using the
    service as a context manager) drains the queue - including pending
    retries - and joins the worker.  ``close()`` is idempotent;
    :meth:`submit` after it raises
    :class:`~repro.api.errors.ServiceClosed` without enqueueing.
    """

    def __init__(self, compiled: CompiledModel, options: ServeOptions,
                 _start: bool = True) -> None:
        self._compiled = compiled
        self._options = options
        session = compiled.session
        self._session = session
        self._program = session.program
        self._batch_key = self._program.batch_key
        self._pool = session.pool
        self._backend = session._backend
        self._max_batch = options.max_batch_size
        self._wait_s = options.max_wait_ms / 1e3
        self._max_queue = options.max_queue
        self._retry = options.retry
        self._injector = options.faults.injector() \
            if options.faults is not None else None
        self._rng = random.Random(
            options.faults.seed if options.faults is not None else 0)

        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)      # producer -> worker
        self._completed = threading.Condition(self._lock)  # worker -> waiters
        # Default-priority requests ride a FIFO deque (O(1) C-speed ends,
        # no Python-level comparisons on the submit hot path); the heap
        # only engages for requests with an explicit priority.
        self._fifo: deque[_Pending] = deque()
        self._heap: list[_Pending] = []
        self._submitted = 0
        self._closed = False

        self._requests = 0
        self._batches = 0
        self._stacked = 0
        self._expired = 0
        self._failed = 0
        self._cancelled = 0
        self._retries = 0
        self._isolated = 0
        self._worker_restarts = 0
        self._pending_retries = 0
        self._largest_batch = 0
        self._queue_peak = 0
        self._total_exec_s = 0.0

        # A sharding backend (the parallel family) gets its worker
        # pool *now*, before the scheduler thread exists: forking from
        # an effectively single-threaded parent is the safe point, and
        # the pool's segment capacity must cover a full micro-batch.
        if getattr(self._backend, "shards_requests", False):
            session.parallel_capacity = max(session.parallel_capacity,
                                            self._max_batch)
            session.ensure_parallel_pool()

        self._worker: threading.Thread | None = None
        if _start:
            self._worker = self._spawn_worker()

    def _spawn_worker(self) -> threading.Thread:
        session = self._session
        worker = threading.Thread(
            target=self._drain_loop, daemon=True,
            name=f"repro-service-{session.model or session.graph.name}")
        worker.start()
        return worker

    # -- introspection -----------------------------------------------------

    @property
    def compiled(self) -> CompiledModel:
        return self._compiled

    @property
    def program(self):
        return self._program

    @property
    def batch_key(self):
        """The coalescing contract this service schedules under.

        Every request is admitted against the one program carrying this
        key, which is what licenses unconditional coalescing in
        :meth:`_next_batch`; a multi-program scheduler would group its
        queue by this token before batching.
        """
        return self._batch_key

    @property
    def options(self) -> ServeOptions:
        return self._options

    @property
    def queue_depth(self) -> int:
        return len(self._fifo) + len(self._heap)

    @property
    def closed(self) -> bool:
        return self._closed

    def report(self) -> ServiceReport:
        """Snapshot of the scheduler's lifetime statistics."""
        with self._lock:
            requests = self._requests
            batches = self._batches
            total_exec_s = self._total_exec_s
            return ServiceReport(
                requests=requests,
                batches=batches,
                stacked_batches=self._stacked,
                mean_batch_size=requests / batches if batches else 0.0,
                largest_batch=self._largest_batch,
                queue_depth=self._depth(),
                queue_depth_peak=self._queue_peak,
                expired=self._expired,
                failed=self._failed,
                cancelled=self._cancelled,
                retries=self._retries,
                isolated=self._isolated,
                worker_restarts=self._worker_restarts
                + self._session.parallel_restarts,
                fallbacks=self._session.stats.fallbacks,
                total_exec_s=total_exec_s,
                throughput_rps=requests / total_exec_s
                if total_exec_s else 0.0,
                closed=self._closed,
            )

    def _depth(self) -> int:
        return len(self._fifo) + len(self._heap)

    def _pop_next(self) -> _Pending:
        """Next entry by (priority desc, arrival): FIFO unless an
        explicitly prioritized entry outranks the FIFO head."""
        if not self._heap:
            return self._fifo.popleft()
        if not self._fifo or self._heap[0] < self._fifo[0]:
            return heapq.heappop(self._heap)
        return self._fifo.popleft()

    # -- submission --------------------------------------------------------

    def submit(self, request: InferenceRequest | Mapping[str, np.ndarray],
               ) -> InferenceFuture:
        """Queue one request; returns a future resolving to its response.

        Admission runs here, in the submitting thread: malformed
        requests (empty, unknown/missing tensor names, wrong
        shape/dtype) raise :class:`~repro.api.errors.AdmissionError`
        immediately, and the per-request merge work overlaps the
        worker's execution of earlier batches.  After :meth:`close`,
        raises :class:`~repro.api.errors.ServiceClosed` without
        enqueueing; at ``max_queue``, raises
        :class:`~repro.api.errors.QueueFull` (retryable backpressure).
        """
        request = as_request(request)
        values = self._compiled.admit(request)
        future = InferenceFuture(self)
        now = time.monotonic()
        deadline_s = None if request.deadline_ms is None \
            else now + request.deadline_ms / 1e3
        priority = request.priority
        with self._lock:
            if self._closed:
                raise ServiceClosed(
                    "service is closed", request_id=request.request_id,
                    model=self._session.model or self._session.graph.name)
            depth = self._depth()
            if self._max_queue is not None and depth >= self._max_queue:
                raise QueueFull(
                    f"service queue is full ({self._max_queue} requests)",
                    request_id=request.request_id,
                    model=self._session.model or self._session.graph.name)
            order = self._submitted
            self._submitted += 1
            request_id = request.request_id \
                if request.request_id is not None else order
            future._request_id = request_id
            entry = _Pending(order, priority, request_id, values, future,
                             now, deadline_s)
            if priority == 0:
                self._fifo.append(entry)
            else:
                heapq.heappush(self._heap, entry)
            if depth + 1 > self._queue_peak:
                self._queue_peak = depth + 1
            self._work.notify()
        return future

    def infer(self, request: InferenceRequest | Mapping[str, np.ndarray],
              timeout: float | None = None) -> InferenceResponse:
        """Synchronous convenience: ``submit(request).result()``."""
        return self.submit(request).result(timeout)

    def submit_async(self, request: InferenceRequest |
                     Mapping[str, np.ndarray]) -> "asyncio.Future":
        """Queue one request and return an awaitable for its response.

        The asyncio-native front door: must be called from a running
        event loop, admits and enqueues exactly like :meth:`submit`
        (admission/backpressure errors raise here, synchronously), and
        resolves the returned :class:`asyncio.Future` on the caller's
        loop when the scheduler settles the request - so one event loop
        can hold thousands of in-flight awaitables over a single
        worker-thread (or worker-process pool) executor::

            response = await service.submit_async(request)

        Failures arrive as the same typed errors the sync path raises
        (``await`` re-raises :class:`~repro.api.errors.DeadlineExceeded`
        etc.).  Cancelling the awaitable cancels the underlying request:
        if it is still queued it settles with
        :class:`~repro.api.errors.RequestCancelled` and never executes.
        """
        loop = asyncio.get_running_loop()
        aio_future = loop.create_future()
        future = self.submit(request)

        def bridge(resolved: InferenceFuture) -> None:
            def settle() -> None:
                if aio_future.cancelled():
                    return
                if resolved._error is not None:
                    aio_future.set_exception(resolved._error)
                else:
                    aio_future.set_result(resolved._response)
            try:
                loop.call_soon_threadsafe(settle)
            except RuntimeError:  # loop already closed: nobody awaits
                pass

        future.add_done_callback(bridge)

        def propagate_cancel(done: "asyncio.Future") -> None:
            if done.cancelled():
                future.cancel()

        aio_future.add_done_callback(propagate_cancel)
        return aio_future

    # -- lifecycle ---------------------------------------------------------

    def close(self, timeout: float | None = None) -> None:
        """Graceful shutdown: drain the queue, then join the worker.

        Every request submitted before ``close()`` is served - pending
        retry backoffs included; later ``submit()`` calls raise
        :class:`~repro.api.errors.ServiceClosed`.  Idempotent (closing a
        closed service is a no-op beyond re-joining a dead worker).
        Once the worker has drained, the session's process-external
        resources - the parallel backends' worker processes and every
        shared-memory segment - are released too.
        """
        with self._lock:
            self._closed = True
            self._work.notify_all()
        # The worker may be replaced by the supervisor while we join
        # (a crash during drain): follow the replacement chain.
        while True:
            worker = self._worker
            if worker is None:
                break
            worker.join(timeout)
            if worker.is_alive():  # timeout expired with work left
                return
            if self._worker is worker:
                break
        self._session.close()

    def __enter__(self) -> "Service":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the scheduler -----------------------------------------------------

    def _next_batch(self) -> list[_Pending] | None:
        """Block until work is available; coalesce a batch.

        The coalescing window opens when the first request is seen:
        the worker waits up to ``max_wait_ms`` for the batch to fill,
        leaving early when it does (or on shutdown, which drains
        without delay).  On shutdown the worker exits only once the
        queue *and* the pending retry backoffs are drained, so a
        retried request submitted before ``close()`` still resolves.
        """
        with self._lock:
            while not self._fifo and not self._heap:
                if self._closed and self._pending_retries == 0:
                    return None
                self._work.wait()
            if self._wait_s > 0.0 and not self._closed \
                    and self._depth() < self._max_batch:
                deadline = time.monotonic() + self._wait_s
                while self._depth() < self._max_batch and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._work.wait(remaining)
            if not self._heap:  # common case: one C-speed bulk slice
                fifo = self._fifo
                n = min(self._max_batch, len(fifo))
                return [fifo.popleft() for _ in range(n)]
            n = min(self._max_batch, self._depth())
            return [self._pop_next() for _ in range(n)]

    def _drain_loop(self) -> None:
        batch: list[_Pending] | None = None
        try:
            while True:
                batch = self._next_batch()
                if batch is None:
                    return
                self._execute(batch)
                batch = None
        except BaseException as err:  # noqa: BLE001 - worker crashed
            self._supervise(err, batch or [])

    def _supervise(self, err: BaseException, batch: list[_Pending]) -> None:
        """Worker crashed: rescue its in-flight batch, spawn a
        replacement thread, count the restart.

        Unresolved in-flight entries go back to the *front* of the
        queue; an entry that keeps crashing workers is failed after
        ``_MAX_RESCUES`` rescues instead of crash-looping the service.
        """
        unresolved = [e for e in batch if not e.future._resolved]
        with self._lock:
            self._worker_restarts += 1
            restarts = self._worker_restarts
            poisoned = 0
            for entry in reversed(unresolved):
                entry.rescues += 1
                if entry.rescues > _MAX_RESCUES:
                    _finish(entry.future, error=ExecutionError(
                        f"request {entry.request_id!r} crashed the worker "
                        f"{entry.rescues} times; giving up ({err})",
                        request_id=entry.request_id))
                    self._failed += 1
                    poisoned += 1
                else:
                    self._fifo.appendleft(entry)
            if poisoned:
                self._completed.notify_all()
            self._work.notify_all()
        logger.error(
            "service worker crashed (%s: %s); restart #%d, %d in-flight "
            "request(s) rescued", type(err).__name__, err, restarts,
            len(unresolved) - poisoned)
        replacement = self._spawn_worker()
        self._worker = replacement

    def _run_entries(self, entries: list[_Pending]):
        """One backend invocation over ``entries``, with service-level
        fault injection.

        Injected kernel faults and crashes fire as pure functions of
        ``(request_id, attempt)`` (crashes consume a budget), so a fault
        observed in a coalesced batch fires identically when the entry
        is isolated or retried - which is what makes the reliability
        tests deterministic.  Entries' value dicts are passed as copies:
        the runners mutate values in place, and isolation/retry must
        replay pristine inputs.
        """
        injector = self._injector
        if injector is not None:
            for entry in entries:
                for rule in injector.request_faults(
                        entry.request_id, entry.attempt):
                    if rule.kind == "crash":
                        raise InjectedCrash(
                            f"injected worker crash "
                            f"(request {entry.request_id!r})")
                    if rule.kind == "latency":
                        time.sleep(rule.latency_ms / 1e3)
                    elif rule.kind in ("kernel", "alloc"):
                        raise ExecutionError(
                            "injected kernel fault" if rule.kind == "kernel"
                            else "injected allocation failure",
                            request_id=entry.request_id,
                            retryable=rule.retryable)
        return self._session.execute_values(
            [dict(entry.values) for entry in entries],
            backend=self._backend)

    def _execute(self, batch: list[_Pending]) -> None:
        """Run one coalesced batch; isolate failures per request."""
        # Entries whose future already resolved were cancelled while
        # queued: drop them here, at dequeue time.
        batch = [entry for entry in batch if not entry.future._resolved]
        dequeued = time.monotonic()
        expired: list[_Pending] = []
        live: list[_Pending] = []
        for entry in batch:
            if entry.deadline_s is not None and dequeued > entry.deadline_s:
                expired.append(entry)
            else:
                live.append(entry)
        if expired:
            with self._lock:
                for entry in expired:
                    _finish(entry.future, error=DeadlineExceeded(
                        f"request {entry.request_id!r} missed its deadline "
                        f"({(dequeued - entry.enqueued_s) * 1e3:.1f} ms "
                        f"queued)", request_id=entry.request_id))
                self._expired += len(expired)
                self._completed.notify_all()
        if not live:
            return

        perf = time.perf_counter
        start = perf()
        try:
            results, backend_name, batched = self._run_entries(live)
        except InjectedCrash:
            raise  # kills the worker; supervision absorbs it
        except Exception as err:  # noqa: BLE001 - executor failure
            if len(live) == 1:
                self._settle_failure(live[0], err)
                return
            # Per-request isolation: re-run each request solo so one
            # faulting request cannot fail its batchmates.
            with self._lock:
                self._isolated += len(live)
            logger.warning(
                "batch of %d failed (%s: %s); isolating request-by-request",
                len(live), type(err).__name__, err)
            for entry in live:
                self._execute([entry])
            return
        exec_s = perf() - start

        n = len(live)
        record = self._session._record
        resolved = []
        for entry, (outputs, report, wall_s) in zip(live, results):
            resolved.append((entry.future, InferenceResponse(
                request_id=entry.request_id, outputs=outputs,
                stats=record(wall_s, report, backend_name, batched=batched),
                batch_size=n,
                queued_ms=(dequeued - entry.enqueued_s) * 1e3,
                attempts=entry.attempt + 1)))
        with self._lock:
            for future, response in resolved:
                _finish(future, response=response)
            self._requests += n
            self._batches += 1
            if batched:
                self._stacked += 1
            self._total_exec_s += exec_s
            if n > self._largest_batch:
                self._largest_batch = n
            self._completed.notify_all()

    def _settle_failure(self, entry: _Pending, err: BaseException) -> None:
        """One request failed solo: retry it if the policy allows,
        otherwise fail its future with a request-attributed error."""
        policy = self._retry
        retryable = isinstance(err, ReproError) and err.retryable
        if policy is not None and retryable \
                and entry.attempt + 1 < policy.max_attempts:
            delay_s = policy.delay_s(entry.attempt, self._rng)
            if entry.deadline_s is None \
                    or time.monotonic() + delay_s <= entry.deadline_s:
                entry.attempt += 1
                with self._lock:
                    self._retries += 1
                    self._pending_retries += 1
                timer = threading.Timer(
                    delay_s, self._requeue, args=(entry,))
                timer.daemon = True
                timer.start()
                return
            # Retryable, but the backoff would overshoot the deadline.
            with self._lock:
                _finish(entry.future, error=DeadlineExceeded(
                    f"request {entry.request_id!r} missed its deadline: "
                    f"retry backoff would overshoot it after "
                    f"{entry.attempt + 1} attempt(s) ({err})",
                    request_id=entry.request_id))
                self._expired += 1
                self._completed.notify_all()
            return
        with self._lock:
            _finish(entry.future, error=self._attribute(entry, err))
            self._failed += 1
            self._completed.notify_all()

    @staticmethod
    def _attribute(entry: _Pending, err: BaseException) -> BaseException:
        """An executor failure re-raised with the request named in the
        message (multi-client logs must be attributable per request)."""
        if isinstance(err, ReproError):
            wrapped = type(err)(
                f"request {entry.request_id!r}: {err}",
                request_id=entry.request_id, model=err.model,
                fingerprint=err.fingerprint, backend=err.backend,
                retryable=err.retryable)
        else:
            wrapped = ExecutionError(
                f"request {entry.request_id!r}: {err}",
                request_id=entry.request_id)
        wrapped.__cause__ = err
        return wrapped

    def _requeue(self, entry: _Pending) -> None:
        """Timer callback: put a backed-off retry back on the queue."""
        with self._lock:
            self._pending_retries -= 1
            if entry.priority == 0:
                self._fifo.append(entry)
            else:
                heapq.heappush(self._heap, entry)
            self._work.notify()


def serve(model: str | Graph, options: ServeOptions | None = None,
          **overrides) -> Service:
    """Compile ``model`` and stand up a :class:`Service` in front of it.

    The concurrent face of the serving stack: any number of threads may
    ``submit()`` requests; a worker thread coalesces them into
    micro-batches on the lowered program path and resolves futures.

    Arguments:
        model: a catalog name or a built :class:`~repro.ir.graph.Graph`.
        options: a :class:`ServeOptions` - scheduler knobs
            (``max_batch_size``, ``max_wait_ms``, ``max_queue``), the
            reliability knobs (``retry``, ``faults``), plus a nested
            :class:`CompileOptions` (``options.compile``) picking
            framework/device/execution backend.
        **overrides: loose keyword alternatives for any
            :class:`ServeOptions` field, e.g.
            ``serve(g, max_batch_size=16)``.

    Returns:
        A running :class:`Service`.  Use it as a context manager, or
        call :meth:`Service.close` to drain and join the worker.

    Raises:
        RuntimeError: the framework cannot serve the model.
        ValueError: out-of-range scheduler options.

    The service compiles through the shared compile caches but owns its
    *session* (pool, stats) privately - its worker thread is the only
    executor, so the compile-once/run-many pool discipline holds under
    concurrent traffic without locking the hot loop.

    Example::

        with repro.serve("Pythia", max_batch_size=16) as service:
            futures = [service.submit(r) for r in requests]
            responses = [f.result() for f in futures]
        service.report().throughput_rps
    """
    options = merge_options(ServeOptions, options, overrides)
    return Service(compile_private(model, options.resolved_compile()),
                   options)
