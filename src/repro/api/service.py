"""``repro.serve``: a compiled model behind a micro-batching scheduler.

A :class:`Service` owns a private session and a worker thread draining a
thread-safe priority queue.  Concurrent ``submit()`` calls are admitted
in the submitting thread (fail-fast, and off the worker's critical
path), queued, and coalesced - up to ``max_batch_size`` batch-compatible
requests arriving within ``max_wait_ms`` of each other - into **one**
``backend.run_many`` invocation on the lowered program path, amortizing
per-request dispatch the way the compiler amortized per-request
interpretation.  Results come back through lightweight futures; the
whole batch's futures are resolved under one lock acquisition.

    service = repro.serve("Pythia")
    futures = [service.submit(req) for req in requests]
    responses = [f.result() for f in futures]
    print(service.report().throughput_rps)
    service.close()                     # drains the queue, joins the worker
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..ir.graph import Graph
from .compiled import CompiledModel, compile_private
from .messages import InferenceRequest, InferenceResponse, as_request
from .options import ServeOptions, merge_options


class InferenceFuture:
    """Handle to one submitted request.

    ``result()`` blocks until the scheduler resolves the request - with
    its :class:`~repro.api.InferenceResponse`, or by raising the error
    the request failed with (deadline misses raise ``TimeoutError``).
    Futures share their service's condition variable, so resolving a
    coalesced batch wakes every waiter with one notification.
    """

    __slots__ = ("_service", "_response", "_error", "_resolved")

    def __init__(self, service: "Service") -> None:
        self._service = service
        self._response: InferenceResponse | None = None
        self._error: BaseException | None = None
        self._resolved = False

    def done(self) -> bool:
        return self._resolved

    def result(self, timeout: float | None = None) -> InferenceResponse:
        if not self._resolved:
            deadline = None if timeout is None \
                else time.monotonic() + timeout
            with self._service._completed:
                while not self._resolved:
                    remaining = None if deadline is None \
                        else deadline - time.monotonic()
                    if remaining is not None and remaining <= 0:
                        raise TimeoutError("request is still pending")
                    self._service._completed.wait(remaining)
        if self._error is not None:
            raise self._error
        return self._response

    def exception(self, timeout: float | None = None) -> BaseException | None:
        try:
            self.result(timeout)
        except BaseException as err:  # noqa: BLE001 - the stored failure
            if err is self._error:
                return err
            raise  # still pending after `timeout`
        return None


class _Pending:
    """One queued request: heap-ordered by (priority desc, arrival)."""

    __slots__ = ("order", "priority", "request_id", "values", "future",
                 "enqueued_s", "deadline_s")

    def __init__(self, order, priority, request_id, values, future,
                 enqueued_s, deadline_s) -> None:
        self.order = order
        self.priority = priority
        self.request_id = request_id
        self.values = values
        self.future = future
        self.enqueued_s = enqueued_s
        self.deadline_s = deadline_s

    def __lt__(self, other: "_Pending") -> bool:
        if self.priority != other.priority:
            return self.priority > other.priority  # higher drains first
        return self.order < other.order


@dataclass
class ServiceReport:
    """Lifetime scheduler statistics, surfaced by :meth:`Service.report`."""

    requests: int
    batches: int
    mean_batch_size: float
    largest_batch: int
    queue_depth: int
    queue_depth_peak: int
    expired: int
    failed: int
    total_exec_s: float
    throughput_rps: float
    """Executor-side rate: requests served per second of backend time."""
    closed: bool


class Service:
    """A compiled model served by a dynamic micro-batching scheduler.

    Thread-safe: any number of threads may ``submit()`` concurrently.
    The service owns its session (and pool) exclusively - all execution
    happens on the single worker thread, so the compile-once/run-many
    pool discipline holds under concurrent traffic without locking the
    hot loop.

    Request lifecycle: :meth:`submit` admits the request in the calling
    thread (malformed requests raise :class:`ValueError` immediately),
    enqueues it (FIFO for default priority, heap for prioritized;
    :class:`RuntimeError` once ``max_queue`` is hit), and returns an
    :class:`InferenceFuture`.  The worker coalesces up to
    ``max_batch_size`` queued requests arriving within ``max_wait_ms``
    into one ``backend.run_many`` invocation; expired deadlines resolve
    their futures with :class:`TimeoutError`, an executor failure fails
    the whole batch.  :meth:`infer` is the synchronous convenience,
    :meth:`report` snapshots lifetime statistics, and :meth:`close`
    (or using the service as a context manager) drains the queue and
    joins the worker.
    """

    def __init__(self, compiled: CompiledModel, options: ServeOptions,
                 _start: bool = True) -> None:
        self._compiled = compiled
        self._options = options
        session = compiled.session
        self._session = session
        self._program = session.program
        self._batch_key = self._program.batch_key
        self._pool = session.pool
        self._backend = session._backend
        self._max_batch = options.max_batch_size
        self._wait_s = options.max_wait_ms / 1e3
        self._max_queue = options.max_queue

        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)      # producer -> worker
        self._completed = threading.Condition(self._lock)  # worker -> waiters
        # Default-priority requests ride a FIFO deque (O(1) C-speed ends,
        # no Python-level comparisons on the submit hot path); the heap
        # only engages for requests with an explicit priority.
        self._fifo: deque[_Pending] = deque()
        self._heap: list[_Pending] = []
        self._submitted = 0
        self._closed = False

        self._requests = 0
        self._batches = 0
        self._expired = 0
        self._failed = 0
        self._largest_batch = 0
        self._queue_peak = 0
        self._total_exec_s = 0.0

        self._worker: threading.Thread | None = None
        if _start:
            self._worker = threading.Thread(
                target=self._drain_loop, daemon=True,
                name=f"repro-service-{session.model or session.graph.name}")
            self._worker.start()

    # -- introspection -----------------------------------------------------

    @property
    def compiled(self) -> CompiledModel:
        return self._compiled

    @property
    def program(self):
        return self._program

    @property
    def batch_key(self):
        """The coalescing contract this service schedules under.

        Every request is admitted against the one program carrying this
        key, which is what licenses unconditional coalescing in
        :meth:`_next_batch`; a multi-program scheduler would group its
        queue by this token before batching.
        """
        return self._batch_key

    @property
    def options(self) -> ServeOptions:
        return self._options

    @property
    def queue_depth(self) -> int:
        return len(self._fifo) + len(self._heap)

    @property
    def closed(self) -> bool:
        return self._closed

    def report(self) -> ServiceReport:
        """Snapshot of the scheduler's lifetime statistics."""
        with self._lock:
            requests = self._requests
            batches = self._batches
            total_exec_s = self._total_exec_s
            return ServiceReport(
                requests=requests,
                batches=batches,
                mean_batch_size=requests / batches if batches else 0.0,
                largest_batch=self._largest_batch,
                queue_depth=self._depth(),
                queue_depth_peak=self._queue_peak,
                expired=self._expired,
                failed=self._failed,
                total_exec_s=total_exec_s,
                throughput_rps=requests / total_exec_s
                if total_exec_s else 0.0,
                closed=self._closed,
            )

    def _depth(self) -> int:
        return len(self._fifo) + len(self._heap)

    def _pop_next(self) -> _Pending:
        """Next entry by (priority desc, arrival): FIFO unless an
        explicitly prioritized entry outranks the FIFO head."""
        if not self._heap:
            return self._fifo.popleft()
        if not self._fifo or self._heap[0] < self._fifo[0]:
            return heapq.heappop(self._heap)
        return self._fifo.popleft()

    # -- submission --------------------------------------------------------

    def submit(self, request: InferenceRequest | Mapping[str, np.ndarray],
               ) -> InferenceFuture:
        """Queue one request; returns a future resolving to its response.

        Admission runs here, in the submitting thread: malformed
        requests (empty, unknown/missing tensor names, wrong
        shape/dtype) raise :class:`ValueError` immediately, and the
        per-request merge work overlaps the worker's execution of
        earlier batches.
        """
        request = as_request(request)
        values = self._compiled.admit(request)
        future = InferenceFuture(self)
        now = time.monotonic()
        deadline_s = None if request.deadline_ms is None \
            else now + request.deadline_ms / 1e3
        priority = request.priority
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
            depth = self._depth()
            if self._max_queue is not None and depth >= self._max_queue:
                raise RuntimeError(
                    f"service queue is full ({self._max_queue} requests)")
            order = self._submitted
            self._submitted += 1
            request_id = request.request_id \
                if request.request_id is not None else order
            entry = _Pending(order, priority, request_id, values, future,
                             now, deadline_s)
            if priority == 0:
                self._fifo.append(entry)
            else:
                heapq.heappush(self._heap, entry)
            if depth + 1 > self._queue_peak:
                self._queue_peak = depth + 1
            self._work.notify()
        return future

    def infer(self, request: InferenceRequest | Mapping[str, np.ndarray],
              timeout: float | None = None) -> InferenceResponse:
        """Synchronous convenience: ``submit(request).result()``."""
        return self.submit(request).result(timeout)

    # -- lifecycle ---------------------------------------------------------

    def close(self, timeout: float | None = None) -> None:
        """Graceful shutdown: drain the queue, then join the worker.

        Every request submitted before ``close()`` is served; later
        ``submit()`` calls raise.  Idempotent.
        """
        with self._lock:
            self._closed = True
            self._work.notify_all()
        if self._worker is not None:
            self._worker.join(timeout)

    def __enter__(self) -> "Service":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the scheduler -----------------------------------------------------

    def _next_batch(self) -> list[_Pending] | None:
        """Block until work is available; coalesce a batch.

        The coalescing window opens when the first request is seen:
        the worker waits up to ``max_wait_ms`` for the batch to fill,
        leaving early when it does (or on shutdown, which drains
        without delay).
        """
        with self._lock:
            while not self._fifo and not self._heap:
                if self._closed:
                    return None
                self._work.wait()
            if self._wait_s > 0.0 and not self._closed \
                    and self._depth() < self._max_batch:
                deadline = time.monotonic() + self._wait_s
                while self._depth() < self._max_batch and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._work.wait(remaining)
            if not self._heap:  # common case: one C-speed bulk slice
                fifo = self._fifo
                n = min(self._max_batch, len(fifo))
                return [fifo.popleft() for _ in range(n)]
            n = min(self._max_batch, self._depth())
            return [self._pop_next() for _ in range(n)]

    def _drain_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            self._execute(batch)

    def _execute(self, batch: list[_Pending]) -> None:
        """Run one coalesced batch through a single backend invocation."""
        dequeued = time.monotonic()
        expired: list[_Pending] = []
        live: list[_Pending] = []
        for entry in batch:
            if entry.deadline_s is not None and dequeued > entry.deadline_s:
                entry.future._error = TimeoutError(
                    f"request {entry.request_id!r} missed its deadline "
                    f"({(dequeued - entry.enqueued_s) * 1e3:.1f} ms queued)")
                expired.append(entry)
            else:
                live.append(entry)
        if expired:
            with self._lock:
                for entry in expired:
                    entry.future._resolved = True
                self._expired += len(expired)
                self._completed.notify_all()
        if not live:
            return

        session = self._session
        perf = time.perf_counter
        start = perf()
        try:
            results = self._backend.run_many(
                self._program, [entry.values for entry in live], self._pool)
        except Exception as err:  # noqa: BLE001 - fail the whole batch
            with self._lock:
                for entry in live:
                    entry.future._error = err
                    entry.future._resolved = True
                self._failed += len(live)
                self._completed.notify_all()
            return
        exec_s = perf() - start

        n = len(live)
        record = session._record
        resolved = []
        for entry, (outputs, report, wall_s) in zip(live, results):
            resolved.append((entry.future, InferenceResponse(
                request_id=entry.request_id, outputs=outputs,
                stats=record(wall_s, report), batch_size=n,
                queued_ms=(dequeued - entry.enqueued_s) * 1e3)))
        with self._lock:
            for future, response in resolved:
                future._response = response
                future._resolved = True
            self._requests += n
            self._batches += 1
            self._total_exec_s += exec_s
            if n > self._largest_batch:
                self._largest_batch = n
            self._completed.notify_all()


def serve(model: str | Graph, options: ServeOptions | None = None,
          **overrides) -> Service:
    """Compile ``model`` and stand up a :class:`Service` in front of it.

    The concurrent face of the serving stack: any number of threads may
    ``submit()`` requests; a worker thread coalesces them into
    micro-batches on the lowered program path and resolves futures.

    Arguments:
        model: a catalog name or a built :class:`~repro.ir.graph.Graph`.
        options: a :class:`ServeOptions` - scheduler knobs
            (``max_batch_size``, ``max_wait_ms``, ``max_queue``) plus a
            nested :class:`CompileOptions` (``options.compile``) picking
            framework/device/execution backend.
        **overrides: loose keyword alternatives for any
            :class:`ServeOptions` field, e.g.
            ``serve(g, max_batch_size=16)``.

    Returns:
        A running :class:`Service`.  Use it as a context manager, or
        call :meth:`Service.close` to drain and join the worker.

    Raises:
        RuntimeError: the framework cannot serve the model.
        ValueError: out-of-range scheduler options.

    The service compiles through the shared compile caches but owns its
    *session* (pool, stats) privately - its worker thread is the only
    executor, so the compile-once/run-many pool discipline holds under
    concurrent traffic without locking the hot loop.

    Example::

        with repro.serve("Pythia", max_batch_size=16) as service:
            futures = [service.submit(r) for r in requests]
            responses = [f.result() for f in futures]
        service.report().throughput_rps
    """
    options = merge_options(ServeOptions, options, overrides)
    return Service(compile_private(model, options.compile), options)
