"""Baseline framework models: MNN, NCNN, TFLite, TVM, DNNFusion,
TorchInductor - plus SmartMem itself behind the same interface."""

from .base import Framework, FrameworkResult, IMAGE_DOMAIN, LINEAR_DOMAIN
from .frameworks import (
    ALL_FRAMEWORKS, DNNFusion, MNN, NCNN, SmartMem, TFLite, TVM,
    TorchInductor, make_framework,
)

__all__ = [
    "ALL_FRAMEWORKS", "DNNFusion", "Framework", "FrameworkResult",
    "IMAGE_DOMAIN", "LINEAR_DOMAIN", "MNN", "NCNN", "SmartMem", "TFLite",
    "TVM", "TorchInductor", "make_framework",
]
