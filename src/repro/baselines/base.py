"""Framework abstraction: every compared system behind one interface.

A Framework turns a source model graph into an executable module (grouped
graph + layout plan + cost-model config) the way the corresponding real
framework would:

* which operators it supports at all (NCNN/TFLite reject transformer
  operators on mobile GPU - the '-' cells of Table 7),
* which *implicit* layout conversions it inserts between layout domains
  (Fig. 1b: MNN wraps InstanceNorm-style ops in converts),
* how aggressively it fuses (fixed patterns vs rule-based vs
  mapping-based),
* whether it eliminates layout transformations and selects layouts
  (only SmartMem does),
* how much memory it needs (pooled vs unpooled allocation, staging
  copies) - the feasibility model behind the OOM '-' bars of
  Figs. 10 and 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core.elimination import count_layout_transforms
from ..core.fusion import FusionPolicy, fuse
from ..core.layout_selection import LayoutPlan, default_plan
from ..ir.graph import Graph
from ..runtime.cost_model import (
    CostModelConfig, CostReport, estimate, peak_activation_bytes,
)
from ..runtime.device import DeviceSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.program import ExecutionProgram

# Layout domains for implicit-convert insertion.  IMAGE ops want the
# packed-channel image layout; LINEAR ops want flattened row-major data.
IMAGE_DOMAIN = {
    "conv2d", "maxpool2d", "avgpool2d", "global_avgpool", "upsample2d",
    "batchnorm", "space_to_depth", "depth_to_space",
}
LINEAR_DOMAIN = {
    "dense", "matmul", "layernorm", "rmsnorm", "softmax", "embedding",
    "gather", "reduce_mean", "reduce_sum", "reduce_max", "instancenorm",
    "groupnorm",
}
# Everything else (elementwise, reshape/transpose, concat, slice, pad)
# is neutral: it runs in whatever domain its input is in.


@dataclass
class FrameworkResult:
    """Outcome of running a framework's compilation pipeline."""

    framework: str
    supported: bool
    graph: Graph | None = None
    plan: LayoutPlan | None = None
    config: CostModelConfig = field(default_factory=CostModelConfig)
    reason: str = ""
    implicit_converts: int = 0
    extra: dict = field(default_factory=dict)
    program: "ExecutionProgram | None" = None
    """Lowered execution program (the ``Ours`` pipeline lowers as its
    final pass; other frameworks leave this None and the session layer
    lowers lazily, memoized on the graph)."""

    @property
    def operator_count(self) -> int:
        return self.graph.num_operators if self.graph is not None else 0

    def cost(self, device: DeviceSpec) -> CostReport:
        if not self.supported:
            raise RuntimeError(f"{self.framework} does not support this model: "
                               f"{self.reason}")
        return estimate(self.graph, device, self.plan, self.config)


class Framework:
    """Base class: default behaviour is a naive framework (no fusion)."""

    name = "base"
    unsupported_op_types: frozenset[str] = frozenset()
    unsupported_unary_funcs: frozenset[str] = frozenset()
    fusion_policy: FusionPolicy | None = None
    inserts_converts: bool = False
    convert_on_enter_image_only: bool = False
    """TVM's ConvertLayout minimizes converts to one direction."""
    pooled_memory: bool = False
    memory_overhead: float = 2.0
    """Multiplier on activation memory (staging copies, fp32 scratch)."""
    tuned: bool = True

    # -- capability ---------------------------------------------------------

    def support_reason(self, graph: Graph) -> str | None:
        """None when supported; otherwise why not."""
        for node in graph.iter_nodes():
            if node.op_type in self.unsupported_op_types:
                return f"operator {node.op_type!r} not supported on mobile GPU"
            if (node.op_type == "unary"
                    and node.attrs.get("func") in self.unsupported_unary_funcs):
                return f"activation {node.attrs.get('func')!r} not supported"
        return None

    def required_memory_bytes(self, graph: Graph) -> int:
        params = sum(s.size_bytes for s in graph.tensors.values() if s.is_param)
        acts = peak_activation_bytes(graph, pooled=self.pooled_memory)
        return int(params + acts * self.memory_overhead)

    def fits_device(self, graph: Graph, device: DeviceSpec,
                    usable_fraction: float = 0.5) -> bool:
        return self.required_memory_bytes(graph) <= device.memory_bytes * usable_fraction

    # -- compilation --------------------------------------------------------

    def _domain_of(self, graph: Graph, tensor: str,
                   cache: dict[str, str | None]) -> str | None:
        if tensor in cache:
            return cache[tensor]
        producer = graph.producer(tensor)
        if producer is None:
            domain = "image" if len(graph.shape(tensor)) == 4 else "linear"
        elif producer.op_type in IMAGE_DOMAIN:
            domain = "image"
        elif producer.op_type in LINEAR_DOMAIN:
            domain = "linear"
        else:
            domain = self._domain_of(graph, producer.inputs[0], cache) \
                if producer.inputs else None
        cache[tensor] = domain
        return domain

    def insert_implicit_converts(self, graph: Graph) -> int:
        """Insert layout_convert nodes on domain-crossing edges (Fig. 1b)."""
        from ..ir.tensor import TensorSpec

        cache: dict[str, str | None] = {}
        inserted = 0
        for node in list(graph.topo_order()):
            if node.op_type in IMAGE_DOMAIN:
                want = "image"
            elif node.op_type in LINEAR_DOMAIN:
                want = "linear"
            else:
                continue
            for idx, name in enumerate(node.inputs):
                spec = graph.tensors[name]
                if spec.is_param:
                    continue
                have = self._domain_of(graph, name, cache)
                if have is None or have == want:
                    continue
                if self.convert_on_enter_image_only and want != "image":
                    continue
                conv_name = graph.fresh_id(f"{name}_cvt")
                graph.add_tensor(TensorSpec(conv_name, spec.shape, spec.dtype))
                graph.add_node("layout_convert", [name], [conv_name],
                               {"to": want})
                graph.replace_input(node, idx, conv_name)
                cache[conv_name] = want
                inserted += 1
        return inserted

    def make_plan(self, graph: Graph, device: DeviceSpec) -> LayoutPlan:
        return default_plan(graph, use_texture=device.has_texture)

    def make_config(self) -> CostModelConfig:
        return CostModelConfig(tuned=self.tuned)

    def rewrite(self, graph: Graph, device: DeviceSpec) -> tuple[Graph, int]:
        """Framework-specific graph surgery before fusion."""
        g = graph.clone()
        converts = self.insert_implicit_converts(g) if self.inserts_converts else 0
        return g, converts

    def compile_core(self, graph: Graph, device: DeviceSpec) -> FrameworkResult:
        """Device-independent compilation: rewrite + fusion + layout plan.

        Only ``device.has_texture`` is read, so the result can be shared
        across devices of the same memory architecture; the per-device
        memory-feasibility check lives in :meth:`compile`.
        """
        reason = self.support_reason(graph)
        if reason is not None:
            return FrameworkResult(self.name, supported=False, reason=reason)
        g, converts = self.rewrite(graph, device)
        if self.fusion_policy is not None:
            fuse(g, self.fusion_policy)
        else:
            for i, node in enumerate(g.iter_nodes()):
                node.group = i
        plan = self.make_plan(g, device)
        return FrameworkResult(
            self.name, supported=True, graph=g, plan=plan,
            config=self.make_config(), implicit_converts=converts,
            extra={"layout_transforms": count_layout_transforms(g)},
        )

    def _memory_failure(self, result: FrameworkResult) -> FrameworkResult:
        mb = self.required_memory_bytes(result.graph) / 2 ** 20
        return FrameworkResult(
            self.name, supported=False, graph=result.graph, plan=result.plan,
            reason=f"insufficient device memory (needs ~{mb:.0f} MiB)")

    def compile(self, graph: Graph, device: DeviceSpec,
                check_memory: bool = True,
                core: FrameworkResult | None = None) -> FrameworkResult:
        """Full compilation; ``core`` may supply a cached
        :meth:`compile_core` result (it must come from a device with the
        same ``has_texture``)."""
        result = core if core is not None else self.compile_core(graph, device)
        if check_memory and result.supported \
                and not self.fits_device(result.graph, device):
            return self._memory_failure(result)
        return result
