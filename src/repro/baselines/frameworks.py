"""The six compared systems (Section 4.1).

Each class models the *published graph-level policy* of one framework on
the shared IR and cost model; capability matrices follow Table 7 (NCNN
and TFLite do not support Transformer models on mobile GPU).
"""

from __future__ import annotations

from dataclasses import replace

from ..core.fusion import (
    DNNFUSION_POLICY, FusionPolicy, MNN_POLICY, NCNN_POLICY, TFLITE_POLICY,
    TVM_POLICY,
)
from ..core.pipeline import PipelineStages, smartmem_optimize
from ..ir.graph import Graph
from ..runtime.cost_model import CostModelConfig
from ..runtime.device import DeviceSpec
from .base import Framework, FrameworkResult


class MNN(Framework):
    """Fixed-pattern fusion; implicit converts both ways; auto-tuned;
    no memory pool (per-tensor allocation with fp32 staging)."""

    name = "MNN"
    fusion_policy = MNN_POLICY
    inserts_converts = True
    pooled_memory = False
    memory_overhead = 2.0
    tuned = True

    def make_config(self) -> CostModelConfig:
        # MNN's schedules for batched 3-d (attention) matmuls and grouped
        # convolutions are weak on Adreno, and its image<->buffer layout
        # conversions stage through fp32 (relayout_bytes_factor=2).
        return CostModelConfig(
            tuned=True,
            relayout_bytes_factor=4.0,
            efficiency_overrides={
                "conv2d": 0.10, "matmul": 0.012, "dense": 0.04,
                "group_conv": 0.02, "depthwise": 0.02,
            },
        )


class NCNN(Framework):
    """CNN-focused: no transformer operators on the GPU path; fixed
    patterns; no auto-tuner."""

    name = "NCNN"
    fusion_policy = NCNN_POLICY
    inserts_converts = True
    pooled_memory = False
    memory_overhead = 1.6
    tuned = False
    unsupported_op_types = frozenset({
        "matmul", "layernorm", "rmsnorm", "softmax", "embedding", "gather",
        "instancenorm",
    })
    unsupported_unary_funcs = frozenset({"gelu", "erf"})

    def make_config(self) -> CostModelConfig:
        return CostModelConfig(
            tuned=False,
            efficiency_overrides={"conv2d": 0.22, "group_conv": 0.12,
                                  "depthwise": 0.08},
        )


class TFLite(Framework):
    """GPU delegate: CNN operator set only; fixed patterns; no tuner."""

    name = "TFLite"
    fusion_policy = TFLITE_POLICY
    inserts_converts = True
    pooled_memory = False
    memory_overhead = 1.8
    tuned = False
    unsupported_op_types = frozenset({
        "matmul", "layernorm", "rmsnorm", "softmax", "embedding", "gather",
        "instancenorm", "groupnorm", "upsample2d", "space_to_depth",
        "depth_to_space",
    })
    unsupported_unary_funcs = frozenset({"gelu", "erf", "silu"})

    def make_config(self) -> CostModelConfig:
        return CostModelConfig(
            tuned=False,
            efficiency_overrides={"conv2d": 0.16, "group_conv": 0.08,
                                  "depthwise": 0.06},
        )


class TVM(Framework):
    """Rule-based fusion (injective chains + reduce epilogues) and the
    three-category ConvertLayout pass: converts only where a heavily
    layout-sensitive op needs them.  Auto-tuned; memory-pooled.  No
    efficient layout for GroupConvolution (Section 4.2's ConvNext note)."""

    name = "TVM"
    fusion_policy = TVM_POLICY
    inserts_converts = True
    convert_on_enter_image_only = True
    pooled_memory = True
    memory_overhead = 2.6  # graph-runtime keeps workspaces per subgraph
    tuned = True

    def make_config(self) -> CostModelConfig:
        return CostModelConfig(
            tuned=True,
            depthwise_area_scaling=True,
            efficiency_overrides={
                "conv2d": 0.06, "matmul": 0.025, "dense": 0.028,
                "group_conv": 0.03, "depthwise": 0.0012,
            },
        )


class DNNFusion(Framework):
    """Mapping-type-based advanced fusion (the paper's strongest baseline
    and SmartMem's substrate).  Keeps explicit transforms: 'it cannot
    eliminate explicit data transformation operators through improved
    layouts' (Section 5)."""

    name = "DNNF"
    fusion_policy = DNNFUSION_POLICY
    inserts_converts = False
    pooled_memory = True
    memory_overhead = 1.5
    tuned = True


class TorchInductor(Framework):
    """Desktop compiler (Table 9): strong kernel quality, pre-assigned
    layouts, rule-based fusion, no layout transformation elimination."""

    name = "TorchInductor"
    fusion_policy = FusionPolicy(
        name="torchinductor",
        elementwise_chains=True,
        prologue=True,
        epilogue=True,
        reorganize_with_elementwise=True,
    )
    inserts_converts = False
    pooled_memory = True
    memory_overhead = 1.3
    tuned = True

    def make_config(self) -> CostModelConfig:
        return CostModelConfig(tuned=True, conv_efficiency=0.30,
                               matmul_efficiency=0.128)


class SmartMem(Framework):
    """This paper: DNNFusion's engine + LTE + layout selection + 2.5D
    texture mapping + GA-tuned kernel configs."""

    name = "Ours"
    inserts_converts = False
    pooled_memory = True
    memory_overhead = 1.0
    tuned = True

    def __init__(self, stages: PipelineStages | None = None) -> None:
        self.stages = stages or PipelineStages()

    def compile_core(self, graph: Graph,
                     device: DeviceSpec) -> FrameworkResult:
        stages = self.stages
        if not device.has_texture and stages.use_texture:
            stages = replace(stages, full_texture=False, use_texture=False)
        result = smartmem_optimize(graph, stages)
        # The pipeline records the tuning boost and the Index Comprehension
        # choice on the result; cost_config() is the single source of the
        # cost-model configuration for an optimized module.
        config = result.cost_config()
        return FrameworkResult(
            self.name, supported=True, graph=result.graph, plan=result.plan,
            config=config, program=result.program,
            extra={
                "eliminated": (result.elimination_stats.eliminated
                               if result.elimination_stats else {}),
                "layout_transforms": result.remaining_layout_transforms,
                "copies": result.plan.num_copies,
            },
        )

    def _memory_failure(self, result: FrameworkResult) -> FrameworkResult:
        mb = self.required_memory_bytes(result.graph) / 2 ** 20
        return FrameworkResult(self.name, supported=False,
                               graph=result.graph, plan=result.plan,
                               reason=f"insufficient device memory (~{mb:.0f} MiB)")


ALL_FRAMEWORKS = ("MNN", "NCNN", "TFLite", "TVM", "DNNF", "Ours")


def make_framework(name: str, **kwargs) -> Framework:
    table = {
        "MNN": MNN, "NCNN": NCNN, "TFLite": TFLite, "TVM": TVM,
        "DNNF": DNNFusion, "TorchInductor": TorchInductor, "Ours": SmartMem,
    }
    try:
        return table[name](**kwargs)
    except KeyError:
        raise KeyError(f"unknown framework {name!r}; choose from {sorted(table)}")
