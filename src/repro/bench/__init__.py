"""Benchmark harness: one module per table/figure in the paper.

Run everything with ``python -m repro.bench all`` or one experiment with
``python -m repro.bench table8``.
"""

from . import (
    ablations, fig7, fig8, fig9, fig10, fig11, fig12, memory_footprint,
    micro_rw, table1, table7, table8, table9,
)
from .harness import (
    Cell, Experiment, cached_fp32_model, cached_model, cell_cache_stats,
    clear_cell_cache, geomean, run_cell,
)

EXPERIMENTS = {
    "ablations": ablations.run,
    "table1": table1.run,
    "table7": table7.run,
    "table8": table8.run,
    "table9": table9.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "micro_rw": micro_rw.run,
    "memory_footprint": memory_footprint.run,
}

__all__ = ["Cell", "EXPERIMENTS", "Experiment", "cached_fp32_model",
           "cached_model", "cell_cache_stats", "clear_cell_cache", "geomean",
           "run_cell"]
