"""CLI: regenerate the paper's tables and figures.

    python -m repro.bench all
    python -m repro.bench table8 fig8
    python -m repro.bench all --json results.json
"""

from __future__ import annotations

import json
import sys

from . import EXPERIMENTS


def main(argv: list[str]) -> int:
    json_path = None
    if "--json" in argv:
        idx = argv.index("--json")
        try:
            json_path = argv[idx + 1]
        except IndexError:
            print("--json requires a path")
            return 2
        argv = argv[:idx] + argv[idx + 2:]
    targets = argv or ["all"]
    if targets == ["all"]:
        targets = list(EXPERIMENTS)
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {list(EXPERIMENTS)}")
        return 2
    collected = []
    for target in targets:
        result = EXPERIMENTS[target]()
        experiments = result if isinstance(result, list) else [result]
        for experiment in experiments:
            print(experiment.render())
            print()
            collected.append(experiment.to_json())
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(collected, handle, indent=2)
        print(f"wrote {len(collected)} experiments to {json_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
