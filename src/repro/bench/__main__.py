"""CLI: regenerate the paper's tables and figures.

    python -m repro.bench all
    python -m repro.bench table8 fig8
    python -m repro.bench all --json results.json
    python -m repro.bench --all --timings

``--timings`` records the wall time and compile/cost-cache traffic of
every experiment, per-pass compile time, and steady-state serving walls
(``serve`` section: lowered program vs. the PR-2 interpreter loop per
model, plus a per-model ``backends`` comparison - numpy vs. codegen
``Session.run`` - the ``scheduler`` coalescing measurement, and the
``roofline`` report: per smoke model, measured wall time vs static
bytes-moved / FLOPs / arithmetic intensity per kernel family), and
writes the perf trajectory to ``BENCH_pipeline.json`` (override the
path with ``--timings-out``).
"""

from __future__ import annotations

import json
import sys
import time

from . import EXPERIMENTS
from .harness import cell_cache_stats, format_table, pass_timing_stats

TIMINGS_DEFAULT = "BENCH_pipeline.json"


def _pass_delta(before: dict, after: dict) -> dict:
    """Per-pass runs/wall-time spent inside one experiment."""
    delta = {}
    for name, entry in after.items():
        prev = before.get(name, {"runs": 0, "wall_s": 0.0})
        runs = entry["runs"] - prev["runs"]
        if runs:
            delta[name] = {"runs": runs,
                           "wall_s": round(entry["wall_s"] - prev["wall_s"], 4)}
    return delta


def main(argv: list[str]) -> int:
    argv = list(argv)
    json_path = None
    if "--json" in argv:
        idx = argv.index("--json")
        try:
            json_path = argv[idx + 1]
        except IndexError:
            print("--json requires a path")
            return 2
        argv = argv[:idx] + argv[idx + 2:]
    timings_path = TIMINGS_DEFAULT
    timings = "--timings" in argv
    if "--timings-out" in argv:
        idx = argv.index("--timings-out")
        try:
            timings_path = argv[idx + 1]
        except IndexError:
            print("--timings-out requires a path")
            return 2
        argv = argv[:idx] + argv[idx + 2:]
        timings = True  # an explicit output path implies --timings
    run_all = "--all" in argv
    argv = [a for a in argv if a not in ("--timings", "--all")]
    unknown_flags = [a for a in argv if a.startswith("--")]
    if unknown_flags:
        print(f"unknown flags: {unknown_flags}")
        return 2
    if run_all and argv:
        print(f"--all cannot be combined with explicit experiments: {argv}")
        return 2
    targets = argv or ["all"]
    if run_all or targets == ["all"]:
        targets = list(EXPERIMENTS)
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {list(EXPERIMENTS)}")
        return 2
    collected = []
    trajectory = []
    suite_start = time.perf_counter()
    for target in targets:
        before = cell_cache_stats()
        before_passes = pass_timing_stats()
        start = time.perf_counter()
        result = EXPERIMENTS[target]()
        wall_s = time.perf_counter() - start
        after = cell_cache_stats()
        trajectory.append({
            "experiment": target,
            "wall_s": round(wall_s, 4),
            "cells_computed": after["misses"] - before["misses"],
            "cache_hits": after["hits"] - before["hits"],
            "passes": _pass_delta(before_passes, pass_timing_stats()),
        })
        experiments = result if isinstance(result, list) else [result]
        for experiment in experiments:
            print(experiment.render())
            print()
            collected.append(experiment.to_json())
    total_s = time.perf_counter() - suite_start
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(collected, handle, indent=2)
        print(f"wrote {len(collected)} experiments to {json_path}")
    if timings:
        stats = cell_cache_stats()
        pass_stats = {
            name: {"runs": entry["runs"], "wall_s": round(entry["wall_s"], 4)}
            for name, entry in sorted(pass_timing_stats().items())
        }
        serve = None
        if targets == list(EXPERIMENTS):
            # Serving walls belong to the full-suite trajectory (the CI
            # mode); profiling a single experiment skips the ~400 timed
            # requests.  Imported lazily for the same reason.
            from .serving import measure_serving

            serve = measure_serving()
        payload = {
            "suite": targets,
            "total_s": round(total_s, 4),
            "cell_cache": stats,
            "pass_timings": pass_stats,
            "experiments": trajectory,
        }
        if serve is not None:
            payload["serve"] = serve
        with open(timings_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(format_table(
            ["Experiment", "wall (s)", "cells", "cache hits"],
            [[t["experiment"], f"{t['wall_s']:.3f}", str(t["cells_computed"]),
              str(t["cache_hits"])] for t in trajectory],
            title="== Pipeline timings =="))
        print(f"total: {total_s:.3f}s  cell cache: {stats['hits']} hits / "
              f"{stats['misses']} misses")
        if pass_stats:
            print(format_table(
                ["Pass", "runs", "wall (s)"],
                [[name, str(entry["runs"]), f"{entry['wall_s']:.3f}"]
                 for name, entry in pass_stats.items()],
                title="== Optimization-pass timings =="))
        if serve is not None:
            print(format_table(
                ["Model", "steps", "interp (ms)", "program (ms)", "speedup"],
                [[name, str(entry["steps"]),
                  f"{entry['interpreter_run_ms']:.3f}",
                  f"{entry['program_run_ms']:.3f}", f"{entry['speedup']:.2f}x"]
                 for name, entry in serve["models"].items()],
                title="== Steady-state serving (Session.run wall time) =="))
            backends = serve.get("backends")
            if backends:
                names = backends["backends"]
                print(format_table(
                    ["Model"] + [f"{n} (ms)" for n in names]
                    + [f"{n} speedup" for n in names[1:]],
                    [[model]
                     + [f"{entry[f'{n}_run_ms']:.3f}" for n in names]
                     + [f"{entry[f'{n}_speedup']:.2f}x" for n in names[1:]]
                     for model, entry in backends["models"].items()],
                    title="== Execution backends (steady-state "
                          "Session.run wall time) =="))
            roofline = serve.get("roofline")
            if roofline:
                rows = []
                for model, entry in roofline["models"].items():
                    hot_name, hot = max(
                        entry["families"].items(),
                        key=lambda item: item[1]["time_ms"])
                    rows.append([
                        model, str(entry["steps"]),
                        f"{entry['fused_chains']}/{entry['fused_steps']}",
                        f"{entry['scratch_kb']:.0f}",
                        f"{entry['run_ms']:.3f}",
                        hot_name, f"{hot['time_ms']:.3f}",
                        f"{hot['mb_moved']:.2f}", f"{hot['intensity']:.2f}"])
                print(format_table(
                    ["Model", "steps", "fused c/s", "scratch (KB)",
                     "run (ms)", "hot family", "hot (ms)", "hot (MB)",
                     "intensity"],
                    rows,
                    title="== Roofline (per-step measured walls vs static "
                          "traffic stamps; full detail in serve.roofline) =="))
            symbolic = serve.get("symbolic")
            if symbolic:
                print(format_table(
                    ["Model", "new shape (ms)", "cold compile (ms)",
                     "speedup", "buckets"],
                    [[name, f"{entry['new_shape_request_ms']:.3f}",
                      f"{entry['cold_compile_request_ms']:.3f}",
                      f"{entry['speedup']:.1f}x",
                      str(entry["buckets_compiled"])]
                     for name, entry in symbolic["models"].items()],
                    title="== Symbolic shapes (first request at a new "
                          "in-bucket extent vs cold concrete compile) =="))
            scheduler = serve.get("scheduler")
            if scheduler:
                print(format_table(
                    ["Model", "sequential (req/s)", "scheduler (req/s)",
                     "speedup", "mean batch"],
                    [[name, f"{entry['sequential_rps']:.0f}",
                      f"{entry['scheduler_rps']:.0f}",
                      f"{entry['speedup']:.2f}x", f"{entry['mean_batch']:.1f}"]
                     for name, entry in scheduler["models"].items()],
                    title="== Micro-batching scheduler (coalesced "
                          "throughput vs sequential Session.run) =="))
        print(f"wrote perf trajectory to {timings_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
