"""Ablations of SmartMem's design decisions (DESIGN.md's list).

1. **Texture vs 1D buffers (k=2 vs k=1)**: disable the 2.5D path entirely
   and re-run layout selection with k=1 - how much of the win was the
   texture memory?
2. **Slice elimination**: Table 5 prescribes eliminating ILI&Fixed
   operators too; measure what keeping Slice kernels costs.
3. **Strength reduction (Index Comprehension)**: eliminated transforms
   with raw, un-reduced index expressions.
4. **Consumer- vs producer-driven layouts**: covered by the Sec 3.2.2
   microbenchmark (`repro.bench.micro_rw`).
"""

from __future__ import annotations

from ..core.pipeline import PipelineStages
from ..runtime.device import SD8GEN2
from .harness import Experiment, run_cell

MODELS = ["Swin", "CSwin", "ViT", "ResNext"]

VARIANTS = {
    "full": PipelineStages(),
    "no-texture (k=1)": PipelineStages(use_texture=False, full_texture=False),
    "keep-slice": PipelineStages(eliminate_slice=False),
    "raw-index": PipelineStages(simplify_index=False),
    "no-lte": PipelineStages(lte=False),
    "no-layout-select": PipelineStages(layout_selection=False,
                                       full_texture=False),
}


def _latency(model: str, stages: PipelineStages) -> float:
    return run_cell(model, "Ours", SD8GEN2, stages=stages).latency_ms


def run(models: list[str] | None = None) -> Experiment:
    exp = Experiment(
        name="Ablations",
        description="latency (ms) of SmartMem with each design decision "
                    "disabled (slowdown vs full in parentheses)",
        headers=["Model"] + list(VARIANTS),
    )
    for name in models or MODELS:
        full = _latency(name, VARIANTS["full"])
        row = [name]
        data = {}
        for variant, stages in VARIANTS.items():
            ms = _latency(name, stages)
            slowdown = ms / full
            data[variant] = {"latency_ms": ms, "slowdown": slowdown}
            row.append(f"{ms:.1f} ({slowdown:.2f}x)")
        exp.rows.append(row)
        exp.data[name] = data
    exp.notes.append("every disabled decision must cost latency (slowdown "
                     ">= 1.0); texture and LTE are the largest terms for "
                     "transformer models")
    return exp


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
