"""Figure 10: Swin performance across batch sizes 1-16.

Reports each baseline's speedup deficit vs Ours per batch size; a '-'
appears when a framework cannot fit the batch in device memory (the
paper's empty bars).
"""

from __future__ import annotations

from ..runtime.device import SD8GEN2
from .harness import Experiment, fmt, run_cell

FRAMEWORKS = ["MNN", "TVM", "DNNF", "Ours"]
BATCHES = [1, 2, 4, 8, 16]


def run(batches: list[int] | None = None, model: str = "Swin") -> Experiment:
    exp = Experiment(
        name="Figure 10",
        description=f"{model} latency (ms) across batch sizes; '-' = OOM",
        headers=["Batch"] + FRAMEWORKS + ["MNN/Ours", "TVM/Ours", "DNNF/Ours"],
    )
    for batch in batches or BATCHES:
        lat = {}
        for fw in FRAMEWORKS:
            cell = run_cell(model, fw, SD8GEN2, check_memory=True, batch=batch)
            lat[fw] = cell.latency_ms
        ours = lat["Ours"]
        row = [str(batch)] + [fmt(lat[fw]) for fw in FRAMEWORKS]
        for fw in ("MNN", "TVM", "DNNF"):
            row.append(f"{lat[fw] / ours:.1f}x" if lat[fw] and ours else "-")
        exp.rows.append(row)
        exp.data[batch] = dict(lat)
    exp.notes.append("paper: 11.6-13.2x vs MNN, 4.8-5.9x vs TVM, 4.1-4.7x "
                     "vs DNNF across batch sizes; large batches OOM on "
                     "some baselines")
    return exp


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
