"""Figure 11: portability - Mediatek Dimensity 700 and Snapdragon 835.

Speedups of every framework over Ours on two resource-constrained
devices; '-' marks OOM or unsupported (the paper notes MNN and TVM fail
ConvNext on the 4 GB Mali device).
"""

from __future__ import annotations

from ..baselines import ALL_FRAMEWORKS
from ..runtime.device import DIMENSITY700, SD835, DeviceSpec
from .harness import Experiment, fmt, run_cell

MODELS = ["CSwin", "FlattenFormer", "SMTFormer", "Swin", "ViT", "ConvNext",
          "ResNext", "Yolo-V8"]


def run_device(device: DeviceSpec, models: list[str] | None = None) -> Experiment:
    exp = Experiment(
        name=f"Figure 11 ({device.name})",
        description="latency (ms) and speedup of Ours; '-' = unsupported/OOM",
        headers=["Model"] + list(ALL_FRAMEWORKS) + ["best-baseline/Ours"],
    )
    for name in models or MODELS:
        lat = {}
        for fw in ALL_FRAMEWORKS:
            cell = run_cell(name, fw, device, check_memory=True)
            lat[fw] = cell.latency_ms
        ours = lat["Ours"]
        baselines = [v for k, v in lat.items() if k != "Ours" and v]
        ratio = (min(baselines) / ours) if baselines and ours else None
        exp.rows.append([name] + [fmt(lat[fw]) for fw in ALL_FRAMEWORKS]
                        + [f"{ratio:.1f}x" if ratio else "-"])
        exp.data[name] = dict(lat)
    return exp


def run(models: list[str] | None = None) -> list[Experiment]:
    out = []
    for device in (DIMENSITY700, SD835):
        out.append(run_device(device, models))
    return out


if __name__ == "__main__":  # pragma: no cover
    for experiment in run():
        print(experiment.render())
        print()
