"""Figure 12: roofline analysis on the mobile GPU.

For each model: average computational intensity (MACs/byte), achieved
GMACS under SmartMem, the texture-roofline bound (511 GB/s) and global-
memory bound (55 GB/s), and the fraction of the theoretical peak
achieved.  The paper's points: Swin 149, ViT 204, ResNext 271,
SD-VAEDecoder 360 GMACS (24%-35% of the texture-roofline peak).
"""

from __future__ import annotations

from ..runtime.device import SD8GEN2
from .harness import Experiment, fmt, run_cell
from .paper_data import FIG12

MODELS = ["Swin", "ViT", "ResNext", "SD-VAEDecoder"]


def roofline_bound(intensity: float, bw_gbps: float, peak_gmacs: float) -> float:
    """Attainable GMACS at a given computational intensity."""
    return min(peak_gmacs, intensity * bw_gbps)


def run(models: list[str] | None = None) -> Experiment:
    device = SD8GEN2
    exp = Experiment(
        name="Figure 12",
        description="roofline: achieved GMACS vs computational intensity",
        headers=["Model", "Intensity(MACs/B)", "GMACS", "tex roof", "%peak",
                 "paper GMACS", "paper %"],
    )
    for name in models or MODELS:
        cell = run_cell(name, "Ours", device)
        report = cell.report
        bytes_moved = sum(k.bytes_read + k.bytes_written for k in report.kernels)
        intensity = report.total_macs / max(1, bytes_moved)
        achieved = report.gmacs_per_s
        roof = roofline_bound(intensity, device.texture_bw_gbps,
                              device.peak_gmacs)
        frac = achieved / roof if roof else 0.0
        paper = FIG12.get(name)
        exp.rows.append([
            name, fmt(intensity), fmt(achieved, 0), fmt(roof, 0),
            f"{100 * frac:.0f}%",
            fmt(paper[0], 0) if paper else "-",
            f"{100 * paper[1]:.0f}%" if paper else "-",
        ])
        exp.data[name] = {"intensity": intensity, "gmacs": achieved,
                          "roof": roof, "fraction": frac}
    exp.notes.append("ordering check: Swin < ViT < ResNext < SD-VAEDecoder "
                     "in achieved GMACS (more compute-intense models run "
                     "closer to peak)")
    exp.notes.append("absolute %peak is lower than the paper's because our "
                     "intensity counts post-fusion traffic (the paper "
                     "measured DRAM-level traffic on hardware counters); "
                     "the GMACS points and their ordering are the target")
    return exp


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
