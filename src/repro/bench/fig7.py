"""Figure 7: memory access count and cache miss count vs other frameworks.

Counts are normalized by Ours (SmartMem): the paper reports 1.8x fewer
memory accesses and 2.0x fewer cache misses on average, on CSwin and
ResNext.
"""

from __future__ import annotations

from ..baselines import ALL_FRAMEWORKS
from ..runtime.device import SD8GEN2
from .harness import Experiment, run_cell

MODELS = ["CSwin", "ResNext"]


def run(models: list[str] | None = None) -> Experiment:
    exp = Experiment(
        name="Figure 7",
        description="memory accesses / cache misses normalized by Ours",
        headers=["Model", "Metric"] + list(ALL_FRAMEWORKS),
    )
    for name in models or MODELS:
        cells = {fw: run_cell(name, fw, SD8GEN2) for fw in ALL_FRAMEWORKS}
        ours = cells["Ours"].report
        for metric, attr in (("mem access", "mem_access_total"),
                             ("cache miss", "cache_miss_total")):
            base = getattr(ours, attr) or 1
            row = [name, metric]
            values = {}
            for fw in ALL_FRAMEWORKS:
                if not cells[fw].supported:
                    row.append("-")
                    values[fw] = None
                else:
                    norm = getattr(cells[fw].report, attr) / base
                    row.append(f"{norm:.2f}")
                    values[fw] = norm
            exp.rows.append(row)
            exp.data.setdefault(name, {})[metric] = values
    exp.notes.append("paper: SmartMem averages 1.8x fewer memory accesses "
                     "and 2.0x fewer cache misses than other frameworks")
    return exp


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
