"""Figure 8: optimization breakdown - incremental speedup over DNNFusion.

Stages: DNNF baseline -> +Layout Transformation Elimination -> +Layout
Selecting -> +Other opts (full texture mapping + GA tuning).  Also
reports the Index Comprehension contribution inside LTE (strength
reduction on vs off).
"""

from __future__ import annotations

from ..core.pipeline import PipelineStages
from ..runtime.device import SD8GEN2
from .harness import Experiment, run_cell
from .paper_data import FIG8_RANGES

MODELS = ["AutoFormer", "BiFormer", "EfficientVit", "CSwin", "ViT",
          "ConvNext", "RegNet", "ResNext"]

STAGES = {
    "DNNF": None,  # the baseline framework itself
    "+LTE": PipelineStages(lte=True, fusion=True, layout_selection=False,
                           full_texture=False),
    "+LayoutSelect": PipelineStages(lte=True, fusion=True,
                                    layout_selection=True, full_texture=False),
    "+OtherOpt": PipelineStages(),  # everything on
}


def _latency(model: str, stages: PipelineStages | None,
             simplify_index: bool = True) -> float:
    if stages is None:
        return run_cell(model, "DNNF", SD8GEN2).latency_ms
    if not simplify_index:
        stages = PipelineStages(
            lte=stages.lte, fusion=stages.fusion,
            layout_selection=stages.layout_selection,
            full_texture=stages.full_texture,
            simplify_index=False)
    return run_cell(model, "Ours", SD8GEN2, stages=stages).latency_ms


def run(models: list[str] | None = None) -> Experiment:
    exp = Experiment(
        name="Figure 8",
        description="speedup over DNNFusion per optimization stage",
        headers=["Model"] + [s for s in STAGES if s != "DNNF"]
                + ["IndexComp gain"],
    )
    for name in models or MODELS:
        base = _latency(name, None)
        speedups = {}
        for stage_name, stages in STAGES.items():
            if stages is None:
                continue
            speedups[stage_name] = base / _latency(name, stages)
        # Index Comprehension ablation inside the LTE stage
        lte_raw = _latency(name, STAGES["+LTE"], simplify_index=False)
        lte = _latency(name, STAGES["+LTE"])
        index_gain = lte_raw / lte
        exp.rows.append([name]
                        + [f"{speedups[s]:.2f}x" for s in speedups]
                        + [f"{index_gain:.2f}x"])
        exp.data[name] = {**speedups, "index_comprehension": index_gain}
    exp.notes.append(
        "paper stage gains (transformer/hybrid): LTE "
        f"{FIG8_RANGES['LTE']['transformer']}, LayoutSelect "
        f"{FIG8_RANGES['LayoutSelect']['transformer']} (cumulative x), "
        f"Other {FIG8_RANGES['OtherOpt']['transformer']}; Index "
        "Comprehension contributes 1.1-1.3x within LTE")
    return exp


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
