"""Figure 9: per-optimization-stage memory access and cache miss counts.

LTE mostly reduces *memory accesses* (eliminated reorganizations stop
touching memory); Layout Selection mostly reduces *cache misses* (better
access patterns).  Values normalized by the final (full) configuration.
"""

from __future__ import annotations

from ..baselines import make_framework
from ..runtime.device import SD8GEN2
from .fig8 import STAGES
from .harness import Experiment, cached_model

MODELS = ["CSwin", "ResNext"]


def _report(model: str, stage_name: str):
    graph = cached_model(model)
    stages = STAGES[stage_name]
    fw = make_framework("DNNF") if stages is None else \
        make_framework("Ours", stages=stages)
    result = fw.compile(graph, SD8GEN2, check_memory=False)
    return result.cost(SD8GEN2)


def run(models: list[str] | None = None) -> Experiment:
    exp = Experiment(
        name="Figure 9",
        description="memory access / cache miss per optimization stage "
                    "(normalized by the fully-optimized version)",
        headers=["Model", "Metric"] + list(STAGES),
    )
    for name in models or MODELS:
        reports = {s: _report(name, s) for s in STAGES}
        final = reports["+OtherOpt"]
        for metric, attr in (("mem access", "mem_access_total"),
                             ("cache miss", "cache_miss_total")):
            base = getattr(final, attr) or 1
            row = [name, metric]
            values = {}
            for s in STAGES:
                norm = getattr(reports[s], attr) / base
                row.append(f"{norm:.2f}")
                values[s] = norm
            exp.rows.append(row)
            exp.data.setdefault(name, {})[metric] = values
    exp.notes.append("paper: LTE cuts memory accesses more than cache "
                     "misses; Layout Selection cuts cache misses more")
    return exp


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
