"""Shared benchmark infrastructure: run frameworks over models, format
tables, and compare simulated numbers against the paper's published ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

from ..baselines import make_framework
from ..baselines.base import FrameworkResult
# Per-pass compile-time accounting flows from the pass manager into the
# --timings trajectory (BENCH_pipeline.json) through these re-exports.
from ..core.passes import clear_pass_timings, pass_timing_stats  # noqa: F401
from ..ir.dtype import DType
from ..ir.graph import Graph
from ..ir.tensor import TensorSpec
from ..models import build
from ..runtime.cost_model import CostReport
from ..runtime.device import DeviceSpec, SD8GEN2


class Cell:
    """One (model, framework) measurement.

    The cost-model report is computed lazily on first access: operator
    count tables (Table 7) never pay for costing, while latency tables
    compute each report exactly once and share it through the cell cache.
    """

    def __init__(self, result: FrameworkResult | None, device: DeviceSpec,
                 reason: str = "") -> None:
        self.result = result
        self.device = device
        self.reason = reason or (result.reason if result is not None else "")
        self._report: CostReport | None = None

    @property
    def supported(self) -> bool:
        return self.result is not None and self.result.supported

    @property
    def operator_count(self) -> int:
        return self.result.operator_count if self.supported else 0

    @property
    def report(self) -> CostReport | None:
        if not self.supported:
            return None
        if self._report is None:
            self._report = self.result.cost(self.device)
        return self._report

    @property
    def latency_ms(self) -> float | None:
        return self.report.latency_ms if self.supported else None


@lru_cache(maxsize=64)
def _build_model(name: str, batch: int) -> Graph:
    return build(name, batch=batch)


def cached_model(name: str, batch: int = 1) -> Graph:
    # Normalize the default batch so positional and defaulted calls share
    # one cache entry (lru_cache keys on the raw call signature).
    return _build_model(name, batch)


# ---------------------------------------------------------------------------
# compile/cost cache: every (model, framework, device, stages) cell is
# costed exactly once per process, however many tables and figures ask
# for it.  Cells are immutable from the benchmarks' point of view.
# ---------------------------------------------------------------------------

_CELL_CACHE: dict = {}
_CELL_STATS = {"hits": 0, "misses": 0}
_CORE_CACHE: dict = {}
"""Device-independent compile results, keyed on (model, framework,
stages/kwargs, device.has_texture): figs 10/11 re-cost the same compiled
module on several devices, so the graph rewrite runs once."""


def model_cache_key(model):
    """Identity of a model argument for compile caching.

    Names key by value; graphs key by identity + generation (the cached
    entry must pin the graph object so the id stays valid, and any
    mutation changes the generation).  Shared with the session layer's
    Engine so its registry agrees with the cell cache it fronts.
    """
    if isinstance(model, Graph):
        return ("graph", id(model), model.generation)
    return ("name", model)


def _cell_key(model, framework, device, check_memory, batch, fw_kwargs):
    """Hashable cache key, or None when the cell is uncacheable."""
    key = (model_cache_key(model), framework, device, check_memory, batch,
           tuple(sorted(fw_kwargs.items())))
    try:
        hash(key)
    except TypeError:
        return None
    return key


def cell_cache_stats() -> dict[str, int]:
    """Process-wide compile/cost cache counters (copies)."""
    return dict(_CELL_STATS)


def clear_cell_cache() -> None:
    _CELL_CACHE.clear()
    _CORE_CACHE.clear()
    _CELL_STATS["hits"] = 0
    _CELL_STATS["misses"] = 0


def run_cell(model: str | Graph, framework: str, device: DeviceSpec = SD8GEN2,
             check_memory: bool = False, batch: int = 1, **fw_kwargs) -> Cell:
    """Compile + cost one model under one framework on one device."""
    key = _cell_key(model, framework, device, check_memory, batch, fw_kwargs)
    if key is not None:
        found = _CELL_CACHE.get(key)
        if found is not None:
            _CELL_STATS["hits"] += 1
            return found[0]
    graph = cached_model(model, batch) if isinstance(model, str) else model
    fw = make_framework(framework, **fw_kwargs)
    core = None
    core_key = None
    if key is not None:
        model_key, _, _, _, batch_key, kwargs_key = key
        core_key = (model_key, framework, batch_key, kwargs_key,
                    device.has_texture)
        found_core = _CORE_CACHE.get(core_key)
        if found_core is not None:
            core = found_core[0]
    if core is None:
        core = fw.compile_core(graph, device)
        if core_key is not None:
            _CORE_CACHE[core_key] = (
                core, model if isinstance(model, Graph) else None)
    result = fw.compile(graph, device, check_memory=check_memory, core=core)
    cell = Cell(result, device)
    if key is not None:
        _CELL_STATS["misses"] += 1
        # Pin graph-keyed models so their id cannot be recycled.
        _CELL_CACHE[key] = (cell, model if isinstance(model, Graph) else None)
    return cell


def geomean(values: list[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def to_fp32(graph: Graph) -> Graph:
    """Copy of the graph with every tensor widened to FP32 (Table 9 runs
    desktop GPUs in 32-bit; Section 4.1)."""
    g = graph.clone()
    g.tensors = {
        name: TensorSpec(spec.name, spec.shape,
                         DType.FP32 if spec.dtype == DType.FP16 else spec.dtype,
                         spec.is_param)
        for name, spec in g.tensors.items()
    }
    return g


@lru_cache(maxsize=64)
def cached_fp32_model(name: str, batch: int = 1) -> Graph:
    """FP32-widened registry model (Table 9's desktop-GPU runs), interned
    so repeated experiments hit the graph-keyed cell cache."""
    return to_fp32(cached_model(name, batch))


# ---------------------------------------------------------------------------
# text tables
# ---------------------------------------------------------------------------


def format_table(headers: list[str], rows: list[list[str]],
                 title: str | None = None) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def fmt(value: float | None, digits: int = 1, dash: str = "-") -> str:
    if value is None:
        return dash
    if value >= 1000:
        return f"{value:,.0f}"
    return f"{value:.{digits}f}"


@dataclass
class Experiment:
    """A regenerated table or figure."""

    name: str
    description: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    data: dict = field(default_factory=dict)

    def render(self) -> str:
        out = format_table(self.headers, self.rows,
                           title=f"== {self.name}: {self.description} ==")
        if self.notes:
            out += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return out

    def to_json(self) -> dict:
        """Machine-readable form (for plotting / regression tracking)."""
        return {
            "name": self.name,
            "description": self.description,
            "headers": list(self.headers),
            "rows": [list(r) for r in self.rows],
            "notes": list(self.notes),
            "data": _jsonable(self.data),
        }


def _jsonable(value):
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)
