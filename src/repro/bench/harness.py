"""Shared benchmark infrastructure: run frameworks over models, format
tables, and compare simulated numbers against the paper's published ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

from ..baselines import make_framework
from ..baselines.base import FrameworkResult
from ..ir.dtype import DType
from ..ir.graph import Graph
from ..ir.tensor import TensorSpec
from ..models import build
from ..runtime.cost_model import CostReport
from ..runtime.device import DeviceSpec, SD8GEN2


@dataclass
class Cell:
    """One (model, framework) measurement."""

    latency_ms: float | None
    operator_count: int = 0
    report: CostReport | None = None
    result: FrameworkResult | None = None
    reason: str = ""

    @property
    def supported(self) -> bool:
        return self.latency_ms is not None


@lru_cache(maxsize=64)
def cached_model(name: str, batch: int = 1) -> Graph:
    return build(name, batch=batch)


def run_cell(model: str | Graph, framework: str, device: DeviceSpec = SD8GEN2,
             check_memory: bool = False, batch: int = 1, **fw_kwargs) -> Cell:
    """Compile + cost one model under one framework on one device."""
    graph = cached_model(model, batch) if isinstance(model, str) else model
    fw = make_framework(framework, **fw_kwargs)
    result = fw.compile(graph, device, check_memory=check_memory)
    if not result.supported:
        return Cell(latency_ms=None, result=result, reason=result.reason)
    report = result.cost(device)
    return Cell(latency_ms=report.latency_ms,
                operator_count=result.operator_count,
                report=report, result=result)


def geomean(values: list[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def to_fp32(graph: Graph) -> Graph:
    """Copy of the graph with every tensor widened to FP32 (Table 9 runs
    desktop GPUs in 32-bit; Section 4.1)."""
    g = graph.clone()
    g.tensors = {
        name: TensorSpec(spec.name, spec.shape,
                         DType.FP32 if spec.dtype == DType.FP16 else spec.dtype,
                         spec.is_param)
        for name, spec in g.tensors.items()
    }
    return g


# ---------------------------------------------------------------------------
# text tables
# ---------------------------------------------------------------------------


def format_table(headers: list[str], rows: list[list[str]],
                 title: str | None = None) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def fmt(value: float | None, digits: int = 1, dash: str = "-") -> str:
    if value is None:
        return dash
    if value >= 1000:
        return f"{value:,.0f}"
    return f"{value:.{digits}f}"


@dataclass
class Experiment:
    """A regenerated table or figure."""

    name: str
    description: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    data: dict = field(default_factory=dict)

    def render(self) -> str:
        out = format_table(self.headers, self.rows,
                           title=f"== {self.name}: {self.description} ==")
        if self.notes:
            out += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return out

    def to_json(self) -> dict:
        """Machine-readable form (for plotting / regression tracking)."""
        return {
            "name": self.name,
            "description": self.description,
            "headers": list(self.headers),
            "rows": [list(r) for r in self.rows],
            "notes": list(self.notes),
            "data": _jsonable(self.data),
        }


def _jsonable(value):
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)
