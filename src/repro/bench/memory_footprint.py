"""Section 4.6: memory impact of redundant copies and operator reduction.

Reproduces: (a) the maximum concurrently-live redundant-copy footprint
(Swin 3.0 MB / ViT 2.3 MB in the paper - small, thanks to the memory
pool), and (b) operator-count and memory reduction vs DNNFusion
(24%/14% for Swin, 33%/15% for ViT).
"""

from __future__ import annotations

from ..baselines import make_framework
from ..memory.pool import simulate_pool
from ..runtime.device import SD8GEN2
from .harness import Experiment, cached_model, fmt
from .paper_data import SEC46

MODELS = ["Swin", "ViT"]


def run(models: list[str] | None = None) -> Experiment:
    exp = Experiment(
        name="Sec 4.6",
        description="redundant copies and memory reduction vs DNNFusion",
        headers=["Model", "ops DNNF", "ops Ours", "op red.", "alloc DNNF(MB)",
                 "alloc Ours(MB)", "mem red.", "max copies(MB)",
                 "paper op/mem red.", "paper copies"],
    )
    for name in models or MODELS:
        graph = cached_model(name)
        dnnf = make_framework("DNNF").compile(graph, SD8GEN2, check_memory=False)
        ours = make_framework("Ours").compile(graph, SD8GEN2, check_memory=False)
        pool_dnnf = simulate_pool(dnnf.graph, dnnf.plan)
        pool_ours = simulate_pool(ours.graph, ours.plan)
        op_red = 100 * (1 - ours.operator_count / dnnf.operator_count)
        mem_red = 100 * (1 - pool_ours.total_allocated_bytes
                         / pool_dnnf.total_allocated_bytes)
        copies_mb = pool_ours.peak_copy_bytes / 2 ** 20
        paper = SEC46.get(name, {})
        exp.rows.append([
            name, str(dnnf.operator_count), str(ours.operator_count),
            f"{op_red:.0f}%",
            fmt(pool_dnnf.total_allocated_bytes / 2 ** 20),
            fmt(pool_ours.total_allocated_bytes / 2 ** 20),
            f"{mem_red:.0f}%", fmt(copies_mb, 2),
            (f"{paper.get('op_reduction_pct')}%/"
             f"{paper.get('memory_reduction_pct')}%" if paper else "-"),
            f"{paper.get('max_copy_mb')}MB" if paper else "-",
        ])
        exp.data[name] = {
            "op_reduction_pct": op_red,
            "memory_reduction_pct": mem_red,
            "max_copy_mb": copies_mb,
        }
    exp.notes.append("shape check: redundant copies stay in single-digit "
                     "MB; ops and memory both drop vs DNNFusion")
    return exp


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
