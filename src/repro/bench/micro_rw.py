"""Section 3.2.2 microbenchmark: read-optimized vs write-optimized layouts.

The paper justifies its consumer-driven layout choice with a
microbenchmark: implementing an operator so its *reads* are unit-stride
(at the cost of a suboptimal write) beats the write-optimized version by
1.7x for Conv, 1.4x for MatMul and 1.1x for Activation.

Reproduction: each operator runs through the actual cost model twice -

* **read-optimized**: the input layout stores the operator's reduction
  dimension unit-stride; the output is written in the downstream-
  preferred order (suboptimal write amplification),
* **write-optimized**: the output is written in the kernel's natural
  order, but the input arrives strided along the reduction dimension.

The ordering (conv > matmul > activation) falls out of each operator's
read:write byte ratio and reuse; activation is modeled with the vec4
misalignment penalty (a once-touched stream cares only about load
vectorization).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.fusion import fuse, SMARTMEM_POLICY
from ..core.layout_selection import LayoutPlan
from ..ir.builder import GraphBuilder
from ..ir.layout import Layout
from ..runtime.cost_model import CostModelConfig, estimate
from ..runtime.device import SD8GEN2
from .harness import Experiment
from .paper_data import MICRO_RW


@dataclass
class MicroResult:
    op: str
    read_opt_us: float
    write_opt_us: float

    @property
    def speedup(self) -> float:
        return self.write_opt_us / max(1e-9, self.read_opt_us)


def _cost(graph, plan, compute_eff: float = 1.0) -> float:
    """Kernel-body time (launch excluded).

    ``compute_eff`` models the SIMD/MAC-loop efficiency loss caused by
    strided reduction-dimension reads (the cost model's
    ``default_layout_eff`` constant, 0.55): a conv with *all* reduction
    reads strided loses the full factor; a matmul with one of two
    operands strided loses the square root of it.
    """
    config = CostModelConfig(extra_efficiency=compute_eff)
    report = estimate(graph, SD8GEN2, plan, config)
    return sum(max(k.compute_us, k.memory_us) + k.index_us
               for k in report.kernels)


def _conv_case() -> MicroResult:
    """1x1 conv (C=64 -> 128 at 56x56): reduction over input channels."""
    def build():
        b = GraphBuilder("micro_conv")
        x = b.input("x", (1, 64, 56, 56))
        b.output(b.conv2d(x, 128, 1, bias=False))
        g = b.finish()
        fuse(g, SMARTMEM_POLICY)
        return g

    g = build()
    out = g.outputs[0]
    # read-optimized: channels (the reduction dim) unit-stride; output in
    # the downstream-preferred channel-major order (suboptimal write).
    plan_a = LayoutPlan(quality="selected")
    plan_a.layouts["x"] = Layout.buffer((0, 2, 3, 1))
    plan_a.layouts[out] = Layout.buffer((0, 2, 3, 1))
    # write-optimized: natural row-major NCHW output; input arrives
    # row-major, so channel-dim reads stride over H*W.
    plan_b = LayoutPlan(quality="selected")
    plan_b.layouts["x"] = Layout.row_major(4)
    plan_b.layouts[out] = Layout.row_major(4)
    from ..runtime.cost_model import CostModelConfig as _C
    stride_eff = _C().default_layout_eff  # every reduction read strided
    return MicroResult("conv2d", _cost(build(), plan_a),
                       _cost(build(), plan_b, compute_eff=stride_eff))


def _matmul_case() -> MicroResult:
    """(448, 128) x (128, 448): B's reduction dim is its first axis."""
    def build():
        b = GraphBuilder("micro_matmul")
        x = b.input("a", (448, 128))
        y = b.input("b", (128, 448))
        b.output(b.matmul(x, y))
        g = b.finish()
        fuse(g, SMARTMEM_POLICY)
        return g

    g = build()
    out = g.outputs[0]
    plan_a = LayoutPlan(quality="selected")
    plan_a.layouts["a"] = Layout.row_major(2)      # k already unit-stride
    plan_a.layouts["b"] = Layout.buffer((1, 0))    # k unit-stride in B
    plan_a.layouts[out] = Layout.buffer((1, 0))    # suboptimal write
    plan_b = LayoutPlan(quality="selected")
    plan_b.layouts["a"] = Layout.row_major(2)
    plan_b.layouts["b"] = Layout.row_major(2)      # strided reduction reads
    plan_b.layouts[out] = Layout.row_major(2)
    from ..runtime.cost_model import CostModelConfig as _C
    stride_eff = _C().default_layout_eff ** 0.5  # one of two operands strided
    return MicroResult("matmul", _cost(build(), plan_a),
                       _cost(build(), plan_b, compute_eff=stride_eff))


def _activation_case() -> MicroResult:
    """Elementwise op: layout only affects load vectorization.

    Modeled analytically: the read-optimized version pays the suboptimal
    write (1.25x on the store stream); the write-optimized version loads
    misaligned vec4 data (1.5x fetch on the load stream)."""
    read_bytes = write_bytes = 1.0
    read_opt = read_bytes * 1.0 + write_bytes * 1.25
    write_opt = read_bytes * 1.5 + write_bytes * 1.0
    return MicroResult("activation", read_opt, write_opt)


def run() -> Experiment:
    exp = Experiment(
        name="Micro (Sec 3.2.2)",
        description="read-optimized vs write-optimized layouts (kernel "
                    "time, launch excluded)",
        headers=["Operator", "read-opt(us)", "write-opt(us)", "speedup",
                 "paper"],
    )
    paper_keys = {"conv2d": "conv2d", "matmul": "matmul",
                  "activation": "activation"}
    for result in (_conv_case(), _matmul_case(), _activation_case()):
        exp.rows.append([
            result.op, f"{result.read_opt_us:.2f}",
            f"{result.write_opt_us:.2f}", f"{result.speedup:.2f}x",
            f"{MICRO_RW[paper_keys[result.op]]:.1f}x",
        ])
        exp.data[result.op] = result.speedup
    exp.notes.append("shape check: conv > matmul > activation > 1.0 - "
                     "reuse-heavy operators profit most from read-optimal "
                     "layouts")
    return exp


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
