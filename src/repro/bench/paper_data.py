"""The paper's published numbers, for side-by-side comparison.

Sources: Table 1 (MNN latency breakdown), Table 7 (operator counts),
Table 8 (end-to-end latency on Snapdragon 8 Gen 2), Table 9 (V100),
Figure 8 (optimization breakdown ranges), Figure 12 (roofline points).
EXPERIMENTS.md records simulated-vs-paper for each.
"""

# Table 1: model -> (macs_G, n_layout_transforms, latency_ms, imp%, exp%, comp%, gmacs)
TABLE1 = {
    "ResNet50": (4.1, 3, 14, 4.8, 0.2, 95.0, 293),
    "FST": (162, 32, 1506, 70.7, 1.8, 27.5, 108),
    "RegNet": (3.2, 6, 57, 16.7, 0.0, 83.3, 56),
    "CrossFormer": (5.0, 208, 336, 15.3, 55.2, 29.5, 15),
    "Swin": (4.6, 242, 342, 14.7, 54.1, 31.2, 15.2),
    "AutoFormer": (4.7, 233, 335, 13.3, 54.2, 32.5, 14),
    "CSwin": (6.9, 769, 703, 14.3, 50.2, 35.5, 10),
    "SD-TextEncoder": (6.7, 183, 133, 15.1, 36.3, 48.6, 44),
    "SD-UNet": (90, 533, 2172, 19.4, 42.1, 38.5, 42),
    "Pythia": (119, 385, 3034, 11.7, 31.7, 56.6, 39),
}

# Table 7: model -> (unoptimized_ops, {framework: ops or None})
TABLE7 = {
    "AutoFormer": (546, {"MNN": 449, "NCNN": None, "TFLite": None, "TVM": 302, "DNNF": 197, "Ours": 148}),
    "BiFormer": (2042, {"MNN": 1189, "NCNN": None, "TFLite": None, "TVM": 1029, "DNNF": 602, "Ours": 474}),
    "CrossFormer": (505, {"MNN": 453, "NCNN": None, "TFLite": None, "TVM": 308, "DNNF": 196, "Ours": 155}),
    "CSwin": (3863, {"MNN": 1753, "NCNN": None, "TFLite": None, "TVM": 1480, "DNNF": 933, "Ours": 604}),
    "EfficientVit": (536, {"MNN": 489, "NCNN": None, "TFLite": None, "TVM": 133, "DNNF": 113, "Ours": 101}),
    "FlattenFormer": (2016, {"MNN": 1558, "NCNN": None, "TFLite": None, "TVM": 918, "DNNF": 665, "Ours": 403}),
    "SMTFormer": (1406, {"MNN": 1905, "NCNN": None, "TFLite": None, "TVM": 844, "DNNF": 469, "Ours": 332}),
    "Swin": (765, {"MNN": 596, "NCNN": None, "TFLite": None, "TVM": 374, "DNNF": 207, "Ours": 158}),
    "ViT": (444, {"MNN": 379, "NCNN": None, "TFLite": None, "TVM": 289, "DNNF": 168, "Ours": 112}),
    "Conformer": (665, {"MNN": 558, "NCNN": None, "TFLite": None, "TVM": 356, "DNNF": 219, "Ours": 163}),
    "SD-TextEncoder": (674, {"MNN": 601, "NCNN": None, "TFLite": None, "TVM": 297, "DNNF": 101, "Ours": 84}),
    "SD-UNet": (1962, {"MNN": 1355, "NCNN": None, "TFLite": None, "TVM": 889, "DNNF": 436, "Ours": 322}),
    "SD-VAEDecoder": (287, {"MNN": 206, "NCNN": None, "TFLite": None, "TVM": 156, "DNNF": 103, "Ours": 95}),
    "Pythia": (1853, {"MNN": 809, "NCNN": None, "TFLite": None, "TVM": 681, "DNNF": 525, "Ours": 355}),
    "ConvNext": (292, {"MNN": 321, "NCNN": None, "TFLite": None, "TVM": 185, "DNNF": 96, "Ours": 81}),
    "RegNet": (282, {"MNN": 197, "NCNN": 282, "TFLite": 197, "TVM": 155, "DNNF": 122, "Ours": 122}),
    "ResNext": (122, {"MNN": 86, "NCNN": 122, "TFLite": 73, "TVM": 58, "DNNF": 55, "Ours": 55}),
    "Yolo-V8": (233, {"MNN": 176, "NCNN": 233, "TFLite": None, "TVM": 88, "DNNF": 75, "Ours": 68}),
}

# Table 8: model -> {framework: latency_ms or None}
TABLE8 = {
    "AutoFormer": {"MNN": 335, "NCNN": None, "TFLite": None, "TVM": 184, "DNNF": 106, "Ours": 40.2},
    "BiFormer": {"MNN": 1736, "NCNN": None, "TFLite": None, "TVM": 208, "DNNF": 186, "Ours": 56.1},
    "CrossFormer": {"MNN": 336, "NCNN": None, "TFLite": None, "TVM": 156, "DNNF": 121, "Ours": 38.2},
    "CSwin": {"MNN": 703, "NCNN": None, "TFLite": None, "TVM": 261, "DNNF": 225, "Ours": 57.6},
    "EfficientVit": {"MNN": 208, "NCNN": None, "TFLite": None, "TVM": 243, "DNNF": 112, "Ours": 22.5},
    "FlattenFormer": {"MNN": 492, "NCNN": None, "TFLite": None, "TVM": 256, "DNNF": 210, "Ours": 60.1},
    "SMTFormer": {"MNN": 510, "NCNN": None, "TFLite": None, "TVM": 214, "DNNF": 143, "Ours": 40},
    "Swin": {"MNN": 372, "NCNN": None, "TFLite": None, "TVM": 158, "DNNF": 135, "Ours": 30.6},
    "ViT": {"MNN": 533, "NCNN": None, "TFLite": None, "TVM": 1050, "DNNF": 277, "Ours": 103},
    "Conformer": {"MNN": 1736, "NCNN": None, "TFLite": None, "TVM": 863, "DNNF": 284, "Ours": 106},
    "SD-TextEncoder": {"MNN": 153, "NCNN": None, "TFLite": None, "TVM": 216, "DNNF": 73, "Ours": 38},
    "SD-UNet": {"MNN": 2172, "NCNN": None, "TFLite": None, "TVM": 3969, "DNNF": 1108, "Ours": 412},
    "SD-VAEDecoder": {"MNN": 2730, "NCNN": None, "TFLite": None, "TVM": 5663, "DNNF": 1596, "Ours": 866},
    "Pythia": {"MNN": 3034, "NCNN": None, "TFLite": None, "TVM": 6602, "DNNF": 1489, "Ours": 663},
    "ConvNext": {"MNN": 271, "NCNN": None, "TFLite": None, "TVM": 5543, "DNNF": 109, "Ours": 33.4},
    "RegNet": {"MNN": 61, "NCNN": 33, "TFLite": 36.4, "TVM": 71, "DNNF": 31, "Ours": 24.7},
    "ResNext": {"MNN": 158, "NCNN": 38, "TFLite": 66, "TVM": 106, "DNNF": 33, "Ours": 15.7},
    "Yolo-V8": {"MNN": 32, "NCNN": 28, "TFLite": None, "TVM": 141, "DNNF": 26, "Ours": 22},
}

# Geometric-mean speedups over Ours (Table 8 bottom row).
TABLE8_GEOMEAN = {"MNN": 7.9, "NCNN": 1.6, "TFLite": 2.5, "TVM": 6.9, "DNNF": 2.8}

# Table 9: V100, FP32 (ms)
TABLE9 = {
    "Swin": {"TorchInductor": 7.5, "Ours": 6.1},
    "AutoFormer": {"TorchInductor": 5.1, "Ours": 4.6},
}

# Fig. 8 stage-gain ranges (transformer/hybrid, convnet)
FIG8_RANGES = {
    "LTE": {"transformer": (1.5, 2.7), "convnet": (1.1, 1.4)},
    "LayoutSelect": {"transformer": (1.4, 1.9), "convnet": (1.5, 1.7)},
    "OtherOpt": {"transformer": (1.2, 1.4), "convnet": (1.1, 1.4)},
}

# Fig. 12 achieved performance (GMACS) and fraction of texture-roofline peak
FIG12 = {
    "Swin": (149, 0.24),
    "ViT": (204, 0.27),
    "ResNext": (271, 0.31),
    "SD-VAEDecoder": (360, 0.35),
}

# Section 4.6: operator and memory reduction vs DNNFusion
SEC46 = {
    "Swin": {"op_reduction_pct": 24, "memory_reduction_pct": 14,
             "max_copy_mb": 3.0},
    "ViT": {"op_reduction_pct": 33, "memory_reduction_pct": 15,
            "max_copy_mb": 2.3},
}

# Section 3.2.2 microbenchmark: read-optimized over write-optimized speedup
MICRO_RW = {"conv2d": 1.7, "matmul": 1.4, "activation": 1.1}
