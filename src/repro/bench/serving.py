"""Steady-state serving benchmark: lowered program vs. interpreter loop.

Measures, per smoke-scale registry model, the steady-state wall time of
``Session.run()`` (the lowered :class:`~repro.runtime.program.ExecutionProgram`
path) against a frozen replica of the PR-2 per-node interpreter loop on
the *same* compiled graph and the *same* reference kernels.  The result
lands in the ``serve`` section of ``BENCH_pipeline.json`` (written by
``python -m repro.bench --all --timings``), so the serving speedup is
tracked alongside compile-time and cache trajectories.

Both paths do the full per-request work a PR-2 session did - admission,
pool accounting, per-request stats - the interpreter pays it per node
per request, the program path paid it once at lowering time.
"""

from __future__ import annotations

import time
from collections import deque

from ..memory.pool import (
    PoolEvent, PoolReport, SizeClassPool, liveness_schedule,
)
from ..models import SMOKE_CONFIGS, build_smoke
from ..runtime.executor import make_inputs, run_node
from ..runtime.session import RunStats, _compile_session
from ..runtime.traffic import FAMILIES, family

#: Models measured by default: transformer-family smoke configs whose
#: request times are small enough that dispatch overhead is visible, plus
#: one hybrid for contrast.
SERVE_MODELS = ("Pythia", "SD-TextEncoder", "ViT", "Conformer")


class InterpreterSession:
    """Frozen replica of the PR-2 ``Session.run`` request path.

    Re-interprets the graph per request - per-node kernel dict lookups
    via :func:`run_node`, per-run liveness dict bookkeeping, per-run
    timeline/stats construction - exactly as the serving layer did before
    lowering.  Kept only as the baseline for the ``serve`` benchmark.
    """

    def __init__(self, graph, report) -> None:
        self.graph = graph
        self.pool = SizeClassPool()
        self._schedule = liveness_schedule(graph)
        self._order = graph.topo_order()
        self._params = {
            name: value for name, value in make_inputs(graph, seed=0).items()
            if name not in graph.inputs}
        self._report = report
        self.requests = 0
        self.total_wall_s = 0.0
        self.runs: deque[RunStats] = deque(maxlen=256)

    @property
    def est_latency_ms(self) -> float:
        return self._report.latency_ms

    def run(self, inputs):
        start = time.perf_counter()
        graph = self.graph
        values = dict(self._params)
        for name, value in inputs.items():
            if name in graph.tensors:
                values[name] = value
        missing = [name for name in graph.inputs if name not in values]
        if missing:
            raise ValueError(f"missing graph inputs: {missing}")

        pool = self.pool
        before = pool.stats()
        tensors = graph.tensors
        schedule = self._schedule
        materialized = schedule.materialized
        live: dict[str, int] = {}
        total_allocated = 0
        timeline: list[PoolEvent] = []
        peak_live = 0
        try:
            for t in graph.inputs:
                size = tensors[t].size_bytes
                pool.allocate(size)
                live[t] = size
                total_allocated += size
            for step, node in enumerate(self._order):
                run_node(graph, node, values)
                for t in node.outputs:
                    if t in materialized:
                        size = tensors[t].size_bytes
                        pool.allocate(size)
                        live[t] = size
                        total_allocated += size
                peak_live = max(peak_live, pool.live_bytes)
                timeline.append(PoolEvent(step, pool.live_bytes, 0))
                for t in schedule.releases_at[step]:
                    size = live.pop(t, None)
                    if size is not None:
                        pool.release(size)
                for t in schedule.value_drops_at[step]:
                    values.pop(t, None)
            outputs = {name: values[name] for name in graph.outputs}
        finally:
            for size in live.values():
                pool.release(size)
            live.clear()
        after = pool.stats()
        wall_s = time.perf_counter() - start
        run_report = PoolReport(
            peak_bytes=peak_live,
            peak_copy_bytes=0,
            final_bytes=pool.live_bytes,
            timeline=timeline,
            allocations=after["allocations"] - before["allocations"],
            reuses=after["reuses"] - before["reuses"],
            total_allocated_bytes=total_allocated,
        )
        self.requests += 1
        self.total_wall_s += wall_s
        self.runs.append(RunStats(
            request=self.requests, wall_s=wall_s,
            est_latency_ms=self.est_latency_ms, pool=run_report))
        return outputs


def measure_serving(models: tuple[str, ...] = SERVE_MODELS,
                    requests: int = 50, warmup: int = 5) -> dict:
    """Measure steady-state request wall time, program vs. interpreter.

    Each path is warmed (pool at steady state, params materialized, cost
    report priced), then timed over ``requests`` runs; the best (minimum)
    wall time per path is reported, which is the stable statistic for
    micro-scale request times.
    """
    perf = time.perf_counter
    per_model = {}
    best = 0.0
    for name in models:
        graph = build_smoke(name)
        session = _compile_session(graph, "Ours")
        interp = InterpreterSession(session.graph, session.report)
        inputs = session.make_inputs()
        for _ in range(warmup):
            session.run(inputs)
            interp.run(inputs)
        program_walls = []
        for _ in range(requests):
            start = perf()
            session.run(inputs)
            program_walls.append(perf() - start)
        interp_walls = []
        for _ in range(requests):
            start = perf()
            interp.run(inputs)
            interp_walls.append(perf() - start)
        program_ms = min(program_walls) * 1e3
        interp_ms = min(interp_walls) * 1e3
        speedup = interp_ms / program_ms if program_ms else 0.0
        best = max(best, speedup)
        per_model[name] = {
            "steps": session.program.num_steps,
            "slots": session.program.slot_plan.num_slots,
            "interpreter_run_ms": round(interp_ms, 4),
            "program_run_ms": round(program_ms, 4),
            "speedup": round(speedup, 2),
        }
    return {
        "requests": requests,
        "models": per_model,
        "best_speedup": round(best, 2),
        "scheduler": measure_scheduler(),
        "backends": measure_backends(),
        "parallel": measure_parallel(),
        "roofline": measure_roofline(),
        "symbolic": measure_symbolic(),
    }


def measure_roofline(models: tuple[str, ...] | None = None,
                     repeats: int = 5) -> dict:
    """Per-model roofline report: measured time vs static traffic per
    kernel family, for *every* smoke model.

    The measured side walks the lowered program's step closures (the
    reference per-step path, so every family is individually timeable)
    and keeps the best-of-``repeats`` wall per step; the static side is
    the :meth:`~repro.runtime.program.ExecutionProgram.roofline`
    aggregation of the per-step traffic stamps ``lower()`` computed from
    tensor specs.  Together they say, per family, how much wall time
    rides on how many bytes moved at what arithmetic intensity - the
    nnfusion-Table-6-style evidence the next kernel PR is aimed with.
    Fusion/scratch counters ride along so the report also shows what the
    codegen backend collapses (``fused_steps``) and what the GEMM conv
    borrows from the slot plan (``scratch_kb``).
    """
    perf = time.perf_counter
    if models is None:
        models = tuple(sorted(SMOKE_CONFIGS))
    per_model = {}
    for name in models:
        graph = build_smoke(name)
        session = _compile_session(graph, "Ours")
        program = session.program
        base = dict(session._params)
        base.update(session.make_inputs())
        op_list = program.op_list
        best = [float("inf")] * len(op_list)
        for _ in range(repeats + 1):  # first pass warms caches/scratch
            values = dict(base)
            for i, (execute, drops) in enumerate(op_list):
                start = perf()
                execute(values)
                wall = perf() - start
                if wall < best[i]:
                    best[i] = wall
                for t in drops:
                    values.pop(t, None)
        fam_time: dict[str, float] = {}
        for step, wall in zip(program.steps, best):
            key = family(step.op_type)
            fam_time[key] = fam_time.get(key, 0.0) + wall
        static = program.roofline()
        families = {}
        for key in FAMILIES:
            entry = static.get(key)
            if entry is None:
                continue
            moved = entry["bytes_read"] + entry["bytes_written"]
            families[key] = {
                "steps": entry["steps"],
                "time_ms": round(fam_time.get(key, 0.0) * 1e3, 4),
                "mb_moved": round(moved / 1e6, 3),
                "mflops": round(entry["flops"] / 1e6, 3),
                "intensity": entry["intensity"],
            }
        plan = program.slot_plan
        per_model[name] = {
            "steps": program.num_steps,
            "slots": plan.num_slots,
            "fused_chains": len(program.fused_chains),
            "fused_steps": program.fused_step_count,
            "scratch_kb": round(plan.scratch_bytes / 1024, 1),
            "run_ms": round(sum(best) * 1e3, 4),
            "families": families,
        }
    return {"repeats": repeats, "models": per_model}


#: Models measured by the symbolic-shape benchmark (batch-stackable
#: transformer smoke configs - the shape-polymorphic serving regime).
SYMBOLIC_MODELS = ("Pythia", "ViT")


def measure_symbolic(models: tuple[str, ...] = SYMBOLIC_MODELS,
                     max_extent: int = 8, repeats: int = 3) -> dict:
    """First-request latency at a *new* shape: symbolic vs cold compile.

    A model compiled once with a symbolic leading dim
    (``signature={input: (None, ...)}, max_extent=N``) serves any
    extent in ``1..N``; after one request warms a bucket, the first
    request at a *different* extent inside that bucket reuses the
    bucket's compiled variant and warmed pool - no lowering, no
    codegen, no pool growth.  The baseline pays what serving that shape
    without symbolic compilation costs: a fresh concrete compile (a
    freshly built graph, so the compile cache is cold) plus its first
    request.  The headline ``best_speedup`` is the committed >= 10x
    claim the ``check_symbolic_shapes`` CI gate enforces.
    """
    import numpy as np

    perf = time.perf_counter
    per_model = {}
    best = 0.0
    bucket_lo = max_extent // 2 + 1  # extents the top bucket serves
    for name in models:
        graph = build_smoke(name)
        signature = {
            input_name: (None,) + tuple(graph.tensors[input_name].shape)[1:]
            for input_name in graph.inputs}
        session = _compile_session(
            build_smoke(name), "Ours",
            signature=signature, max_extent=max_extent)
        base = session.make_inputs(seed=0)

        def inputs_at(extent):
            return {key: np.resize(value, (extent,) + value.shape[1:])
                    for key, value in base.items()}

        # One request warms the top bucket (compiles its variant, warms
        # its pool); every later extent in the bucket is a new shape.
        session.execute_values([session._admit(inputs_at(bucket_lo))])
        symbolic_walls = []
        for extent in range(bucket_lo + 1, max_extent + 1):
            admitted = session._admit(inputs_at(extent))
            start = perf()
            session.execute_values([admitted])
            symbolic_walls.append(perf() - start)
        symbolic_ms = min(symbolic_walls) * 1e3

        cold_walls = []
        for index in range(repeats):
            extent = bucket_lo + 1 + index % (max_extent - bucket_lo)
            cold_graph = build_smoke(name, batch=extent)
            start = perf()
            cold = _compile_session(cold_graph, "Ours")
            cold.run(cold.make_inputs(seed=0))
            cold_walls.append(perf() - start)
        cold_ms = min(cold_walls) * 1e3

        speedup = cold_ms / symbolic_ms if symbolic_ms else 0.0
        best = max(best, speedup)
        per_model[name] = {
            "max_extent": max_extent,
            "new_shape_request_ms": round(symbolic_ms, 4),
            "cold_compile_request_ms": round(cold_ms, 4),
            "speedup": round(speedup, 2),
            "buckets_compiled": len(
                session.program.backend_cache.get("batching.symbolic", {})),
        }
    return {
        "models": per_model,
        "best_speedup": round(best, 2),
    }


#: Execution backends compared head-to-head on steady-state Session.run.
COMPARED_BACKENDS = ("numpy", "codegen")


def measure_backends(models: tuple[str, ...] = SERVE_MODELS,
                     backends: tuple[str, ...] = COMPARED_BACKENDS,
                     requests: int = 50, warmup: int = 5) -> dict:
    """Steady-state ``Session.run`` wall time per execution backend.

    One session per (model, backend) over the *same* compiled graph (the
    compile cache shares one lowering), each warmed to pool steady state,
    then timed over ``requests`` runs; best (minimum) wall per backend is
    reported with the speedup of every backend over the first one
    (``numpy``, the reference).  This is the registry comparison the
    codegen backend is benchmarked through - future backends only need a
    registry name to join the table.
    """
    perf = time.perf_counter
    reference = backends[0]
    per_model = {}
    best = 0.0
    for name in models:
        graph = build_smoke(name)
        entry: dict = {}
        walls: dict[str, float] = {}
        for backend in backends:
            session = _compile_session(graph, "Ours", backend=backend)
            inputs = session.make_inputs()
            for _ in range(warmup):
                session.run(inputs)
            backend_walls = []
            for _ in range(requests):
                start = perf()
                session.run(inputs)
                backend_walls.append(perf() - start)
            walls[backend] = min(backend_walls) * 1e3
            entry[f"{backend}_run_ms"] = round(walls[backend], 4)
        ref_ms = walls[reference]
        for backend in backends[1:]:
            speedup = ref_ms / walls[backend] if walls[backend] else 0.0
            entry[f"{backend}_speedup"] = round(speedup, 2)
            best = max(best, speedup)
        per_model[name] = entry
    return {
        "requests": requests,
        "backends": list(backends),
        "models": per_model,
        "best_speedup": round(best, 2),
    }


#: Kernel-bound smoke models the multi-process backend is benchmarked
#: on - the pair the parallel-scaling CI gate watches.
PARALLEL_MODELS = ("ViT", "Conformer")


def measure_parallel(models: tuple[str, ...] = PARALLEL_MODELS,
                     workers: tuple[int, ...] = (1, 2, 4),
                     requests: int = 64, max_batch_size: int = 32,
                     repeats: int = 5) -> dict:
    """Aggregate serving throughput of the multi-process backend.

    The baseline loops ``Session.run`` over ``requests`` prebuilt inputs
    in-process - one dispatch per request, no batching.  Each measured
    point puts the same burst through ``serve(backend="parallel",
    workers=W)``: the scheduler coalesces micro-batches, the dispatcher
    shards them across the worker pool, and each worker serves its shard
    as one stacked pass read from / written to shared memory.  Bursts
    are repeated and best-of-``repeats`` aggregate RPS is reported, with
    per-request outputs checked **byte-identical** against a
    single-process reference session (``parity``); ``codegen_parity``
    runs one burst through ``"parallel-codegen"`` and checks the same.
    """
    from ..api import InferenceRequest, ServeOptions, serve

    perf = time.perf_counter
    per_model = {}
    best = 0.0
    for name in models:
        graph = build_smoke(name)
        reference = _compile_session(graph, "Ours")
        inputs = [reference.make_inputs(seed=seed) for seed in range(requests)]
        expected = [reference.run(dict(values)) for values in inputs]
        for _ in range(8):
            reference.run(dict(inputs[0]))
        sequential_walls = []
        for _ in range(repeats):
            start = perf()
            for values in inputs:
                reference.run(dict(values))
            sequential_walls.append(perf() - start)
        sequential_s = min(sequential_walls)
        sequential_rps = requests / sequential_s if sequential_s else 0.0

        burst = [InferenceRequest(inputs=values) for values in inputs]
        parallel_rps: dict[str, float] = {}
        parity = True
        stacked = restarts = 0
        for count in workers:
            service = serve(graph, ServeOptions(
                backend="parallel", workers=count,
                max_batch_size=max_batch_size, max_wait_ms=5.0))
            try:
                walls = []
                responses = None
                for _ in range(repeats):
                    start = perf()
                    futures = [service.submit(r) for r in burst]
                    responses = [f.result() for f in futures]
                    walls.append(perf() - start)
                report = service.report()
                for response, outputs in zip(responses, expected):
                    for key, value in outputs.items():
                        if response.outputs[key].tobytes() != value.tobytes():
                            parity = False
            finally:
                service.close()
            wall_s = min(walls)
            parallel_rps[str(count)] = \
                round(requests / wall_s, 1) if wall_s else 0.0
            stacked, restarts = report.stacked_batches, report.worker_restarts

        service = serve(graph, ServeOptions(
            backend="parallel-codegen", workers=2,
            max_batch_size=max_batch_size, max_wait_ms=5.0))
        try:
            responses = [f.result()
                         for f in [service.submit(r) for r in burst]]
            codegen_parity = all(
                response.outputs[key].tobytes() == value.tobytes()
                for response, outputs in zip(responses, expected)
                for key, value in outputs.items())
        finally:
            service.close()

        top = max(parallel_rps.values())
        speedup = top / sequential_rps if sequential_rps else 0.0
        best = max(best, speedup)
        per_model[name] = {
            "sequential_rps": round(sequential_rps, 1),
            "parallel_rps": parallel_rps,
            "speedup": round(speedup, 2),
            "stacked_batches": stacked,
            "worker_restarts": restarts,
            "parity": parity,
            "codegen_parity": codegen_parity,
        }
    return {
        "requests": requests,
        "max_batch_size": max_batch_size,
        "workers": list(workers),
        "models": per_model,
        "best_speedup": round(best, 2),
    }


#: Dispatch-bound smoke models (tiny tensors, many steps): the regime the
#: scheduler's coalescing is built for.
SCHEDULER_MODELS = ("Pythia", "SD-TextEncoder")


def measure_scheduler(models: tuple[str, ...] = SCHEDULER_MODELS,
                      requests: int = 128, max_batch_size: int = 16,
                      repeats: int = 5, warmup: int = 8) -> dict:
    """Stacked micro-batch throughput vs. sequential ``Session.run``.

    The sequential baseline loops ``Session.run`` over ``requests``
    prebuilt inputs - the PR 3 idiom, one dispatch per request.  The
    scheduler path submits the same burst to a :class:`repro.api.Service`
    and waits for every future: the worker coalesces the queue into
    micro-batches of up to ``max_batch_size`` and - both models here
    being batch-stackable - serves each through ONE kernel pass per
    program step on a cached batch-N program variant (inputs stacked
    along the leading axis, outputs split per request).  Per-request
    dispatch AND per-request kernel invocation are paid per *batch*;
    ``stacked_batches`` in the per-model entry counts the passes that
    took the stacked path.  Both paths are warmed to pool steady state
    (warm-up also compiles the bucket variants) and best-of-``repeats``
    walls are reported.
    """
    from ..api import InferenceRequest, ServeOptions, serve

    perf = time.perf_counter
    per_model = {}
    best = 0.0
    for name in models:
        graph = build_smoke(name)
        session = _compile_session(graph, "Ours")
        inputs = session.make_inputs()
        for _ in range(warmup):
            session.run(inputs)
        sequential_walls = []
        for _ in range(repeats):
            start = perf()
            for _ in range(requests):
                session.run(inputs)
            sequential_walls.append(perf() - start)

        service = serve(graph, ServeOptions(
            max_batch_size=max_batch_size, max_wait_ms=5.0))
        burst = [InferenceRequest(inputs=inputs) for _ in range(requests)]
        for future in [service.submit(r) for r in burst[:max_batch_size]]:
            future.result()  # warm the service's private pool
        scheduler_walls = []
        for _ in range(repeats):
            start = perf()
            futures = [service.submit(r) for r in burst]
            for future in futures:
                future.result()
            scheduler_walls.append(perf() - start)
        report = service.report()
        service.close()

        sequential_s = min(sequential_walls)
        scheduler_s = min(scheduler_walls)
        speedup = sequential_s / scheduler_s if scheduler_s else 0.0
        best = max(best, speedup)
        per_model[name] = {
            "sequential_rps":
                round(requests / sequential_s, 1) if sequential_s else 0.0,
            "scheduler_rps":
                round(requests / scheduler_s, 1) if scheduler_s else 0.0,
            "speedup": round(speedup, 2),
            "mean_batch": round(report.mean_batch_size, 2),
            "stacked_batches": report.stacked_batches,
        }
    return {
        "requests": requests,
        "max_batch_size": max_batch_size,
        "models": per_model,
        "best_speedup": round(best, 2),
    }
