"""Table 1: latency and layout-transformation breakdown under MNN.

Reproduces the motivation study: older ConvNets spend almost no time on
layout transformations, Transformers spend roughly half to two thirds,
and execution speed (GMACS) collapses accordingly.
"""

from __future__ import annotations

from ..core.elimination import count_layout_transforms
from ..runtime.device import SD8GEN2
from .harness import Experiment, fmt, run_cell
from .paper_data import TABLE1

MODELS = ["ResNet50", "FST", "RegNet", "CrossFormer", "Swin", "AutoFormer",
          "CSwin", "SD-TextEncoder", "SD-UNet", "Pythia"]


def run(models: list[str] | None = None) -> Experiment:
    exp = Experiment(
        name="Table 1",
        description="latency and transformation breakdown under MNN "
                    "(Snapdragon 8 Gen 2)",
        headers=["Model", "MACs(G)", "#transform", "Lat(ms)", "Imp%", "Exp%",
                 "Comp%", "GMACS", "paper Lat", "paper Imp/Exp/Comp"],
    )
    for name in models or MODELS:
        cell = run_cell(name, "MNN", SD8GEN2)
        graph = cell.result.graph
        transforms = (count_layout_transforms(graph)
                      + cell.result.implicit_converts)
        report = cell.report
        bd = report.breakdown()
        paper = TABLE1.get(name)
        exp.rows.append([
            name,
            fmt(report.total_macs / 1e9),
            str(transforms),
            fmt(report.latency_ms, 0),
            fmt(bd["implicit"]), fmt(bd["explicit"]), fmt(bd["compute"]),
            fmt(report.gmacs_per_s, 0),
            fmt(paper[2], 0) if paper else "-",
            (f"{paper[3]:.0f}/{paper[4]:.0f}/{paper[5]:.0f}" if paper else "-"),
        ])
        exp.data[name] = {
            "macs_g": report.total_macs / 1e9,
            "transforms": transforms,
            "latency_ms": report.latency_ms,
            "implicit_pct": bd["implicit"],
            "explicit_pct": bd["explicit"],
            "compute_pct": bd["compute"],
            "gmacs": report.gmacs_per_s,
        }
    exp.notes.append(
        "shape check: transformer rows should spend >40% of latency on "
        "implicit+explicit transformations; ConvNet rows <25%")
    return exp


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
