"""Table 7: operator counts after optimization, per framework.

'-' marks models a framework cannot run (missing operator support).
SmartMem should produce the fewest operators everywhere, with 1.1-1.7x
fewer than DNNFusion on Transformer/Hybrid models.
"""

from __future__ import annotations

from ..baselines import ALL_FRAMEWORKS
from ..models import EVAL_MODELS
from ..runtime.device import SD8GEN2
from .harness import Experiment, cached_model, run_cell
from .paper_data import TABLE7


def run(models: list[str] | None = None) -> Experiment:
    exp = Experiment(
        name="Table 7",
        description="number of operators after each framework's optimization",
        headers=["Model", "#Ops(unopt)"] + list(ALL_FRAMEWORKS)
                + ["Ours/DNNF", "paper Ours/DNNF"],
    )
    for name in models or list(EVAL_MODELS):
        graph = cached_model(name)
        row = [name, str(len(graph.nodes))]
        counts: dict[str, int | None] = {}
        for fw in ALL_FRAMEWORKS:
            cell = run_cell(name, fw, SD8GEN2)
            counts[fw] = cell.operator_count if cell.supported else None
            row.append(str(counts[fw]) if counts[fw] is not None else "-")
        ratio = (counts["DNNF"] / counts["Ours"]
                 if counts.get("DNNF") and counts.get("Ours") else 0)
        paper_unopt, paper_counts = TABLE7.get(name, (None, {}))
        paper_ratio = (paper_counts.get("DNNF", 0) or 0) / paper_counts["Ours"] \
            if paper_counts.get("Ours") else 0
        row += [f"{ratio:.2f}x", f"{paper_ratio:.2f}x" if paper_ratio else "-"]
        exp.rows.append(row)
        exp.data[name] = {"unoptimized": len(graph.nodes), **counts}
    exp.notes.append("paper: SmartMem reduces operators by 21%-65% vs other "
                     "frameworks; up to 1.7x fewer than DNNFusion")
    return exp


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
