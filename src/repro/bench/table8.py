"""Table 8: end-to-end latency comparison on the Snapdragon 8 Gen 2 GPU.

The headline result: SmartMem vs five frameworks across 18 models, with
per-model speedup over DNNFusion and geometric-mean speedups.
"""

from __future__ import annotations

from ..baselines import ALL_FRAMEWORKS
from ..models import EVAL_MODELS
from ..runtime.device import SD8GEN2
from .harness import Experiment, fmt, geomean, run_cell
from .paper_data import TABLE8, TABLE8_GEOMEAN


def run(models: list[str] | None = None) -> Experiment:
    exp = Experiment(
        name="Table 8",
        description="end-to-end latency (ms) on Snapdragon 8 Gen 2 GPU",
        headers=["Model", "MACs(G)"] + list(ALL_FRAMEWORKS)
                + ["GMACS(Ours)", "vs DNNF", "paper vs DNNF"],
    )
    ratios: dict[str, list[float]] = {fw: [] for fw in ALL_FRAMEWORKS}
    for name in models or list(EVAL_MODELS):
        lat: dict[str, float | None] = {}
        ours_report = None
        for fw in ALL_FRAMEWORKS:
            cell = run_cell(name, fw, SD8GEN2)
            lat[fw] = cell.latency_ms
            if fw == "Ours":
                ours_report = cell.report
        ours = lat["Ours"]
        for fw in ALL_FRAMEWORKS:
            if lat[fw] is not None and ours:
                ratios[fw].append(lat[fw] / ours)
        speedup = lat["DNNF"] / ours if lat["DNNF"] and ours else 0
        paper = TABLE8.get(name, {})
        paper_speedup = (paper.get("DNNF", 0) or 0) / paper["Ours"] \
            if paper.get("Ours") else 0
        exp.rows.append(
            [name, fmt(ours_report.total_macs / 1e9)]
            + [fmt(lat[fw]) for fw in ALL_FRAMEWORKS]
            + [fmt(ours_report.gmacs_per_s, 0), f"{speedup:.1f}x",
               f"{paper_speedup:.1f}x" if paper_speedup else "-"]
        )
        exp.data[name] = dict(lat)
    gm_row = ["Geo-mean speedup", ""]
    for fw in ALL_FRAMEWORKS:
        gm = geomean(ratios[fw])
        exp.data.setdefault("geomean", {})[fw] = gm
        gm_row.append(f"{gm:.1f}x")
    gm_row += ["", "", ""]
    exp.rows.append(gm_row)
    exp.notes.append(
        "paper geo-mean speedups over Ours: "
        + ", ".join(f"{k} {v}x" for k, v in TABLE8_GEOMEAN.items()))
    return exp


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
