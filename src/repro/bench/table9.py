"""Table 9: desktop-level GPU (Tesla V100, FP32).

SmartMem's LTE + layout selection implemented on top of a
TorchInductor-class compiler, without the mobile-only texture
optimizations.  Paper: Swin 7.5 -> 6.1 ms (1.23x), AutoFormer
5.1 -> 4.6 ms (1.11x).
"""

from __future__ import annotations

from ..runtime.device import V100
from .harness import Experiment, cached_fp32_model, fmt, run_cell
from .paper_data import TABLE9

MODELS = ["Swin", "AutoFormer"]


def run(models: list[str] | None = None) -> Experiment:
    exp = Experiment(
        name="Table 9",
        description="V100 FP32 latency (ms): TorchInductor vs Ours",
        headers=["Model", "TorchInductor", "Ours", "speedup",
                 "paper TI", "paper Ours", "paper speedup"],
    )
    for name in models or MODELS:
        graph = cached_fp32_model(name)
        ti = run_cell(graph, "TorchInductor", V100)
        ours = run_cell(graph, "Ours", V100)
        speedup = ti.latency_ms / ours.latency_ms
        paper = TABLE9.get(name, {})
        paper_speedup = (paper.get("TorchInductor", 0)
                         / paper.get("Ours", 1)) if paper else 0
        exp.rows.append([
            name, fmt(ti.latency_ms), fmt(ours.latency_ms),
            f"{speedup:.2f}x",
            fmt(paper.get("TorchInductor")), fmt(paper.get("Ours")),
            f"{paper_speedup:.2f}x" if paper_speedup else "-",
        ])
        exp.data[name] = {"TorchInductor": ti.latency_ms,
                          "Ours": ours.latency_ms, "speedup": speedup}
    exp.notes.append("desktop gains are modest by design: no texture path, "
                     "higher bandwidth, stronger baseline kernels")
    return exp


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
