"""SmartMem's core optimizations: classification, combination analysis,
fusion, layout transformation elimination, and layout selection."""

from .auto_classify import (
    ClassificationEvidence, agreement_with_registry, auto_classify,
    auto_classify_all, probe_layout_sensitivity,
)
from .classification import classify, classify_all, quadrant_histogram
from .combination import (
    Action, CombinationDecision, SearchPolicy, action_for, decision_for,
    needs_layout_search,
)
from .elimination import (
    EliminationStats, count_layout_transforms, eliminate_dead_nodes,
    eliminate_layout_transforms,
)
from .fusion import (
    DNNFUSION_POLICY, FusionPolicy, FusionStats, MNN_POLICY, NCNN_POLICY,
    SMARTMEM_POLICY, TFLITE_POLICY, TVM_POLICY, fuse, groups_of,
)
from .layout_selection import (
    LayoutPlan, consumer_preferences, default_plan, select_layouts,
)
from .passes import (
    Pass, PassContext, PassManager, PassRecord, available_passes,
    canonical_passes, clear_pass_timings, make_pass, pass_timing_stats,
    register_pass,
)
from .pipeline import OptimizeResult, PipelineStages, smartmem_optimize

__all__ = [
    "Action", "ClassificationEvidence", "CombinationDecision",
    "DNNFUSION_POLICY", "EliminationStats",
    "agreement_with_registry", "auto_classify", "auto_classify_all",
    "probe_layout_sensitivity",
    "FusionPolicy", "FusionStats", "LayoutPlan", "MNN_POLICY", "NCNN_POLICY",
    "OptimizeResult", "Pass", "PassContext", "PassManager", "PassRecord",
    "PipelineStages", "SMARTMEM_POLICY", "SearchPolicy",
    "TFLITE_POLICY", "TVM_POLICY", "action_for", "available_passes",
    "canonical_passes", "classify", "classify_all", "clear_pass_timings",
    "consumer_preferences", "count_layout_transforms", "decision_for",
    "default_plan", "eliminate_dead_nodes", "eliminate_layout_transforms",
    "fuse", "groups_of", "make_pass", "needs_layout_search",
    "pass_timing_stats", "quadrant_histogram", "register_pass",
    "select_layouts", "smartmem_optimize",
]
