"""SmartMem's core optimizations: classification, combination analysis,
fusion, layout transformation elimination, and layout selection."""

from .auto_classify import (
    ClassificationEvidence, agreement_with_registry, auto_classify,
    auto_classify_all, probe_layout_sensitivity,
)
from .classification import classify, classify_all, quadrant_histogram
from .combination import (
    Action, CombinationDecision, SearchPolicy, action_for, decision_for,
    needs_layout_search,
)
from .elimination import (
    EliminationStats, count_layout_transforms, eliminate_dead_nodes,
    eliminate_layout_transforms,
)
from .fusion import (
    DNNFUSION_POLICY, FusionPolicy, FusionStats, MNN_POLICY, NCNN_POLICY,
    SMARTMEM_POLICY, TFLITE_POLICY, TVM_POLICY, fuse, groups_of,
)
from .layout_selection import (
    LayoutPlan, consumer_preferences, default_plan, select_layouts,
)
from .pipeline import OptimizeResult, PipelineStages, smartmem_optimize

__all__ = [
    "Action", "ClassificationEvidence", "CombinationDecision",
    "DNNFUSION_POLICY", "EliminationStats",
    "agreement_with_registry", "auto_classify", "auto_classify_all",
    "probe_layout_sensitivity",
    "FusionPolicy", "FusionStats", "LayoutPlan", "MNN_POLICY", "NCNN_POLICY",
    "OptimizeResult", "PipelineStages", "SMARTMEM_POLICY", "SearchPolicy",
    "TFLITE_POLICY", "TVM_POLICY", "action_for", "classify", "classify_all",
    "consumer_preferences", "count_layout_transforms", "decision_for",
    "default_plan", "eliminate_dead_nodes", "eliminate_layout_transforms",
    "fuse", "groups_of", "needs_layout_search", "quadrant_histogram",
    "select_layouts", "smartmem_optimize",
]
