"""Automatic operator categorization (Section 6, "Future Work").

The paper proposes deriving the four-quadrant classification
automatically instead of hand-labeling each operator: "by utilizing
established intermediate representations ... it is possible to create a
tool that automates and adapts for operator categorization."

This module implements that tool over our own IR, using two independent
probes per operator instance:

* **Input-layout dependence** (ILD vs ILI) - *behavioural* probe: run the
  operator's access pattern against the exact cache simulator under two
  input layouts (reduction dim contiguous vs strided).  If the miss
  counts diverge materially, performance depends on the input layout.
  A *structural* shortcut handles the common cases: any operator with
  declared reduction dimensions is ILD (temporal reuse / aggregation);
  pure one-to-one traversals are ILI.

* **Output-layout flexibility** (Variable vs Fixed) - *semantic* probe:
  an operator's output layout is customizable iff permuting the
  iteration order changes only the order results are produced, never
  their addresses relative to the input.  Structurally: operators whose
  output coordinates are a fixed function of input coordinates
  (relayouts, selections, gathers) are Fixed; operators that *compute*
  values (so the implementation may store them in any order) are
  Variable.

``auto_classify`` must agree with the hand-labeled registry - that
agreement is enforced by the test suite, which is exactly the validation
the paper's future-work section calls for.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.graph import Graph, Node
from ..ir.layout import Layout
from ..ir.ops import Mapping, Quadrant, get_op
from ..memory.address import TensorStorage, traversal
from ..memory.cache import SetAssociativeCache


@dataclass(frozen=True)
class ClassificationEvidence:
    """Why the auto-classifier placed an operator where it did."""

    op_type: str
    quadrant: Quadrant
    input_layout_dependent: bool
    output_variable: bool
    reason_ild: str
    reason_output: str


def _structural_ild(graph: Graph, node: Node) -> tuple[bool, str]:
    """Does computation performance depend on the input layout?"""
    opdef = node.opdef
    in_shapes = [node.view_for(i, graph.shape(t)).out_shape
                 for i, t in enumerate(node.inputs)]
    out_shapes = [graph.shape(t) for t in node.outputs]
    rdims = opdef.reduction_dims(in_shapes, out_shapes, node.attrs)
    if any(rdims.values()):
        return True, "aggregates along reduction dimensions (temporal reuse)"
    if opdef.macs(in_shapes, out_shapes, node.attrs) > 0:
        return True, "MAC-bearing operator with data reuse"
    if opdef.is_layout_transform:
        return True, ("moves every element to a layout-determined position; "
                      "traversal cost tracks the input layout")
    if opdef.mapping is Mapping.ONE2ONE:
        return False, "single-touch elementwise traversal in storage order"
    if opdef.mapping in (Mapping.REORGANIZE, Mapping.EXPAND):
        return False, "simple selection/copy; insensitive to input layout"
    return False, "no reuse detected"


def _structural_output_variable(node: Node) -> tuple[bool, str]:
    """Can the implementation choose the output layout?"""
    opdef = node.opdef
    if opdef.is_layout_transform:
        return False, ("output layout is the operator's *definition*; "
                       "changing it changes semantics")
    if node.op_type in ("slice", "gather", "embedding", "pad"):
        return False, "selection output mirrors the input layout"
    return True, ("operator computes fresh values; any store order is a "
                  "legal implementation (sigma permutation of Table 4)")


def probe_layout_sensitivity(
    shape: tuple[int, ...],
    reduction_dim: int,
    reuse: int = 4,
    cache_bytes: int = 4096,
    line_bytes: int = 64,
    elem_bytes: int = 2,
) -> float:
    """Behavioural ILD probe: miss-count ratio strided/contiguous.

    Simulates a kernel that walks ``shape`` re-reading each reduction
    slice ``reuse`` times (the temporal-reuse signature of ILD operators)
    under (a) a layout storing ``reduction_dim`` contiguously and (b) a
    layout storing it outermost.  A ratio well above 1 marks the operator
    as input-layout dependent.
    """
    rank = len(shape)
    contiguous = Layout.buffer(
        tuple([d for d in range(rank) if d != reduction_dim] + [reduction_dim]))
    strided = Layout.buffer(
        tuple([reduction_dim] + [d for d in range(rank) if d != reduction_dim]))
    misses = []
    for layout in (contiguous, strided):
        storage = TensorStorage(shape, layout, elem_bytes)
        cache = SetAssociativeCache(cache_bytes, line_bytes)
        order = tuple([d for d in range(rank) if d != reduction_dim]
                      + [reduction_dim])
        for _ in range(reuse):
            for coords in traversal(shape, order):
                cache.access(storage.address_of(coords))
        misses.append(cache.stats.misses)
    return misses[1] / max(1, misses[0])


def auto_classify(graph: Graph, node: Node) -> ClassificationEvidence:
    """Derive the quadrant of one operator instance from first principles."""
    ild, reason_ild = _structural_ild(graph, node)
    variable, reason_out = _structural_output_variable(node)
    if ild and variable:
        quadrant = Quadrant.ILD_VARIABLE
    elif ild:
        quadrant = Quadrant.ILD_FIXED
    elif variable:
        quadrant = Quadrant.ILI_VARIABLE
    else:
        quadrant = Quadrant.ILI_FIXED
    return ClassificationEvidence(
        op_type=node.op_type,
        quadrant=quadrant,
        input_layout_dependent=ild,
        output_variable=variable,
        reason_ild=reason_ild,
        reason_output=reason_out,
    )


def auto_classify_all(graph: Graph) -> dict[str, ClassificationEvidence]:
    return {node.id: auto_classify(graph, node) for node in graph.iter_nodes()}


def agreement_with_registry(graph: Graph) -> float:
    """Fraction of operators where the derived quadrant matches the
    hand-labeled registry default (the paper's validation criterion)."""
    total = 0
    agree = 0
    for node in graph.iter_nodes():
        evidence = auto_classify(graph, node)
        total += 1
        if evidence.quadrant is get_op(node.op_type).quadrant:
            agree += 1
    return agree / total if total else 1.0
