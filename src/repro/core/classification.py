"""Operator classification (Section 3.1, Tables 3 and 4).

Operators are classified along two axes:

* **Input layout dependence**: whether computation performance depends on
  the input layout (ILD) or not (ILI).  Compute ops with temporal reuse
  (Conv, MatMul) or aggregations (Softmax, LayerNorm) are ILD; pure
  elementwise traversals are ILI.
* **Output layout flexibility**: whether the output layout can be
  customized by the implementation (Variable) or is fixed by the operator
  definition (Fixed).  Relayout ops (Reshape, Transpose, DtoS/StoD) and
  selections (Slice, Gather) have Fixed output layouts.

The default quadrant comes from each OpDef; the classifier applies the
context-dependent refinements the paper describes ("one operator may be
placed in different quadrants depending on whether the layout of its
different operands is the same or different").
"""

from __future__ import annotations

from ..ir.graph import Graph, Node
from ..ir.ops import Quadrant


def classify(graph: Graph, node: Node) -> Quadrant:
    """Quadrant of ``node`` in its graph context.

    Refinements over the static default:

    * A ``binary`` op whose operands cannot share a physical layout
      (different shapes beyond broadcast of parameters) becomes input
      layout *dependent*: traversal order must honour at least one
      operand's layout, so performance depends on it (Table 3's Add is
      ILI only when both inputs share layout ``l1``).
    * ``concat`` along the innermost-varying data becomes ILD when its
      inputs disagree in shape rank (defensive; does not occur in the
      model zoo).

    Memoized per graph generation; any rewrite that rewires the node's
    inputs invalidates the entry.
    """
    cache = graph.analysis_cache()
    key = ("quadrant", node.id)
    found = cache.get(key)
    if found is None:
        found = _classify(graph, node)
        cache[key] = found
    return found


def _classify(graph: Graph, node: Node) -> Quadrant:
    quadrant = node.opdef.quadrant
    if node.op_type == "binary":
        shapes = []
        for name in node.inputs:
            spec = graph.tensors[name]
            if not spec.is_param:
                shapes.append(spec.shape)
        if len(shapes) == 2 and shapes[0] != shapes[1]:
            # Broadcast between two activations: traversal must follow the
            # larger operand's layout; performance is layout dependent.
            return Quadrant.ILD_VARIABLE
    return quadrant


def classify_all(graph: Graph) -> dict[str, Quadrant]:
    """Classification for every node, keyed by node id."""
    return {node.id: classify(graph, node) for node in graph.iter_nodes()}


def quadrant_histogram(graph: Graph) -> dict[Quadrant, int]:
    """How many operators fall in each quadrant (used in reports/tests)."""
    hist: dict[Quadrant, int] = {q: 0 for q in Quadrant}
    for quadrant in classify_all(graph).values():
        hist[quadrant] += 1
    return hist
