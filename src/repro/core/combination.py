"""Producer-consumer combination analysis (Section 3.2, Tables 5 and 6).

For each edge in the computational graph, the pair (first = producer
quadrant, second = consumer quadrant) determines:

* the *action* (Table 5): keep both, try to fuse, eliminate the first or
  the second operator, or eliminate both;
* the *resulting operator type* and the *layout search policy*
  (Table 6): whose input/output layouts must be searched afterwards.

These tables drive both the elimination pass (which operators become
index computation) and layout selection (which edges need a search).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..ir.ops import Quadrant


class Action(enum.Enum):
    """Computation optimization per operator pair (Table 5)."""

    KEEP_BOTH = "keep both"
    TRY_FUSE = "try fuse"
    ELIMINATE_SECOND = "eliminate 2nd"
    ELIMINATE_FIRST = "eliminate 1st"
    ELIMINATE_BOTH = "eliminate both"


class SearchPolicy(enum.Enum):
    """Layout search requirement after the action (Table 6)."""

    SEARCH_BOTH = "search both"
    SEARCH_FUSED = "search fused"
    SEARCH_FIRST = "search 1st"
    SEARCH_SECOND = "search 2nd"
    NO_SEARCH = "no search"


@dataclass(frozen=True)
class CombinationDecision:
    action: Action
    result_type: Quadrant | None
    search: SearchPolicy


_Q = Quadrant
# Table 5, rows = first (producer), columns = second (consumer).
_ACTIONS: dict[tuple[Quadrant, Quadrant], Action] = {
    (_Q.ILD_VARIABLE, _Q.ILD_VARIABLE): Action.KEEP_BOTH,
    (_Q.ILD_VARIABLE, _Q.ILI_VARIABLE): Action.TRY_FUSE,
    (_Q.ILD_VARIABLE, _Q.ILD_FIXED): Action.ELIMINATE_SECOND,
    (_Q.ILD_VARIABLE, _Q.ILI_FIXED): Action.ELIMINATE_SECOND,
    (_Q.ILI_VARIABLE, _Q.ILD_VARIABLE): Action.TRY_FUSE,
    (_Q.ILI_VARIABLE, _Q.ILI_VARIABLE): Action.TRY_FUSE,
    (_Q.ILI_VARIABLE, _Q.ILD_FIXED): Action.ELIMINATE_SECOND,
    (_Q.ILI_VARIABLE, _Q.ILI_FIXED): Action.ELIMINATE_SECOND,
    (_Q.ILD_FIXED, _Q.ILD_VARIABLE): Action.ELIMINATE_FIRST,
    (_Q.ILD_FIXED, _Q.ILI_VARIABLE): Action.ELIMINATE_FIRST,
    (_Q.ILD_FIXED, _Q.ILD_FIXED): Action.ELIMINATE_BOTH,
    (_Q.ILD_FIXED, _Q.ILI_FIXED): Action.ELIMINATE_BOTH,
    (_Q.ILI_FIXED, _Q.ILD_VARIABLE): Action.ELIMINATE_FIRST,
    (_Q.ILI_FIXED, _Q.ILI_VARIABLE): Action.ELIMINATE_FIRST,
    (_Q.ILI_FIXED, _Q.ILD_FIXED): Action.ELIMINATE_BOTH,
    (_Q.ILI_FIXED, _Q.ILI_FIXED): Action.ELIMINATE_BOTH,
}

# Table 6, same indexing: (resulting type, search policy).  N/A cells (a
# Fixed op following an eliminated Fixed op) carry no type.
_DECISIONS: dict[tuple[Quadrant, Quadrant], tuple[Quadrant | None, SearchPolicy]] = {
    (_Q.ILD_VARIABLE, _Q.ILD_VARIABLE): (_Q.ILD_VARIABLE, SearchPolicy.SEARCH_BOTH),
    (_Q.ILD_VARIABLE, _Q.ILI_VARIABLE): (_Q.ILD_VARIABLE, SearchPolicy.SEARCH_FUSED),
    (_Q.ILD_VARIABLE, _Q.ILD_FIXED): (_Q.ILD_VARIABLE, SearchPolicy.SEARCH_FIRST),
    (_Q.ILD_VARIABLE, _Q.ILI_FIXED): (_Q.ILD_VARIABLE, SearchPolicy.SEARCH_FIRST),
    (_Q.ILI_VARIABLE, _Q.ILD_VARIABLE): (_Q.ILD_VARIABLE, SearchPolicy.SEARCH_FUSED),
    (_Q.ILI_VARIABLE, _Q.ILI_VARIABLE): (_Q.ILI_VARIABLE, SearchPolicy.NO_SEARCH),
    (_Q.ILI_VARIABLE, _Q.ILD_FIXED): (_Q.ILI_VARIABLE, SearchPolicy.NO_SEARCH),
    (_Q.ILI_VARIABLE, _Q.ILI_FIXED): (_Q.ILI_VARIABLE, SearchPolicy.NO_SEARCH),
    (_Q.ILD_FIXED, _Q.ILD_VARIABLE): (_Q.ILD_VARIABLE, SearchPolicy.SEARCH_SECOND),
    (_Q.ILD_FIXED, _Q.ILI_VARIABLE): (_Q.ILI_VARIABLE, SearchPolicy.NO_SEARCH),
    (_Q.ILD_FIXED, _Q.ILD_FIXED): (None, SearchPolicy.NO_SEARCH),
    (_Q.ILD_FIXED, _Q.ILI_FIXED): (None, SearchPolicy.NO_SEARCH),
    (_Q.ILI_FIXED, _Q.ILD_VARIABLE): (_Q.ILD_VARIABLE, SearchPolicy.SEARCH_SECOND),
    (_Q.ILI_FIXED, _Q.ILI_VARIABLE): (_Q.ILI_VARIABLE, SearchPolicy.NO_SEARCH),
    (_Q.ILI_FIXED, _Q.ILD_FIXED): (None, SearchPolicy.NO_SEARCH),
    (_Q.ILI_FIXED, _Q.ILI_FIXED): (None, SearchPolicy.NO_SEARCH),
}


def action_for(first: Quadrant, second: Quadrant) -> Action:
    """Table 5 lookup."""
    return _ACTIONS[(first, second)]


def decision_for(first: Quadrant, second: Quadrant) -> CombinationDecision:
    """Combined Table 5 + Table 6 lookup."""
    result_type, search = _DECISIONS[(first, second)]
    return CombinationDecision(_ACTIONS[(first, second)], result_type, search)


def needs_layout_search(first: Quadrant, second: Quadrant) -> bool:
    """True iff the pair involves a layout search (only ILD&Variable pairs
    trigger one; Section 3.2 'the layout search only happens for the
    operator pairs involving ILD & Variable')."""
    return decision_for(first, second).search is not SearchPolicy.NO_SEARCH
