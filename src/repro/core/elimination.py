"""Layout Transformation Elimination (LTE; Section 3.2.1).

Operators with a *Fixed* output layout - Reshape, Transpose,
DepthToSpace/SpaceToDepth, and Slice - do not compute anything: they only
rearrange or select data.  Table 5 prescribes eliminating them whenever
they appear on a producer-consumer edge.  Elimination replaces each such
operator with *index computation* in its consumers: the consumer reads the
transform's input tensor directly through a ViewChain, whose composed
IndexMap is then strength-reduced (Index Comprehension).

The pass is semantics-preserving by construction: the reference executor
applies the attached views before running each kernel, and the test suite
checks optimized outputs equal unoptimized outputs on every model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.graph import Graph, Node
from ..ir.view import ViewChain, lower_depth_to_space, lower_space_to_depth

ELIMINABLE_DEFAULT = ("reshape", "transpose", "depth_to_space", "space_to_depth")


@dataclass
class EliminationStats:
    """What LTE removed and what it left behind."""

    eliminated: dict[str, int] = field(default_factory=dict)
    views_attached: int = 0
    kept_graph_outputs: int = 0

    @property
    def total_eliminated(self) -> int:
        return sum(self.eliminated.values())


def _own_view(graph: Graph, node: Node) -> ViewChain:
    """The transform ``node`` performs, prefixed by any view already pushed
    onto its input (eliminating upstream transforms may have put one there)."""
    in_shape = graph.shape(node.inputs[0])
    chain = node.input_views.get(0, ViewChain.identity(in_shape))
    if node.op_type == "reshape":
        return chain.then_reshape(graph.shape(node.outputs[0]))
    if node.op_type == "transpose":
        return chain.then_transpose(node.attrs["perm"])
    if node.op_type == "depth_to_space":
        return chain.concat(lower_depth_to_space(chain.out_shape,
                                                 int(node.attrs.get("block", 2))))
    if node.op_type == "space_to_depth":
        return chain.concat(lower_space_to_depth(chain.out_shape,
                                                 int(node.attrs.get("block", 2))))
    if node.op_type == "slice":
        shape = chain.out_shape
        starts = node.attrs["starts"]
        stops = node.attrs["stops"]
        steps = node.attrs.get("steps", (1,) * len(shape))
        triples = []
        for d, start, stop, step in zip(shape, starts, stops, steps):
            start = start % (d + 1)
            stop = min(stop, d)
            triples.append((start, stop, step))
        return chain.then_slice(triples)
    raise ValueError(f"{node.op_type} is not an eliminable transform")


def eliminate_layout_transforms(
    graph: Graph,
    include_slice: bool = True,
) -> EliminationStats:
    """Remove layout-transform operators in-place, pushing views downstream.

    A transform whose output is a graph output must stay materialized (its
    value leaves the graph), but it still absorbs any upstream transforms
    through its own input view.
    """
    targets = set(ELIMINABLE_DEFAULT)
    if include_slice:
        targets.add("slice")
    stats = EliminationStats()

    changed = True
    while changed:
        changed = False
        for node in list(graph.topo_order()):
            if node.op_type not in targets:
                continue
            out = node.outputs[0]
            if out in graph.outputs:
                stats.kept_graph_outputs += 1
                continue
            consumers = graph.consumers(out)
            if not consumers:
                # dead transform: drop it outright
                graph.remove_node(node.id)
                stats.eliminated[node.op_type] = stats.eliminated.get(node.op_type, 0) + 1
                changed = True
                continue
            view = _own_view(graph, node)
            source = node.inputs[0]
            for consumer, idx in consumers:
                existing = consumer.input_views.get(idx)
                combined = view.concat(existing) if existing is not None else view
                graph.replace_input(consumer, idx, source)
                if combined.is_identity:
                    consumer.input_views.pop(idx, None)
                else:
                    consumer.input_views[idx] = combined
                    stats.views_attached += 1
            graph.remove_node(node.id)
            stats.eliminated[node.op_type] = stats.eliminated.get(node.op_type, 0) + 1
            changed = True
    return stats


def eliminate_dead_nodes(graph: Graph) -> int:
    """Remove nodes whose outputs are never consumed nor exported."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for node in list(graph.iter_nodes()):
            if any(out in graph.outputs for out in node.outputs):
                continue
            if any(graph.consumers(out) for out in node.outputs):
                continue
            graph.remove_node(node.id)
            removed += 1
            changed = True
    return removed


def count_layout_transforms(graph: Graph, include_slice: bool = False) -> int:
    """How many explicit layout-transform operators remain in the graph."""
    kinds = set(ELIMINABLE_DEFAULT)
    if include_slice:
        kinds.add("slice")
    return sum(1 for node in graph.iter_nodes() if node.op_type in kinds)
