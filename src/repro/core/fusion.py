"""Operator fusion engine.

SmartMem builds on DNNFusion-style fusion (Section 3.2: "SmartMem relies
on the techniques based on the DNNFusion project to decide if an operator
fusion is legal").  The same engine, configured with different policies,
also reproduces the baselines' fusion behaviour:

* fixed-pattern policies (MNN / NCNN / TFLite): only hard-coded short
  sequences such as Conv+ReLU are merged;
* rule-based policies (TVM): elementwise chains and compute-op epilogues;
* mapping-type policies (DNNFusion and SmartMem): general prologue /
  epilogue / reorganize fusion driven by each operator's mapping class.

Fusion is expressed as *grouping*: nodes sharing ``node.group`` execute as
one kernel.  Grouping never changes numerics, so the reference executor
verifies fused graphs unchanged; the cost model charges one kernel launch
per group and only counts traffic crossing group boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.graph import Graph, Node
from ..ir.ops import Mapping
from ..ir.pattern import find_chains

HEAVY = (Mapping.SHUFFLE, Mapping.REDUCE)
LIGHT = (Mapping.ONE2ONE,)
MOVE = (Mapping.REORGANIZE, Mapping.EXPAND)
TRANSPOSE_LIKE = frozenset({
    "transpose", "depth_to_space", "space_to_depth", "layout_convert",
})


@dataclass(frozen=True)
class FusionPolicy:
    """What a framework's fusion engine is willing to merge."""

    name: str
    patterns: tuple[tuple[str, ...], ...] = ()
    """Fixed operator sequences always merged (all frameworks have some)."""
    elementwise_chains: bool = False
    """Merge adjacent ONE2ONE operators."""
    prologue: bool = False
    """Merge a ONE2ONE producer into a heavy consumer."""
    epilogue: bool = False
    """Merge a ONE2ONE consumer into a heavy producer."""
    reorganize_with_elementwise: bool = False
    """Merge REORGANIZE/EXPAND ops with adjacent ONE2ONE ops (DNNFusion's
    mapping analysis allows this; fixed-pattern frameworks do not).
    Transpose-like shufflers (transpose, depth/space conversions, layout
    converts) never merge: their output order is incompatible with a
    fused traversal unless the layout itself is rewritten - which is
    exactly the elimination step only SmartMem performs."""
    max_heavy_per_group: int = 1
    """At most this many compute-heavy ops per kernel."""


# Policies mirroring the frameworks compared in the paper.  Pattern lists
# follow each framework's documented fusions.
MNN_POLICY = FusionPolicy(
    name="mnn",
    patterns=(
        ("conv2d", "unary"), ("conv2d", "binary"), ("dense", "unary"),
        ("matmul", "binary"), ("binary", "unary"),
    ),
)

NCNN_POLICY = FusionPolicy(
    name="ncnn",
    patterns=(("conv2d", "unary"), ("conv2d", "binary", "unary"),
              ("dense", "unary")),
)

TFLITE_POLICY = FusionPolicy(
    name="tflite",
    patterns=(("conv2d", "unary"), ("dense", "unary"), ("binary", "unary")),
)

TVM_POLICY = FusionPolicy(
    name="tvm",
    elementwise_chains=True,
    epilogue=True,
    prologue=False,
    reorganize_with_elementwise=False,
)

DNNFUSION_POLICY = FusionPolicy(
    name="dnnfusion",
    elementwise_chains=True,
    prologue=True,
    epilogue=True,
    reorganize_with_elementwise=True,
)

SMARTMEM_POLICY = DNNFUSION_POLICY  # SmartMem inherits DNNFusion's engine.


@dataclass
class FusionStats:
    policy: str
    nodes: int = 0
    groups: int = 0
    merged_edges: int = 0


class _UnionFind:
    def __init__(self, ids):
        self.parent = {i: i for i in ids}
        self.heavy_count: dict[str, int] = {}
        self.size: dict[str, int] = {i: 1 for i in ids}

    def find(self, x: str) -> str:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        self.parent[ra] = rb
        self.heavy_count[rb] = self.heavy_count.get(ra, 0) + self.heavy_count.get(rb, 0)
        self.size[rb] = self.size[ra] + self.size[rb]


def _is_heavy(node: Node) -> bool:
    return node.opdef.mapping in HEAVY


def fuse(graph: Graph, policy: FusionPolicy) -> FusionStats:
    """Assign fusion groups in-place according to ``policy``."""
    order = graph.topo_order()
    uf = _UnionFind([n.id for n in order])
    for node in order:
        if _is_heavy(node):
            uf.heavy_count[node.id] = 1
    stats = FusionStats(policy=policy.name, nodes=len(order))

    def try_merge(producer: Node, consumer: Node) -> bool:
        rp, rc = uf.find(producer.id), uf.find(consumer.id)
        if rp == rc:
            return False
        if (uf.heavy_count.get(rp, 0) + uf.heavy_count.get(rc, 0)
                > policy.max_heavy_per_group):
            return False
        uf.union(producer.id, consumer.id)
        stats.merged_edges += 1
        return True

    # 1. fixed patterns (all frameworks)
    for pattern in policy.patterns:
        for match in find_chains(graph, list(pattern)):
            for first, second in zip(match.nodes, match.nodes[1:]):
                try_merge(first, second)

    # 2. general rules over single-consumer edges, in topo order
    if (policy.elementwise_chains or policy.prologue or policy.epilogue
            or policy.reorganize_with_elementwise):
        consumer_map = graph.consumer_map()
        nodes = graph.nodes
        for producer in order:
            for out in producer.outputs:
                if out in graph.outputs:
                    continue
                entries = consumer_map.get(out, ())
                if len(entries) != 1:
                    continue
                consumer = nodes[entries[0][0]]
                pm, cm = producer.opdef.mapping, consumer.opdef.mapping
                ok = False
                if pm in LIGHT and cm in LIGHT:
                    ok = policy.elementwise_chains
                elif pm in LIGHT and cm in HEAVY:
                    ok = policy.prologue
                elif pm in HEAVY and cm in LIGHT:
                    ok = policy.epilogue
                elif pm in MOVE and cm in LIGHT or pm in LIGHT and cm in MOVE:
                    ok = (policy.reorganize_with_elementwise
                          and producer.op_type not in TRANSPOSE_LIKE
                          and consumer.op_type not in TRANSPOSE_LIKE)
                elif pm in MOVE and cm in MOVE:
                    ok = (policy.reorganize_with_elementwise
                          and producer.op_type not in TRANSPOSE_LIKE
                          and consumer.op_type not in TRANSPOSE_LIKE)
                if ok:
                    try_merge(producer, consumer)

    # 3. materialize group ids
    root_to_group: dict[str, int] = {}
    for node in order:
        root = uf.find(node.id)
        if root not in root_to_group:
            root_to_group[root] = len(root_to_group)
        node.group = root_to_group[root]
    stats.groups = len(root_to_group)
    return stats


def groups_of(graph: Graph) -> dict[int, list[Node]]:
    """Nodes per fusion group, in topological order within each group."""
    out: dict[int, list[Node]] = {}
    for node in graph.topo_order():
        if node.group is None:
            raise ValueError(f"node {node.id} has no fusion group; run fuse() first")
        out.setdefault(node.group, []).append(node)
    return out
