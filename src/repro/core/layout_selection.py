"""Reduction-dimension-based layout selection (Section 3.2.2).

After fusion and elimination, preserved operators are ILD & Variable; for
each producer-consumer edge the producer is forced to emit the layout the
*consumer* prefers ("sub-optimally writing results turns out to be better
than sub-optimally reading input data").  The preferred layout stores the
consumer's reduction dimension(s) contiguously.

When a producer has several consumers, their reduction-dimension demands
are merged: the first *k* distinct dimensions map onto the k directly
addressable axes of the memory (k=2 for 2.5D texture memory - the vec4
axis and one texture axis; k=1 for 1D buffers).  Demands beyond k force
redundant copies of the tensor in additional layouts (Section 4.6
discusses why these copies stay small in practice).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

from ..indexexpr.index_map import IndexMap
from ..ir.graph import Graph, Node
from ..ir.layout import Layout
from ..ir.ops import OpDef, Quadrant
from ..ir.view import ViewChain
from .classification import classify


@functools.lru_cache(maxsize=4096)
def _cached_index_map(chain: ViewChain) -> IndexMap:
    return IndexMap.from_view_chain(chain)


_DEFAULT_RDIMS = OpDef.__dataclass_fields__["reduction_dims"].default
"""Ops that never declare reduction dims share this default callable."""


def _node_reduction_dims(graph: Graph, node: Node) -> dict[int, tuple[int, ...]]:
    """Per-input reduction dims of ``node``, memoized per graph generation."""
    cache = graph.analysis_cache()
    key = ("reduction_dims", node.id)
    found = cache.get(key)
    if found is None:
        in_shapes = []
        for i, name in enumerate(node.inputs):
            view = node.input_views.get(i)
            in_shapes.append(view.out_shape if view is not None
                             else graph.shape(name))
        out_shapes = [graph.shape(t) for t in node.outputs]
        found = node.opdef.reduction_dims(in_shapes, out_shapes, node.attrs)
        cache[key] = found
    return found


def consumer_preferences(graph: Graph, node: Node, idx: int) -> list[int]:
    """Producer-tensor dims the consumer wants contiguous, most wanted first.

    Reduction dims are defined on the shape the kernel observes (after the
    input view); they are translated back to the producer's stored dims
    through the view's IndexMap: producer dim j serves kernel reduction
    dim d if the coordinate expression for j mentions d's loop variable.

    Memoized per graph generation (layout selection and the cost model
    both query every edge); the returned list must not be mutated.
    """
    cache = graph.analysis_cache()
    key = ("consumer_prefs", node.id, idx)
    found = cache.get(key)
    if found is None:
        found = _consumer_preferences(graph, node, idx)
        cache[key] = found
    return found


def _consumer_preferences(graph: Graph, node: Node, idx: int) -> list[int]:
    if node.opdef.reduction_dims is _DEFAULT_RDIMS:
        return []  # elementwise/move op: no reduction dims, skip the shapes
    rdims = _node_reduction_dims(graph, node).get(idx, ())
    if not rdims:
        return []
    view = node.input_views.get(idx)
    if view is None:
        return list(rdims)
    imap = _cached_index_map(view)
    prefs: list[int] = []
    for d in rdims:
        var = f"o{d}"
        for j, expr in enumerate(imap.exprs):
            if var in expr.free_vars() and j not in prefs:
                prefs.append(j)
    return prefs


@dataclass
class LayoutPlan:
    """The chosen physical layouts for every activation tensor."""

    layouts: dict[str, Layout] = field(default_factory=dict)
    copies: dict[str, list[Layout]] = field(default_factory=dict)
    edge_assignment: dict[tuple[str, int], int] = field(default_factory=dict)
    """(consumer node id, input idx) -> copy index; -1 means primary."""
    searched_edges: int = 0
    merged_producers: int = 0
    """Producers whose consumers' demands were merged into one layout."""
    quality: str = "default"
    """'selected' when produced by reduction-dimension selection; generic
    framework layouts ('default') run compute kernels less efficiently."""

    @property
    def num_copies(self) -> int:
        return sum(len(v) for v in self.copies.values())

    def layout_for_edge(self, tensor: str, consumer_id: str, idx: int) -> Layout:
        which = self.edge_assignment.get((consumer_id, idx), -1)
        if which < 0:
            return self.layouts[tensor]
        return self.copies[tensor][which]


def _order_with_innermost(rank: int, inner: int) -> tuple[int, ...]:
    return tuple([d for d in range(rank) if d != inner] + [inner])


def _make_layout(rank: int, wanted: list[int], use_texture: bool) -> Layout:
    """Primary layout: first wanted dim on the vec4 axis, second innermost."""
    if use_texture and rank >= 2:
        vector_dim = wanted[0] if wanted else rank - 1
        if len(wanted) > 1:
            inner = wanted[1]
        else:
            inner = rank - 1 if vector_dim != rank - 1 else rank - 2
        return Layout.texture(_order_with_innermost(rank, inner), vector_dim=vector_dim)
    inner = wanted[0] if wanted else rank - 1
    return Layout.buffer(_order_with_innermost(rank, inner))


def _copy_layout(rank: int, dim: int, use_texture: bool) -> Layout:
    if use_texture and rank >= 2:
        return Layout.texture(_order_with_innermost(rank, dim), vector_dim=dim)
    return Layout.buffer(_order_with_innermost(rank, dim))


def select_layouts(
    graph: Graph,
    use_texture: bool = True,
    texture_rank_min: int = 2,
) -> LayoutPlan:
    """Choose layouts for all activation tensors; also annotates the graph.

    ``k`` (how many reduction dims one stored copy can serve) is 2 with
    texture memory, 1 without, per Section 3.2.2.  ``texture_rank_min``
    controls which tensors are texture-eligible: 2 is SmartMem's full
    mapping; 4 restricts textures to conv-style activations (the staging
    used by the Fig. 8 breakdown); any value above the max rank disables
    textures entirely.
    """
    plan = LayoutPlan(quality="selected")

    activation_names = list(graph.inputs)
    for node in graph.iter_nodes():
        activation_names.extend(node.outputs)

    for name in activation_names:
        shape = graph.shape(name)
        rank = len(shape)
        tex = use_texture and rank >= texture_rank_min
        k = 2 if tex else 1
        consumers = graph.consumers(name)

        # Rank demands per consumer edge; count votes to order them.
        votes: dict[int, int] = {}
        order_seen: list[int] = []
        edge_first_pref: dict[tuple[str, int], int | None] = {}
        for consumer, idx in consumers:
            prefs = consumer_preferences(graph, consumer, idx)
            if classify(graph, consumer) is Quadrant.ILD_VARIABLE:
                plan.searched_edges += 1
            edge_first_pref[(consumer.id, idx)] = prefs[0] if prefs else None
            for d in prefs:
                votes[d] = votes.get(d, 0) + 1
                if d not in order_seen:
                    order_seen.append(d)
        wanted = sorted(order_seen, key=lambda d: (-votes[d], order_seen.index(d)))
        if len(wanted) > 1:
            plan.merged_producers += 1

        primary = _make_layout(rank, wanted[:k], tex)
        plan.layouts[name] = primary

        # Demands past k need redundant copies in their own layouts.
        extra = [d for d in wanted[k:]]
        copy_layouts = [_copy_layout(rank, d, tex) for d in extra]
        if copy_layouts:
            plan.copies[name] = copy_layouts
        for (cid, idx), first in edge_first_pref.items():
            if first is None or primary.is_unit_stride(first):
                continue
            for copy_idx, d in enumerate(extra):
                if d == first:
                    plan.edge_assignment[(cid, idx)] = copy_idx
                    break

    graph.tensor_layouts = dict(plan.layouts)
    return plan


def default_plan(graph: Graph, use_texture: bool = True) -> LayoutPlan:
    """The layout policy of a conventional framework (baselines).

    4-d activations use the channels-packed texture layout (MNN's image
    layout / NC4HW4 analogue) when the device has texture memory; every
    other tensor is a row-major 1D buffer.  No copies, no per-edge search:
    layout mismatches instead show up as explicit/implicit transform
    operators in the baseline's graph.
    """
    plan = LayoutPlan()
    names = list(graph.inputs)
    for node in graph.iter_nodes():
        names.extend(node.outputs)
    for name in names:
        shape = graph.shape(name)
        if use_texture and len(shape) == 4:
            plan.layouts[name] = Layout.texture(
                _order_with_innermost(4, 3), vector_dim=1)
        else:
            plan.layouts[name] = Layout.row_major(len(shape))
    graph.tensor_layouts = dict(plan.layouts)
    return plan
