"""Composable pass framework for the SmartMem optimization pipeline.

The pipeline is no longer a hard-coded function: each stage is a
:class:`Pass` with a name, a config, and per-run wall-time/stat
instrumentation, assembled by a :class:`PassManager`.  The canonical
SmartMem pass list is derived from :class:`PipelineStages` (the Fig. 8 /
ablation knobs) by :func:`canonical_passes`, so every stage toggle maps
onto the presence or configuration of a pass.

Registering a new pass::

    @register_pass
    class MyPass(Pass):
        name = "my-pass"

        def run(self, ctx: PassContext) -> dict:
            ... mutate ctx.graph / ctx.plan ...
            return {"what_changed": 42}   # shows up in PassRecord.stats

    pm = PassManager(canonical_passes(stages) + [MyPass()])
    ctx = pm.run(graph.clone(), stages)

``PassManager.run`` times every pass (``PassRecord.wall_s``) and feeds a
process-wide accumulator (:func:`pass_timing_stats`) that the bench CLI
writes into ``BENCH_pipeline.json`` (``--timings``), so compile-time
regressions are visible per pass, not just per experiment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..ir.graph import Graph
from .elimination import (
    eliminate_dead_nodes, eliminate_layout_transforms,
)
from .fusion import FusionPolicy, SMARTMEM_POLICY, fuse
from .layout_selection import default_plan, select_layouts


@dataclass(frozen=True)
class PipelineStages:
    """Which SmartMem optimizations are active.

    This is the *pass configuration* surface: :func:`canonical_passes`
    turns one of these into the concrete pass list, and the GA tuner can
    produce one with a measured ``tuned_boost``
    (:func:`repro.tuning.stage_config`).
    """

    lte: bool = True
    fusion: bool = True
    layout_selection: bool = True
    full_texture: bool = True
    """Texture layouts for every rank>=2 tensor (stage 4); when False,
    textures are limited to 4-d conv activations like the baselines."""
    use_texture: bool = True
    """Whether the device has a texture path at all (False on V100)."""
    simplify_index: bool = True
    """Strength reduction on eliminated-transform index expressions."""
    eliminate_slice: bool = True
    tuned_boost: float = 1.1
    """Extra kernel efficiency from the GA auto-tuner (stage 4)."""


@dataclass
class PassRecord:
    """Instrumentation for one executed pass."""

    name: str
    wall_s: float
    stats: dict = field(default_factory=dict)


class PassContext:
    """Mutable state threaded through a pass pipeline.

    Passes communicate exclusively through the context: the graph being
    rewritten, the layout plan once one is selected, per-stage statistics,
    and the recorded ablation choices the cost model needs later
    (``simplify_index``, ``extra_efficiency``).
    """

    def __init__(self, graph: Graph, stages: PipelineStages | None = None) -> None:
        self.graph = graph
        self.stages = stages or PipelineStages()
        self.plan = None
        self.program = None
        self.fusion_stats = None
        self.elimination_stats = None
        self.simplify_index: bool = self.stages.simplify_index
        self.extra_efficiency: float = 1.0
        self.records: list[PassRecord] = []


class Pass:
    """One pipeline stage: a named, configured graph/plan rewrite.

    Subclasses set :attr:`name`, accept their config as keyword arguments
    (stored in :attr:`config` for introspection), and implement
    :meth:`run`, optionally returning a stats dict for instrumentation.
    """

    name = "pass"

    def __init__(self, **config) -> None:
        self.config = dict(config)
        for key, value in config.items():
            setattr(self, key, value)

    def run(self, ctx: PassContext) -> dict | None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        conf = ", ".join(f"{k}={v!r}" for k, v in self.config.items())
        return f"{type(self).__name__}({conf})"


# ---------------------------------------------------------------------------
# pass registry
# ---------------------------------------------------------------------------

PASS_REGISTRY: dict[str, type[Pass]] = {}


def register_pass(cls: type[Pass]) -> type[Pass]:
    """Class decorator: make ``cls`` constructible by name."""
    if not cls.name or cls.name == Pass.name:
        raise ValueError(f"pass class {cls.__name__} needs a distinct name")
    PASS_REGISTRY[cls.name] = cls
    return cls


def make_pass(name: str, **config) -> Pass:
    """Instantiate a registered pass by name."""
    try:
        cls = PASS_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown pass {name!r}; available: {available_passes()}")
    return cls(**config)


def available_passes() -> list[str]:
    return sorted(PASS_REGISTRY)


# ---------------------------------------------------------------------------
# the SmartMem passes
# ---------------------------------------------------------------------------


@register_pass
class EliminationPass(Pass):
    """Layout transformation elimination (LTE; Section 3.2.1)."""

    name = "lte"

    def __init__(self, include_slice: bool = True) -> None:
        super().__init__(include_slice=include_slice)

    def run(self, ctx: PassContext) -> dict:
        stats = eliminate_layout_transforms(
            ctx.graph, include_slice=self.include_slice)
        ctx.elimination_stats = stats
        return {"eliminated": stats.total_eliminated,
                "views_attached": stats.views_attached,
                "kept_graph_outputs": stats.kept_graph_outputs}


@register_pass
class DeadNodeEliminationPass(Pass):
    """Drop nodes whose outputs are never consumed nor exported."""

    name = "dce"

    def run(self, ctx: PassContext) -> dict:
        return {"removed": eliminate_dead_nodes(ctx.graph)}


@register_pass
class IndexSimplificationPass(Pass):
    """Record whether eliminated-transform index expressions are
    strength-reduced (Index Comprehension; Section 4.3).

    The views themselves are identical either way - only the cost model's
    per-element index cost differs - so this pass records the choice on
    the context (and thus on ``OptimizeResult.cost_config()``) instead of
    rewriting the graph.  Disabling it reproduces the raw-index ablation.
    """

    name = "index-simplify"

    def __init__(self, simplify: bool = True) -> None:
        super().__init__(simplify=simplify)

    def run(self, ctx: PassContext) -> dict:
        ctx.simplify_index = self.simplify
        views = sum(len(n.input_views) for n in ctx.graph.iter_nodes())
        return {"simplify": self.simplify, "views": views}


@register_pass
class FusionPass(Pass):
    """Assign fusion groups; ``policy=None`` means singleton groups."""

    name = "fusion"

    def __init__(self, policy: FusionPolicy | None = SMARTMEM_POLICY) -> None:
        super().__init__(policy=policy)

    def run(self, ctx: PassContext) -> dict:
        if self.policy is None:
            for i, node in enumerate(ctx.graph.iter_nodes()):
                node.group = i
            return {"groups": len(ctx.graph.nodes), "fused": 0}
        ctx.fusion_stats = fuse(ctx.graph, self.policy)
        return {"groups": ctx.graph.num_operators,
                "policy": self.policy.name}


@register_pass
class LayoutSelectionPass(Pass):
    """Reduction-dimension-driven per-tensor layout selection."""

    name = "layout-select"

    def __init__(self, use_texture: bool = True,
                 texture_rank_min: int = 2) -> None:
        super().__init__(use_texture=use_texture,
                         texture_rank_min=texture_rank_min)

    def run(self, ctx: PassContext) -> dict:
        ctx.plan = select_layouts(ctx.graph, use_texture=self.use_texture,
                                  texture_rank_min=self.texture_rank_min)
        return {"layouts": len(ctx.plan.layouts),
                "copies": ctx.plan.num_copies}


@register_pass
class DefaultLayoutPass(Pass):
    """Baseline-style layouts (the layout-selection ablation)."""

    name = "default-layout"

    def __init__(self, use_texture: bool = True) -> None:
        super().__init__(use_texture=use_texture)

    def run(self, ctx: PassContext) -> dict:
        ctx.plan = default_plan(ctx.graph, use_texture=self.use_texture)
        return {"layouts": len(ctx.plan.layouts)}


@register_pass
class TuningPass(Pass):
    """Apply the auto-tuner's kernel-efficiency boost (stage 4).

    The boost is normally the static ``PipelineStages.tuned_boost``; the
    GA tuner can measure a graph-specific value and express it as a pass
    config through :func:`repro.tuning.stage_config`.
    """

    name = "tuning"

    def __init__(self, tuned_boost: float = 1.1) -> None:
        super().__init__(tuned_boost=tuned_boost)

    def run(self, ctx: PassContext) -> dict:
        ctx.extra_efficiency = self.tuned_boost
        return {"extra_efficiency": self.tuned_boost}


@register_pass
class LowerPass(Pass):
    """Lower the optimized graph to an ExecutionProgram: kernels
    pre-bound, input views pre-resolved to appliers, and a static
    buffer-slot plan register-allocated from the liveness schedule.

    Runs last, so ``OptimizeResult`` (and therefore the compile-core
    cache) carries the lowered program to every execution session; the
    lowering itself is memoized per graph generation, so the pass is a
    cache fill, never a duplicate.
    """

    name = "lower"

    def run(self, ctx: PassContext) -> dict:
        # Imported lazily: the runtime layer sits above the optimizer.
        from ..runtime.program import lower

        ctx.program = lower(ctx.graph)
        return {"steps": ctx.program.num_steps,
                "slots": ctx.program.slot_plan.num_slots}


# ---------------------------------------------------------------------------
# manager
# ---------------------------------------------------------------------------

_PASS_TIMINGS: dict[str, dict[str, float | int]] = {}


def _record_timing(name: str, wall_s: float) -> None:
    entry = _PASS_TIMINGS.setdefault(name, {"runs": 0, "wall_s": 0.0})
    entry["runs"] += 1
    entry["wall_s"] += wall_s


def pass_timing_stats() -> dict[str, dict[str, float | int]]:
    """Process-wide per-pass compile-time accumulator (copies)."""
    return {name: dict(entry) for name, entry in _PASS_TIMINGS.items()}


def clear_pass_timings() -> None:
    _PASS_TIMINGS.clear()


class PassManager:
    """Run an ordered pass list over a graph with instrumentation.

    The manager mutates the graph it is given (callers clone first when
    they need the source preserved), records a :class:`PassRecord` per
    pass on the returned context, and accumulates per-pass wall time into
    the process-wide :func:`pass_timing_stats`.
    """

    def __init__(self, passes: list[Pass], name: str = "smartmem") -> None:
        self.passes = list(passes)
        self.name = name

    def run(self, graph: Graph, stages: PipelineStages | None = None) -> PassContext:
        ctx = PassContext(graph, stages)
        for p in self.passes:
            start = time.perf_counter()
            stats = p.run(ctx) or {}
            wall_s = time.perf_counter() - start
            ctx.records.append(PassRecord(p.name, wall_s, stats))
            _record_timing(p.name, wall_s)
        return ctx

    def pass_names(self) -> list[str]:
        return [p.name for p in self.passes]


def canonical_passes(stages: PipelineStages | None = None) -> list[Pass]:
    """The SmartMem pipeline as a pass list, mirroring Fig. 8 staging.

    Stage toggles map onto pass presence/config exactly the way the
    original hard-coded pipeline branched, so results are identical.
    """
    stages = stages or PipelineStages()
    passes: list[Pass] = []
    if stages.lte:
        passes.append(EliminationPass(include_slice=stages.eliminate_slice))
        passes.append(DeadNodeEliminationPass())
        passes.append(IndexSimplificationPass(simplify=stages.simplify_index))
    passes.append(FusionPass(
        policy=SMARTMEM_POLICY if stages.fusion else None))
    if stages.layout_selection:
        passes.append(LayoutSelectionPass(
            use_texture=stages.use_texture,
            texture_rank_min=2 if stages.full_texture else 4))
    else:
        passes.append(DefaultLayoutPass(use_texture=stages.use_texture))
    if stages.full_texture:
        passes.append(TuningPass(tuned_boost=stages.tuned_boost))
    passes.append(LowerPass())
    return passes
