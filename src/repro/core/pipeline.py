"""The SmartMem optimization pipeline, expressed as a pass pipeline.

This module is a thin shim over the composable pass framework in
:mod:`repro.core.passes`.  :func:`smartmem_optimize` assembles the
canonical pass list from :class:`PipelineStages` and runs it through a
:class:`~repro.core.passes.PassManager`, so every existing caller (the
benchmarks, the frameworks, the Fig. 8 ablations) keeps working while the
stages themselves are now named, configured, instrumented ``Pass``
objects.

The canonical pipeline (Section 3, Fig. 8 staging):

1. ``lte`` - layout transformation elimination: Fixed-output operators
   (Reshape/Transpose/DtoS/StoD/Slice and baseline-inserted layout
   converts) become index computation in their consumers.
2. ``dce`` - drop nodes that elimination left without consumers.
3. ``index-simplify`` - record whether eliminated-transform index
   expressions are strength-reduced (Index Comprehension); the choice
   flows to the cost model through :meth:`OptimizeResult.cost_config`.
4. ``fusion`` - DNNFusion-style grouping (SmartMem inherits DNNFusion's
   fusion engine; elimination exposes additional fusion opportunities).
5. ``layout-select`` / ``default-layout`` - reduction-dimension-driven
   per-tensor layouts, or baseline layouts when ablated.
6. ``tuning`` - auto-tuned kernel-config efficiency boost ("Other opt"
   in Fig. 8; the GA tuner can produce the boost via
   :func:`repro.tuning.stage_config`).
7. ``lower`` - lower the optimized graph to an
   :class:`~repro.runtime.program.ExecutionProgram` (pre-bound kernels,
   pre-resolved views, static buffer-slot plan) so execution sessions
   never re-interpret the graph per request.

Each stage can be disabled independently through ``PipelineStages``,
which is exactly how the Fig. 8 optimization-breakdown experiment is
produced.  To add a new stage, subclass ``Pass``, decorate it with
``@register_pass``, and splice it into the list returned by
``canonical_passes`` (see ``repro/core/passes.py`` and the Architecture
section of ROADMAP.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.graph import Graph
from .elimination import EliminationStats, count_layout_transforms
from .fusion import FusionStats
from .layout_selection import LayoutPlan
from .passes import (
    PassManager, PassRecord, PipelineStages, canonical_passes,
)

__all__ = [
    "OptimizeResult", "PipelineStages", "canonical_passes",
    "smartmem_optimize",
]


@dataclass
class OptimizeResult:
    """An optimized module: rewritten graph + layout plan + statistics."""

    graph: Graph
    plan: LayoutPlan
    stages: PipelineStages
    fusion_stats: FusionStats | None = None
    elimination_stats: EliminationStats | None = None
    source_operator_count: int = 0
    pass_records: list[PassRecord] = field(default_factory=list)
    """Per-pass wall time and statistics, in execution order."""
    simplify_index: bool = True
    """The recorded Index Comprehension choice (Section 4.3 ablation);
    :meth:`cost_config` hands it to the cost model."""
    extra_efficiency: float = 1.0
    """Kernel-efficiency boost recorded by the ``tuning`` pass (1.0 when
    the pass did not run); :meth:`cost_config` hands it to the cost
    model, so a custom TuningPass config is actually priced."""
    program: "ExecutionProgram | None" = None
    """Lowered execution program recorded by the ``lower`` pass, carried
    through the compile caches to every execution session."""

    @property
    def operator_count(self) -> int:
        return self.graph.num_operators

    @property
    def remaining_layout_transforms(self) -> int:
        return count_layout_transforms(self.graph)

    @property
    def pass_timings(self) -> dict[str, float]:
        """pass name -> wall seconds for this optimization run."""
        return {r.name: r.wall_s for r in self.pass_records}

    def cost_config(self):
        """The cost-model configuration this module was compiled for.

        Carries the tuning boost *and* the recorded ``simplify_index``
        choice, so costing an ablated module actually prices the raw
        index expressions (previously only the framework layer did).
        """
        from ..runtime.cost_model import CostModelConfig

        return CostModelConfig(
            tuned=True,
            extra_efficiency=self.extra_efficiency,
            simplify_index=self.simplify_index,
        )


def smartmem_optimize(
    graph: Graph,
    stages: PipelineStages | None = None,
) -> OptimizeResult:
    """Run the canonical SmartMem pass pipeline on a copy of ``graph``."""
    stages = stages or PipelineStages()
    g = graph.clone()
    source_ops = len(g.nodes)
    ctx = PassManager(canonical_passes(stages)).run(g, stages)
    return OptimizeResult(
        graph=ctx.graph,
        plan=ctx.plan,
        stages=stages,
        fusion_stats=ctx.fusion_stats,
        elimination_stats=ctx.elimination_stats,
        source_operator_count=source_ops,
        pass_records=ctx.records,
        simplify_index=ctx.simplify_index,
        extra_efficiency=ctx.extra_efficiency,
        program=ctx.program,
    )
