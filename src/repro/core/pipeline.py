"""The SmartMem optimization pipeline (Section 3, Fig. 8 staging).

Stages, in order:

1. **LTE** - layout transformation elimination: Fixed-output operators
   (Reshape/Transpose/DtoS/StoD/Slice and baseline-inserted layout
   converts) become index computation in their consumers.
2. **Fusion** - DNNFusion-style grouping (SmartMem inherits DNNFusion's
   fusion engine; elimination exposes additional fusion opportunities).
3. **Layout selection** - reduction-dimension-driven per-tensor layouts.
4. **Texture mapping + tuning** ("Other opt" in Fig. 8) - extend texture
   layouts to all eligible tensors and apply auto-tuned kernel configs.

Each stage can be disabled independently, which is exactly how the Fig. 8
optimization-breakdown experiment is produced.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.graph import Graph
from .elimination import (
    EliminationStats, count_layout_transforms, eliminate_dead_nodes,
    eliminate_layout_transforms,
)
from .fusion import FusionStats, SMARTMEM_POLICY, fuse
from .layout_selection import LayoutPlan, default_plan, select_layouts


@dataclass(frozen=True)
class PipelineStages:
    """Which SmartMem optimizations are active."""

    lte: bool = True
    fusion: bool = True
    layout_selection: bool = True
    full_texture: bool = True
    """Texture layouts for every rank>=2 tensor (stage 4); when False,
    textures are limited to 4-d conv activations like the baselines."""
    use_texture: bool = True
    """Whether the device has a texture path at all (False on V100)."""
    simplify_index: bool = True
    """Strength reduction on eliminated-transform index expressions."""
    eliminate_slice: bool = True
    tuned_boost: float = 1.1
    """Extra kernel efficiency from the GA auto-tuner (stage 4)."""


@dataclass
class OptimizeResult:
    """An optimized module: rewritten graph + layout plan + statistics."""

    graph: Graph
    plan: LayoutPlan
    stages: PipelineStages
    fusion_stats: FusionStats | None = None
    elimination_stats: EliminationStats | None = None
    source_operator_count: int = 0

    @property
    def operator_count(self) -> int:
        return self.graph.num_operators

    @property
    def extra_efficiency(self) -> float:
        return self.stages.tuned_boost if self.stages.full_texture else 1.0

    @property
    def remaining_layout_transforms(self) -> int:
        return count_layout_transforms(self.graph)


def smartmem_optimize(
    graph: Graph,
    stages: PipelineStages | None = None,
) -> OptimizeResult:
    """Run the SmartMem pipeline on a copy of ``graph``."""
    stages = stages or PipelineStages()
    g = graph.clone()
    source_ops = len(g.nodes)

    elim_stats = None
    if stages.lte:
        elim_stats = eliminate_layout_transforms(
            g, include_slice=stages.eliminate_slice)
        eliminate_dead_nodes(g)
        if not stages.simplify_index:
            # Ablation: keep the raw (un-reduced) index expressions.  The
            # views are identical; only the cost model's per-element index
            # cost differs, so we record the choice for it.
            pass

    fusion_stats = None
    if stages.fusion:
        fusion_stats = fuse(g, SMARTMEM_POLICY)
    else:
        for i, node in enumerate(g.iter_nodes()):
            node.group = i

    if stages.layout_selection:
        rank_min = 2 if stages.full_texture else 4
        plan = select_layouts(g, use_texture=stages.use_texture,
                              texture_rank_min=rank_min)
    else:
        plan = default_plan(g, use_texture=stages.use_texture)

    return OptimizeResult(
        graph=g,
        plan=plan,
        stages=stages,
        fusion_stats=fusion_stats,
        elimination_stats=elim_stats,
        source_operator_count=source_ops,
    )
