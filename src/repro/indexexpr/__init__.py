"""Symbolic index algebra and IndexMaps (Section 3.2.1)."""

from .expr import (
    BinOp, Const, Expr, Var, add, classify_dependency, floordiv, mod, mul,
    simplify,
)
from .index_map import IndexMap

__all__ = [
    "BinOp", "Const", "Expr", "IndexMap", "Var", "add", "classify_dependency",
    "floordiv", "mod", "mul", "simplify",
]
