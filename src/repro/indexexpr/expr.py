"""Symbolic integer index expressions with strength reduction.

Section 3.2.1 of the paper replaces fused Reshape/Transpose chains with
index computation and then applies "mathematical strength reduction rules"
because modulo and division are expensive on GPUs.  This module is that
algebra: non-negative integer expressions over bounded variables with
``+ * // %``, constant folding, range analysis, and the paper's rewrite
rules (e.g. ``i % Ca % Cb -> i % Cb`` when ``Ca % Cb == 0``).

All variables are loop indices with known extents, so every expression has
computable bounds; several rewrites are justified purely by bounds (e.g.
``x % C -> x`` when ``max(x) < C``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np


class Expr:
    """Base class for index expressions (immutable, hashable)."""

    def bounds(self) -> tuple[int, int]:
        raise NotImplementedError

    def evaluate(self, env: Mapping[str, np.ndarray | int]):
        raise NotImplementedError

    def cost(self) -> int:
        """Arithmetic cost in cheap-op units (div/mod count 4x)."""
        raise NotImplementedError

    def free_vars(self) -> frozenset[str]:
        raise NotImplementedError

    # operator sugar (usable in tests and pass code)
    def __add__(self, other):
        return add(self, _coerce(other))

    def __mul__(self, other):
        return mul(self, _coerce(other))

    def __floordiv__(self, other):
        return floordiv(self, _coerce(other))

    def __mod__(self, other):
        return mod(self, _coerce(other))


def _coerce(value) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, np.integer)):
        return Const(int(value))
    raise TypeError(f"cannot use {value!r} in an index expression")


@dataclass(frozen=True)
class Const(Expr):
    value: int

    def __post_init__(self):
        if self.value < 0:
            raise ValueError("index expressions are non-negative")

    def bounds(self):
        return (self.value, self.value)

    def evaluate(self, env):
        return self.value

    def cost(self):
        return 0

    def free_vars(self):
        return frozenset()

    def __repr__(self):
        return str(self.value)


@dataclass(frozen=True)
class Var(Expr):
    """A loop variable ranging over ``[0, extent)``."""

    name: str
    extent: int

    def __post_init__(self):
        if self.extent <= 0:
            raise ValueError(f"variable extent must be positive, got {self.extent}")

    def bounds(self):
        return (0, self.extent - 1)

    def evaluate(self, env):
        return env[self.name]

    def cost(self):
        return 0

    def free_vars(self):
        return frozenset((self.name,))

    def __repr__(self):
        return self.name


_COSTS = {"+": 1, "*": 1, "//": 4, "%": 4}


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self):
        if self.op not in _COSTS:
            raise ValueError(f"unknown op {self.op!r}")

    def bounds(self):
        lo1, hi1 = self.lhs.bounds()
        lo2, hi2 = self.rhs.bounds()
        if self.op == "+":
            return (lo1 + lo2, hi1 + hi2)
        if self.op == "*":
            return (lo1 * lo2, hi1 * hi2)
        if self.op == "//":
            if lo2 <= 0:
                raise ZeroDivisionError("division by possibly-zero expression")
            return (lo1 // hi2, hi1 // lo2)
        # %
        if lo2 <= 0:
            raise ZeroDivisionError("modulo by possibly-zero expression")
        if hi1 < lo2:  # value always below the smallest modulus
            return (lo1, hi1)
        return (0, hi2 - 1)

    def evaluate(self, env):
        a = self.lhs.evaluate(env)
        b = self.rhs.evaluate(env)
        if self.op == "+":
            return a + b
        if self.op == "*":
            return a * b
        if self.op == "//":
            return a // b
        return a % b

    def cost(self):
        return _COSTS[self.op] + self.lhs.cost() + self.rhs.cost()

    def free_vars(self):
        return self.lhs.free_vars() | self.rhs.free_vars()

    def __repr__(self):
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


# ---------------------------------------------------------------------------
# smart constructors: every algebraic rule lives here, so building an
# expression bottom-up yields the strength-reduced form.
# ---------------------------------------------------------------------------


def add(a: Expr, b: Expr) -> Expr:
    a, b = _coerce(a), _coerce(b)
    if isinstance(a, Const) and isinstance(b, Const):
        return Const(a.value + b.value)
    if isinstance(a, Const) and a.value == 0:
        return b
    if isinstance(b, Const) and b.value == 0:
        return a
    # normalize constants to the right and re-associate: (x + c1) + c2
    if isinstance(a, Const):
        a, b = b, a
    if (isinstance(b, Const) and isinstance(a, BinOp) and a.op == "+"
            and isinstance(a.rhs, Const)):
        return add(a.lhs, Const(a.rhs.value + b.value))
    return BinOp("+", a, b)


def mul(a: Expr, b: Expr) -> Expr:
    a, b = _coerce(a), _coerce(b)
    if isinstance(a, Const) and isinstance(b, Const):
        return Const(a.value * b.value)
    if isinstance(a, Const):
        a, b = b, a
    if isinstance(b, Const):
        if b.value == 0:
            return Const(0)
        if b.value == 1:
            return a
        if isinstance(a, BinOp) and a.op == "*" and isinstance(a.rhs, Const):
            return mul(a.lhs, Const(a.rhs.value * b.value))
        # distribute over + so merge-then-split patterns expose x*k + r form
        if isinstance(a, BinOp) and a.op == "+":
            return add(mul(a.lhs, b), mul(a.rhs, b))
    return BinOp("*", a, b)


def _mod_upper(e: Expr, c: int) -> int:
    """A sound upper bound for ``e % c`` (tighter than bounds alone).

    The interesting case is ``x * k``: when ``k`` is a multiple of ``c``
    the residue is 0; when ``k`` divides ``c`` the residue is
    ``k * ((x % (c//k)) max)``.  These bounds justify the carry-free
    splitting of ``//`` and ``%`` across sums, which is what collapses
    stacked reshape/transpose index math (Fig. 3).
    """
    lo, hi = e.bounds()
    if hi < c:
        return hi
    if isinstance(e, BinOp):
        if e.op == "*" and isinstance(e.rhs, Const):
            k = e.rhs.value
            if k % c == 0:
                return 0
            if k != 0 and c % k == 0:
                return k * _mod_upper(e.lhs, c // k)
        elif e.op == "+":
            combined = _mod_upper(e.lhs, c) + _mod_upper(e.rhs, c)
            if combined < c:
                return combined
        elif e.op == "%" and isinstance(e.rhs, Const) and e.rhs.value % c == 0:
            return _mod_upper(e.lhs, c)
    return c - 1


def _carry_free(a: Expr, b: Expr, c: int) -> bool:
    """True when ``(a + b) // c == a//c + b//c`` and likewise for %."""
    return _mod_upper(a, c) + _mod_upper(b, c) < c


def _const_factor(e: Expr) -> tuple[Expr, int]:
    """Write ``e`` as ``inner * k`` with maximal constant k."""
    if isinstance(e, BinOp) and e.op == "*" and isinstance(e.rhs, Const):
        return e.lhs, e.rhs.value
    if isinstance(e, Const):
        return Const(1), e.value
    return e, 1


def floordiv(a: Expr, b: Expr) -> Expr:
    a, b = _coerce(a), _coerce(b)
    if isinstance(b, Const):
        c = b.value
        if c == 0:
            raise ZeroDivisionError("index expression divides by zero")
        if c == 1:
            return a
        if isinstance(a, Const):
            return Const(a.value // c)
        lo, hi = a.bounds()
        if hi < c:
            return Const(0)
        if isinstance(a, BinOp):
            # (x // c1) // c2  ->  x // (c1*c2)
            if a.op == "//" and isinstance(a.rhs, Const):
                return floordiv(a.lhs, Const(a.rhs.value * c))
            # (x*k + r) // c  ->  x*(k//c) + r//c   when c | k and r >= 0
            if a.op == "+":
                inner, k = _const_factor(a.lhs)
                if k % c == 0:
                    return add(mul(inner, Const(k // c)), floordiv(a.rhs, b))
                inner, k = _const_factor(a.rhs)
                if k % c == 0:
                    return add(mul(inner, Const(k // c)), floordiv(a.lhs, b))
                # carry-free split: residues cannot sum past c
                if _carry_free(a.lhs, a.rhs, c):
                    return add(floordiv(a.lhs, b), floordiv(a.rhs, b))
            # (x*k) // c  ->  x*(k//c)  when c | k ;  x // (c//k) when k | c
            if a.op == "*" and isinstance(a.rhs, Const):
                k = a.rhs.value
                if k % c == 0:
                    return mul(a.lhs, Const(k // c))
                if c % k == 0:
                    return floordiv(a.lhs, Const(c // k))
    return BinOp("//", a, b)


def mod(a: Expr, b: Expr) -> Expr:
    a, b = _coerce(a), _coerce(b)
    if isinstance(b, Const):
        c = b.value
        if c == 0:
            raise ZeroDivisionError("index expression modulo zero")
        if c == 1:
            return Const(0)
        if isinstance(a, Const):
            return Const(a.value % c)
        lo, hi = a.bounds()
        if hi < c:  # value already in range
            return a
        if isinstance(a, BinOp):
            # (x % c1) % c2  ->  x % c2   when c2 | c1  (the paper's rule)
            if a.op == "%" and isinstance(a.rhs, Const) and a.rhs.value % c == 0:
                return mod(a.lhs, b)
            # (x*k + r) % c  ->  r % c   when c | k
            if a.op == "+":
                inner, k = _const_factor(a.lhs)
                if k % c == 0:
                    return mod(a.rhs, b)
                inner, k = _const_factor(a.rhs)
                if k % c == 0:
                    return mod(a.lhs, b)
                # carry-free split: (x + y) % c -> x%c + y%c
                if _carry_free(a.lhs, a.rhs, c):
                    return add(mod(a.lhs, b), mod(a.rhs, b))
            # (x*k) % c -> 0 when c | k ; (x % (c//k)) * k when k | c
            if a.op == "*" and isinstance(a.rhs, Const):
                k = a.rhs.value
                if k % c == 0:
                    return Const(0)
                if c % k == 0:
                    return mul(mod(a.lhs, Const(c // k)), Const(k))
    return BinOp("%", a, b)


def simplify(e: Expr) -> Expr:
    """Deep rebuild through the smart constructors until fixpoint.

    Returns the cheapest expression seen: some local rewrites (e.g.
    distributing a constant multiply over a sum) only pay off when they
    unlock later div/mod collapses, so the rebuilt form is kept only if
    it is no more expensive than the best so far.
    """
    best = e
    previous = None
    current = e
    for _ in range(16):  # fixpoint is reached in 2-3 iterations in practice
        if current == previous:
            break
        previous = current
        current = _rebuild(current)
        if current.cost() <= best.cost():
            best = current
    return best


def _rebuild(e: Expr) -> Expr:
    if isinstance(e, (Const, Var)):
        return e
    assert isinstance(e, BinOp)
    lhs, rhs = _rebuild(e.lhs), _rebuild(e.rhs)
    builder = {"+": add, "*": mul, "//": floordiv, "%": mod}[e.op]
    return builder(lhs, rhs)


def classify_dependency(e: Expr) -> str:
    """Fig. 3's index dependency classes for one input coordinate.

    * ``identity`` - the coordinate is a single output variable;
    * ``split``    - derived from one variable via // and % (one output dim
      feeding several input dims);
    * ``merge``    - linear combination of several variables (several
      output dims collapsing into one input dim);
    * ``compound`` - anything mixing both (stacked reshapes/transposes).
    """
    if isinstance(e, (Var, Const)):
        return "identity"
    n_vars = len(e.free_vars())
    has_divmod = _contains_divmod(e)
    if n_vars <= 1:
        return "split" if has_divmod else "identity"
    return "compound" if has_divmod else "merge"


def _contains_divmod(e: Expr) -> bool:
    if isinstance(e, BinOp):
        if e.op in ("//", "%"):
            return True
        return _contains_divmod(e.lhs) or _contains_divmod(e.rhs)
    return False
