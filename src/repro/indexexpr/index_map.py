"""IndexMap: the residual index computation of an eliminated view chain.

After layout transformation elimination, a consumer kernel reading what
used to be ``transpose(reshape(x))`` instead reads ``x`` directly at
remapped coordinates.  An IndexMap captures exactly that: for each output
coordinate (the iteration space of the consumer), symbolic expressions
give the corresponding input coordinates.

Construction composes the inverse of each view step; evaluation is
vectorized over NumPy index grids so every map can be verified against the
actual data movement; ``cost()`` measures the per-element index arithmetic
the fused kernel will pay, which is what strength reduction lowers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..ir.tensor import Shape
from ..ir.view import ViewChain
from .expr import (
    BinOp, Const, Expr, Var, add, classify_dependency, floordiv, mod, mul,
    simplify,
)


@dataclass(frozen=True)
class IndexMap:
    """Maps output coordinates to input coordinates.

    ``exprs[j]`` gives input coordinate ``j`` as a function of the output
    coordinate variables ``o0 .. o{len(out_shape)-1}``.
    """

    in_shape: Shape
    out_shape: Shape
    exprs: tuple[Expr, ...]

    def __post_init__(self):
        if len(self.exprs) != len(self.in_shape):
            raise ValueError(
                f"need {len(self.in_shape)} coordinate exprs, got {len(self.exprs)}"
            )

    # -- constructors ------------------------------------------------------

    @staticmethod
    def output_vars(out_shape: Shape) -> tuple[Var, ...]:
        return tuple(Var(f"o{i}", extent) for i, extent in enumerate(out_shape))

    @staticmethod
    def identity(shape: Shape) -> "IndexMap":
        return IndexMap(shape, shape, IndexMap.output_vars(shape))

    @staticmethod
    def from_view_chain(chain: ViewChain, simplified: bool = True) -> "IndexMap":
        """Compose the chain's steps into one coordinate mapping.

        Walking the steps backwards from the final output: a transpose with
        permutation p sends output coordinate k to intermediate coordinate
        p[k]; a reshape linearizes the downstream coordinates and
        de-linearizes over the upstream shape.  With the smart constructors
        doing local rewrites, stacked reshapes collapse on the fly; an
        explicit ``simplify`` pass finishes the job (disable it with
        ``simplified=False`` to measure the un-reduced cost).
        """
        # Without simplification, build with raw BinOp nodes: this is the
        # "linear representation for all indexes" the paper calls out as
        # redundant, and is the baseline for the strength-reduction ablation.
        if simplified:
            mk_add, mk_mul = add, mul
            mk_div, mk_mod = floordiv, mod
        else:
            mk_add = lambda a, b: BinOp("+", a, b)
            mk_mul = lambda a, b: BinOp("*", a, b)
            mk_div = lambda a, b: BinOp("//", a, b)
            mk_mod = lambda a, b: BinOp("%", a, b)

        # Shapes entering each step (prefix shapes of the chain).
        step_in_shapes: list[Shape] = []
        shape = chain.in_shape
        for step in chain.steps:
            step_in_shapes.append(shape)
            shape = step.output_shape(shape)

        coords: list[Expr] = list(IndexMap.output_vars(chain.out_shape))
        for step_idx in reversed(range(len(chain.steps))):
            step = chain.steps[step_idx]
            in_shape = step_in_shapes[step_idx]
            if step.kind == "transpose":
                new_coords: list[Expr] = [Const(0)] * len(in_shape)
                for out_axis, in_axis in enumerate(step.arg):
                    new_coords[in_axis] = coords[out_axis]
            elif step.kind == "slice":
                new_coords = [
                    mk_add(mk_mul(coord, Const(stp)), Const(start))
                    for coord, (start, _stop, stp) in zip(coords, step.arg)
                ]
            else:  # reshape: linearize over the output, de-linearize over input
                linear: Expr = Const(0)
                for coord, extent in zip(coords, step.arg):
                    linear = mk_add(mk_mul(linear, Const(extent)), coord)
                new_coords = []
                stride = math.prod(in_shape)
                for extent in in_shape:
                    stride //= extent
                    new_coords.append(mk_mod(mk_div(linear, Const(stride)), Const(extent)))
            coords = new_coords
        exprs = tuple(simplify(c) if simplified else c for c in coords)
        return IndexMap(chain.in_shape, chain.out_shape, exprs)

    # -- analysis ------------------------------------------------------------

    def cost(self) -> int:
        """Per-element index arithmetic cost (cheap-op units).

        Memoized on the instance: maps are immutable and interned, and
        the cost model asks once per kernel-input edge.
        """
        cached = getattr(self, "_cost", None)
        if cached is None:
            cached = sum(e.cost() for e in self.exprs)
            object.__setattr__(self, "_cost", cached)
        return cached

    def simplified(self) -> "IndexMap":
        return IndexMap(self.in_shape, self.out_shape,
                        tuple(simplify(e) for e in self.exprs))

    def dependency_kinds(self) -> tuple[str, ...]:
        """Fig. 3 classification (identity/split/merge/compound) per input dim."""
        return tuple(classify_dependency(e) for e in self.exprs)

    def is_identity(self) -> bool:
        if self.in_shape != self.out_shape:
            return False
        for i, e in enumerate(self.exprs):
            if not (isinstance(e, Var) and e.name == f"o{i}"):
                return False
        return True

    def input_stride_of_output_dim(self, out_dim: int) -> int | None:
        """Stride in the *flat input* per unit step of output dim ``out_dim``.

        Returns None when the relationship is not an affine translation
        (i.e. stepping the output dim changes which div/mod bucket input
        coordinates fall into).  Used by the cost model to judge locality
        of eliminated-transform reads.
        """
        env0 = {f"o{i}": 0 for i in range(len(self.out_shape))}
        env1 = dict(env0)
        if self.out_shape[out_dim] < 2:
            return 0
        env1[f"o{out_dim}"] = 1
        env2 = dict(env0)
        probe = min(2, self.out_shape[out_dim] - 1)
        env2[f"o{out_dim}"] = probe
        strides = []
        acc = 1
        for extent in reversed(self.in_shape):
            strides.append(acc)
            acc *= extent
        strides.reverse()
        flat0 = sum(int(e.evaluate(env0)) * s for e, s in zip(self.exprs, strides))
        flat1 = sum(int(e.evaluate(env1)) * s for e, s in zip(self.exprs, strides))
        flat2 = sum(int(e.evaluate(env2)) * s for e, s in zip(self.exprs, strides))
        step = flat1 - flat0
        if flat2 - flat0 != probe * step:
            return None
        return step

    # -- execution -------------------------------------------------------------

    def evaluate(self) -> tuple[np.ndarray, ...]:
        """Input coordinate arrays for the full output index grid."""
        grids = np.indices(self.out_shape, dtype=np.int64)
        env = {f"o{i}": grids[i] for i in range(len(self.out_shape))}
        out = []
        for e in self.exprs:
            value = e.evaluate(env)
            if isinstance(value, (int, np.integer)):
                value = np.full(self.out_shape, int(value), dtype=np.int64)
            out.append(value)
        return tuple(out)

    def apply(self, array: np.ndarray) -> np.ndarray:
        """Gather ``array`` through the map (the semantics of the view chain)."""
        if tuple(array.shape) != self.in_shape:
            raise ValueError(f"array shape {array.shape} != map input {self.in_shape}")
        return array[self.evaluate()]
