"""Graph IR: tensors, layouts, operators, and the computational DAG."""

from .builder import GraphBuilder
from .dtype import DType, parse_dtype
from .graph import Graph, GraphError, Node
from .layout import Layout, MemoryKind, TEXTURE_VECTOR_WIDTH
from .ops import Mapping, OpDef, Quadrant, all_op_types, get_op, register_op
from .pattern import ChainMatch, find_chains, layout_transform_chains
from .printer import format_graph, summarize
from .serialize import dumps, graph_from_json, graph_to_json, loads
from .tensor import Shape, TensorSpec
from .validate import validate
from .view import ViewChain, ViewStep, lower_depth_to_space, lower_space_to_depth

__all__ = [
    "ChainMatch", "DType", "Graph", "GraphBuilder", "GraphError", "Layout",
    "Mapping", "MemoryKind", "Node", "OpDef", "Quadrant", "Shape",
    "TEXTURE_VECTOR_WIDTH", "TensorSpec", "ViewChain", "ViewStep",
    "all_op_types", "dumps", "find_chains", "format_graph", "get_op",
    "graph_from_json", "summarize",
    "graph_to_json", "layout_transform_chains", "loads",
    "lower_depth_to_space", "lower_space_to_depth", "parse_dtype",
    "register_op", "validate",
]
