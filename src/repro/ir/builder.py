"""Fluent construction API for computational graphs.

Model definitions in ``repro.models`` use a GraphBuilder the way one uses
an eager framework: each method performs shape inference, registers the
output tensor, and returns its name.  Parameters (weights) are created
implicitly with deterministic names so parameter counts are reproducible.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .dtype import DType
from .graph import Graph
from .ops import BINARY_FUNCS, UNARY_FUNCS, get_op
from .tensor import Shape, TensorSpec


class GraphBuilder:
    """Builds a Graph while tracking shapes."""

    def __init__(self, name: str = "graph", dtype: DType = DType.FP16) -> None:
        self.graph = Graph(name)
        self.dtype = dtype

    # -- plumbing ---------------------------------------------------------

    def shape(self, tensor: str) -> Shape:
        return self.graph.shape(tensor)

    def input(self, name: str, shape: Iterable[int], dtype: DType | None = None) -> str:
        return self.graph.add_input(name, shape, dtype or self.dtype).name

    def param(self, shape: Iterable[int], prefix: str = "w",
              dtype: DType | None = None) -> str:
        name = self.graph.fresh_id(prefix)
        return self.graph.add_param(name, shape, dtype or self.dtype).name

    def const(self, value: float, shape: Iterable[int] = (1,),
              prefix: str = "const") -> str:
        """A known-value constant (e.g. an epsilon or attention scale)."""
        name = self.graph.fresh_id(prefix)
        spec = TensorSpec(name, tuple(shape), self.dtype, is_param=True,
                          const_value=float(value))
        return self.graph.add_tensor(spec).name

    def output(self, tensor: str) -> str:
        self.graph.mark_output(tensor)
        return tensor

    def finish(self) -> Graph:
        """Mark dangling tensors as outputs if none were marked, and return."""
        if not self.graph.outputs:
            consumed = {t for n in self.graph.iter_nodes() for t in n.inputs}
            for node in self.graph.iter_nodes():
                for out in node.outputs:
                    if out not in consumed:
                        self.graph.mark_output(out)
        return self.graph

    def _emit(self, op_type: str, inputs: list[str], attrs: dict | None = None,
              n_outputs: int = 1, out_prefix: str | None = None) -> str | list[str]:
        opdef = get_op(op_type)
        in_shapes = [self.shape(t) for t in inputs]
        out_shapes = opdef.infer_shapes(in_shapes, attrs or {})
        if len(out_shapes) != n_outputs:
            raise ValueError(f"{op_type} produced {len(out_shapes)} shapes")
        prefix = out_prefix or op_type
        out_names = []
        for shape in out_shapes:
            name = self.graph.fresh_id(prefix)
            self.graph.add_tensor(TensorSpec(name, shape, self.dtype))
            out_names.append(name)
        self.graph.add_node(op_type, inputs, out_names, attrs or {})
        return out_names[0] if n_outputs == 1 else out_names

    # -- compute ops --------------------------------------------------------

    def conv2d(self, x: str, out_channels: int, kernel: int | tuple[int, int],
               stride: int | tuple[int, int] = 1,
               padding: int | tuple[int, int] = 0,
               groups: int = 1, bias: bool = True,
               dilation: int | tuple[int, int] = 1) -> str:
        kh, kw = (kernel, kernel) if isinstance(kernel, int) else kernel
        c = self.shape(x)[1]
        if c % groups:
            raise ValueError(f"channels {c} not divisible by groups {groups}")
        w = self.param((out_channels, c // groups, kh, kw), "conv_w")
        inputs = [x, w]
        if bias:
            inputs.append(self.param((out_channels,), "conv_b"))
        attrs = {"kernel": (kh, kw), "stride": stride, "padding": padding,
                 "groups": groups, "dilation": dilation}
        return self._emit("conv2d", inputs, attrs)

    def depthwise_conv2d(self, x: str, kernel, stride=1, padding=0,
                         bias: bool = True) -> str:
        c = self.shape(x)[1]
        return self.conv2d(x, c, kernel, stride, padding, groups=c, bias=bias)

    def dense(self, x: str, units: int, bias: bool = True) -> str:
        w = self.param((units, self.shape(x)[-1]), "dense_w")
        inputs = [x, w]
        if bias:
            inputs.append(self.param((units,), "dense_b"))
        return self._emit("dense", inputs)

    def matmul(self, a: str, b: str, transpose_a: bool = False,
               transpose_b: bool = False) -> str:
        return self._emit("matmul", [a, b],
                          {"transpose_a": transpose_a, "transpose_b": transpose_b})

    # -- elementwise ----------------------------------------------------------

    def unary(self, x: str, func: str) -> str:
        if func not in UNARY_FUNCS:
            raise ValueError(f"unknown unary func {func!r}")
        return self._emit("unary", [x], {"func": func}, out_prefix=func)

    def binary(self, a: str, b: str, func: str) -> str:
        if func not in BINARY_FUNCS:
            raise ValueError(f"unknown binary func {func!r}")
        return self._emit("binary", [a, b], {"func": func}, out_prefix=func)

    def relu(self, x: str) -> str:
        return self.unary(x, "relu")

    def gelu(self, x: str) -> str:
        return self.unary(x, "gelu")

    def silu(self, x: str) -> str:
        return self.unary(x, "silu")

    def sigmoid(self, x: str) -> str:
        return self.unary(x, "sigmoid")

    def add(self, a: str, b: str) -> str:
        return self.binary(a, b, "add")

    def sub(self, a: str, b: str) -> str:
        return self.binary(a, b, "sub")

    def mul(self, a: str, b: str) -> str:
        return self.binary(a, b, "mul")

    def div(self, a: str, b: str) -> str:
        return self.binary(a, b, "div")

    def add_const(self, x: str, shape: Iterable[int] | None = None,
                  prefix: str = "bias") -> str:
        """Add a learned constant (broadcastable) - e.g. positional embeddings."""
        shape = tuple(shape) if shape is not None else self.shape(x)
        return self.add(x, self.param(shape, prefix))

    def scale_shift(self, x: str, axis: int = -1) -> str:
        """Per-channel affine: x * gamma + beta (folded batchnorm style)."""
        rank = len(self.shape(x))
        axis %= rank
        bshape = tuple(self.shape(x)[axis] if i == axis else 1 for i in range(rank))
        return self.add(self.mul(x, self.param(bshape, "scale")),
                        self.param(bshape, "shift"))

    # -- normalization ----------------------------------------------------------

    def softmax(self, x: str, axis: int = -1) -> str:
        return self._emit("softmax", [x], {"axis": axis})

    def layernorm(self, x: str, axes: int | Sequence[int] = -1,
                  affine: bool = True) -> str:
        attrs = {"axes": axes, "eps": 1e-5}
        inputs = [x]
        if affine:
            rank = len(self.shape(x))
            ax = (axes,) if isinstance(axes, int) else tuple(axes)
            pshape = tuple(self.shape(x)[a % rank] for a in sorted(a % rank for a in ax))
            inputs += [self.param(pshape, "ln_g"), self.param(pshape, "ln_b")]
        return self._emit("layernorm", inputs, attrs)

    def rmsnorm(self, x: str, axes: int | Sequence[int] = -1) -> str:
        rank = len(self.shape(x))
        ax = (axes,) if isinstance(axes, int) else tuple(axes)
        pshape = tuple(self.shape(x)[a % rank] for a in sorted(a % rank for a in ax))
        return self._emit("rmsnorm", [x, self.param(pshape, "rms_g")],
                          {"axes": axes, "eps": 1e-6})

    def instancenorm(self, x: str, affine: bool = True) -> str:
        inputs = [x]
        if affine:
            c = self.shape(x)[1]
            inputs += [self.param((c,), "in_g"), self.param((c,), "in_b")]
        return self._emit("instancenorm", inputs, {"eps": 1e-5})

    def groupnorm(self, x: str, groups: int = 32, affine: bool = True) -> str:
        inputs = [x]
        if affine:
            c = self.shape(x)[1]
            inputs += [self.param((c,), "gn_g"), self.param((c,), "gn_b")]
        return self._emit("groupnorm", inputs, {"groups": groups, "eps": 1e-5})

    def batchnorm(self, x: str) -> str:
        c = self.shape(x)[1]
        return self._emit("batchnorm",
                          [x, self.param((c,), "bn_g"), self.param((c,), "bn_b")], {})

    def reduce(self, x: str, kind: str = "reduce_mean",
               axes: int | Sequence[int] | None = None, keepdims: bool = False) -> str:
        if axes is None:
            axes = tuple(range(len(self.shape(x))))
        return self._emit(kind, [x], {"axes": axes, "keepdims": keepdims})

    # -- layout / reorganization ---------------------------------------------

    def reshape(self, x: str, shape: Iterable[int]) -> str:
        return self._emit("reshape", [x], {"shape": tuple(shape)})

    def transpose(self, x: str, perm: Iterable[int]) -> str:
        return self._emit("transpose", [x], {"perm": tuple(perm)})

    def slice(self, x: str, starts: Sequence[int], stops: Sequence[int],
              steps: Sequence[int] | None = None) -> str:
        attrs = {"starts": tuple(starts), "stops": tuple(stops)}
        if steps is not None:
            attrs["steps"] = tuple(steps)
        return self._emit("slice", [x], attrs)

    def slice_axis(self, x: str, axis: int, start: int, stop: int) -> str:
        shape = self.shape(x)
        axis %= len(shape)
        starts = [0] * len(shape)
        stops = list(shape)
        starts[axis], stops[axis] = start, stop
        return self.slice(x, starts, stops)

    def concat(self, xs: Sequence[str], axis: int) -> str:
        return self._emit("concat", list(xs), {"axis": axis})

    def gather(self, x: str, indices: Sequence[int], axis: int = 0) -> str:
        return self._emit("gather", [x],
                          {"axis": axis, "indices": tuple(int(i) for i in indices),
                           "indices_shape": (len(indices),)})

    def split(self, x: str, sections: int, axis: int = 0) -> list[str]:
        """Split into equal sections along ``axis`` (multi-output op)."""
        return self._emit("split", [x], {"axis": axis, "sections": sections},
                          n_outputs=sections)

    def pad(self, x: str, pads: Sequence[tuple[int, int]]) -> str:
        return self._emit("pad", [x], {"pads": tuple((int(a), int(b)) for a, b in pads)})

    def depth_to_space(self, x: str, block: int = 2) -> str:
        return self._emit("depth_to_space", [x], {"block": block})

    def space_to_depth(self, x: str, block: int = 2) -> str:
        return self._emit("space_to_depth", [x], {"block": block})

    # -- pooling / resampling -----------------------------------------------

    def maxpool2d(self, x: str, kernel, stride=None, padding=0) -> str:
        attrs = {"kernel": kernel, "padding": padding}
        if stride is not None:
            attrs["stride"] = stride
        return self._emit("maxpool2d", [x], attrs)

    def avgpool2d(self, x: str, kernel, stride=None, padding=0) -> str:
        attrs = {"kernel": kernel, "padding": padding}
        if stride is not None:
            attrs["stride"] = stride
        return self._emit("avgpool2d", [x], attrs)

    def global_avgpool(self, x: str) -> str:
        return self._emit("global_avgpool", [x], {})

    def upsample2d(self, x: str, scale: int = 2) -> str:
        return self._emit("upsample2d", [x], {"scale": scale})

    # -- lookup ----------------------------------------------------------------

    def embedding(self, ids: str, vocab: int, dim: int) -> str:
        table = self.param((vocab, dim), "emb")
        return self._emit("embedding", [table, ids])
