"""Data types used by the IR.

The paper evaluates mobile GPUs with 16-bit floats and desktop GPUs with
32-bit floats (Section 4.1); the cost model needs element sizes to compute
memory traffic, so dtypes carry their byte width.
"""

from __future__ import annotations

import enum

import numpy as np


class DType(enum.Enum):
    """Element type of a tensor."""

    FP16 = "fp16"
    FP32 = "fp32"
    INT8 = "int8"
    INT32 = "int32"
    INT64 = "int64"
    BOOL = "bool"

    @property
    def size_bytes(self) -> int:
        """Width of one element in bytes."""
        return _SIZE_BYTES[self]

    @property
    def numpy_dtype(self) -> np.dtype:
        """The NumPy dtype used by the reference executor.

        FP16 maps to float32 for execution: the reference kernels verify
        *semantics* of graph rewrites, which must not depend on rounding,
        while the cost model separately accounts for the 2-byte storage.
        """
        return _NUMPY_DTYPE[self]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DType.{self.name}"


_SIZE_BYTES = {
    DType.FP16: 2,
    DType.FP32: 4,
    DType.INT8: 1,
    DType.INT32: 4,
    DType.INT64: 8,
    DType.BOOL: 1,
}

_NUMPY_DTYPE = {
    DType.FP16: np.dtype(np.float32),
    DType.FP32: np.dtype(np.float32),
    DType.INT8: np.dtype(np.int8),
    DType.INT32: np.dtype(np.int32),
    DType.INT64: np.dtype(np.int64),
    DType.BOOL: np.dtype(np.bool_),
}


def parse_dtype(value: "DType | str") -> DType:
    """Coerce a string like ``"fp16"`` (or a DType) to a DType."""
    if isinstance(value, DType):
        return value
    try:
        return DType(value)
    except ValueError:
        raise ValueError(f"unknown dtype {value!r}") from None
