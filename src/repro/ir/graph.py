"""The computational graph: a DAG of operator nodes over named tensors.

The optimizer communicates through three kinds of graph annotations:

* ``Node.group`` - fusion group id.  Nodes sharing a group execute as one
  kernel; operator counts reported in Table 7 are *group* counts.
* ``Node.input_views`` - residual index computation (a ViewChain) attached
  to a node input after layout transformation elimination removed explicit
  Reshape/Transpose producers.
* ``Graph.tensor_layouts`` - the physical layout selected for each tensor
  by layout selection / texture mapping.

Grouping and views never change numerics: the reference executor runs the
primitive nodes one by one (applying input views first), so any optimized
graph can be verified bit-for-bit against the original.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .dtype import DType
from .layout import Layout
from .ops import get_op
from .tensor import Shape, TensorSpec
from .view import ViewChain


class GraphError(ValueError):
    """Raised when a graph is malformed or a rewrite is illegal."""


@dataclass
class Node:
    """One operator application."""

    id: str
    op_type: str
    inputs: list[str]
    outputs: list[str]
    attrs: dict = field(default_factory=dict)
    input_views: dict[int, ViewChain] = field(default_factory=dict)
    group: int | None = None

    @property
    def opdef(self):
        return get_op(self.op_type)

    def view_for(self, idx: int, in_shape: Shape) -> ViewChain:
        """The (possibly identity) view applied to input ``idx``."""
        return self.input_views.get(idx, ViewChain.identity(in_shape))


class Graph:
    """A static, single-static-assignment computational graph."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.tensors: dict[str, TensorSpec] = {}
        self.nodes: dict[str, Node] = {}
        self._order: list[str] = []
        self.inputs: list[str] = []
        self.outputs: list[str] = []
        self.tensor_layouts: dict[str, Layout] = {}
        self._producer: dict[str, str] = {}
        self._id_counter = itertools.count()
        self._consumer_cache: dict[str, list[tuple[str, int]]] | None = None

    # -- construction --------------------------------------------------------

    def add_tensor(self, spec: TensorSpec) -> TensorSpec:
        if spec.name in self.tensors:
            raise GraphError(f"tensor {spec.name!r} already defined")
        self.tensors[spec.name] = spec
        return spec

    def add_input(self, name: str, shape: Iterable[int], dtype: DType = DType.FP16) -> TensorSpec:
        spec = self.add_tensor(TensorSpec(name, tuple(shape), dtype))
        self.inputs.append(name)
        return spec

    def add_param(self, name: str, shape: Iterable[int], dtype: DType = DType.FP16) -> TensorSpec:
        return self.add_tensor(TensorSpec(name, tuple(shape), dtype, is_param=True))

    def mark_output(self, name: str) -> None:
        if name not in self.tensors:
            raise GraphError(f"cannot mark unknown tensor {name!r} as output")
        if name not in self.outputs:
            self.outputs.append(name)

    def fresh_id(self, prefix: str) -> str:
        return f"{prefix}_{next(self._id_counter)}"

    def add_node(
        self,
        op_type: str,
        inputs: list[str],
        outputs: list[str],
        attrs: dict | None = None,
        node_id: str | None = None,
    ) -> Node:
        """Append a node; output tensor specs must already exist."""
        opdef = get_op(op_type)
        if not opdef.min_inputs <= len(inputs) <= opdef.max_inputs:
            raise GraphError(
                f"{op_type} takes {opdef.min_inputs}..{opdef.max_inputs} inputs, "
                f"got {len(inputs)}"
            )
        for name in inputs:
            if name not in self.tensors:
                raise GraphError(f"node input {name!r} is not defined")
        for name in outputs:
            if name not in self.tensors:
                raise GraphError(f"node output {name!r} is not defined")
            if name in self._producer:
                raise GraphError(f"tensor {name!r} already has a producer")
        node_id = node_id or self.fresh_id(op_type)
        if node_id in self.nodes:
            raise GraphError(f"node id {node_id!r} already used")
        node = Node(node_id, op_type, list(inputs), list(outputs), dict(attrs or {}))
        self.nodes[node_id] = node
        self._order.append(node_id)
        for name in outputs:
            self._producer[name] = node_id
        if self._consumer_cache is not None:
            for idx, name in enumerate(node.inputs):
                self._consumer_cache.setdefault(name, []).append((node_id, idx))
        return node

    # -- queries --------------------------------------------------------------

    def producer(self, tensor: str) -> Node | None:
        node_id = self._producer.get(tensor)
        return self.nodes[node_id] if node_id is not None else None

    def consumers(self, tensor: str) -> list[tuple[Node, int]]:
        """All (node, input_index) pairs reading ``tensor``."""
        if self._consumer_cache is None:
            cache: dict[str, list[tuple[str, int]]] = {}
            for node_id in self._order:
                for idx, name in enumerate(self.nodes[node_id].inputs):
                    cache.setdefault(name, []).append((node_id, idx))
            self._consumer_cache = cache
        return [(self.nodes[node_id], idx)
                for node_id, idx in self._consumer_cache.get(tensor, ())]

    def topo_order(self) -> list[Node]:
        """Nodes in dependency order (validates acyclicity)."""
        ready = dict.fromkeys(self.inputs, True)
        ready.update(dict.fromkeys(
            (t for t, s in self.tensors.items() if s.is_param), True))
        remaining = [self.nodes[n] for n in self._order]
        ordered: list[Node] = []
        while remaining:
            progressed = False
            still = []
            for node in remaining:
                if all(name in ready for name in node.inputs):
                    ordered.append(node)
                    for out in node.outputs:
                        ready[out] = True
                    progressed = True
                else:
                    still.append(node)
            if not progressed:
                stuck = [n.id for n in still]
                raise GraphError(f"graph has a cycle or undefined inputs near {stuck[:5]}")
            remaining = still
        return ordered

    def shape(self, tensor: str) -> Shape:
        return self.tensors[tensor].shape

    def iter_nodes(self) -> Iterator[Node]:
        for node_id in self._order:
            yield self.nodes[node_id]

    @property
    def num_operators(self) -> int:
        """Operator count after grouping: one per fusion group.

        Ungrouped nodes count individually; this is the quantity the paper
        reports in Table 7.
        """
        groups = set()
        singles = 0
        for node in self.iter_nodes():
            if node.group is None:
                singles += 1
            else:
                groups.add(node.group)
        return singles + len(groups)

    @property
    def num_params(self) -> int:
        return sum(s.num_elements for s in self.tensors.values() if s.is_param)

    def total_macs(self) -> int:
        total = 0
        for node in self.iter_nodes():
            # kernels observe input shapes through their views
            ins = [node.view_for(i, self.shape(t)).out_shape
                   for i, t in enumerate(node.inputs)]
            outs = [self.shape(t) for t in node.outputs]
            total += node.opdef.macs(ins, outs, node.attrs)
        return total

    def count_op_types(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for node in self.iter_nodes():
            counts[node.op_type] = counts.get(node.op_type, 0) + 1
        return counts

    # -- rewriting --------------------------------------------------------------

    def remove_node(self, node_id: str) -> None:
        """Delete a node whose outputs are no longer referenced."""
        node = self.nodes[node_id]
        for out in node.outputs:
            for consumer, _ in self.consumers(out):
                raise GraphError(
                    f"cannot remove {node_id}: output {out!r} still read by "
                    f"{consumer.id}"
                )
            if out in self.outputs:
                raise GraphError(f"cannot remove {node_id}: {out!r} is a graph output")
        for out in node.outputs:
            del self._producer[out]
            del self.tensors[out]
            self.tensor_layouts.pop(out, None)
        del self.nodes[node_id]
        self._order.remove(node_id)
        if self._consumer_cache is not None:
            for name in set(node.inputs):
                entries = self._consumer_cache.get(name)
                if entries is not None:
                    self._consumer_cache[name] = [
                        e for e in entries if e[0] != node_id]

    def replace_input(self, node: Node, idx: int, new_tensor: str) -> None:
        if new_tensor not in self.tensors:
            raise GraphError(f"replacement tensor {new_tensor!r} not defined")
        old = node.inputs[idx]
        node.inputs[idx] = new_tensor
        if self._consumer_cache is not None:
            entries = self._consumer_cache.get(old)
            if entries is not None:
                self._consumer_cache[old] = [
                    e for e in entries if e != (node.id, idx)]
            self._consumer_cache.setdefault(new_tensor, []).append((node.id, idx))

    def clone(self) -> "Graph":
        """Deep structural copy (annotations included)."""
        g = Graph(self.name)
        g.tensors = dict(self.tensors)
        g.inputs = list(self.inputs)
        g.outputs = list(self.outputs)
        g.tensor_layouts = dict(self.tensor_layouts)
        for node in self.iter_nodes():
            copy = Node(
                node.id, node.op_type, list(node.inputs), list(node.outputs),
                dict(node.attrs), dict(node.input_views), node.group,
            )
            g.nodes[copy.id] = copy
            g._order.append(copy.id)
            for out in copy.outputs:
                g._producer[out] = copy.id
        g._id_counter = itertools.count(
            max((int(n.rsplit("_", 1)[-1]) for n in self.nodes
                 if n.rsplit("_", 1)[-1].isdigit()), default=-1) + 1)
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Graph({self.name!r}, nodes={len(self.nodes)}, "
                f"tensors={len(self.tensors)})")
