"""The computational graph: a DAG of operator nodes over named tensors.

The optimizer communicates through three kinds of graph annotations:

* ``Node.group`` - fusion group id.  Nodes sharing a group execute as one
  kernel; operator counts reported in Table 7 are *group* counts.
* ``Node.input_views`` - residual index computation (a ViewChain) attached
  to a node input after layout transformation elimination removed explicit
  Reshape/Transpose producers.
* ``Graph.tensor_layouts`` - the physical layout selected for each tensor
  by layout selection / texture mapping.

Grouping and views never change numerics: the reference executor runs the
primitive nodes one by one (applying input views first), so any optimized
graph can be verified bit-for-bit against the original.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .dtype import DType
from .layout import Layout
from .ops import get_op
from .tensor import Shape, TensorSpec
from .view import ViewChain


class GraphError(ValueError):
    """Raised when a graph is malformed or a rewrite is illegal."""


@dataclass
class Node:
    """One operator application."""

    id: str
    op_type: str
    inputs: list[str]
    outputs: list[str]
    attrs: dict = field(default_factory=dict)
    input_views: dict[int, ViewChain] = field(default_factory=dict)
    group: int | None = None

    @property
    def opdef(self):
        return get_op(self.op_type)

    def view_for(self, idx: int, in_shape: Shape) -> ViewChain:
        """The (possibly identity) view applied to input ``idx``."""
        return self.input_views.get(idx, ViewChain.identity(in_shape))


class Graph:
    """A static, single-static-assignment computational graph."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.tensors: dict[str, TensorSpec] = {}
        self.nodes: dict[str, Node] = {}
        self._order: list[str] = []
        self.inputs: list[str] = []
        self.outputs: list[str] = []
        self.tensor_layouts: dict[str, Layout] = {}
        self._producer: dict[str, str] = {}
        self._id_counter = itertools.count()
        self._consumer_cache: dict[str, list[tuple[str, int]]] | None = None
        self._topo_cache: list[str] | None = None
        self._generation = 0
        self._analysis_cache: dict = {}

    # -- caching -------------------------------------------------------------

    @property
    def generation(self) -> int:
        """Monotonic counter bumped on every structural mutation.

        Derived analyses keyed on (graph identity, generation) are safe to
        memoize: any mutation routed through :meth:`_invalidate` makes the
        old key unreachable.
        """
        return self._generation

    def _invalidate(self, *, keep_consumers: bool = False) -> None:
        """Single mutation hook: drop every derived cache.

        All structural mutations (``add_tensor``/``add_node``/
        ``remove_node``/``replace_input``/...) funnel through here, so a
        cache can never survive a mutation it should have observed.

        ``keep_consumers`` is passed only by the three mutators that patch
        the consumer map in place with the exact edge delta they applied;
        rebuilding it wholesale there would make the rewrite passes
        quadratic.
        """
        self._generation += 1
        self._topo_cache = None
        if not keep_consumers:
            self._consumer_cache = None
        if self._analysis_cache:
            self._analysis_cache.clear()

    def analysis_cache(self) -> dict:
        """Per-graph scratch space for memoized analyses.

        Entries live until the next structural mutation.  Values stored
        here must be treated as immutable by callers.
        """
        return self._analysis_cache

    def fingerprint(self) -> str:
        """Stable content hash of the graph: structure, tensor specs, and
        optimizer annotations (groups, views, layouts).

        Two graphs built the same way fingerprint identically whatever
        their object identity, so a session cache keyed on the
        fingerprint survives a user rebuilding the same model.  Memoized
        per generation (any structural mutation recomputes it).
        """
        found = self._analysis_cache.get("fingerprint")
        if found is None:
            from .serialize import graph_to_json

            payload = json.dumps(graph_to_json(self), sort_keys=True,
                                 default=str)
            found = hashlib.sha256(payload.encode()).hexdigest()
            self._analysis_cache["fingerprint"] = found
        return found

    # -- construction --------------------------------------------------------

    def add_tensor(self, spec: TensorSpec) -> TensorSpec:
        if spec.name in self.tensors:
            raise GraphError(f"tensor {spec.name!r} already defined")
        self.tensors[spec.name] = spec
        self._invalidate()
        return spec

    def add_input(self, name: str, shape: Iterable[int], dtype: DType = DType.FP16) -> TensorSpec:
        spec = self.add_tensor(TensorSpec(name, tuple(shape), dtype))
        self.inputs.append(name)
        return spec

    def add_param(self, name: str, shape: Iterable[int], dtype: DType = DType.FP16) -> TensorSpec:
        return self.add_tensor(TensorSpec(name, tuple(shape), dtype, is_param=True))

    def mark_output(self, name: str) -> None:
        if name not in self.tensors:
            raise GraphError(f"cannot mark unknown tensor {name!r} as output")
        if name not in self.outputs:
            self.outputs.append(name)
            self._invalidate()

    def fresh_id(self, prefix: str) -> str:
        return f"{prefix}_{next(self._id_counter)}"

    def add_node(
        self,
        op_type: str,
        inputs: list[str],
        outputs: list[str],
        attrs: dict | None = None,
        node_id: str | None = None,
    ) -> Node:
        """Append a node; output tensor specs must already exist."""
        opdef = get_op(op_type)
        if not opdef.min_inputs <= len(inputs) <= opdef.max_inputs:
            raise GraphError(
                f"{op_type} takes {opdef.min_inputs}..{opdef.max_inputs} inputs, "
                f"got {len(inputs)}"
            )
        for name in inputs:
            if name not in self.tensors:
                raise GraphError(f"node input {name!r} is not defined")
        for name in outputs:
            if name not in self.tensors:
                raise GraphError(f"node output {name!r} is not defined")
            if name in self._producer:
                raise GraphError(f"tensor {name!r} already has a producer")
        node_id = node_id or self.fresh_id(op_type)
        if node_id in self.nodes:
            raise GraphError(f"node id {node_id!r} already used")
        node = Node(node_id, op_type, list(inputs), list(outputs), dict(attrs or {}))
        self.nodes[node_id] = node
        self._order.append(node_id)
        for name in outputs:
            self._producer[name] = node_id
        if self._consumer_cache is not None:
            for idx, name in enumerate(node.inputs):
                self._consumer_cache.setdefault(name, []).append((node_id, idx))
        self._invalidate(keep_consumers=True)
        return node

    # -- queries --------------------------------------------------------------

    def producer(self, tensor: str) -> Node | None:
        node_id = self._producer.get(tensor)
        return self.nodes[node_id] if node_id is not None else None

    def _consumer_map(self) -> dict[str, list[tuple[str, int]]]:
        if self._consumer_cache is None:
            cache: dict[str, list[tuple[str, int]]] = {}
            for node_id in self._order:
                for idx, name in enumerate(self.nodes[node_id].inputs):
                    cache.setdefault(name, []).append((node_id, idx))
            self._consumer_cache = cache
        return self._consumer_cache

    def consumers(self, tensor: str) -> list[tuple[Node, int]]:
        """All (node, input_index) pairs reading ``tensor``."""
        return [(self.nodes[node_id], idx)
                for node_id, idx in self._consumer_map().get(tensor, ())]

    def consumer_map(self) -> dict[str, list[tuple[str, int]]]:
        """tensor -> [(consumer node id, input index), ...] for the whole
        graph; treat as read-only.  Hot paths that visit every edge use
        this instead of per-tensor :meth:`consumers` calls."""
        return self._consumer_map()

    @property
    def producer_ids(self) -> dict[str, str]:
        """tensor -> producer node id; treat as read-only."""
        return self._producer

    def topo_order(self) -> list[Node]:
        """Nodes in dependency order (validates acyclicity).

        Computed once per graph generation with Kahn's algorithm (O(V+E))
        and cached; structural mutations invalidate the cache through
        :meth:`_invalidate`.  The order reproduces the historical
        repeated-scan order exactly: nodes are grouped by the scan round
        in which they became ready, insertion order within a round, where
        a node whose producer precedes it in insertion order becomes
        ready in the producer's own round (the scan marked outputs ready
        mid-round).
        """
        if self._topo_cache is None:
            self._topo_cache = self._compute_topo_order()
        nodes = self.nodes
        return [nodes[node_id] for node_id in self._topo_cache]

    def _compute_topo_order(self) -> list[str]:
        ready = set(self.inputs)
        # Parameters and interior constants (const_value tensors with no
        # producer) are available before any node runs.
        ready.update(
            t for t, s in self.tensors.items()
            if s.is_param or (s.const_value is not None
                              and t not in self._producer))
        # Per-occurrence dependency edges: an input that is ready from the
        # start is satisfied; one with a producer waits on that node; one
        # that is neither can never be satisfied (undefined input).
        pending: dict[str, int] = {}
        waiters: dict[str, list[str]] = {}
        pos = {node_id: i for i, node_id in enumerate(self._order)}
        for node_id in self._order:
            count = 0
            for name in self.nodes[node_id].inputs:
                if name in ready:
                    continue
                count += 1
                if name in self._producer:
                    waiters.setdefault(name, []).append(node_id)
            pending[node_id] = count
        round_of: dict[str, int] = dict.fromkeys(self._order, 0)
        queue: deque[str] = deque()
        for node_id in self._order:
            if pending[node_id] == 0:
                queue.append(node_id)
        emitted = 0
        while queue:
            node_id = queue.popleft()
            emitted += 1
            node_round = round_of[node_id]
            node_pos = pos[node_id]
            for out in self.nodes[node_id].outputs:
                if out in ready:
                    continue
                for waiter in waiters.get(out, ()):
                    pending[waiter] -= 1
                    # A waiter scanned after this producer in the same
                    # round already sees the output ready; one scanned
                    # before it must wait for the next round.
                    cand = node_round if node_pos < pos[waiter] else node_round + 1
                    if round_of[waiter] < cand:
                        round_of[waiter] = cand
                    if pending[waiter] == 0:
                        queue.append(waiter)
        if emitted < len(self._order):
            stuck = [n for n in self._order if pending[n] > 0]
            raise GraphError(f"graph has a cycle or undefined inputs near {stuck[:5]}")
        buckets: list[list[str]] = [
            [] for _ in range(max(round_of.values(), default=-1) + 1)]
        for node_id in self._order:
            buckets[round_of[node_id]].append(node_id)
        return [node_id for bucket in buckets for node_id in bucket]

    def shape(self, tensor: str) -> Shape:
        return self.tensors[tensor].shape

    def iter_nodes(self) -> Iterator[Node]:
        for node_id in self._order:
            yield self.nodes[node_id]

    @property
    def num_operators(self) -> int:
        """Operator count after grouping: one per fusion group.

        Ungrouped nodes count individually; this is the quantity the paper
        reports in Table 7.
        """
        groups = set()
        singles = 0
        for node in self.iter_nodes():
            if node.group is None:
                singles += 1
            else:
                groups.add(node.group)
        return singles + len(groups)

    @property
    def num_params(self) -> int:
        return sum(s.num_elements for s in self.tensors.values() if s.is_param)

    def total_macs(self) -> int:
        total = 0
        for node in self.iter_nodes():
            # kernels observe input shapes through their views
            ins = [node.view_for(i, self.shape(t)).out_shape
                   for i, t in enumerate(node.inputs)]
            outs = [self.shape(t) for t in node.outputs]
            total += node.opdef.macs(ins, outs, node.attrs)
        return total

    def count_op_types(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for node in self.iter_nodes():
            counts[node.op_type] = counts.get(node.op_type, 0) + 1
        return counts

    # -- rewriting --------------------------------------------------------------

    def remove_node(self, node_id: str) -> None:
        """Delete a node whose outputs are no longer referenced."""
        node = self.nodes[node_id]
        for out in node.outputs:
            for consumer, _ in self.consumers(out):
                raise GraphError(
                    f"cannot remove {node_id}: output {out!r} still read by "
                    f"{consumer.id}"
                )
            if out in self.outputs:
                raise GraphError(f"cannot remove {node_id}: {out!r} is a graph output")
        for out in node.outputs:
            del self._producer[out]
            del self.tensors[out]
            self.tensor_layouts.pop(out, None)
        del self.nodes[node_id]
        self._order.remove(node_id)
        if self._consumer_cache is not None:
            for out in node.outputs:
                self._consumer_cache.pop(out, None)
            for name in set(node.inputs):
                entries = self._consumer_cache.get(name)
                if entries is not None:
                    self._consumer_cache[name] = [
                        e for e in entries if e[0] != node_id]
        self._invalidate(keep_consumers=True)

    def replace_input(self, node: Node, idx: int, new_tensor: str) -> None:
        if new_tensor not in self.tensors:
            raise GraphError(f"replacement tensor {new_tensor!r} not defined")
        old = node.inputs[idx]
        node.inputs[idx] = new_tensor
        if self._consumer_cache is not None:
            entries = self._consumer_cache.get(old)
            if entries is not None:
                self._consumer_cache[old] = [
                    e for e in entries if e != (node.id, idx)]
            self._consumer_cache.setdefault(new_tensor, []).append((node.id, idx))
        self._invalidate(keep_consumers=True)

    def clone(self) -> "Graph":
        """Deep structural copy (annotations included)."""
        g = Graph(self.name)
        g.tensors = dict(self.tensors)
        g.inputs = list(self.inputs)
        g.outputs = list(self.outputs)
        g.tensor_layouts = dict(self.tensor_layouts)
        for node in self.iter_nodes():
            copy = Node(
                node.id, node.op_type, list(node.inputs), list(node.outputs),
                dict(node.attrs), dict(node.input_views), node.group,
            )
            g.nodes[copy.id] = copy
            g._order.append(copy.id)
            for out in copy.outputs:
                g._producer[out] = copy.id
        g._id_counter = itertools.count(
            max((int(n.rsplit("_", 1)[-1]) for n in self.nodes
                 if n.rsplit("_", 1)[-1].isdigit()), default=-1) + 1)
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Graph({self.name!r}, nodes={len(self.nodes)}, "
                f"tensors={len(self.tensors)})")
