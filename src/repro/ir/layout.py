"""Physical layout descriptions for tensors.

A layout answers two questions the paper's optimizer cares about:

1. *Logical order*: which permutation of logical dimensions is laid out
   from outermost to innermost in memory (``dim_order``).  The innermost
   dimension is the unit-stride one; reduction-dimension-based layout
   selection (Section 3.2.2) wants each consumer's reduction dimension
   stored unit-stride.

2. *Physical mapping*: whether the tensor lives in a 1D buffer or in 2.5D
   texture memory, and for textures which dimension is packed into the
   length-4 vector slots (the "0.5D" of 2.5D; Section 2.3/3.3).
"""

from __future__ import annotations

import enum
import functools
import math
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from .tensor import Shape

TEXTURE_VECTOR_WIDTH = 4
"""Each texture cache element is a vector of 4 scalars (Section 2.3)."""


class MemoryKind(enum.Enum):
    """Which memory class a tensor occupies on the device."""

    BUFFER_1D = "buffer1d"
    TEXTURE_2D5 = "texture2.5d"


def _check_perm(perm: Sequence[int], rank: int) -> tuple[int, ...]:
    out = tuple(int(d) for d in perm)
    if sorted(out) != list(range(rank)):
        raise ValueError(f"dim_order {out} is not a permutation of range({rank})")
    return out


@dataclass(frozen=True)
class Layout:
    """Physical layout of an ``rank``-dimensional tensor.

    Attributes:
        dim_order: Permutation of logical dims, outermost first.  For example
            ``(0, 2, 3, 1)`` on an NCHW-shaped tensor means the data is
            physically NHWC.
        memory: Memory class holding the tensor.
        vector_dim: Logical dimension packed 4-wide into texture vector
            slots.  Only meaningful (and required) for TEXTURE_2D5.
        num_width_dims: For textures, how many of the trailing (innermost)
            non-vector dims map to the texture *width* axis; the remaining
            dims map to the height axis.  Two texture axes give the "2D"
            of 2.5D: both can be indexed directly without linearization.
    """

    dim_order: tuple[int, ...]
    memory: MemoryKind = MemoryKind.BUFFER_1D
    vector_dim: int | None = None
    num_width_dims: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "dim_order", _check_perm(self.dim_order, len(self.dim_order)))
        if self.memory is MemoryKind.TEXTURE_2D5:
            if self.vector_dim is None:
                raise ValueError("texture layouts require a vector_dim")
            if self.vector_dim not in self.dim_order:
                raise ValueError(
                    f"vector_dim {self.vector_dim} out of range for rank {self.rank}"
                )
            if not 1 <= self.num_width_dims <= max(1, self.rank - 1):
                raise ValueError(f"num_width_dims {self.num_width_dims} invalid")
        elif self.vector_dim is not None:
            raise ValueError("vector_dim is only meaningful for texture layouts")

    # -- basic facts ------------------------------------------------------

    @property
    def rank(self) -> int:
        return len(self.dim_order)

    @property
    def innermost_dim(self) -> int:
        """Logical dimension with unit stride."""
        return self.dim_order[-1]

    def is_unit_stride(self, dim: int) -> bool:
        """True if ``dim`` is stored contiguously.

        For textures both the innermost width dim and the vector dim are
        directly/contiguously accessible (Section 3.3): elements along the
        vector dim share one texel, and elements along the innermost width
        dim are adjacent texels on the width axis.
        """
        if dim == self.innermost_dim:
            return True
        return self.memory is MemoryKind.TEXTURE_2D5 and dim == self.vector_dim

    def fast_dims(self) -> tuple[int, ...]:
        """Dims with continuous, index-computation-free access.

        This is the paper's *k*: 1 for 1D buffers, 2 for 2.5D textures
        (Section 3.2.2 "k is the number of dimensions along which we can
        perform continuous memory access").
        """
        if self.memory is MemoryKind.TEXTURE_2D5:
            dims = [self.vector_dim]
            if self.innermost_dim != self.vector_dim:
                dims.append(self.innermost_dim)
            return tuple(dims)
        return (self.innermost_dim,)

    # -- buffer geometry ---------------------------------------------------

    def strides(self, shape: Shape) -> tuple[int, ...]:
        """Element strides per logical dim for a 1D buffer layout."""
        if len(shape) != self.rank:
            raise ValueError(f"shape rank {len(shape)} != layout rank {self.rank}")
        strides = [0] * self.rank
        acc = 1
        for dim in reversed(self.dim_order):
            strides[dim] = acc
            acc *= shape[dim]
        return tuple(strides)

    # -- texture geometry ---------------------------------------------------

    def texture_extent(self, shape: Shape) -> tuple[int, int]:
        """(width, height) in texels when mapped to 2.5D memory.

        The vector dim is padded up to a multiple of 4 and packed into
        texels; the trailing ``num_width_dims`` of the remaining order fill
        the width axis and the rest fill the height axis.
        """
        if self.memory is not MemoryKind.TEXTURE_2D5:
            raise ValueError("texture_extent only applies to texture layouts")
        if len(shape) != self.rank:
            raise ValueError(f"shape rank {len(shape)} != layout rank {self.rank}")
        remaining = [d for d in self.dim_order if d != self.vector_dim]
        if not remaining:  # rank-1 tensor fully packed into vectors
            return (1, 1)
        width_dims = remaining[len(remaining) - self.num_width_dims:]
        height_dims = remaining[: len(remaining) - self.num_width_dims]
        width = math.prod(shape[d] for d in width_dims)
        height = math.prod(shape[d] for d in height_dims)
        return (width, max(1, height))

    def texel_count(self, shape: Shape) -> int:
        """Number of texels (vec4 slots) the tensor occupies."""
        if self.memory is not MemoryKind.TEXTURE_2D5:
            raise ValueError("texel_count only applies to texture layouts")
        vec = shape[self.vector_dim]
        packed = -(-vec // TEXTURE_VECTOR_WIDTH)
        rest = math.prod(shape[d] for d in self.dim_order if d != self.vector_dim)
        return packed * rest

    # -- constructors / transforms -----------------------------------------

    @staticmethod
    @functools.lru_cache(maxsize=64)
    def row_major(rank: int) -> "Layout":
        """The framework-default contiguous layout in a 1D buffer.

        Layouts are immutable, so instances are interned per rank: the
        cost model asks for row-major layouts tens of thousands of times
        per benchmark table.
        """
        return Layout(dim_order=tuple(range(rank)))

    @staticmethod
    def buffer(dim_order: Iterable[int]) -> "Layout":
        return _interned_layout(tuple(dim_order), MemoryKind.BUFFER_1D, None, 1)

    @staticmethod
    def texture(
        dim_order: Iterable[int], vector_dim: int, num_width_dims: int = 1
    ) -> "Layout":
        return _interned_layout(tuple(dim_order), MemoryKind.TEXTURE_2D5,
                                vector_dim, num_width_dims)

    def with_memory(self, memory: MemoryKind, vector_dim: int | None = None) -> "Layout":
        if memory is MemoryKind.TEXTURE_2D5:
            vec = self.innermost_dim if vector_dim is None else vector_dim
            return replace(self, memory=memory, vector_dim=vec)
        return replace(self, memory=memory, vector_dim=None, num_width_dims=1)

    def permuted(self, perm: Sequence[int]) -> "Layout":
        """Layout of ``transpose(x, perm)`` if data is *not* moved.

        Logical dim ``i`` of the output is logical dim ``perm[i]`` of the
        input, so every input dim index in this layout is renamed through
        the inverse permutation.
        """
        perm = _check_perm(perm, self.rank)
        inverse = [0] * self.rank
        for new_axis, old_axis in enumerate(perm):
            inverse[old_axis] = new_axis
        return replace(
            self,
            dim_order=tuple(inverse[d] for d in self.dim_order),
            vector_dim=None if self.vector_dim is None else inverse[self.vector_dim],
        )

    def to_json(self) -> dict:
        return {
            "dim_order": list(self.dim_order),
            "memory": self.memory.value,
            "vector_dim": self.vector_dim,
            "num_width_dims": self.num_width_dims,
        }

    @staticmethod
    def from_json(data: dict) -> "Layout":
        return Layout(
            dim_order=tuple(data["dim_order"]),
            memory=MemoryKind(data["memory"]),
            vector_dim=data["vector_dim"],
            num_width_dims=data.get("num_width_dims", 1),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        mem = "tex" if self.memory is MemoryKind.TEXTURE_2D5 else "buf"
        vec = f",v{self.vector_dim}" if self.vector_dim is not None else ""
        return f"{mem}{list(self.dim_order)}{vec}"


@functools.lru_cache(maxsize=4096)
def _interned_layout(dim_order: tuple[int, ...], memory: MemoryKind,
                     vector_dim: int | None, num_width_dims: int) -> Layout:
    # Layouts are immutable; layout selection builds the same handful of
    # permutations for thousands of tensors per benchmark table.
    return Layout(dim_order=dim_order, memory=memory, vector_dim=vector_dim,
                  num_width_dims=num_width_dims)
