"""Operator definitions: shape inference, MAC counts, classification hints.

Every operator the 18 evaluation models need is defined here.  An OpDef
bundles the *semantic* facts the optimizer relies on:

* shape inference (builds/validates the static graph),
* MAC counts (GMACS reporting in Tables 1 and 8),
* the default classification quadrant (Tables 3-4),
* reduction dimensions per input (the layout-selection heuristic of
  Section 3.2.2),
* the fusion mapping class (DNNFusion-style legality).

NumPy reference kernels live in ``repro.runtime.kernels`` so the IR has no
execution dependencies.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable, Sequence

from .tensor import Shape


class Quadrant(enum.Enum):
    """Operator classification along the paper's two axes (Table 3).

    First axis: is computation performance input-layout dependent (ILD) or
    independent (ILI)?  Second axis: is the output layout customizable
    (VARIABLE) or determined (FIXED)?
    """

    ILD_VARIABLE = "ILD&Variable"
    ILI_VARIABLE = "ILI&Variable"
    ILD_FIXED = "ILD&Fixed"
    ILI_FIXED = "ILI&Fixed"

    @property
    def input_layout_dependent(self) -> bool:
        return self in (Quadrant.ILD_VARIABLE, Quadrant.ILD_FIXED)

    @property
    def output_variable(self) -> bool:
        return self in (Quadrant.ILD_VARIABLE, Quadrant.ILI_VARIABLE)


class Mapping(enum.Enum):
    """Input-to-output mapping class used for fusion legality.

    Mirrors the taxonomy DNNFusion uses: ONE2ONE ops (elementwise) fuse
    freely; SHUFFLE ops (heavy compute with data reuse) can absorb adjacent
    ONE2ONE ops; REORGANIZE ops move data without computing on it.
    """

    ONE2ONE = "one2one"
    REORGANIZE = "reorganize"
    SHUFFLE = "shuffle"
    REDUCE = "reduce"
    EXPAND = "expand"


ShapeFn = Callable[[list[Shape], dict], list[Shape]]
MacsFn = Callable[[list[Shape], list[Shape], dict], int]
RDimsFn = Callable[[list[Shape], list[Shape], dict], dict[int, tuple[int, ...]]]


@dataclass(frozen=True)
class OpDef:
    """Static description of one operator type."""

    op_type: str
    infer_shapes: ShapeFn
    quadrant: Quadrant
    mapping: Mapping
    macs: MacsFn = lambda ins, outs, attrs: 0
    reduction_dims: RDimsFn = lambda ins, outs, attrs: {}
    min_inputs: int = 1
    max_inputs: int = 1
    is_layout_transform: bool = False
    """True for pure relayout ops (Reshape/Transpose/...) that LTE removes."""


_REGISTRY: dict[str, OpDef] = {}


def register_op(opdef: OpDef) -> OpDef:
    if opdef.op_type in _REGISTRY:
        raise ValueError(f"duplicate op registration: {opdef.op_type}")
    _REGISTRY[opdef.op_type] = opdef
    return opdef


def get_op(op_type: str) -> OpDef:
    try:
        return _REGISTRY[op_type]
    except KeyError:
        raise KeyError(f"unknown operator type {op_type!r}") from None


def all_op_types() -> list[str]:
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# shape-inference helpers
# ---------------------------------------------------------------------------


def _pair(value, name: str) -> tuple[int, int]:
    if isinstance(value, int):
        return (value, value)
    out = tuple(int(v) for v in value)
    if len(out) != 2:
        raise ValueError(f"{name} must be an int or pair, got {value!r}")
    return out


def _conv_out(size: int, kernel: int, stride: int, pad: int, dilation: int = 1) -> int:
    eff = dilation * (kernel - 1) + 1
    out = (size + 2 * pad - eff) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution output collapsed: size={size} kernel={kernel} "
            f"stride={stride} pad={pad}"
        )
    return out


def _broadcast(a: Shape, b: Shape) -> Shape:
    """NumPy-style broadcast of two shapes."""
    rank = max(len(a), len(b))
    pa = (1,) * (rank - len(a)) + a
    pb = (1,) * (rank - len(b)) + b
    out = []
    for da, db in zip(pa, pb):
        if da == db or da == 1 or db == 1:
            out.append(max(da, db))
        else:
            raise ValueError(f"shapes {a} and {b} are not broadcastable")
    return tuple(out)


def _norm_axes(axes: Sequence[int] | int, rank: int) -> tuple[int, ...]:
    if isinstance(axes, int):
        axes = (axes,)
    return tuple(sorted(a % rank for a in axes))


# ---------------------------------------------------------------------------
# convolution family
# ---------------------------------------------------------------------------


def _conv2d_shapes(ins: list[Shape], attrs: dict) -> list[Shape]:
    x, w = ins[0], ins[1]
    if len(x) != 4 or len(w) != 4:
        raise ValueError(f"conv2d expects 4-d input/weight, got {x} and {w}")
    n, c, h, wd = x
    oc, cpg, kh, kw = w
    groups = int(attrs.get("groups", 1))
    if c != cpg * groups:
        raise ValueError(
            f"conv2d channel mismatch: input C={c}, weight expects "
            f"{cpg}*groups({groups})={cpg * groups}"
        )
    if (kh, kw) != _pair(attrs.get("kernel", (kh, kw)), "kernel"):
        raise ValueError("conv2d kernel attr disagrees with weight shape")
    sh, sw = _pair(attrs.get("stride", 1), "stride")
    ph, pw = _pair(attrs.get("padding", 0), "padding")
    dh, dw = _pair(attrs.get("dilation", 1), "dilation")
    oh = _conv_out(h, kh, sh, ph, dh)
    ow = _conv_out(wd, kw, sw, pw, dw)
    if len(ins) == 3 and ins[2] != (oc,):
        raise ValueError(f"conv2d bias shape {ins[2]} != ({oc},)")
    return [(n, oc, oh, ow)]


def _conv2d_macs(ins: list[Shape], outs: list[Shape], attrs: dict) -> int:
    n, oc, oh, ow = outs[0]
    _, cpg, kh, kw = ins[1]
    return n * oc * oh * ow * cpg * kh * kw


def _conv2d_rdims(ins, outs, attrs):
    # Input activation reduces over channels (dim 1) and the spatial window;
    # the channel dim is the one layout selection cares about.  The weight
    # reduces over its per-group input channel dim (1).
    return {0: (1,), 1: (1,)}


register_op(OpDef(
    op_type="conv2d",
    infer_shapes=_conv2d_shapes,
    quadrant=Quadrant.ILD_VARIABLE,
    mapping=Mapping.SHUFFLE,
    macs=_conv2d_macs,
    reduction_dims=_conv2d_rdims,
    min_inputs=2,
    max_inputs=3,
))


# ---------------------------------------------------------------------------
# matmul / dense
# ---------------------------------------------------------------------------


def _matmul_shapes(ins: list[Shape], attrs: dict) -> list[Shape]:
    a, b = ins[0], ins[1]
    if len(a) < 2 or len(b) < 2:
        raise ValueError(f"matmul requires rank >= 2, got {a} and {b}")
    ta, tb = bool(attrs.get("transpose_a", False)), bool(attrs.get("transpose_b", False))
    m, ka = (a[-1], a[-2]) if ta else (a[-2], a[-1])
    kb, nn = (b[-1], b[-2]) if tb else (b[-2], b[-1])
    if ka != kb:
        raise ValueError(f"matmul contraction mismatch: {a} x {b} (K {ka} vs {kb})")
    batch = _broadcast(a[:-2], b[:-2])
    return [batch + (m, nn)]


def _matmul_macs(ins, outs, attrs):
    a = ins[0]
    k = a[-2] if attrs.get("transpose_a", False) else a[-1]
    return math.prod(outs[0]) * k


def _matmul_rdims(ins, outs, attrs):
    a, b = ins[0], ins[1]
    ka = len(a) - 2 if attrs.get("transpose_a", False) else len(a) - 1
    kb = len(b) - 1 if attrs.get("transpose_b", False) else len(b) - 2
    return {0: (ka,), 1: (kb,)}


register_op(OpDef(
    op_type="matmul",
    infer_shapes=_matmul_shapes,
    quadrant=Quadrant.ILD_VARIABLE,
    mapping=Mapping.SHUFFLE,
    macs=_matmul_macs,
    reduction_dims=_matmul_rdims,
    min_inputs=2,
    max_inputs=2,
))


def _dense_shapes(ins: list[Shape], attrs: dict) -> list[Shape]:
    x, w = ins[0], ins[1]
    if len(w) != 2:
        raise ValueError(f"dense weight must be 2-d (out, in), got {w}")
    if x[-1] != w[1]:
        raise ValueError(f"dense feature mismatch: input {x} vs weight {w}")
    if len(ins) == 3 and ins[2] != (w[0],):
        raise ValueError(f"dense bias shape {ins[2]} != ({w[0]},)")
    return [x[:-1] + (w[0],)]


register_op(OpDef(
    op_type="dense",
    infer_shapes=_dense_shapes,
    quadrant=Quadrant.ILD_VARIABLE,
    mapping=Mapping.SHUFFLE,
    macs=lambda ins, outs, attrs: math.prod(outs[0]) * ins[0][-1],
    reduction_dims=lambda ins, outs, attrs: {0: (len(ins[0]) - 1,), 1: (1,)},
    min_inputs=2,
    max_inputs=3,
))


# ---------------------------------------------------------------------------
# elementwise
# ---------------------------------------------------------------------------

UNARY_FUNCS = (
    "relu", "gelu", "silu", "sigmoid", "tanh", "exp", "sqrt", "rsqrt",
    "neg", "abs", "erf", "identity", "leaky_relu", "hardswish", "relu6",
)


def _unary_shapes(ins: list[Shape], attrs: dict) -> list[Shape]:
    return [ins[0]]


register_op(OpDef(
    op_type="unary",
    infer_shapes=_unary_shapes,
    quadrant=Quadrant.ILI_VARIABLE,
    mapping=Mapping.ONE2ONE,
))

BINARY_FUNCS = ("add", "sub", "mul", "div", "pow", "maximum", "minimum")


def _binary_shapes(ins: list[Shape], attrs: dict) -> list[Shape]:
    return [_broadcast(ins[0], ins[1])]


register_op(OpDef(
    op_type="binary",
    infer_shapes=_binary_shapes,
    quadrant=Quadrant.ILI_VARIABLE,
    mapping=Mapping.ONE2ONE,
    min_inputs=2,
    max_inputs=2,
))


# ---------------------------------------------------------------------------
# normalization / softmax / reduce
# ---------------------------------------------------------------------------


def _softmax_rdims(ins, outs, attrs):
    axis = int(attrs.get("axis", -1)) % len(ins[0])
    return {0: (axis,)}


register_op(OpDef(
    op_type="softmax",
    infer_shapes=_unary_shapes,
    quadrant=Quadrant.ILD_VARIABLE,
    mapping=Mapping.SHUFFLE,
    reduction_dims=_softmax_rdims,
))


def _layernorm_shapes(ins: list[Shape], attrs: dict) -> list[Shape]:
    axes = _norm_axes(attrs.get("axes", -1), len(ins[0]))
    expect = tuple(ins[0][a] for a in axes)
    for extra in ins[1:]:
        if extra != expect:
            raise ValueError(f"layernorm scale/shift shape {extra} != {expect}")
    return [ins[0]]


def _layernorm_rdims(ins, outs, attrs):
    return {0: _norm_axes(attrs.get("axes", -1), len(ins[0]))}


register_op(OpDef(
    op_type="layernorm",
    infer_shapes=_layernorm_shapes,
    quadrant=Quadrant.ILD_VARIABLE,
    mapping=Mapping.SHUFFLE,
    reduction_dims=_layernorm_rdims,
    min_inputs=1,
    max_inputs=3,
))

register_op(OpDef(
    op_type="rmsnorm",
    infer_shapes=_layernorm_shapes,
    quadrant=Quadrant.ILD_VARIABLE,
    mapping=Mapping.SHUFFLE,
    reduction_dims=_layernorm_rdims,
    min_inputs=1,
    max_inputs=2,
))


def _instancenorm_shapes(ins: list[Shape], attrs: dict) -> list[Shape]:
    if len(ins[0]) != 4:
        raise ValueError(f"instancenorm expects NCHW, got {ins[0]}")
    c = ins[0][1]
    for extra in ins[1:]:
        if extra != (c,):
            raise ValueError(f"instancenorm scale/shift shape {extra} != ({c},)")
    return [ins[0]]


register_op(OpDef(
    op_type="instancenorm",
    infer_shapes=_instancenorm_shapes,
    quadrant=Quadrant.ILD_VARIABLE,
    mapping=Mapping.SHUFFLE,
    reduction_dims=lambda ins, outs, attrs: {0: (2, 3)},
    min_inputs=1,
    max_inputs=3,
))


def _groupnorm_shapes(ins: list[Shape], attrs: dict) -> list[Shape]:
    x = ins[0]
    if len(x) != 4:
        raise ValueError(f"groupnorm expects NCHW, got {x}")
    groups = int(attrs.get("groups", 32))
    if x[1] % groups:
        raise ValueError(f"groupnorm channels {x[1]} not divisible by groups {groups}")
    for extra in ins[1:]:
        if extra != (x[1],):
            raise ValueError(f"groupnorm scale/shift shape {extra} != ({x[1]},)")
    return [x]


register_op(OpDef(
    op_type="groupnorm",
    infer_shapes=_groupnorm_shapes,
    quadrant=Quadrant.ILD_VARIABLE,
    mapping=Mapping.SHUFFLE,
    reduction_dims=lambda ins, outs, attrs: {0: (1, 2, 3)},
    min_inputs=1,
    max_inputs=3,
))


def _batchnorm_shapes(ins: list[Shape], attrs: dict) -> list[Shape]:
    # Inference-time batchnorm: folded to a per-channel affine; elementwise.
    x = ins[0]
    c = x[1] if len(x) >= 2 else x[0]
    for extra in ins[1:]:
        if extra != (c,):
            raise ValueError(f"batchnorm scale/shift shape {extra} != ({c},)")
    return [x]


register_op(OpDef(
    op_type="batchnorm",
    infer_shapes=_batchnorm_shapes,
    quadrant=Quadrant.ILI_VARIABLE,
    mapping=Mapping.ONE2ONE,
    min_inputs=1,
    max_inputs=3,
))


def _reduce_shapes(ins: list[Shape], attrs: dict) -> list[Shape]:
    x = ins[0]
    axes = _norm_axes(attrs.get("axes", tuple(range(len(x)))), len(x))
    keepdims = bool(attrs.get("keepdims", False))
    if keepdims:
        return [tuple(1 if i in axes else d for i, d in enumerate(x))]
    out = tuple(d for i, d in enumerate(x) if i not in axes)
    return [out if out else (1,)]


def _reduce_rdims(ins, outs, attrs):
    return {0: _norm_axes(attrs.get("axes", tuple(range(len(ins[0])))), len(ins[0]))}


for _reduce_kind in ("reduce_mean", "reduce_sum", "reduce_max"):
    register_op(OpDef(
        op_type=_reduce_kind,
        infer_shapes=_reduce_shapes,
        quadrant=Quadrant.ILD_VARIABLE,
        mapping=Mapping.REDUCE,
        reduction_dims=_reduce_rdims,
    ))


# ---------------------------------------------------------------------------
# layout transformations (the ops SmartMem eliminates)
# ---------------------------------------------------------------------------


def _reshape_shapes(ins: list[Shape], attrs: dict) -> list[Shape]:
    shape = tuple(int(d) for d in attrs["shape"])
    negatives = [i for i, d in enumerate(shape) if d == -1]
    if len(negatives) > 1:
        raise ValueError(f"reshape allows at most one -1, got {shape}")
    if negatives:
        known = math.prod(d for d in shape if d != -1)
        total = math.prod(ins[0])
        if known == 0 or total % known:
            raise ValueError(f"cannot reshape {ins[0]} to {shape}")
        shape = tuple(total // known if d == -1 else d for d in shape)
    if math.prod(shape) != math.prod(ins[0]):
        raise ValueError(f"reshape element count mismatch: {ins[0]} -> {shape}")
    return [shape]


register_op(OpDef(
    op_type="reshape",
    infer_shapes=_reshape_shapes,
    quadrant=Quadrant.ILD_FIXED,
    mapping=Mapping.REORGANIZE,
    is_layout_transform=True,
))


def _transpose_shapes(ins: list[Shape], attrs: dict) -> list[Shape]:
    perm = tuple(int(p) for p in attrs["perm"])
    if sorted(perm) != list(range(len(ins[0]))):
        raise ValueError(f"transpose perm {perm} invalid for shape {ins[0]}")
    return [tuple(ins[0][p] for p in perm)]


register_op(OpDef(
    op_type="transpose",
    infer_shapes=_transpose_shapes,
    quadrant=Quadrant.ILD_FIXED,
    mapping=Mapping.REORGANIZE,
    is_layout_transform=True,
))


def _d2s_shapes(ins: list[Shape], attrs: dict) -> list[Shape]:
    n, c, h, w = ins[0]
    block = int(attrs.get("block", 2))
    if c % (block * block):
        raise ValueError(f"depth_to_space: channels {c} not divisible by {block}^2")
    return [(n, c // (block * block), h * block, w * block)]


register_op(OpDef(
    op_type="depth_to_space",
    infer_shapes=_d2s_shapes,
    quadrant=Quadrant.ILD_FIXED,
    mapping=Mapping.REORGANIZE,
    is_layout_transform=True,
))


def _s2d_shapes(ins: list[Shape], attrs: dict) -> list[Shape]:
    n, c, h, w = ins[0]
    block = int(attrs.get("block", 2))
    if h % block or w % block:
        raise ValueError(f"space_to_depth: spatial {h}x{w} not divisible by {block}")
    return [(n, c * block * block, h // block, w // block)]


register_op(OpDef(
    op_type="space_to_depth",
    infer_shapes=_s2d_shapes,
    quadrant=Quadrant.ILD_FIXED,
    mapping=Mapping.REORGANIZE,
    is_layout_transform=True,
))


# ---------------------------------------------------------------------------
# selection / reorganization (ILI & Fixed)
# ---------------------------------------------------------------------------


def _slice_shapes(ins: list[Shape], attrs: dict) -> list[Shape]:
    x = ins[0]
    starts = tuple(int(s) for s in attrs["starts"])
    stops = tuple(int(s) for s in attrs["stops"])
    steps = tuple(int(s) for s in attrs.get("steps", (1,) * len(x)))
    if not len(starts) == len(stops) == len(steps) == len(x):
        raise ValueError("slice starts/stops/steps must cover every dim")
    out = []
    for d, (start, stop, step) in zip(x, zip(starts, stops, steps)):
        start, stop = start % (d + 1), stop if stop <= d else d
        if step <= 0 or stop <= start:
            raise ValueError(f"empty slice [{start}:{stop}:{step}] on dim {d}")
        out.append(-(-(stop - start) // step))
    return [tuple(out)]


register_op(OpDef(
    op_type="slice",
    infer_shapes=_slice_shapes,
    quadrant=Quadrant.ILI_FIXED,
    mapping=Mapping.REORGANIZE,
))


def _gather_shapes(ins: list[Shape], attrs: dict) -> list[Shape]:
    x = ins[0]
    axis = int(attrs.get("axis", 0)) % len(x)
    indices_shape = tuple(int(d) for d in attrs["indices_shape"])
    return [x[:axis] + indices_shape + x[axis + 1:]]


register_op(OpDef(
    op_type="gather",
    infer_shapes=_gather_shapes,
    quadrant=Quadrant.ILI_FIXED,
    mapping=Mapping.REORGANIZE,
))


def _concat_shapes(ins: list[Shape], attrs: dict) -> list[Shape]:
    axis = int(attrs.get("axis", 0)) % len(ins[0])
    base = ins[0]
    total = 0
    for shape in ins:
        if len(shape) != len(base):
            raise ValueError(f"concat rank mismatch: {ins}")
        for i, (da, db) in enumerate(zip(base, shape)):
            if i != axis and da != db:
                raise ValueError(f"concat non-axis dims must match: {ins}")
        total += shape[axis]
    return [base[:axis] + (total,) + base[axis + 1:]]


register_op(OpDef(
    op_type="concat",
    infer_shapes=_concat_shapes,
    quadrant=Quadrant.ILI_VARIABLE,
    mapping=Mapping.REORGANIZE,
    min_inputs=1,
    max_inputs=64,
))


def _pad_shapes(ins: list[Shape], attrs: dict) -> list[Shape]:
    pads = attrs["pads"]  # sequence of (before, after) per dim
    if len(pads) != len(ins[0]):
        raise ValueError("pad must specify (before, after) for every dim")
    return [tuple(d + int(b) + int(a) for d, (b, a) in zip(ins[0], pads))]


register_op(OpDef(
    op_type="pad",
    infer_shapes=_pad_shapes,
    quadrant=Quadrant.ILI_FIXED,
    mapping=Mapping.EXPAND,
))


# ---------------------------------------------------------------------------
# pooling / resampling
# ---------------------------------------------------------------------------


def _pool_shapes(ins: list[Shape], attrs: dict) -> list[Shape]:
    n, c, h, w = ins[0]
    kh, kw = _pair(attrs["kernel"], "kernel")
    sh, sw = _pair(attrs.get("stride", (kh, kw)), "stride")
    ph, pw = _pair(attrs.get("padding", 0), "padding")
    return [(n, c, _conv_out(h, kh, sh, ph), _conv_out(w, kw, sw, pw))]


for _pool_kind in ("maxpool2d", "avgpool2d"):
    register_op(OpDef(
        op_type=_pool_kind,
        infer_shapes=_pool_shapes,
        quadrant=Quadrant.ILD_VARIABLE,
        mapping=Mapping.SHUFFLE,
        reduction_dims=lambda ins, outs, attrs: {0: (2, 3)},
    ))

register_op(OpDef(
    op_type="global_avgpool",
    infer_shapes=lambda ins, attrs: [(ins[0][0], ins[0][1], 1, 1)],
    quadrant=Quadrant.ILD_VARIABLE,
    mapping=Mapping.REDUCE,
    reduction_dims=lambda ins, outs, attrs: {0: (2, 3)},
))


def _upsample_shapes(ins: list[Shape], attrs: dict) -> list[Shape]:
    n, c, h, w = ins[0]
    scale = int(attrs.get("scale", 2))
    return [(n, c, h * scale, w * scale)]


register_op(OpDef(
    op_type="upsample2d",
    infer_shapes=_upsample_shapes,
    quadrant=Quadrant.ILI_VARIABLE,
    mapping=Mapping.EXPAND,
))


def _split_shapes(ins: list[Shape], attrs: dict) -> list[Shape]:
    x = ins[0]
    axis = int(attrs.get("axis", 0)) % len(x)
    sections = int(attrs["sections"])
    if x[axis] % sections:
        raise ValueError(f"split: dim {x[axis]} not divisible by {sections}")
    piece = x[:axis] + (x[axis] // sections,) + x[axis + 1:]
    return [piece] * sections


register_op(OpDef(
    op_type="split",
    infer_shapes=_split_shapes,
    quadrant=Quadrant.ILI_FIXED,
    mapping=Mapping.REORGANIZE,
))


# ---------------------------------------------------------------------------
# implicit layout conversion (inserted by baseline frameworks, Fig. 1b)
# ---------------------------------------------------------------------------

register_op(OpDef(
    op_type="layout_convert",
    infer_shapes=lambda ins, attrs: [ins[0]],
    quadrant=Quadrant.ILD_FIXED,
    mapping=Mapping.REORGANIZE,
    is_layout_transform=True,
))


# ---------------------------------------------------------------------------
# embedding lookup
# ---------------------------------------------------------------------------


def _embedding_shapes(ins: list[Shape], attrs: dict) -> list[Shape]:
    table, ids = ins[0], ins[1]
    if len(table) != 2:
        raise ValueError(f"embedding table must be 2-d, got {table}")
    return [ids + (table[1],)]


register_op(OpDef(
    op_type="embedding",
    infer_shapes=_embedding_shapes,
    quadrant=Quadrant.ILI_FIXED,
    mapping=Mapping.REORGANIZE,
    min_inputs=2,
    max_inputs=2,
))
