"""Pattern matching over producer-consumer chains.

Fixed-pattern fusion frameworks (MNN, NCNN, TFLite; Section 5 "Operator
fusion and layout optimizations") recognize short hard-coded operator
sequences; the baseline implementations use this matcher.  SmartMem's own
passes also use it to find Reshape/Transpose chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from .graph import Graph, Node


@dataclass(frozen=True)
class ChainMatch:
    """A matched straight-line chain of nodes."""

    nodes: tuple[Node, ...]

    @property
    def first(self) -> Node:
        return self.nodes[0]

    @property
    def last(self) -> Node:
        return self.nodes[-1]


def _topo_by_op_type(graph: Graph) -> dict[str, list[Node]]:
    """Topologically ordered nodes bucketed by op_type (memoized per graph
    generation)."""
    cache = graph.analysis_cache()
    index = cache.get(("topo_by_op_type",))
    if index is None:
        index = {}
        for node in graph.topo_order():
            index.setdefault(node.op_type, []).append(node)
        cache[("topo_by_op_type",)] = index
    return index


def _sole_consumer(graph: Graph, tensor: str) -> Node | None:
    """The unique consumer of ``tensor``, or None if 0 or >1 consumers or
    the tensor is a graph output (its value must stay materialized)."""
    if tensor in graph.outputs:
        return None
    consumers = graph.consumers(tensor)
    if len(consumers) != 1:
        return None
    return consumers[0][0]


def find_chains(
    graph: Graph,
    pattern: list[str | Callable[[Node], bool]],
) -> Iterator[ChainMatch]:
    """Yield non-overlapping straight-line chains matching ``pattern``.

    Each pattern element is either an op_type string or a predicate over
    the node.  Chains are straight-line: every intermediate tensor has a
    single consumer (the next node in the chain) and a single output.
    """

    def matches(node: Node, matcher) -> bool:
        if callable(matcher):
            return bool(matcher(node))
        return node.op_type == matcher

    head = pattern[0]
    if callable(head):
        candidates = [n for n in graph.topo_order() if head(n)]
    else:
        # Chain heads are usually op_type strings: walk only the matching
        # nodes via a per-generation index instead of rescanning the graph
        # for every pattern.
        candidates = _topo_by_op_type(graph).get(head, [])
    used: set[str] = set()
    for node in candidates:
        if node.id in used:
            continue
        chain = [node]
        ok = True
        for matcher in pattern[1:]:
            tail = chain[-1]
            if len(tail.outputs) != 1:
                ok = False
                break
            nxt = _sole_consumer(graph, tail.outputs[0])
            if nxt is None or nxt.id in used or not matches(nxt, matcher):
                ok = False
                break
            chain.append(nxt)
        if ok:
            used.update(n.id for n in chain)
            yield ChainMatch(tuple(chain))


def layout_transform_chains(graph: Graph, min_len: int = 1) -> Iterator[ChainMatch]:
    """Maximal straight-line chains of pure layout-transform operators."""
    used: set[str] = set()
    for node in list(graph.topo_order()):
        if node.id in used or not node.opdef.is_layout_transform:
            continue
        # Only start at a chain head (producer is not itself a chainable
        # layout transform with this node as sole consumer).
        producer = graph.producer(node.inputs[0])
        if (producer is not None and producer.opdef.is_layout_transform
                and producer.id not in used
                and _sole_consumer(graph, producer.outputs[0]) is node):
            continue
        chain = [node]
        while True:
            tail = chain[-1]
            nxt = _sole_consumer(graph, tail.outputs[0])
            if nxt is None or not nxt.opdef.is_layout_transform or nxt.id in used:
                break
            chain.append(nxt)
        if len(chain) >= min_len:
            used.update(n.id for n in chain)
            yield ChainMatch(tuple(chain))
