"""Human-readable graph dumps.

``format_graph`` renders a topologically-ordered listing with shapes,
fusion groups, attached views, and chosen layouts - the debugging view
used throughout development and by the examples.  ``summarize`` gives a
one-paragraph description (op histogram, params, MACs).
"""

from __future__ import annotations

from .graph import Graph
from .layout import MemoryKind


def _shape_str(shape) -> str:
    return "x".join(str(d) for d in shape)


def format_graph(graph: Graph, max_nodes: int | None = None,
                 show_layouts: bool = True) -> str:
    """A readable listing of the graph in execution order."""
    lines = [f"graph {graph.name!r}: {len(graph.nodes)} nodes, "
             f"{graph.num_operators} kernels"]
    for name in graph.inputs:
        lines.append(f"  input  {name}: {_shape_str(graph.shape(name))}")
    nodes = graph.topo_order()
    shown = nodes if max_nodes is None else nodes[:max_nodes]
    for node in shown:
        ins = []
        for idx, tensor in enumerate(node.inputs):
            text = tensor
            view = node.input_views.get(idx)
            if view is not None:
                kinds = "+".join(s.kind[0] for s in view.steps)
                text += f"[view:{kinds}->{_shape_str(view.out_shape)}]"
            ins.append(text)
        outs = ", ".join(
            f"{t}:{_shape_str(graph.shape(t))}" for t in node.outputs)
        group = f" g{node.group}" if node.group is not None else ""
        layout = ""
        if show_layouts and node.outputs:
            chosen = graph.tensor_layouts.get(node.outputs[0])
            if chosen is not None:
                mem = "tex" if chosen.memory is MemoryKind.TEXTURE_2D5 else "buf"
                layout = f" @{mem}{list(chosen.dim_order)}"
        lines.append(f"  {node.id:24s}{group} {node.op_type}"
                     f"({', '.join(ins)}) -> {outs}{layout}")
    if max_nodes is not None and len(nodes) > max_nodes:
        lines.append(f"  ... {len(nodes) - max_nodes} more nodes")
    for name in graph.outputs:
        lines.append(f"  output {name}: {_shape_str(graph.shape(name))}")
    return "\n".join(lines)


def summarize(graph: Graph) -> str:
    """One-paragraph model summary."""
    histogram = sorted(graph.count_op_types().items(), key=lambda kv: -kv[1])
    ops = ", ".join(f"{op}x{n}" for op, n in histogram[:8])
    if len(histogram) > 8:
        ops += ", ..."
    return (f"{graph.name}: {len(graph.nodes)} operators "
            f"({graph.num_operators} kernels), "
            f"{graph.num_params / 1e6:.1f}M params, "
            f"{graph.total_macs() / 1e9:.2f} GMACs [{ops}]")
