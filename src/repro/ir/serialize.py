"""JSON (de)serialization for graphs.

Used by the bench harness to cache optimized model graphs and by tests to
verify round-tripping preserves structure and annotations.
"""

from __future__ import annotations

import json
from typing import Any

from .graph import Graph, Node
from .layout import Layout
from .tensor import TensorSpec
from .view import ViewChain


def _attrs_to_json(attrs: dict) -> dict:
    out: dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, tuple):
            out[key] = {"__tuple__": [list(v) if isinstance(v, tuple) else v
                                      for v in value]}
        else:
            out[key] = value
    return out


def _attrs_from_json(attrs: dict) -> dict:
    out: dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, dict) and "__tuple__" in value:
            out[key] = tuple(tuple(v) if isinstance(v, list) else v
                             for v in value["__tuple__"])
        else:
            out[key] = value
    return out


def graph_to_json(graph: Graph) -> dict:
    return {
        "name": graph.name,
        "tensors": [spec.to_json() for spec in graph.tensors.values()],
        "inputs": list(graph.inputs),
        "outputs": list(graph.outputs),
        "nodes": [
            {
                "id": node.id,
                "op_type": node.op_type,
                "inputs": list(node.inputs),
                "outputs": list(node.outputs),
                "attrs": _attrs_to_json(node.attrs),
                "group": node.group,
                "input_views": {
                    str(idx): chain.to_json()
                    for idx, chain in node.input_views.items()
                },
            }
            for node in graph.iter_nodes()
        ],
        "tensor_layouts": {
            name: layout.to_json() for name, layout in graph.tensor_layouts.items()
        },
    }


def graph_from_json(data: dict) -> Graph:
    graph = Graph(data["name"])
    for spec in data["tensors"]:
        graph.tensors[spec["name"]] = TensorSpec.from_json(spec)
    graph.inputs = list(data["inputs"])
    graph.outputs = list(data["outputs"])
    for entry in data["nodes"]:
        node = Node(
            id=entry["id"],
            op_type=entry["op_type"],
            inputs=list(entry["inputs"]),
            outputs=list(entry["outputs"]),
            attrs=_attrs_from_json(entry["attrs"]),
            group=entry.get("group"),
            input_views={
                int(idx): ViewChain.from_json(chain)
                for idx, chain in entry.get("input_views", {}).items()
            },
        )
        graph.nodes[node.id] = node
        graph._order.append(node.id)
        for out in node.outputs:
            graph._producer[out] = node.id
    graph.tensor_layouts = {
        name: Layout.from_json(layout)
        for name, layout in data.get("tensor_layouts", {}).items()
    }
    return graph


def dumps(graph: Graph, **kwargs) -> str:
    return json.dumps(graph_to_json(graph), **kwargs)


def loads(text: str) -> Graph:
    return graph_from_json(json.loads(text))
