"""Symbolic leading-dimension placeholders for shape signatures.

One compiled program serving a *family* of shapes needs a way to say
"this axis is decided per request" inside otherwise-concrete shape
tuples.  :data:`SYM` is that placeholder: a singleton sentinel that
rides in ``(SYM, 64, 32)``-style tuples through step output shapes,
input signatures, and admission specs.  It deliberately supports no
arithmetic - every size computation in the runtime happens either at
the *bucket bound* (slot plans, scratch, shared-memory layouts, all
sized for the largest extent a bucket admits) or at the *runtime
extent* (kernels read it off the request arrays themselves), never on
the symbol.

``repr(SYM)`` is ``"?"`` so symbolic shapes render as ``(?, 64, 32)``
in error messages - and, because both execution backends embed shapes
via ``repr``, the reference interpreter and the generated-source
backend produce byte-identical diagnostics for symbolic programs, the
same property the concrete paths already guarantee.

Users spell the placeholder as ``None`` in
:class:`~repro.api.options.CompileOptions` signatures (mithril-style);
:func:`as_placeholder` normalizes either form.
"""

from __future__ import annotations


class SymDim:
    """The symbolic-extent sentinel (use the :data:`SYM` singleton).

    Identity-compared everywhere (``dim is SYM``); equality follows
    identity so shape tuples containing it compare the obvious way.
    """

    __slots__ = ()
    _instance = None

    def __new__(cls) -> "SymDim":
        found = cls._instance
        if found is None:
            found = cls._instance = super().__new__(cls)
        return found

    def __repr__(self) -> str:
        return "?"

    def __reduce__(self):  # pickle (fork-free spawn paths) keeps identity
        return (SymDim, ())


SYM = SymDim()
"""The one symbolic-dimension placeholder."""

OPEN_STOP = 1 << 62
"""Slice-stop sentinel meaning "to the end of the runtime extent".

Both slice consumers clamp: the ``slice`` kernel takes
``min(stop, dim)`` and Python/NumPy basic slicing clamps out-of-range
stops natively, so a symbolic program's batch-axis slices stay correct
at every runtime extent without rewriting attrs per request.
"""


class SymViewChain:
    """An extent-polymorphic view chain (duck-type of
    :class:`~repro.ir.view.ViewChain`).

    Holds ordinary :class:`~repro.ir.view.ViewStep` objects whose args
    use the symbolic spellings - ``-1`` at the batch position of a
    reshape target, ``(0, OPEN_STOP, 1)`` for the batch-axis slice
    triple - so the compiled appliers and the generated source work at
    every runtime extent.  ``ViewChain``'s eager shape validation cannot
    accept those spellings, which is the whole reason this type exists;
    the concrete scaled chain is validated first by the caller
    (:func:`repro.runtime.batching._scale_chain`), so no checking is
    lost.  Consumers only read :attr:`steps` (plus the symbolic
    ``in_shape``/``out_shape`` for introspection).
    """

    __slots__ = ("in_shape", "steps", "out_shape")

    def __init__(self, in_shape, steps, out_shape):
        self.in_shape = tuple(in_shape)
        self.steps = tuple(steps)
        self.out_shape = tuple(out_shape)

    def __repr__(self) -> str:
        return (f"SymViewChain({self.in_shape} -> {self.out_shape}, "
                f"{len(self.steps)} steps)")


def is_placeholder(dim) -> bool:
    """True for either spelling of the symbolic extent (``None``/SYM)."""
    return dim is None or isinstance(dim, SymDim)


def as_placeholder(dim):
    """Normalize one signature dim: placeholders to :data:`SYM`,
    anything else to ``int``."""
    return SYM if is_placeholder(dim) else int(dim)


def is_symbolic_shape(shape) -> bool:
    """Does ``shape`` carry the symbolic leading extent?"""
    return bool(shape) and isinstance(shape[0], SymDim)


def concretize(shape, extent: int) -> tuple:
    """``shape`` with every placeholder replaced by ``extent``."""
    return tuple(extent if isinstance(d, SymDim) else int(d) for d in shape)


__all__ = [
    "OPEN_STOP", "SYM", "SymDim", "SymViewChain", "as_placeholder",
    "concretize", "is_placeholder", "is_symbolic_shape",
]
