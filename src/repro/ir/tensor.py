"""Tensor specifications: static shape + dtype + role.

Shapes are fully static, matching the paper's setting (fixed-shape mobile
inference; Section 4.1 uses batch size 1 unless stated otherwise).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable

from .dtype import DType, parse_dtype


Shape = tuple[int, ...]


def normalize_shape(shape: Iterable[int]) -> Shape:
    """Validate and canonicalize a shape to a tuple of positive ints."""
    out = tuple(int(d) for d in shape)
    for d in out:
        if d <= 0:
            raise ValueError(f"shape dimensions must be positive, got {out}")
    return out


@dataclass(frozen=True)
class TensorSpec:
    """A named tensor in a computational graph.

    Attributes:
        name: Unique identifier within the graph.
        shape: Static logical shape.
        dtype: Element type.
        is_param: True for weights/constants (their layout can be rewritten
            offline for free, which matters for layout selection: parameter
            relayouts never cost runtime transformations).
        const_value: When set, the parameter is a known constant filled
            with this value (e.g. an epsilon) instead of random weights.
    """

    name: str
    shape: Shape
    dtype: DType = DType.FP16
    is_param: bool = False
    const_value: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", normalize_shape(self.shape))
        object.__setattr__(self, "dtype", parse_dtype(self.dtype))
        # Specs are immutable and queried on every cost-model edge visit:
        # precompute the derived sizes once.
        elements = math.prod(self.shape)
        object.__setattr__(self, "_num_elements", elements)
        object.__setattr__(self, "_size_bytes", elements * self.dtype.size_bytes)

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        return self._num_elements  # type: ignore[attr-defined]

    @property
    def size_bytes(self) -> int:
        return self._size_bytes  # type: ignore[attr-defined]

    def with_shape(self, shape: Iterable[int]) -> "TensorSpec":
        return replace(self, shape=normalize_shape(shape))

    def with_name(self, name: str) -> "TensorSpec":
        return replace(self, name=name)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "shape": list(self.shape),
            "dtype": self.dtype.value,
            "is_param": self.is_param,
            "const_value": self.const_value,
        }

    @staticmethod
    def from_json(data: dict) -> "TensorSpec":
        return TensorSpec(
            name=data["name"],
            shape=tuple(data["shape"]),
            dtype=parse_dtype(data["dtype"]),
            is_param=bool(data.get("is_param", False)),
            const_value=data.get("const_value"),
        )
