"""Structural and semantic validation of graphs.

Every optimizer pass in this repository is required to leave the graph in
a state where ``validate(graph)`` passes; the test suite enforces this on
all 18 models before and after every pipeline stage.
"""

from __future__ import annotations

from .graph import Graph, GraphError
from .ops import get_op


def validate(graph: Graph) -> None:
    """Raise GraphError on any inconsistency."""
    for name in graph.inputs:
        if name not in graph.tensors:
            raise GraphError(f"graph input {name!r} has no tensor spec")
    for name in graph.outputs:
        if name not in graph.tensors:
            raise GraphError(f"graph output {name!r} has no tensor spec")

    produced: set[str] = set()
    for node in graph.iter_nodes():
        for out in node.outputs:
            if out in produced:
                raise GraphError(f"tensor {out!r} produced twice")
            produced.add(out)
            if graph.tensors[out].is_param:
                raise GraphError(f"node {node.id} writes to parameter {out!r}")
        for inp in node.inputs:
            if inp not in graph.tensors:
                raise GraphError(f"node {node.id} reads undefined tensor {inp!r}")

    for name in graph.inputs:
        if name in produced:
            raise GraphError(f"graph input {name!r} is also produced by a node")

    # Shape inference must agree with the recorded specs, with input views
    # applied first (views change the shape a consumer kernel observes).
    for node in graph.topo_order():
        opdef = get_op(node.op_type)
        in_shapes = []
        for idx, inp in enumerate(node.inputs):
            shape = graph.shape(inp)
            view = node.input_views.get(idx)
            if view is not None:
                if view.in_shape != shape:
                    raise GraphError(
                        f"node {node.id} input {idx}: view expects {view.in_shape} "
                        f"but tensor {inp!r} has {shape}"
                    )
                shape = view.out_shape
            in_shapes.append(shape)
        try:
            out_shapes = opdef.infer_shapes(in_shapes, node.attrs)
        except ValueError as exc:
            raise GraphError(f"node {node.id} ({node.op_type}): {exc}") from exc
        for out, shape in zip(node.outputs, out_shapes):
            if graph.shape(out) != shape:
                raise GraphError(
                    f"node {node.id} ({node.op_type}): inferred {shape} for "
                    f"{out!r} but spec says {graph.shape(out)}"
                )

    # Every graph output must be reachable (produced or a graph input).
    for name in graph.outputs:
        if name not in produced and name not in graph.inputs:
            raise GraphError(f"graph output {name!r} is never produced")
