"""View chains: sequences of pure relayout steps attached to an edge.

When layout transformation elimination (Section 3.2.1) removes a chain of
Reshape/Transpose-like operators, the chain does not vanish semantically -
it becomes *index computation* inside the consumer kernel.  A ViewChain
records that residual recipe.  It can be applied to a NumPy array (for the
reference executor), converted to a symbolic IndexMap (by
``repro.indexexpr``) for strength reduction, and costed (index arithmetic
ops per element) by the cost model.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from .tensor import Shape


@dataclass(frozen=True)
class ViewStep:
    """One relayout step: ``kind`` is 'reshape', 'transpose' or 'slice'.

    ``arg`` is the target shape for reshape, the permutation for transpose,
    and a tuple of per-dim ``(start, stop, step)`` triples for slice.
    depth_to_space / space_to_depth are lowered to equivalent
    reshape+transpose+reshape triples before entering a chain.
    """

    kind: str
    arg: tuple

    def __post_init__(self) -> None:
        if self.kind in ("reshape", "transpose"):
            object.__setattr__(self, "arg", tuple(int(v) for v in self.arg))
        elif self.kind == "slice":
            object.__setattr__(
                self, "arg",
                tuple(tuple(int(v) for v in triple) for triple in self.arg))
            for triple in self.arg:
                if len(triple) != 3:
                    raise ValueError(f"slice arg needs (start, stop, step): {self.arg}")
        else:
            raise ValueError(f"unknown view step kind {self.kind!r}")

    def output_shape(self, in_shape: Shape) -> Shape:
        if self.kind == "reshape":
            if math.prod(self.arg) != math.prod(in_shape):
                raise ValueError(f"reshape {in_shape} -> {self.arg} changes size")
            return self.arg
        if self.kind == "transpose":
            if sorted(self.arg) != list(range(len(in_shape))):
                raise ValueError(f"transpose perm {self.arg} invalid for {in_shape}")
            return tuple(in_shape[p] for p in self.arg)
        if len(self.arg) != len(in_shape):
            raise ValueError(f"slice arg rank mismatch: {self.arg} vs {in_shape}")
        out = []
        for d, (start, stop, step) in zip(in_shape, self.arg):
            if not (0 <= start < stop <= d and step > 0):
                raise ValueError(f"invalid slice ({start},{stop},{step}) on dim {d}")
            out.append(-(-(stop - start) // step))
        return tuple(out)

    def apply(self, array: np.ndarray) -> np.ndarray:
        if self.kind == "reshape":
            return array.reshape(self.arg)
        if self.kind == "transpose":
            return array.transpose(self.arg)
        return array[tuple(slice(a, b, s) for a, b, s in self.arg)]


@dataclass(frozen=True)
class ViewChain:
    """An ordered sequence of view steps from a source shape."""

    in_shape: Shape
    steps: tuple[ViewStep, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "in_shape", tuple(int(d) for d in self.in_shape))
        shape = self.in_shape
        for step in self.steps:
            shape = step.output_shape(shape)
        object.__setattr__(self, "_out_shape", shape)

    @property
    def out_shape(self) -> Shape:
        return self._out_shape  # type: ignore[attr-defined]

    @property
    def is_identity(self) -> bool:
        return not self.steps

    def then(self, step: ViewStep) -> "ViewChain":
        return ViewChain(self.in_shape, self.steps + (step,))

    def then_reshape(self, shape: Iterable[int]) -> "ViewChain":
        return self.then(ViewStep("reshape", tuple(shape)))

    def then_transpose(self, perm: Iterable[int]) -> "ViewChain":
        return self.then(ViewStep("transpose", tuple(perm)))

    def then_slice(self, triples: Iterable[tuple[int, int, int]]) -> "ViewChain":
        return self.then(ViewStep("slice", tuple(triples)))

    def concat(self, other: "ViewChain") -> "ViewChain":
        if other.in_shape != self.out_shape:
            raise ValueError(
                f"cannot concatenate: chain ends at {self.out_shape}, "
                f"next starts at {other.in_shape}"
            )
        return ViewChain(self.in_shape, self.steps + other.steps)

    def apply(self, array: np.ndarray) -> np.ndarray:
        """Apply the chain to a NumPy array (views only; no copies forced)."""
        if tuple(array.shape) != self.in_shape:
            raise ValueError(f"array shape {array.shape} != chain input {self.in_shape}")
        for step in self.steps:
            array = step.apply(array)
        return array

    def to_json(self) -> dict:
        return {
            "in_shape": list(self.in_shape),
            "steps": [{"kind": s.kind, "arg": list(s.arg)} for s in self.steps],
        }

    @staticmethod
    def from_json(data: dict) -> "ViewChain":
        return ViewChain(
            tuple(data["in_shape"]),
            tuple(ViewStep(s["kind"], tuple(s["arg"])) for s in data["steps"]),
        )

    @staticmethod
    def identity(shape: Iterable[int]) -> "ViewChain":
        return _identity_chain(tuple(int(d) for d in shape))


@functools.lru_cache(maxsize=4096)
def _identity_chain(shape: Shape) -> ViewChain:
    # ViewChain is immutable, so identity chains are interned per shape:
    # every kernel input without an explicit view materializes one.
    return ViewChain(shape)


def lower_depth_to_space(in_shape: Shape, block: int) -> ViewChain:
    """depth_to_space as reshape/transpose/reshape (ONNX DCR semantics)."""
    n, c, h, w = in_shape
    oc = c // (block * block)
    return (
        ViewChain.identity(in_shape)
        .then_reshape((n, block, block, oc, h, w))
        .then_transpose((0, 3, 4, 1, 5, 2))
        .then_reshape((n, oc, h * block, w * block))
    )


def lower_space_to_depth(in_shape: Shape, block: int) -> ViewChain:
    """space_to_depth as reshape/transpose/reshape."""
    n, c, h, w = in_shape
    return (
        ViewChain.identity(in_shape)
        .then_reshape((n, c, h // block, block, w // block, block))
        .then_transpose((0, 3, 5, 1, 2, 4))
        .then_reshape((n, c * block * block, h // block, w // block))
    )
