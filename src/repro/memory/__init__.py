"""Memory substrate: cache simulator, address mapping, memory pool."""

from .address import TensorStorage, traversal
from .cache import CacheStats, SetAssociativeCache
from .pool import (
    LivenessSchedule, MemoryPool, PoolEvent, PoolReport, SizeClassPool,
    is_materialized, liveness_schedule, simulate_pool,
)

__all__ = [
    "CacheStats", "LivenessSchedule", "MemoryPool", "PoolEvent", "PoolReport",
    "SetAssociativeCache", "SizeClassPool", "TensorStorage", "is_materialized",
    "liveness_schedule", "simulate_pool", "traversal",
]
