"""Memory substrate: cache simulator, address mapping, memory pool."""

from .address import TensorStorage, traversal
from .cache import CacheStats, SetAssociativeCache
from .pool import MemoryPool, PoolReport, simulate_pool

__all__ = [
    "CacheStats", "MemoryPool", "PoolReport", "SetAssociativeCache",
    "TensorStorage", "simulate_pool", "traversal",
]
