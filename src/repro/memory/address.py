"""Address generation: where does element (i, j, ...) live in memory?

Maps logical tensor coordinates to byte addresses under a Layout, for both
1D buffers (strided linearization) and 2.5D textures (vec4 packing plus a
width x height texel grid; Section 2.3 and Fig. 5).  Feeding these
addresses to the cache simulator reproduces, exactly, the locality
difference between a layout that stores the reduction dimension
contiguously and one that does not.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..ir.layout import Layout, MemoryKind, TEXTURE_VECTOR_WIDTH
from ..ir.tensor import Shape


@dataclass(frozen=True)
class TensorStorage:
    """A tensor placed at a base address under a physical layout."""

    shape: Shape
    layout: Layout
    elem_bytes: int
    base_address: int = 0

    def size_bytes(self) -> int:
        if self.layout.memory is MemoryKind.TEXTURE_2D5:
            return (self.layout.texel_count(self.shape)
                    * TEXTURE_VECTOR_WIDTH * self.elem_bytes)
        return math.prod(self.shape) * self.elem_bytes

    def address_of(self, coords: tuple[int, ...]) -> int:
        """Byte address of one element."""
        if len(coords) != len(self.shape):
            raise ValueError(f"coords {coords} rank != shape {self.shape}")
        for c, d in zip(coords, self.shape):
            if not 0 <= c < d:
                raise ValueError(f"coords {coords} out of bounds for {self.shape}")
        layout = self.layout
        if layout.memory is MemoryKind.BUFFER_1D:
            strides = layout.strides(self.shape)
            offset = sum(c * s for c, s in zip(coords, strides))
            return self.base_address + offset * self.elem_bytes
        # texture: vector dim packs 4-wide inside a texel; remaining dims
        # linearize in dim_order into a (height, width) grid of texels.
        vec = layout.vector_dim
        lane = coords[vec] % TEXTURE_VECTOR_WIDTH
        vec_block = coords[vec] // TEXTURE_VECTOR_WIDTH
        vec_blocks = -(-self.shape[vec] // TEXTURE_VECTOR_WIDTH)
        texel_index = 0
        for dim in layout.dim_order:
            if dim == vec:
                texel_index = texel_index * vec_blocks + vec_block
            else:
                texel_index = texel_index * self.shape[dim] + coords[dim]
        byte = (texel_index * TEXTURE_VECTOR_WIDTH + lane) * self.elem_bytes
        return self.base_address + byte

    def addresses(self, coords_iter: Iterable[tuple[int, ...]]) -> Iterator[int]:
        for coords in coords_iter:
            yield self.address_of(coords)


def traversal(shape: Shape, loop_order: tuple[int, ...]) -> Iterator[tuple[int, ...]]:
    """All coordinates of ``shape``, iterated with ``loop_order`` outermost
    to innermost (the access order of a kernel whose innermost loop runs
    over ``loop_order[-1]``)."""
    if sorted(loop_order) != list(range(len(shape))):
        raise ValueError(f"loop order {loop_order} invalid for {shape}")
    extents = [shape[d] for d in loop_order]
    coords = [0] * len(shape)
    for flat in range(math.prod(extents)):
        rem = flat
        for pos in reversed(range(len(extents))):
            coords[loop_order[pos]] = rem % extents[pos]
            rem //= extents[pos]
        yield tuple(coords)
