"""Set-associative cache simulator.

Used to validate the analytical cache-miss estimates of the cost model on
small, fully traceable workloads (Figs. 7 and 9 report miss counts).  The
simulator is exact: feed it an address trace, read back hit/miss counts.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """LRU set-associative cache over byte addresses."""

    def __init__(self, size_bytes: int, line_bytes: int, associativity: int = 4):
        if size_bytes % (line_bytes * associativity):
            raise ValueError(
                f"cache size {size_bytes} not divisible by "
                f"line({line_bytes}) * ways({associativity})"
            )
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.num_sets = size_bytes // (line_bytes * associativity)
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Touch one byte address; returns True on hit."""
        line = address // self.line_bytes
        index = line % self.num_sets
        ways = self._sets[index]
        self.stats.accesses += 1
        if line in ways:
            ways.move_to_end(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        ways[line] = None
        if len(ways) > self.associativity:
            ways.popitem(last=False)
        return False

    def access_all(self, addresses: Iterable[int]) -> CacheStats:
        for addr in addresses:
            self.access(addr)
        return self.stats

    def reset(self) -> None:
        for ways in self._sets:
            ways.clear()
        self.stats = CacheStats()
