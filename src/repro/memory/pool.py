"""Intermediate-tensor memory pool (Section 4.6).

"Similar to TVM, our implementation allocates intermediate results from a
memory pool allowing efficient reuse of memory resources by releasing
data copies back into the pool when they are no longer needed by any
consumers."  The pool tracks per-step usage, peak footprint, and - for
the redundant-copy analysis - the maximum concurrently-live redundant
copy bytes (the 3.0 MB / 2.3 MB numbers the paper reports for Swin/ViT).

The liveness walk is shared with the execution-session layer
(:mod:`repro.runtime.session`): :func:`liveness_schedule` precomputes,
per execution step, which tensors are materialized (group-boundary
values) and which die, so a long-lived pool can be replayed across many
``run()`` calls - the second run of a session satisfies its requests
from blocks the first run released.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.layout_selection import LayoutPlan
from ..ir.graph import Graph


@dataclass
class PoolEvent:
    step: int
    live_bytes: int
    live_copy_bytes: int


@dataclass
class PoolReport:
    peak_bytes: int
    peak_copy_bytes: int
    final_bytes: int
    timeline: list[PoolEvent] = field(default_factory=list)
    allocations: int = 0
    reuses: int = 0
    total_allocated_bytes: int = 0
    """Sum of all allocation requests (materialized intermediate traffic);
    eliminating kernels reduces this directly (Section 4.6)."""


class MemoryPool:
    """Block-reusing allocator: freed blocks satisfy later requests."""

    def __init__(self) -> None:
        self._free: list[int] = []  # free block sizes
        self.live_bytes = 0
        self.peak_bytes = 0
        self.allocations = 0
        self.reuses = 0

    def allocate(self, size: int) -> None:
        # best-fit over free blocks (first block >= size in sorted order)
        self._free.sort()
        for i, block in enumerate(self._free):
            if block >= size:
                del self._free[i]
                self.reuses += 1
                self.live_bytes += size
                # leftover fragment returns to the pool
                if block > size:
                    self._free.append(block - size)
                self.peak_bytes = max(self.peak_bytes, self.live_bytes)
                return
        self.allocations += 1
        self.live_bytes += size
        self.peak_bytes = max(self.peak_bytes, self.live_bytes)

    def release(self, size: int) -> None:
        self.live_bytes -= size
        self._free.append(size)

    # -- introspection (the session layer reports per-run deltas) ----------

    @property
    def free_block_count(self) -> int:
        return len(self._free)

    @property
    def free_bytes(self) -> int:
        return sum(self._free)

    def stats(self) -> dict[str, int]:
        """Snapshot of the pool counters; diff two snapshots to observe
        what one run of a session allocated vs. reused."""
        return {
            "allocations": self.allocations,
            "reuses": self.reuses,
            "live_bytes": self.live_bytes,
            "peak_bytes": self.peak_bytes,
            "free_blocks": self.free_block_count,
            "free_bytes": self.free_bytes,
        }


class SizeClassPool(MemoryPool):
    """Exact-size-class block reuse (caching-allocator style).

    A freed block only serves requests of its exact size.  Best-fit
    splitting (the base pool) minimizes peak footprint for a *single*
    walk, but fragments blocks, so a repeated identical workload keeps
    allocating; exact size classes make run-many workloads reach steady
    state - after the first request of a session, every later identical
    request is served entirely from freed blocks.  Free blocks are kept
    as a size -> count map, so allocate/release are O(1) on the
    per-request serving path.
    """

    def __init__(self) -> None:
        super().__init__()
        self._free_by_size: dict[int, int] = {}
        self._free_block_count = 0
        self._free_byte_count = 0

    def allocate(self, size: int) -> None:
        count = self._free_by_size.get(size, 0)
        if count:
            if count == 1:
                del self._free_by_size[size]
            else:
                self._free_by_size[size] = count - 1
            self._free_block_count -= 1
            self._free_byte_count -= size
            self.reuses += 1
        else:
            self.allocations += 1
        self.live_bytes += size
        self.peak_bytes = max(self.peak_bytes, self.live_bytes)

    def release(self, size: int) -> None:
        self.live_bytes -= size
        self._free_by_size[size] = self._free_by_size.get(size, 0) + 1
        self._free_block_count += 1
        self._free_byte_count += size

    @property
    def free_block_count(self) -> int:
        return self._free_block_count

    @property
    def free_bytes(self) -> int:
        return self._free_byte_count

    def matches_free_state(self, free_by_size: dict[int, int]) -> bool:
        """True when the pool's free blocks are exactly ``free_by_size``
        (size -> count).

        The lowered-program backend uses this as the steady-state
        signature: when a session pool's free blocks equal its program's
        slot plan, every allocation of the next run is a reuse by
        construction, so the whole walk's pool accounting collapses to
        one static counter update (see :mod:`repro.runtime.program`).
        """
        return self._free_by_size == free_by_size


def is_materialized(graph: Graph, tensor: str) -> bool:
    """Whether ``tensor`` hits the memory pool at all.

    Only group-boundary tensors are materialized: values internal to a
    fused kernel live in registers/local memory and never touch the pool.
    """
    producer = graph.producer(tensor)
    if producer is None or producer.group is None:
        return True
    if tensor in graph.outputs:
        return True
    return any(c.group != producer.group for c, _ in graph.consumers(tensor))


@dataclass
class LivenessSchedule:
    """Per-step allocation/release plan for one graph execution order."""

    num_steps: int
    materialized: frozenset[str]
    last_use: dict[str, int]
    releases_at: list[list[str]]
    """Step -> materialized non-param intermediates that die at that step
    (graph outputs excluded: their values leave the graph)."""
    value_drops_at: list[list[str]]
    """Step -> *every* non-param, non-output tensor that dies at that
    step, including fusion-group-internal values that never touch the
    pool; executors drop the backing ndarrays here so process memory is
    bounded by the live set, not the whole graph."""


def liveness_schedule(graph: Graph) -> LivenessSchedule:
    """Precompute the pool walk for ``graph``'s execution order."""
    order = graph.topo_order()
    materialized = frozenset(
        t for node in order for t in node.outputs if is_materialized(graph, t))

    last_use: dict[str, int] = {}
    for step, node in enumerate(order):
        for t in node.inputs:
            last_use[t] = step
    for t in graph.outputs:
        last_use[t] = len(order)

    releases_at: list[list[str]] = [[] for _ in order]
    value_drops_at: list[list[str]] = [[] for _ in order]
    for step, node in enumerate(order):
        for t in set(node.inputs) | set(node.outputs):
            spec = graph.tensors.get(t)
            if spec is None or spec.is_param or t in graph.outputs:
                continue
            if last_use.get(t) != step:
                continue
            value_drops_at[step].append(t)
            if t in materialized or graph.producer(t) is None:
                releases_at[step].append(t)
    return LivenessSchedule(
        num_steps=len(order),
        materialized=materialized,
        last_use=last_use,
        releases_at=releases_at,
        value_drops_at=value_drops_at,
    )


def simulate_pool(graph: Graph, plan: LayoutPlan | None = None) -> PoolReport:
    """Walk the graph in execution order, allocating/releasing activations.

    Redundant copies from the layout plan are allocated alongside their
    primary tensor and released at the same point; their concurrent live
    footprint is tracked separately (``peak_copy_bytes``).
    """
    plan = plan or LayoutPlan()
    order = graph.topo_order()
    schedule = liveness_schedule(graph)
    materialized = schedule.materialized

    pool = MemoryPool()
    live_copy = 0
    peak_copy = 0
    total_allocated = 0
    timeline: list[PoolEvent] = []

    def copy_bytes(tensor: str) -> int:
        return graph.tensors[tensor].size_bytes * len(plan.copies.get(tensor, ()))

    for t in graph.inputs:
        pool.allocate(graph.tensors[t].size_bytes)
    for step, node in enumerate(order):
        for t in node.outputs:
            if t not in materialized:
                continue
            pool.allocate(graph.tensors[t].size_bytes + copy_bytes(t))
            total_allocated += graph.tensors[t].size_bytes + copy_bytes(t)
            live_copy += copy_bytes(t)
        peak_copy = max(peak_copy, live_copy)
        timeline.append(PoolEvent(step, pool.live_bytes, live_copy))
        for t in schedule.releases_at[step]:
            pool.release(graph.tensors[t].size_bytes + copy_bytes(t))
            live_copy -= copy_bytes(t)

    return PoolReport(
        peak_bytes=pool.peak_bytes,
        peak_copy_bytes=peak_copy,
        final_bytes=pool.live_bytes,
        timeline=timeline,
        allocations=pool.allocations,
        reuses=pool.reuses,
        total_allocated_bytes=total_allocated,
    )
