"""Intermediate-tensor memory pool (Section 4.6).

"Similar to TVM, our implementation allocates intermediate results from a
memory pool allowing efficient reuse of memory resources by releasing
data copies back into the pool when they are no longer needed by any
consumers."  The pool tracks per-step usage, peak footprint, and - for
the redundant-copy analysis - the maximum concurrently-live redundant
copy bytes (the 3.0 MB / 2.3 MB numbers the paper reports for Swin/ViT).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.layout_selection import LayoutPlan
from ..ir.graph import Graph


@dataclass
class PoolEvent:
    step: int
    live_bytes: int
    live_copy_bytes: int


@dataclass
class PoolReport:
    peak_bytes: int
    peak_copy_bytes: int
    final_bytes: int
    timeline: list[PoolEvent] = field(default_factory=list)
    allocations: int = 0
    reuses: int = 0
    total_allocated_bytes: int = 0
    """Sum of all allocation requests (materialized intermediate traffic);
    eliminating kernels reduces this directly (Section 4.6)."""


class MemoryPool:
    """Block-reusing allocator: freed blocks satisfy later requests."""

    def __init__(self) -> None:
        self._free: list[int] = []  # free block sizes
        self.live_bytes = 0
        self.peak_bytes = 0
        self.allocations = 0
        self.reuses = 0

    def allocate(self, size: int) -> None:
        # best-fit over free blocks (first block >= size in sorted order)
        self._free.sort()
        for i, block in enumerate(self._free):
            if block >= size:
                del self._free[i]
                self.reuses += 1
                self.live_bytes += size
                # leftover fragment returns to the pool
                if block > size:
                    self._free.append(block - size)
                self.peak_bytes = max(self.peak_bytes, self.live_bytes)
                return
        self.allocations += 1
        self.live_bytes += size
        self.peak_bytes = max(self.peak_bytes, self.live_bytes)

    def release(self, size: int) -> None:
        self.live_bytes -= size
        self._free.append(size)


def simulate_pool(graph: Graph, plan: LayoutPlan | None = None) -> PoolReport:
    """Walk the graph in execution order, allocating/releasing activations.

    Redundant copies from the layout plan are allocated alongside their
    primary tensor and released at the same point; their concurrent live
    footprint is tracked separately (``peak_copy_bytes``).
    """
    plan = plan or LayoutPlan()
    order = graph.topo_order()

    # Only group-boundary tensors are materialized: values internal to a
    # fused kernel live in registers/local memory and never hit the pool.
    def materialized(tensor: str) -> bool:
        producer = graph.producer(tensor)
        if producer is None or producer.group is None:
            return True
        if tensor in graph.outputs:
            return True
        return any(c.group != producer.group for c, _ in graph.consumers(tensor))

    last_use: dict[str, int] = {}
    for step, node in enumerate(order):
        for t in node.inputs:
            last_use[t] = step
    for t in graph.outputs:
        last_use[t] = len(order)

    pool = MemoryPool()
    live_copy = 0
    peak_copy = 0
    total_allocated = 0
    timeline: list[PoolEvent] = []

    def copy_bytes(tensor: str) -> int:
        return graph.tensors[tensor].size_bytes * len(plan.copies.get(tensor, ()))

    for t in graph.inputs:
        pool.allocate(graph.tensors[t].size_bytes)
    for step, node in enumerate(order):
        for t in node.outputs:
            if not materialized(t):
                continue
            pool.allocate(graph.tensors[t].size_bytes + copy_bytes(t))
            total_allocated += graph.tensors[t].size_bytes + copy_bytes(t)
            live_copy += copy_bytes(t)
        peak_copy = max(peak_copy, live_copy)
        timeline.append(PoolEvent(step, pool.live_bytes, live_copy))
        for t in set(node.inputs) | set(node.outputs):
            spec = graph.tensors.get(t)
            if spec is None or spec.is_param or t in graph.outputs:
                continue
            if not materialized(t):
                continue
            if last_use.get(t) == step:
                pool.release(spec.size_bytes + copy_bytes(t))
                live_copy -= copy_bytes(t)

    return PoolReport(
        peak_bytes=pool.peak_bytes,
        peak_copy_bytes=peak_copy,
        final_bytes=pool.live_bytes,
        timeline=timeline,
        allocations=pool.allocations,
        reuses=pool.reuses,
        total_allocated_bytes=total_allocated,
    )
