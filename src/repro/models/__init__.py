"""The 18-model evaluation suite plus Table 1's motivation models."""

from .registry import (
    ALL_MODELS, EVAL_MODELS, ModelInfo, SMOKE_CONFIGS, TABLE1_MODELS, build,
    build_smoke, model_names,
)

__all__ = [
    "ALL_MODELS", "EVAL_MODELS", "ModelInfo", "SMOKE_CONFIGS",
    "TABLE1_MODELS", "build", "build_smoke", "model_names",
]
