"""The 18-model evaluation suite plus Table 1's motivation models."""

from .registry import (
    ALL_MODELS, EVAL_MODELS, ModelInfo, TABLE1_MODELS, build, model_names,
)

__all__ = [
    "ALL_MODELS", "EVAL_MODELS", "ModelInfo", "TABLE1_MODELS", "build",
    "model_names",
]
