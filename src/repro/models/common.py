"""Shared building blocks for the model zoo.

Every block reproduces the operator-level choreography of the original
architectures - including the Reshape/Transpose sequences that windowed
attention and hybrid models rely on, since those explicit layout
transformations are precisely what the paper targets (Table 1).
"""

from __future__ import annotations

from ..ir.builder import GraphBuilder


# ---------------------------------------------------------------------------
# transformer pieces (sequence layout: (B, N, C))
# ---------------------------------------------------------------------------


def mlp(b: GraphBuilder, x: str, ratio: float = 4.0, act: str = "gelu") -> str:
    """Token-wise feed-forward network."""
    c = b.shape(x)[-1]
    h = b.dense(x, int(c * ratio))
    h = b.unary(h, act)
    return b.dense(h, c)


def attention_core(b: GraphBuilder, q: str, k: str, v: str,
                   bias_shape: tuple[int, ...] | None = None,
                   causal: bool = False) -> str:
    """Scaled dot-product attention on (..., T, d) operands."""
    d = b.shape(q)[-1]
    scale = b.param((1,), "attn_scale")
    attn = b.matmul(q, k, transpose_b=True)
    attn = b.mul(attn, scale)
    if bias_shape is not None:
        attn = b.add(attn, b.param(bias_shape, "attn_bias"))
    if causal:
        t = b.shape(attn)[-1]
        attn = b.add(attn, b.param((t, t), "causal_mask"))
    attn = b.softmax(attn)
    return b.matmul(attn, v)


def global_attention(b: GraphBuilder, x: str, heads: int,
                     causal: bool = False) -> str:
    """Standard multi-head self-attention with the usual qkv choreography:
    Dense -> Reshape -> Transpose -> Slice x3 -> attention -> Transpose ->
    Reshape -> Dense."""
    batch, n, c = b.shape(x)
    hd = c // heads
    qkv = b.dense(x, 3 * c)
    qkv = b.reshape(qkv, (batch, n, 3, heads, hd))
    qkv = b.transpose(qkv, (2, 0, 3, 1, 4))  # (3, B, H, N, d)
    q = b.reshape(b.slice_axis(qkv, 0, 0, 1), (batch, heads, n, hd))
    k = b.reshape(b.slice_axis(qkv, 0, 1, 2), (batch, heads, n, hd))
    v = b.reshape(b.slice_axis(qkv, 0, 2, 3), (batch, heads, n, hd))
    o = attention_core(b, q, k, v, causal=causal)
    o = b.transpose(o, (0, 2, 1, 3))
    o = b.reshape(o, (batch, n, c))
    return b.dense(o, c)


def window_partition(b: GraphBuilder, x: str, h: int, w: int, ws: int) -> str:
    """(B, H*W, C) -> (B*nW, ws*ws, C) via reshape/transpose (Swin-style)."""
    batch, n, c = b.shape(x)
    assert n == h * w, f"sequence length {n} != {h}x{w}"
    x = b.reshape(x, (batch, h // ws, ws, w // ws, ws, c))
    x = b.transpose(x, (0, 1, 3, 2, 4, 5))
    return b.reshape(x, (batch * (h // ws) * (w // ws), ws * ws, c))


def window_reverse(b: GraphBuilder, x: str, batch: int, h: int, w: int,
                   ws: int) -> str:
    """Inverse of window_partition."""
    c = b.shape(x)[-1]
    x = b.reshape(x, (batch, h // ws, w // ws, ws, ws, c))
    x = b.transpose(x, (0, 1, 3, 2, 4, 5))
    return b.reshape(x, (batch, h * w, c))


def roll_sequence(b: GraphBuilder, x: str, h: int, w: int, shift: int) -> str:
    """Cyclic shift of a (B, H*W, C) feature map (shifted windows)."""
    batch, n, c = b.shape(x)
    x = b.reshape(x, (batch, h, w, c))
    top = b.slice_axis(x, 1, shift, h)
    bottom = b.slice_axis(x, 1, 0, shift)
    x = b.concat([top, bottom], axis=1)
    left = b.slice_axis(x, 2, shift, w)
    right = b.slice_axis(x, 2, 0, shift)
    x = b.concat([left, right], axis=2)
    return b.reshape(x, (batch, h * w, c))


def window_attention(b: GraphBuilder, x: str, h: int, w: int, ws: int,
                     heads: int, shift: int = 0) -> str:
    """Swin-style (shifted-)window attention on a (B, H*W, C) map."""
    batch, n, c = b.shape(x)
    hd = c // heads
    if shift:
        x = roll_sequence(b, x, h, w, shift)
    windows = window_partition(b, x, h, w, ws)
    nw, t, _ = b.shape(windows)
    qkv = b.dense(windows, 3 * c)
    qkv = b.reshape(qkv, (nw, t, 3, heads, hd))
    qkv = b.transpose(qkv, (2, 0, 3, 1, 4))
    q = b.reshape(b.slice_axis(qkv, 0, 0, 1), (nw, heads, t, hd))
    k = b.reshape(b.slice_axis(qkv, 0, 1, 2), (nw, heads, t, hd))
    v = b.reshape(b.slice_axis(qkv, 0, 2, 3), (nw, heads, t, hd))
    o = attention_core(b, q, k, v, bias_shape=(heads, t, t))
    o = b.transpose(o, (0, 2, 1, 3))
    o = b.reshape(o, (nw, t, c))
    o = b.dense(o, c)
    o = window_reverse(b, o, batch, h, w, ws)
    if shift:
        o = roll_sequence(b, o, h, w, h - shift)
    return o


def transformer_block(b: GraphBuilder, x: str, attn, ratio: float = 4.0,
                      act: str = "gelu") -> str:
    """Pre-norm residual block: x + attn(LN(x)); x + MLP(LN(x))."""
    a = b.layernorm(x)
    a = attn(b, a)
    x = b.add(x, a)
    m = b.layernorm(x)
    m = mlp(b, m, ratio, act)
    return b.add(x, m)


def patch_embed(b: GraphBuilder, img: str, dim: int, patch: int) -> tuple[str, int, int]:
    """Conv patchify + flatten to sequence: returns (tokens, H, W)."""
    x = b.conv2d(img, dim, patch, stride=patch)
    _, c, h, w = b.shape(x)
    x = b.reshape(x, (b.shape(x)[0], c, h * w))
    x = b.transpose(x, (0, 2, 1))
    return x, h, w


def patch_merging(b: GraphBuilder, x: str, h: int, w: int) -> tuple[str, int, int]:
    """Swin downsampling: gather 2x2 neighbourhoods with slices, concat,
    LayerNorm, and a linear reduction to 2C."""
    batch, n, c = b.shape(x)
    x = b.reshape(x, (batch, h, w, c))
    parts = []
    for di in range(2):
        for dj in range(2):
            part = b.slice(x, (0, di, dj, 0), (batch, h, w, c),
                           (1, 2, 2, 1))
            parts.append(part)
    x = b.concat(parts, axis=3)
    x = b.reshape(x, (batch, (h // 2) * (w // 2), 4 * c))
    x = b.layernorm(x)
    x = b.dense(x, 2 * c, bias=False)
    return x, h // 2, w // 2


def sequence_to_image(b: GraphBuilder, x: str, h: int, w: int) -> str:
    """(B, H*W, C) -> (B, C, H, W)."""
    batch, n, c = b.shape(x)
    x = b.transpose(x, (0, 2, 1))
    return b.reshape(x, (batch, c, h, w))


def image_to_sequence(b: GraphBuilder, x: str) -> tuple[str, int, int]:
    """(B, C, H, W) -> (B, H*W, C)."""
    batch, c, h, w = b.shape(x)
    x = b.reshape(x, (batch, c, h * w))
    x = b.transpose(x, (0, 2, 1))
    return x, h, w


# ---------------------------------------------------------------------------
# convolutional pieces (image layout: (B, C, H, W))
# ---------------------------------------------------------------------------


def conv_bn_act(b: GraphBuilder, x: str, channels: int, kernel: int,
                stride: int = 1, padding: int | None = None,
                groups: int = 1, act: str | None = "relu") -> str:
    """Conv + folded BatchNorm + activation (the classic CNN stem)."""
    if padding is None:
        padding = kernel // 2
    x = b.conv2d(x, channels, kernel, stride=stride, padding=padding,
                 groups=groups, bias=False)
    x = b.batchnorm(x)
    if act:
        x = b.unary(x, act)
    return x


def se_block(b: GraphBuilder, x: str, reduction: int = 4) -> str:
    """Squeeze-and-excitation channel gating."""
    c = b.shape(x)[1]
    s = b.global_avgpool(x)
    s = b.conv2d(s, max(1, c // reduction), 1)
    s = b.relu(s)
    s = b.conv2d(s, c, 1)
    s = b.sigmoid(s)
    return b.mul(x, s)


def resnext_bottleneck(b: GraphBuilder, x: str, channels: int, stride: int,
                       cardinality: int = 32, expansion: int = 2) -> str:
    """ResNeXt's aggregated-transform bottleneck (grouped 3x3)."""
    inner = channels * expansion // 2
    out = channels * expansion
    shortcut = x
    if stride != 1 or b.shape(x)[1] != out:
        shortcut = conv_bn_act(b, x, out, 1, stride=stride, act=None)
    h = conv_bn_act(b, x, inner, 1)
    h = conv_bn_act(b, h, inner, 3, stride=stride, groups=cardinality)
    h = conv_bn_act(b, h, out, 1, act=None)
    return b.relu(b.add(h, shortcut))
