"""Conformer (Gulati et al.): convolution-augmented transformer for
speech.  A Hybrid/Global model in Table 7: its per-block conv module
shuttles between sequence and image layouts, generating implicit
transforms in conventional frameworks.
"""

from __future__ import annotations

from ..ir.builder import GraphBuilder
from ..ir.graph import Graph
from .common import global_attention


def _ffn_half(b: GraphBuilder, x: str, ratio: int = 4) -> str:
    """Macaron half-step feed-forward (scaled by 0.5)."""
    c = b.shape(x)[-1]
    h = b.layernorm(x)
    h = b.dense(h, c * ratio)
    h = b.silu(h)
    h = b.dense(h, c)
    h = b.mul(h, b.param((1,), "ff_scale"))
    return b.add(x, h)


def _conv_module(b: GraphBuilder, x: str, kernel: int = 31) -> str:
    """LayerNorm -> pointwise (2C) -> GLU -> depthwise conv1d -> BN ->
    SiLU -> pointwise -> residual.  The 1-d depthwise conv runs as a
    (k, 1) conv2d over a (B, C, T, 1) image, so sequence<->image
    reshapes/transposes wrap it (the implicit-transform pattern)."""
    batch, t, c = b.shape(x)
    h = b.layernorm(x)
    h = b.dense(h, 2 * c)
    g1 = b.slice_axis(h, 2, 0, c)
    g2 = b.slice_axis(h, 2, c, 2 * c)
    h = b.mul(g1, b.sigmoid(g2))  # GLU
    h = b.transpose(h, (0, 2, 1))
    h = b.reshape(h, (batch, c, t, 1))
    h = b.conv2d(h, c, (kernel, 1), padding=(kernel // 2, 0), groups=c)
    h = b.batchnorm(h)
    h = b.silu(h)
    h = b.reshape(h, (batch, c, t))
    h = b.transpose(h, (0, 2, 1))
    h = b.dense(h, c)
    return b.add(x, h)


def build_conformer(batch: int = 1, frames: int = 3200, mels: int = 80,
                    dim: int = 160, depth: int = 16, heads: int = 4) -> Graph:
    """Conformer-S encoder over ``frames`` of ``mels`` filterbanks."""
    b = GraphBuilder("conformer")
    audio = b.input("audio", (batch, 1, frames, mels))
    # conv subsampling (4x in time)
    x = b.conv2d(audio, dim // 4, 3, stride=2, padding=1)
    x = b.relu(x)
    x = b.conv2d(x, dim // 4, 3, stride=2, padding=1)
    x = b.relu(x)
    _, c, t, f = b.shape(x)
    x = b.transpose(x, (0, 2, 1, 3))
    x = b.reshape(x, (batch, t, c * f))
    x = b.dense(x, dim)
    for _ in range(depth):
        x = _ffn_half(b, x)
        a = b.layernorm(x)
        a = global_attention(b, a, heads)
        x = b.add(x, a)
        x = _conv_module(b, x)
        x = _ffn_half(b, x)
        x = b.layernorm(x)
    b.output(b.dense(x, 1000))  # vocabulary projection
    return b.finish()
