"""Convolutional model builders.

ResNet50 and FST (fast style transfer) appear only in Table 1's motivation
study; ConvNext, RegNet, ResNext and Yolo-V8 are evaluation workloads
(Table 7).  ConvNext matters especially: it is the CNN with transformer
habits - LayerNorm over channels-last features, implemented with the
Transpose/LayerNorm/Transpose sandwich that gives SmartMem its 3.3x win
over DNNFusion (Section 4.6).
"""

from __future__ import annotations

from ..ir.builder import GraphBuilder
from ..ir.graph import Graph
from .common import conv_bn_act, image_to_sequence, resnext_bottleneck, sequence_to_image


def build_resnet50(batch: int = 1, image: int = 224) -> Graph:
    """ResNet-50 (Table 1 motivation row: few layout transforms)."""
    b = GraphBuilder("resnet50")
    img = b.input("image", (batch, 3, image, image))
    x = conv_bn_act(b, img, 64, 7, stride=2, padding=3)
    x = b.maxpool2d(x, 3, stride=2, padding=1)
    for stage, (blocks, channels, stride) in enumerate(
            [(3, 64, 1), (4, 128, 2), (6, 256, 2), (3, 512, 2)]):
        for i in range(blocks):
            s = stride if i == 0 else 1
            shortcut = x
            out_c = channels * 4
            if s != 1 or b.shape(x)[1] != out_c:
                shortcut = conv_bn_act(b, x, out_c, 1, stride=s, act=None)
            h = conv_bn_act(b, x, channels, 1)
            h = conv_bn_act(b, h, channels, 3, stride=s)
            h = conv_bn_act(b, h, out_c, 1, act=None)
            x = b.relu(b.add(h, shortcut))
    x = b.global_avgpool(x)
    x = b.reshape(x, (batch, b.shape(x)[1]))
    b.output(b.dense(x, 1000))
    return b.finish()


def build_resnext(batch: int = 1, image: int = 224) -> Graph:
    """ResNeXt-50 (32x4d): grouped convolutions make it layout sensitive."""
    b = GraphBuilder("resnext")
    img = b.input("image", (batch, 3, image, image))
    x = conv_bn_act(b, img, 64, 7, stride=2, padding=3)
    x = b.maxpool2d(x, 3, stride=2, padding=1)
    for blocks, channels, stride in [(3, 128, 1), (4, 256, 2),
                                     (6, 512, 2), (3, 1024, 2)]:
        for i in range(blocks):
            x = resnext_bottleneck(b, x, channels, stride if i == 0 else 1)
    x = b.global_avgpool(x)
    x = b.reshape(x, (batch, b.shape(x)[1]))
    b.output(b.dense(x, 1000))
    return b.finish()


def build_regnet(batch: int = 1, image: int = 224) -> Graph:
    """RegNetX-3.2GF-style: uniform grouped-bottleneck stages."""
    b = GraphBuilder("regnet")
    img = b.input("image", (batch, 3, image, image))
    x = conv_bn_act(b, img, 32, 3, stride=2)
    for blocks, channels, group_width in [(2, 96, 48), (6, 192, 48),
                                          (15, 432, 48), (2, 1008, 48)]:
        for i in range(blocks):
            stride = 2 if i == 0 else 1
            shortcut = x
            if stride != 1 or b.shape(x)[1] != channels:
                shortcut = conv_bn_act(b, x, channels, 1, stride=stride, act=None)
            groups = max(1, channels // group_width)
            h = conv_bn_act(b, x, channels, 1)
            h = conv_bn_act(b, h, channels, 3, stride=stride, groups=groups)
            h = conv_bn_act(b, h, channels, 1, act=None)
            x = b.relu(b.add(h, shortcut))
    x = b.global_avgpool(x)
    x = b.reshape(x, (batch, b.shape(x)[1]))
    b.output(b.dense(x, 1000))
    return b.finish()


def build_convnext(batch: int = 1, image: int = 224, dim: int = 96,
                   depths: tuple[int, ...] = (3, 3, 9, 3)) -> Graph:
    """ConvNext-T: each block is DWConv7x7 -> (transpose to channels-last)
    -> LayerNorm -> Linear -> GELU -> Linear -> (transpose back) -> scale
    -> residual.  The per-block transposes are exactly the implicit-layout
    problem of Fig. 1."""
    b = GraphBuilder("convnext")
    img = b.input("image", (batch, 3, image, image))
    x = b.conv2d(img, dim, 4, stride=4)
    seq, h, w = image_to_sequence(b, x)
    seq = b.layernorm(seq)
    x = sequence_to_image(b, seq, h, w)
    for stage, depth in enumerate(depths):
        for _ in range(depth):
            residual = x
            c = b.shape(x)[1]
            hx = b.depthwise_conv2d(x, 7, padding=3)
            seq, h, w = image_to_sequence(b, hx)
            seq = b.layernorm(seq)
            seq = b.dense(seq, 4 * c)
            seq = b.gelu(seq)
            seq = b.dense(seq, c)
            seq = b.mul(seq, b.param((1, 1, c), "ls_gamma"))  # layer scale
            hx = sequence_to_image(b, seq, h, w)
            x = b.add(residual, hx)
        if stage < len(depths) - 1:
            seq, h, w = image_to_sequence(b, x)
            seq = b.layernorm(seq)
            x = sequence_to_image(b, seq, h, w)
            x = b.conv2d(x, b.shape(x)[1] * 2, 2, stride=2)
    seq, h, w = image_to_sequence(b, x)
    seq = b.layernorm(seq)
    x = b.reduce(seq, "reduce_mean", axes=1)
    b.output(b.dense(x, 1000))
    return b.finish()


def _c2f_block(b: GraphBuilder, x: str, channels: int, n: int = 1) -> str:
    """Yolo-V8's C2f: split, a chain of residual 3x3 bottlenecks, concat."""
    x = conv_bn_act(b, x, channels, 1, act="silu")
    half = channels // 2
    a = b.slice_axis(x, 1, 0, half)
    y = b.slice_axis(x, 1, half, channels)
    outs = [a, y]
    for _ in range(n):
        h = conv_bn_act(b, y, half, 3, act="silu")
        h = conv_bn_act(b, h, half, 3, act="silu")
        y = b.add(y, h)
        outs.append(y)
    x = b.concat(outs, axis=1)
    return conv_bn_act(b, x, channels, 1, act="silu")


def build_yolov8(batch: int = 1, image: int = 640) -> Graph:
    """Yolo-V8n: CSP backbone + SPPF + PAN-FPN detection head (COCO)."""
    b = GraphBuilder("yolov8")
    img = b.input("image", (batch, 3, image, image))
    w0 = 16
    x = conv_bn_act(b, img, w0, 3, stride=2, act="silu")
    x = conv_bn_act(b, x, w0 * 2, 3, stride=2, act="silu")
    x = _c2f_block(b, x, w0 * 2, 1)
    x = conv_bn_act(b, x, w0 * 4, 3, stride=2, act="silu")
    p3 = _c2f_block(b, x, w0 * 4, 2)
    x = conv_bn_act(b, p3, w0 * 8, 3, stride=2, act="silu")
    p4 = _c2f_block(b, x, w0 * 8, 2)
    x = conv_bn_act(b, p4, w0 * 16, 3, stride=2, act="silu")
    x = _c2f_block(b, x, w0 * 16, 1)
    # SPPF
    s = conv_bn_act(b, x, w0 * 8, 1, act="silu")
    m1 = b.maxpool2d(s, 5, stride=1, padding=2)
    m2 = b.maxpool2d(m1, 5, stride=1, padding=2)
    m3 = b.maxpool2d(m2, 5, stride=1, padding=2)
    p5 = conv_bn_act(b, b.concat([s, m1, m2, m3], axis=1), w0 * 16, 1, act="silu")
    # FPN top-down
    u = b.upsample2d(p5, 2)
    f4 = _c2f_block(b, b.concat([u, p4], axis=1), w0 * 8, 1)
    u = b.upsample2d(f4, 2)
    f3 = _c2f_block(b, b.concat([u, p3], axis=1), w0 * 4, 1)
    # PAN bottom-up
    d = conv_bn_act(b, f3, w0 * 4, 3, stride=2, act="silu")
    f4 = _c2f_block(b, b.concat([d, f4], axis=1), w0 * 8, 1)
    d = conv_bn_act(b, f4, w0 * 8, 3, stride=2, act="silu")
    f5 = _c2f_block(b, b.concat([d, p5], axis=1), w0 * 16, 1)
    # detection heads: box (64 = 4*16 DFL bins) + class (80) per scale
    for feat in (f3, f4, f5):
        box = conv_bn_act(b, feat, 64, 3, act="silu")
        box = b.conv2d(box, 64, 1)
        cls = conv_bn_act(b, feat, 80, 3, act="silu")
        cls = b.conv2d(cls, 80, 1)
        head = b.concat([box, cls], axis=1)
        n, c, hh, ww = b.shape(head)
        b.output(b.reshape(head, (n, c, hh * ww)))
    return b.finish()


def build_fst(batch: int = 1, image: int = 1024) -> Graph:
    """Fast style transfer (Johnson et al.): conv/InstanceNorm/ReLU stacks.
    InstanceNorm is the Fig. 1(b) example: frameworks like MNN wrap it in
    implicit layout conversions, which is why FST spends 70% of its time
    on transforms in Table 1."""
    b = GraphBuilder("fst")
    img = b.input("image", (batch, 3, image, image))

    def cir(x, c, k, s):
        x = b.conv2d(x, c, k, stride=s, padding=k // 2)
        x = b.instancenorm(x)
        return b.relu(x)

    x = cir(img, 32, 9, 1)
    x = cir(x, 64, 3, 2)
    x = cir(x, 128, 3, 2)
    for _ in range(5):  # residual blocks
        h = cir(x, 128, 3, 1)
        h = b.conv2d(h, 128, 3, padding=1)
        h = b.instancenorm(h)
        x = b.add(x, h)
    # upsample decoder
    x = b.upsample2d(x, 2)
    x = cir(x, 64, 3, 1)
    x = b.upsample2d(x, 2)
    x = cir(x, 32, 3, 1)
    x = b.conv2d(x, 3, 9, padding=4)
    b.output(b.unary(x, "tanh"))
    return b.finish()
