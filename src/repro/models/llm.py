"""Pythia (decoder-only LLM, Biderman et al.).

Pythia-1B: 16 GPT-NeoX layers, hidden 2048, 8 heads, parallel residual
(x + attn(ln1 x) + mlp(ln2 x)), rotary embeddings on 25% of head dims.
The rotary rotation is the LLM's layout-transform hot spot: per layer it
costs slices, concats and elementwise muls over q and k.
"""

from __future__ import annotations

from ..ir.builder import GraphBuilder
from ..ir.dtype import DType
from ..ir.graph import Graph


def _rotary(b: GraphBuilder, x: str, rot_dims: int) -> str:
    """Apply rotary position embedding to the first ``rot_dims`` of the
    head dimension of a (B, H, T, d) tensor; pass the rest through."""
    batch, heads, t, d = b.shape(x)
    rot = b.slice_axis(x, 3, 0, rot_dims)
    rest = b.slice_axis(x, 3, rot_dims, d)
    cos = b.param((1, 1, t, rot_dims), "rope_cos")
    sin = b.param((1, 1, t, rot_dims), "rope_sin")
    # rotate_half: (-x2, x1)
    half = rot_dims // 2
    x1 = b.slice_axis(rot, 3, 0, half)
    x2 = b.slice_axis(rot, 3, half, rot_dims)
    rotated = b.concat([b.unary(x2, "neg"), x1], axis=3)
    out = b.add(b.mul(rot, cos), b.mul(rotated, sin))
    return b.concat([out, rest], axis=3)


def build_pythia(batch: int = 1, seq: int = 128, hidden: int = 2048,
                 depth: int = 16, heads: int = 8,
                 vocab: int = 50304, rotary_pct: float = 0.25) -> Graph:
    """Pythia-1B prefill pass over ``seq`` tokens."""
    b = GraphBuilder("pythia")
    ids = b.input("token_ids", (batch, seq), DType.INT32)
    x = b.embedding(ids, vocab, hidden)
    hd = hidden // heads
    rot_dims = int(hd * rotary_pct)
    for _ in range(depth):
        # -- attention branch (GPT-NeoX parallel-residual form)
        a = b.layernorm(x)
        qkv = b.dense(a, 3 * hidden)
        qkv = b.reshape(qkv, (batch, seq, heads, 3 * hd))
        qkv = b.transpose(qkv, (0, 2, 1, 3))
        q = b.slice_axis(qkv, 3, 0, hd)
        k = b.slice_axis(qkv, 3, hd, 2 * hd)
        v = b.slice_axis(qkv, 3, 2 * hd, 3 * hd)
        q = _rotary(b, q, rot_dims)
        k = _rotary(b, k, rot_dims)
        scale = b.param((1,), "attn_scale")
        attn = b.mul(b.matmul(q, k, transpose_b=True), scale)
        attn = b.add(attn, b.param((seq, seq), "causal_mask"))
        attn = b.softmax(attn)
        o = b.matmul(attn, v)
        o = b.transpose(o, (0, 2, 1, 3))
        o = b.reshape(o, (batch, seq, hidden))
        o = b.dense(o, hidden)
        # -- mlp branch
        m = b.layernorm(x)
        m = b.dense(m, 4 * hidden)
        m = b.gelu(m)
        m = b.dense(m, hidden)
        # parallel residual
        x = b.add(b.add(x, o), m)
    x = b.layernorm(x)
    b.output(b.dense(x, vocab, bias=False))
    return b.finish()
