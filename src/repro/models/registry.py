"""Model registry: the paper's full workload list with metadata.

``EVAL_MODELS`` is Table 7's 18-model suite; ``TABLE1_MODELS`` adds the
motivation-study models (ResNet50, FST) that only appear in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..ir.graph import Graph
from .conformer import build_conformer
from .convnets import (
    build_convnext, build_fst, build_regnet, build_resnet50, build_resnext,
    build_yolov8,
)
from .llm import build_pythia
from .stable_diffusion import (
    build_sd_text_encoder, build_sd_unet, build_sd_vae_decoder,
)
from .vision_transformers import (
    build_autoformer, build_biformer, build_crossformer, build_cswin,
    build_efficientvit, build_flattenformer, build_smtformer, build_swin,
    build_vit,
)


@dataclass(frozen=True)
class ModelInfo:
    """Catalog entry for one workload."""

    name: str
    factory: Callable[..., Graph]
    model_type: str       # Transformer | ConvNet | Hybrid
    input_type: str       # Image | Text | Audio
    attention: str        # Local | Global | Decoder | N/A

    def build(self, batch: int = 1, **overrides) -> Graph:
        return self.factory(batch=batch, **overrides)


EVAL_MODELS: dict[str, ModelInfo] = {m.name: m for m in [
    ModelInfo("AutoFormer", build_autoformer, "Transformer", "Image", "Local"),
    ModelInfo("BiFormer", build_biformer, "Hybrid", "Image", "Local"),
    ModelInfo("CrossFormer", build_crossformer, "Transformer", "Image", "Local"),
    ModelInfo("CSwin", build_cswin, "Hybrid", "Image", "Local"),
    ModelInfo("EfficientVit", build_efficientvit, "Hybrid", "Image", "Local"),
    ModelInfo("FlattenFormer", build_flattenformer, "Hybrid", "Image", "Local"),
    ModelInfo("SMTFormer", build_smtformer, "Hybrid", "Image", "Local"),
    ModelInfo("Swin", build_swin, "Transformer", "Image", "Local"),
    ModelInfo("ViT", build_vit, "Transformer", "Image", "Global"),
    ModelInfo("Conformer", build_conformer, "Hybrid", "Audio", "Global"),
    ModelInfo("SD-TextEncoder", build_sd_text_encoder, "Transformer", "Text", "Global"),
    ModelInfo("SD-UNet", build_sd_unet, "Hybrid", "Image", "Global"),
    ModelInfo("SD-VAEDecoder", build_sd_vae_decoder, "Hybrid", "Image", "Global"),
    ModelInfo("Pythia", build_pythia, "Transformer", "Text", "Decoder"),
    ModelInfo("ConvNext", build_convnext, "ConvNet", "Image", "N/A"),
    ModelInfo("RegNet", build_regnet, "ConvNet", "Image", "N/A"),
    ModelInfo("ResNext", build_resnext, "ConvNet", "Image", "N/A"),
    ModelInfo("Yolo-V8", build_yolov8, "ConvNet", "Image", "N/A"),
]}

TABLE1_MODELS: dict[str, ModelInfo] = {m.name: m for m in [
    ModelInfo("ResNet50", build_resnet50, "ConvNet", "Image", "N/A"),
    ModelInfo("FST", build_fst, "ConvNet", "Image", "N/A"),
]}

ALL_MODELS: dict[str, ModelInfo] = {**EVAL_MODELS, **TABLE1_MODELS}


def build(name: str, batch: int = 1, **overrides) -> Graph:
    """Build a model graph by catalog name."""
    try:
        info = ALL_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(ALL_MODELS)}"
        ) from None
    return info.build(batch=batch, **overrides)


def model_names(eval_only: bool = True) -> list[str]:
    return list(EVAL_MODELS if eval_only else ALL_MODELS)


# Downscaled factory overrides small enough for NumPy end-to-end execution
# (every model family, minutes -> milliseconds).  The test suite verifies
# pipeline semantics and execution sessions on these; examples can use
# them to stay interactive.
SMOKE_CONFIGS: dict[str, dict] = {
    "Swin": dict(image=56, dim=24, depths=(1, 1), heads=(2, 4), window=7),
    "ViT": dict(image=32, dim=24, depth=1, heads=2, patch=16),
    "CSwin": dict(image=56, dim=16, depths=(1, 1), heads=(2, 4),
                  stripes=(1, 7)),
    "AutoFormer": dict(image=112, dim=16, depth=1, heads=2),
    "BiFormer": dict(image=56, dim=16, depths=(1, 1), heads=(2, 4)),
    "FlattenFormer": dict(image=56, dim=16, depths=(1, 1), heads=(2, 4)),
    "SMTFormer": dict(image=56, dim=16, depths=(1, 1), heads=(2, 4)),
    "ConvNext": dict(image=32, dim=16, depths=(1, 1)),
    "ResNext": dict(image=32),
    "RegNet": dict(image=32),
    "ResNet50": dict(image=32),
    "FST": dict(image=32),
    "Pythia": dict(seq=8, hidden=32, depth=1, heads=2, vocab=64),
    "SD-TextEncoder": dict(seq=8, width=32, depth=1, heads=2, vocab=100),
    "SD-UNet": dict(latent=8, model_c=32, context_len=4, context_dim=16,
                    heads=2),
    "SD-VAEDecoder": dict(latent=4, base_c=16),
    "Conformer": dict(frames=32, mels=8, dim=16, depth=1, heads=2),
    "EfficientVit": dict(image=32, dim=16, depths=(1, 1, 1, 1)),
    "CrossFormer": dict(image=56, dim=16, depths=(1, 1), heads=(2, 4)),
    "Yolo-V8": dict(image=64),
}


def build_smoke(name: str, batch: int = 1) -> Graph:
    """Build the downscaled (execution-friendly) variant of a model."""
    return build(name, batch=batch, **SMOKE_CONFIGS[name])
