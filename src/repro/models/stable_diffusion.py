"""Stable Diffusion pipeline models (Rombach et al.): the three networks
the paper benchmarks separately - TextEncoder (CLIP), UNet, VAEDecoder.
"""

from __future__ import annotations

from ..ir.builder import GraphBuilder
from ..ir.dtype import DType
from ..ir.graph import Graph
from .common import global_attention, image_to_sequence, mlp, sequence_to_image


def build_sd_text_encoder(batch: int = 1, seq: int = 77, width: int = 768,
                          depth: int = 12, heads: int = 12,
                          vocab: int = 49408) -> Graph:
    """CLIP ViT-L/14 text encoder: causal global attention over 77 tokens."""
    b = GraphBuilder("sd_text_encoder")
    ids = b.input("token_ids", (batch, seq), DType.INT32)
    x = b.embedding(ids, vocab, width)
    x = b.add_const(x, (1, seq, width), "pos_embed")
    for _ in range(depth):
        a = b.layernorm(x)
        a = global_attention(b, a, heads, causal=True)
        x = b.add(x, a)
        m = b.layernorm(x)
        m = mlp(b, m, 4.0, act="gelu")
        x = b.add(x, m)
    b.output(b.layernorm(x))
    return b.finish()


def _resblock(b: GraphBuilder, x: str, out_c: int, time_emb: str | None) -> str:
    """SD UNet residual block: GN -> SiLU -> Conv, time-emb add, GN ->
    SiLU -> Conv, with a 1x1 skip when channels change."""
    in_c = b.shape(x)[1]
    h = b.groupnorm(x, groups=min(32, in_c))
    h = b.silu(h)
    h = b.conv2d(h, out_c, 3, padding=1)
    if time_emb is not None:
        emb = b.dense(time_emb, out_c)
        emb = b.reshape(emb, (b.shape(x)[0], out_c, 1, 1))
        h = b.add(h, emb)
    h = b.groupnorm(h, groups=min(32, out_c))
    h = b.silu(h)
    h = b.conv2d(h, out_c, 3, padding=1)
    skip = x if in_c == out_c else b.conv2d(x, out_c, 1)
    return b.add(h, skip)


def _cross_attention(b: GraphBuilder, x: str, context: str, heads: int) -> str:
    """Attention where q comes from x and k/v from the text context."""
    batch, n, c = b.shape(x)
    _, m, cc = b.shape(context)
    hd = c // heads
    q = b.dense(x, c, bias=False)
    k = b.dense(context, c, bias=False)
    v = b.dense(context, c, bias=False)
    q = b.transpose(b.reshape(q, (batch, n, heads, hd)), (0, 2, 1, 3))
    k = b.transpose(b.reshape(k, (batch, m, heads, hd)), (0, 2, 1, 3))
    v = b.transpose(b.reshape(v, (batch, m, heads, hd)), (0, 2, 1, 3))
    scale = b.param((1,), "attn_scale")
    attn = b.mul(b.matmul(q, k, transpose_b=True), scale)
    attn = b.softmax(attn)
    o = b.matmul(attn, v)
    o = b.reshape(b.transpose(o, (0, 2, 1, 3)), (batch, n, c))
    return b.dense(o, c)


def _spatial_transformer(b: GraphBuilder, x: str, context: str,
                         heads: int) -> str:
    """GN -> 1x1 in-proj -> flatten -> [self-attn, cross-attn, GEGLU FF]
    -> unflatten -> 1x1 out-proj, residual."""
    residual = x
    batch, c, h, w = b.shape(x)
    hx = b.groupnorm(x, groups=min(32, c))
    hx = b.conv2d(hx, c, 1)
    seq, h, w = image_to_sequence(b, hx)
    a = b.layernorm(seq)
    a = global_attention(b, a, heads)
    seq = b.add(seq, a)
    a = b.layernorm(seq)
    a = _cross_attention(b, a, context, heads)
    seq = b.add(seq, a)
    f = b.layernorm(seq)
    # GEGLU feed-forward
    g = b.dense(f, c * 8)
    g1 = b.slice_axis(g, 2, 0, c * 4)
    g2 = b.slice_axis(g, 2, c * 4, c * 8)
    f = b.mul(g1, b.gelu(g2))
    f = b.dense(f, c)
    seq = b.add(seq, f)
    hx = sequence_to_image(b, seq, h, w)
    hx = b.conv2d(hx, c, 1)
    return b.add(hx, residual)


def build_sd_unet(batch: int = 1, latent: int = 32, model_c: int = 320,
                  context_len: int = 77, context_dim: int = 768,
                  heads: int = 8) -> Graph:
    """SD v1.x UNet at 64x64 latents: res+attention down/mid/up path with
    skip concats - the heaviest hybrid in the suite."""
    b = GraphBuilder("sd_unet")
    z = b.input("latent", (batch, 4, latent, latent))
    t = b.input("time_emb", (batch, model_c * 4))
    ctx_in = b.input("context", (batch, context_len, context_dim))
    ctx = b.dense(ctx_in, model_c * 4)  # project text width once

    x = b.conv2d(z, model_c, 3, padding=1)
    skips = [x]
    channels = (model_c, model_c * 2, model_c * 4, model_c * 4)
    # -- down path
    for level, ch in enumerate(channels):
        for _ in range(2):
            x = _resblock(b, x, ch, t)
            if level < 3:
                x = _spatial_transformer(b, x, ctx, heads)
            skips.append(x)
        if level < len(channels) - 1:
            x = b.conv2d(x, ch, 3, stride=2, padding=1)
            skips.append(x)
    # -- mid
    x = _resblock(b, x, channels[-1], t)
    x = _spatial_transformer(b, x, ctx, heads)
    x = _resblock(b, x, channels[-1], t)
    # -- up path
    for level in reversed(range(len(channels))):
        ch = channels[level]
        for _ in range(3):
            skip = skips.pop()
            x = b.concat([x, skip], axis=1)
            x = _resblock(b, x, ch, t)
            if level < 3:
                x = _spatial_transformer(b, x, ctx, heads)
        if level > 0:
            x = b.upsample2d(x, 2)
            x = b.conv2d(x, ch, 3, padding=1)
    x = b.groupnorm(x, groups=min(32, b.shape(x)[1]))
    x = b.silu(x)
    b.output(b.conv2d(x, 4, 3, padding=1))
    return b.finish()


def build_sd_vae_decoder(batch: int = 1, latent: int = 32,
                         base_c: int = 128) -> Graph:
    """SD VAE decoder: 64x64x4 latents to a 512x512 image.  Almost pure
    convolution at high resolution - the highest-GMACS model (Fig. 12's
    best roofline point)."""
    b = GraphBuilder("sd_vae_decoder")
    z = b.input("latent", (batch, 4, latent, latent))
    x = b.conv2d(z, 4, 1)
    x = b.conv2d(x, base_c * 4, 3, padding=1)

    def res(x, c):
        return _resblock(b, x, c, None)

    # mid block with one attention
    x = res(x, base_c * 4)
    residual = x
    h = b.groupnorm(x, groups=min(32, b.shape(x)[1]))
    seq, hh, ww = image_to_sequence(b, h)
    seq = global_attention(b, seq, heads=1)
    h = sequence_to_image(b, seq, hh, ww)
    x = b.add(residual, h)
    x = res(x, base_c * 4)
    # up path: 512,512,256,128 channels with nearest upsample between
    for i, mult in enumerate((4, 4, 2, 1)):
        for _ in range(3):
            x = res(x, base_c * mult)
        if i < 3:
            x = b.upsample2d(x, 2)
            x = b.conv2d(x, b.shape(x)[1], 3, padding=1)
    x = b.groupnorm(x, groups=min(32, b.shape(x)[1]))
    x = b.silu(x)
    b.output(b.conv2d(x, 3, 3, padding=1))
    return b.finish()
