"""Vision Transformer and hybrid model builders (Table 7's workload list).

Each builder reproduces the operator-level structure of the published
architecture - block counts, dimensions, attention choreography, and in
particular the explicit Reshape/Transpose/Slice/Gather traffic that makes
these models layout-transformation-bound (Table 1).  Weights are synthetic;
inference latency depends only on the graph (Section 4.1).
"""

from __future__ import annotations

from ..ir.builder import GraphBuilder
from ..ir.graph import Graph
from .common import (
    attention_core, conv_bn_act, global_attention, image_to_sequence, mlp,
    patch_embed, patch_merging, sequence_to_image, transformer_block,
    window_attention,
)


def build_vit(batch: int = 1, image: int = 224, dim: int = 768,
              depth: int = 12, heads: int = 12, patch: int = 16) -> Graph:
    """ViT-B/16: global attention, the only pure-global transformer in the
    image set."""
    b = GraphBuilder("vit")
    img = b.input("image", (batch, 3, image, image))
    x, h, w = patch_embed(b, img, dim, patch)
    x = b.add_const(x, (1, h * w, dim), "pos_embed")
    for _ in range(depth):
        x = transformer_block(
            b, x, lambda bb, t: global_attention(bb, t, heads))
    x = b.layernorm(x)
    x = b.reduce(x, "reduce_mean", axes=1)
    b.output(b.dense(x, 1000))
    return b.finish()


def build_swin(batch: int = 1, image: int = 224, dim: int = 96,
               depths: tuple[int, ...] = (2, 2, 6, 2),
               heads: tuple[int, ...] = (3, 6, 12, 24),
               window: int = 7) -> Graph:
    """Swin-T: hierarchical shifted-window attention."""
    b = GraphBuilder("swin")
    img = b.input("image", (batch, 3, image, image))
    x, h, w = patch_embed(b, img, dim, 4)
    x = b.layernorm(x)
    for stage, (depth, nh) in enumerate(zip(depths, heads)):
        for blk in range(depth):
            shift = window // 2 if blk % 2 == 1 else 0
            x = transformer_block(
                b, x,
                lambda bb, t, _h=h, _w=w, _nh=nh, _s=shift:
                    window_attention(bb, t, _h, _w, window, _nh, shift=_s))
        if stage < len(depths) - 1:
            x, h, w = patch_merging(b, x, h, w)
    x = b.layernorm(x)
    x = b.reduce(x, "reduce_mean", axes=1)
    b.output(b.dense(x, 1000))
    return b.finish()


def build_autoformer(batch: int = 1, image: int = 224, dim: int = 384,
                     depth: int = 14, heads: int = 6) -> Graph:
    """AutoFormer-S: a searched ViT; per the paper's Table 7 it behaves as
    a local-attention transformer - the searched subnet applies attention
    within token windows at the searched resolution."""
    b = GraphBuilder("autoformer")
    img = b.input("image", (batch, 3, image, image))
    x, h, w = patch_embed(b, img, dim, 16)
    x = b.add_const(x, (1, h * w, dim), "pos_embed")
    for blk in range(depth):
        ws = 7 if blk % 2 == 0 else 14  # searched window sizes
        x = transformer_block(
            b, x,
            lambda bb, t, _ws=ws: window_attention(bb, t, h, w, _ws, heads),
            ratio=3.5)
    x = b.layernorm(x)
    x = b.reduce(x, "reduce_mean", axes=1)
    b.output(b.dense(x, 1000))
    return b.finish()


def _lsda_long(b: GraphBuilder, x: str, h: int, w: int, group: int,
               heads: int) -> str:
    """CrossFormer's long-distance attention: tokens sampled at stride
    ``h//group`` attend together - same window math, but partitioned with
    an interleaving transpose (dispersed windows)."""
    batch, n, c = b.shape(x)
    g = group
    s = h // g  # sampling stride
    x = b.reshape(x, (batch, s, g, s, g, c))
    x = b.transpose(x, (0, 2, 4, 1, 3, 5))
    windows = b.reshape(x, (batch * g * g, s * s, c))
    hd = c // heads
    nw, t, _ = b.shape(windows)
    qkv = b.dense(windows, 3 * c)
    qkv = b.reshape(qkv, (nw, t, 3, heads, hd))
    qkv = b.transpose(qkv, (2, 0, 3, 1, 4))
    q = b.reshape(b.slice_axis(qkv, 0, 0, 1), (nw, heads, t, hd))
    k = b.reshape(b.slice_axis(qkv, 0, 1, 2), (nw, heads, t, hd))
    v = b.reshape(b.slice_axis(qkv, 0, 2, 3), (nw, heads, t, hd))
    o = attention_core(b, q, k, v, bias_shape=(heads, t, t))
    o = b.transpose(o, (0, 2, 1, 3))
    o = b.reshape(o, (nw, t, c))
    o = b.dense(o, c)
    o = b.reshape(o, (batch, g, g, s, s, c))
    o = b.transpose(o, (0, 3, 1, 4, 2, 5))
    return b.reshape(o, (batch, h * w, c))


def build_crossformer(batch: int = 1, image: int = 224, dim: int = 96,
                      depths: tuple[int, ...] = (2, 2, 6, 2),
                      heads: tuple[int, ...] = (3, 6, 12, 24)) -> Graph:
    """CrossFormer-S: cross-scale patch embedding + alternating short/long
    distance attention."""
    b = GraphBuilder("crossformer")
    img = b.input("image", (batch, 3, image, image))
    # cross-scale embedding: parallel convs at kernel 4/8/16, concatenated
    e4 = b.conv2d(img, dim // 2, 4, stride=4)
    e8 = b.conv2d(img, dim // 4, 8, stride=4, padding=2)
    e16 = b.conv2d(img, dim // 4, 16, stride=4, padding=6)
    x = b.concat([e4, e8, e16], axis=1)
    x, h, w = image_to_sequence(b, x)
    x = b.layernorm(x)
    for stage, (depth, nh) in enumerate(zip(depths, heads)):
        group = 7
        for blk in range(depth):
            if blk % 2 == 0:
                x = transformer_block(
                    b, x, lambda bb, t, _h=h, _w=w, _nh=nh:
                        window_attention(bb, t, _h, _w, 7, _nh))
            else:
                x = transformer_block(
                    b, x, lambda bb, t, _h=h, _w=w, _nh=nh:
                        _lsda_long(bb, t, _h, _w, group, _nh))
        if stage < len(depths) - 1:
            x, h, w = patch_merging(b, x, h, w)
    x = b.layernorm(x)
    x = b.reduce(x, "reduce_mean", axes=1)
    b.output(b.dense(x, 1000))
    return b.finish()


def _cswin_stripe_attention(b: GraphBuilder, x: str, h: int, w: int,
                            stripe: int, heads: int) -> str:
    """CSwin's cross-shaped window: half the heads attend in horizontal
    stripes, half in vertical stripes; outputs concatenate."""
    batch, n, c = b.shape(x)
    half = c // 2
    h_heads = heads // 2 or 1
    qkv = b.dense(x, 3 * c)

    def stripes(split_idx: int, vertical: bool) -> str:
        part = b.slice_axis(qkv, 2, split_idx * 3 * half, (split_idx + 1) * 3 * half)
        grid = b.reshape(part, (batch, h, w, 3 * half))
        if vertical:
            grid = b.transpose(grid, (0, 2, 1, 3))
        rows, cols = (w, h) if vertical else (h, w)
        grid = b.reshape(grid, (batch, rows // stripe, stripe, cols, 3 * half))
        windows = b.reshape(
            b.transpose(grid, (0, 1, 2, 3, 4)),
            (batch * (rows // stripe), stripe * cols, 3 * half))
        nw, t, _ = b.shape(windows)
        hd = half // h_heads
        qkv_w = b.reshape(windows, (nw, t, 3, h_heads, hd))
        qkv_w = b.transpose(qkv_w, (2, 0, 3, 1, 4))
        q = b.reshape(b.slice_axis(qkv_w, 0, 0, 1), (nw, h_heads, t, hd))
        k = b.reshape(b.slice_axis(qkv_w, 0, 1, 2), (nw, h_heads, t, hd))
        v = b.reshape(b.slice_axis(qkv_w, 0, 2, 3), (nw, h_heads, t, hd))
        o = attention_core(b, q, k, v)
        o = b.transpose(o, (0, 2, 1, 3))
        o = b.reshape(o, (nw, t, half))
        o = b.reshape(o, (batch, rows // stripe, stripe, cols, half))
        o = b.reshape(o, (batch, rows, cols, half))
        if vertical:
            o = b.transpose(o, (0, 2, 1, 3))
        return b.reshape(o, (batch, h * w, half))

    horizontal = stripes(0, vertical=False)
    vertical = stripes(1, vertical=True)
    out = b.concat([horizontal, vertical], axis=2)
    return b.dense(out, c)


def build_cswin(batch: int = 1, image: int = 224, dim: int = 64,
                depths: tuple[int, ...] = (1, 2, 21, 1),
                heads: tuple[int, ...] = (2, 4, 8, 16),
                stripes: tuple[int, ...] = (1, 2, 7, 7)) -> Graph:
    """CSwin-T: cross-shaped window attention, very deep third stage."""
    b = GraphBuilder("cswin")
    img = b.input("image", (batch, 3, image, image))
    x = b.conv2d(img, dim, 7, stride=4, padding=2)
    x, h, w = image_to_sequence(b, x)
    x = b.layernorm(x)
    for stage, (depth, nh, sw) in enumerate(zip(depths, heads, stripes)):
        for _ in range(depth):
            x = transformer_block(
                b, x, lambda bb, t, _h=h, _w=w, _nh=nh, _sw=sw:
                    _cswin_stripe_attention(bb, t, _h, _w, _sw, _nh))
        if stage < len(depths) - 1:
            # conv downsample between stages
            x = sequence_to_image(b, x, h, w)
            x = b.conv2d(x, b.shape(x)[1] * 2, 3, stride=2, padding=1)
            x, h, w = image_to_sequence(b, x)
    x = b.layernorm(x)
    x = b.reduce(x, "reduce_mean", axes=1)
    b.output(b.dense(x, 1000))
    return b.finish()


def _biformer_attention(b: GraphBuilder, x: str, h: int, w: int, heads: int,
                        regions: int = 7, topk: int = 4) -> str:
    """BiFormer's bi-level routing attention: coarse region affinity picks
    top-k regions (a Gather - the token selection the paper highlights),
    then fine-grained attention runs against the gathered tokens."""
    batch, n, c = b.shape(x)
    rh = h // regions
    region_tokens = rh * rh
    nr = regions * regions
    # partition into regions
    xr = b.reshape(x, (batch, regions, rh, regions, rh, c))
    xr = b.transpose(xr, (0, 1, 3, 2, 4, 5))
    xr = b.reshape(xr, (batch, nr, region_tokens, c))
    q = b.dense(xr, c, bias=False)
    k = b.dense(xr, c, bias=False)
    v = b.dense(xr, c, bias=False)
    # region-level routing: mean-pooled q/k affinity
    qr = b.reduce(q, "reduce_mean", axes=2)          # (B, nr, C)
    kr = b.reduce(k, "reduce_mean", axes=2)
    affinity = b.matmul(qr, kr, transpose_b=True)    # (B, nr, nr)
    _ = b.softmax(affinity)                          # routing scores
    # top-k region gather (static routing pattern: neighbouring regions)
    kg = b.reshape(k, (batch * nr, region_tokens, c))
    vg = b.reshape(v, (batch * nr, region_tokens, c))
    idx = [min(i, batch * nr - 1) for i in range(topk)]
    k_sel = b.concat([b.gather(kg, idx, axis=0)], axis=0)
    v_sel = b.concat([b.gather(vg, idx, axis=0)], axis=0)
    k_sel = b.reshape(k_sel, (1, topk * region_tokens, c))
    v_sel = b.reshape(v_sel, (1, topk * region_tokens, c))
    # fine-grained attention: all query tokens vs gathered k/v
    qf = b.reshape(q, (batch, n, c))
    attn = b.matmul(qf, k_sel, transpose_b=True)
    attn = b.softmax(attn)
    o = b.matmul(attn, v_sel)
    return b.dense(o, c)


def build_biformer(batch: int = 1, image: int = 224, dim: int = 64,
                   depths: tuple[int, ...] = (4, 4, 18, 4),
                   heads: tuple[int, ...] = (2, 4, 8, 16)) -> Graph:
    """BiFormer-S: bi-level routing attention hybrid."""
    b = GraphBuilder("biformer")
    img = b.input("image", (batch, 3, image, image))
    x = conv_bn_act(b, img, dim, 7, stride=4, padding=3, act="gelu")
    for stage, (depth, nh) in enumerate(zip(depths, heads)):
        seq, h, w = image_to_sequence(b, x)
        for _ in range(depth):
            # depthwise positional conv branch
            img_form = sequence_to_image(b, seq, h, w)
            pos = b.depthwise_conv2d(img_form, 3, padding=1)
            pos_seq, _, _ = image_to_sequence(b, pos)
            seq = b.add(seq, pos_seq)
            seq = transformer_block(
                b, seq, lambda bb, t, _h=h, _w=w, _nh=nh:
                    _biformer_attention(bb, t, _h, _w, _nh),
                ratio=3.0)
        x = sequence_to_image(b, seq, h, w)
        if stage < len(depths) - 1:
            x = conv_bn_act(b, x, b.shape(x)[1] * 2, 3, stride=2, act="gelu")
    x = b.global_avgpool(x)
    x = b.reshape(x, (batch, b.shape(x)[1]))
    b.output(b.dense(x, 1000))
    return b.finish()


def _linear_attention(b: GraphBuilder, x: str, heads: int) -> str:
    """EfficientViT's ReLU linear attention: O(n) via (q (k^T v))."""
    batch, n, c = b.shape(x)
    hd = c // heads
    q = b.relu(b.dense(x, c, bias=False))
    k = b.relu(b.dense(x, c, bias=False))
    v = b.dense(x, c, bias=False)
    q = b.transpose(b.reshape(q, (batch, n, heads, hd)), (0, 2, 1, 3))
    k = b.transpose(b.reshape(k, (batch, n, heads, hd)), (0, 2, 1, 3))
    v = b.transpose(b.reshape(v, (batch, n, heads, hd)), (0, 2, 1, 3))
    kv = b.matmul(k, v, transpose_a=True)       # (B, H, d, d)
    num = b.matmul(q, kv)                       # (B, H, n, d)
    ksum = b.reduce(k, "reduce_sum", axes=2, keepdims=True)  # (B, H, 1, d)
    den = b.matmul(q, ksum, transpose_b=True)   # (B, H, n, 1)
    den = b.add(den, b.const(1e-6))             # relu'd q/k can zero out
    o = b.div(num, den)
    o = b.transpose(o, (0, 2, 1, 3))
    o = b.reshape(o, (batch, n, c))
    return b.dense(o, c)


def build_efficientvit(batch: int = 1, image: int = 224, dim: int = 112,
                       depths: tuple[int, ...] = (1, 2, 4, 4),
                       heads: tuple[int, ...] = (2, 4, 8, 16)) -> Graph:
    """EfficientViT: MBConv stages + linear-attention stages (hybrid with a
    small operator count - 536 before optimization)."""
    b = GraphBuilder("efficientvit")
    img = b.input("image", (batch, 3, image, image))
    x = conv_bn_act(b, img, dim, 3, stride=2, act="hardswish")
    x = conv_bn_act(b, x, dim, 3, stride=2, act="hardswish")
    for stage, (depth, nh) in enumerate(zip(depths, heads)):
        for _ in range(depth):
            if stage < 2:
                # MBConv: expand, depthwise, project + residual
                c = b.shape(x)[1]
                hch = c * 4
                hx = conv_bn_act(b, x, hch, 1, act="hardswish")
                hx = conv_bn_act(b, hx, hch, 3, groups=hch, act="hardswish")
                hx = conv_bn_act(b, hx, c, 1, act=None)
                x = b.add(x, hx)
            else:
                seq, h, w = image_to_sequence(b, x)
                seq = transformer_block(
                    b, seq, lambda bb, t, _nh=nh: _linear_attention(bb, t, _nh))
                x = sequence_to_image(b, seq, h, w)
        if stage < len(depths) - 1:
            x = conv_bn_act(b, x, b.shape(x)[1] * 2, 3, stride=2,
                            act="hardswish")
    x = b.global_avgpool(x)
    x = b.reshape(x, (batch, b.shape(x)[1]))
    b.output(b.dense(x, 1000))
    return b.finish()


def _focused_linear_attention(b: GraphBuilder, x: str, h: int, w: int,
                              heads: int) -> str:
    """FLatten Transformer's focused linear attention with the depthwise
    rank-restoration branch."""
    batch, n, c = b.shape(x)
    o = _linear_attention(b, x, heads)
    # DWC branch on v restores feature diversity
    v_img = sequence_to_image(b, b.dense(x, c, bias=False), h, w)
    dwc = b.depthwise_conv2d(v_img, 3, padding=1)
    dwc_seq, _, _ = image_to_sequence(b, dwc)
    return b.add(o, dwc_seq)


def build_flattenformer(batch: int = 1, image: int = 224, dim: int = 88,
                        depths: tuple[int, ...] = (2, 2, 14, 2),
                        heads: tuple[int, ...] = (2, 4, 8, 16)) -> Graph:
    """FLatten-Swin-S: focused linear attention in a Swin skeleton."""
    b = GraphBuilder("flattenformer")
    img = b.input("image", (batch, 3, image, image))
    x, h, w = patch_embed(b, img, dim, 4)
    x = b.layernorm(x)
    for stage, (depth, nh) in enumerate(zip(depths, heads)):
        for _ in range(depth):
            x = transformer_block(
                b, x, lambda bb, t, _h=h, _w=w, _nh=nh:
                    _focused_linear_attention(bb, t, _h, _w, _nh))
        if stage < len(depths) - 1:
            x, h, w = patch_merging(b, x, h, w)
    x = b.layernorm(x)
    x = b.reduce(x, "reduce_mean", axes=1)
    b.output(b.dense(x, 1000))
    return b.finish()


def _scale_aware_modulation(b: GraphBuilder, x_img: str) -> str:
    """SMT's multi-scale depthwise modulation head."""
    c = b.shape(x_img)[1]
    branches = []
    per = c // 4
    start = 0
    for kernel in (3, 5, 7, 9):
        part = b.slice_axis(x_img, 1, start, start + per)
        part = b.depthwise_conv2d(part, kernel, padding=kernel // 2)
        branches.append(part)
        start += per
    mixed = b.concat(branches, axis=1)
    gate = b.sigmoid(b.conv2d(mixed, c, 1))
    return b.mul(x_img, gate)


def build_smtformer(batch: int = 1, image: int = 224, dim: int = 64,
                    depths: tuple[int, ...] = (3, 4, 18, 2),
                    heads: tuple[int, ...] = (2, 4, 8, 16)) -> Graph:
    """SMT-S: scale-aware modulation stages followed by attention stages."""
    b = GraphBuilder("smtformer")
    img = b.input("image", (batch, 3, image, image))
    x = conv_bn_act(b, img, dim, 7, stride=4, padding=3, act="gelu")
    for stage, (depth, nh) in enumerate(zip(depths, heads)):
        for _ in range(depth):
            if stage < 2:
                seq, h, w = image_to_sequence(b, x)
                seq_n = b.layernorm(seq)
                mod = _scale_aware_modulation(
                    b, sequence_to_image(b, seq_n, h, w))
                mod_seq, _, _ = image_to_sequence(b, mod)
                seq = b.add(seq, mod_seq)
                seq_n = b.layernorm(seq)
                seq = b.add(seq, mlp(b, seq_n))
                x = sequence_to_image(b, seq, h, w)
            else:
                seq, h, w = image_to_sequence(b, x)
                seq = transformer_block(
                    b, seq, lambda bb, t, _nh=nh: global_attention(bb, t, _nh))
                x = sequence_to_image(b, seq, h, w)
        if stage < len(depths) - 1:
            x = conv_bn_act(b, x, b.shape(x)[1] * 2, 3, stride=2, act="gelu")
    x = b.global_avgpool(x)
    x = b.reshape(x, (batch, b.shape(x)[1]))
    b.output(b.dense(x, 1000))
    return b.finish()
