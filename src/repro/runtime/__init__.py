"""Execution substrate: devices, reference executor, analytical cost model."""

from .artifact import Artifact, plan_from_json, plan_to_json
from .codegen import GeneratedKernel, generate_group, generate_kernel
from .codegen_backend import (
    CodegenBackend, CompiledProgramModule, compile_program,
    emit_program_source, program_source,
)
from .verify import VerificationReport, verify_equivalence
from .cost_model import (
    CostModelConfig, CostReport, KernelCost, estimate, peak_activation_bytes,
)
from .device import DEVICES, DIMENSITY700, DeviceSpec, SD835, SD8GEN2, V100, scaled
from .executor import execute, make_inputs, outputs_equal, run_node
from .faults import FaultInjector, FaultPlan, FaultRule, InjectedCrash
from .kernels import get_kernel
from .parallel_backend import (
    ParallelBackend, ParallelCodegenBackend, WorkerPool, parallel_supported,
)
from .program import (
    ExecutionBackend, ExecutionProgram, NumPyBackend, SlotPlan, Step,
    available_backends, get_backend, lower, register_backend,
)
from .shm import SegmentRing, ShardLayout, SharedSegment, active_segments
from .session import (
    CircuitBreaker, Engine, RunStats, Session, SessionRegistry, SessionStats,
    circuit_breaker, compile_session, stable_model_key,
)

__all__ = [
    "Artifact", "CircuitBreaker", "CodegenBackend", "CompiledProgramModule",
    "Engine", "ExecutionBackend", "ExecutionProgram", "FaultInjector",
    "FaultPlan", "FaultRule", "GeneratedKernel", "InjectedCrash",
    "NumPyBackend", "ParallelBackend", "ParallelCodegenBackend", "RunStats",
    "SegmentRing", "Session",
    "SessionRegistry", "SessionStats", "ShardLayout", "SharedSegment",
    "SlotPlan", "Step",
    "VerificationReport", "WorkerPool", "active_segments",
    "circuit_breaker", "parallel_supported", "stable_model_key",
    "available_backends", "compile_program", "compile_session",
    "emit_program_source", "generate_group",
    "generate_kernel", "get_backend", "lower", "plan_from_json",
    "plan_to_json", "program_source", "register_backend",
    "verify_equivalence",
    "CostModelConfig", "CostReport", "DEVICES", "DIMENSITY700", "DeviceSpec",
    "KernelCost", "SD835", "SD8GEN2", "V100", "estimate", "execute",
    "get_kernel", "make_inputs", "outputs_equal", "peak_activation_bytes",
    "run_node", "scaled",
]
