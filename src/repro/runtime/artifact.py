"""Deployment artifacts: save/load an optimized module.

A compiled SmartMem module is the pair (rewritten graph, layout plan).
Serializing both means a model can be optimized once and redeployed
without re-running the pipeline - and the test suite verifies a loaded
artifact costs and executes identically to the original.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..core.layout_selection import LayoutPlan
from ..core.pipeline import OptimizeResult
from ..ir.graph import Graph
from ..ir.layout import Layout
from ..ir.serialize import graph_from_json, graph_to_json


def plan_to_json(plan: LayoutPlan) -> dict:
    return {
        "quality": plan.quality,
        "layouts": {name: layout.to_json()
                    for name, layout in plan.layouts.items()},
        "copies": {name: [l.to_json() for l in layouts]
                   for name, layouts in plan.copies.items()},
        "edge_assignment": [
            [cid, idx, which]
            for (cid, idx), which in plan.edge_assignment.items()
        ],
        "searched_edges": plan.searched_edges,
        "merged_producers": plan.merged_producers,
    }


def plan_from_json(data: dict) -> LayoutPlan:
    plan = LayoutPlan(quality=data.get("quality", "default"))
    plan.layouts = {name: Layout.from_json(l)
                    for name, l in data["layouts"].items()}
    plan.copies = {name: [Layout.from_json(l) for l in layouts]
                   for name, layouts in data.get("copies", {}).items()}
    plan.edge_assignment = {
        (cid, idx): which
        for cid, idx, which in data.get("edge_assignment", [])
    }
    plan.searched_edges = data.get("searched_edges", 0)
    plan.merged_producers = data.get("merged_producers", 0)
    return plan


@dataclass
class Artifact:
    """A deployable optimized module."""

    graph: Graph
    plan: LayoutPlan
    extra_efficiency: float = 1.0
    metadata: dict | None = None

    @staticmethod
    def from_result(result: OptimizeResult, metadata: dict | None = None) -> "Artifact":
        return Artifact(graph=result.graph, plan=result.plan,
                        extra_efficiency=result.extra_efficiency,
                        metadata=metadata or {})

    def to_json(self) -> dict:
        return {
            "format": "smartmem-artifact-v1",
            "graph": graph_to_json(self.graph),
            "plan": plan_to_json(self.plan),
            "extra_efficiency": self.extra_efficiency,
            "metadata": self.metadata or {},
        }

    @staticmethod
    def from_json(data: dict) -> "Artifact":
        if data.get("format") != "smartmem-artifact-v1":
            raise ValueError(f"not a SmartMem artifact: {data.get('format')!r}")
        return Artifact(
            graph=graph_from_json(data["graph"]),
            plan=plan_from_json(data["plan"]),
            extra_efficiency=data.get("extra_efficiency", 1.0),
            metadata=data.get("metadata", {}),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_json()))

    @staticmethod
    def load(path: str | Path) -> "Artifact":
        return Artifact.from_json(json.loads(Path(path).read_text()))
