"""Tensor-level dynamic batching: batch-N variants of lowered programs.

The PR-4 scheduler coalesces batch-compatible requests, but each request
of a coalesced micro-batch still executes as its own pass over the
program - coalescing amortizes *dispatch*, not kernel work.  This module
makes the kernel work itself batched: given an
:class:`~repro.runtime.program.ExecutionProgram` whose ops are
batch-stackable, :func:`rebatch` derives a **batch-N variant** - the
same steps with shapes, view chains, reshape/slice attrs, and the
:class:`~repro.runtime.program.SlotPlan` scaled along the leading batch
axis - so N stacked requests run through *one* kernel invocation per
step.  Because a variant is itself an ordinary ``ExecutionProgram``,
both execution backends serve it through their existing
``_compile_runners`` hook: the NumPy backend compiles step closures over
the scaled shapes, the codegen backend emits batch-N Python source.

Batch-size bucketing: arbitrary micro-batch sizes are rounded up to the
next power of two by :func:`bucket` and padded by replicating the last
request, so a serving session compiles (and pools for) a small set of
variants instead of one per observed batch size.  Variants are cached on
``program.backend_cache`` keyed by the bucket - equivalently, by
``(batch_key, N)``, since the program *is* the batch key's referent.

Which ops are batch-stackable
-----------------------------

:func:`analyze` walks the program once and proves, per step, that
executing the stacked tensors is equivalent to executing each request
alone.  The invariant: every *batched* value carries the batch on its
leading axis (extent ``B``, the graph inputs' shared leading extent),
and scaling ``B -> B*N`` never changes non-batch extents.  The rules:

* **elementwise** (``unary``, ``binary``, ``layout_convert``,
  ``batchnorm``): always stackable; a non-batched operand may broadcast
  only from rank below the batched operand (or a leading extent of 1).
* **matmul / dense**: stackable when the batch rides broadcast batch
  dims (rank >= 3) or independent rows (rank 2, no ``transpose_a``);
  weights must be non-batched.
* **softmax / layernorm / rmsnorm / reduce_***: stackable iff the
  normalized/reduced axes exclude the batch axis.
* **NCHW ops** (``conv2d``, pools, ``instancenorm``, ``groupnorm``,
  ``upsample2d``, ``depth_to_space``, ``space_to_depth``): stackable by
  construction - they never mix rows across the leading axis.
* **layout ops**: ``reshape`` must keep the batch axis outermost;
  ``transpose`` must fix axis 0; ``slice``/``pad`` must not cut or grow
  the batch axis; ``concat``/``split``/``gather`` must target a
  non-batch axis (and ``concat`` operands must be uniformly batched).
* **embedding**: ids are batched, the table is not.

View chains are trickier: a chain may move the batch axis *internally*
(e.g. SD-TextEncoder's qkv split transposes batch to axis 1, slices the
qkv axis, and reshapes batch back) as long as every step keeps the
batch indexable - reshapes keep it outermost-nontrivial, slices take
its full range - and the chain ends with batch back on axis 0.

Anything outside these rules (an op reducing or reshaping across the
batch dim, an unknown op type) marks the whole program non-stackable:
:meth:`Session.execute_values <repro.runtime.session.Session.execute_values>`
then falls back to the sequential per-request path *explicitly* instead
of producing wrong stacked results.  The reason is recorded on the
:class:`BatchAnalysis` for introspection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..ir.symbolic import OPEN_STOP, SYM, SymViewChain
from ..ir.view import ViewChain, ViewStep
from .kernels import bind_conv2d
from .program import ExecutionProgram, SlotPlan, Step, _compile_view

_ANALYSIS_KEY = "batching.analysis"
_VARIANTS_KEY = "batching.variants"
_SYMBOLIC_KEY = "batching.symbolic"


class NotStackable(Exception):
    """The program (or one step of it) cannot be batch-stacked; the
    message names the offending op and rule."""


def bucket(n: int) -> int:
    """The power-of-two bucket serving a micro-batch of ``n`` requests.

    Bucketing keeps the set of compiled batch variants (and their warm
    bucket pools) logarithmic in the observed batch sizes; the stacked
    pass pads ``bucket(n) - n`` slots by replicating the last request.
    """
    if n < 1:
        raise ValueError("batch size must be at least 1")
    return 1 << (n - 1).bit_length()


@dataclass
class BatchAnalysis:
    """Batch-stackability verdict for one program (cached on it).

    ``batched`` names every value whose leading axis is the batch axis
    (graph inputs and everything data-dependent on them); values outside
    it (parameters, constant subexpressions) are shared across the
    stacked requests unscaled.  Mutable on purpose: a rebatch failure
    demotes the program to non-stackable at runtime (defense in depth -
    the sequential path is always correct).
    """

    stackable: bool
    reason: str
    batched: frozenset[str]
    batch_extent: int


def analyze(program: ExecutionProgram) -> BatchAnalysis:
    """Prove (or refute) that ``program`` is batch-stackable.

    Computed once per program and cached on
    :attr:`~repro.runtime.program.ExecutionProgram.backend_cache`; the
    verdict is what licenses
    :meth:`~repro.runtime.session.Session.execute_values` to route a
    micro-batch through one stacked pass.
    """
    found = program.backend_cache.get(_ANALYSIS_KEY)
    if found is None:
        found = program.backend_cache[_ANALYSIS_KEY] = _analyze(program)
    return found


def mark_unstackable(program: ExecutionProgram, reason: str) -> None:
    """Demote ``program`` to the sequential path permanently.

    Called when building or running a variant fails in a way analysis
    did not predict: wrong results are never acceptable, a sequential
    fallback always is.
    """
    analysis = analyze(program)
    analysis.stackable = False
    analysis.reason = reason


def _analyze(program: ExecutionProgram) -> BatchAnalysis:
    signature = program.input_signature
    if not signature:
        return BatchAnalysis(False, "program has no graph inputs",
                             frozenset(), 0)
    extents = []
    for name, shape, _ in signature:
        if not shape:
            return BatchAnalysis(
                False, f"input {name!r} is rank-0 (no batch axis)",
                frozenset(), 0)
        extents.append(shape[0])
    batch_extent = extents[0]
    if any(extent != batch_extent for extent in extents):
        return BatchAnalysis(
            False, "graph inputs disagree on the leading batch extent",
            frozenset(), 0)
    batched = set(program.input_names)
    shapes, shape_of = _shape_resolver(program)
    try:
        for step in program.steps:
            # factor=2 is a throwaway probe: the transform both checks
            # the stacking rules and exercises the view/attr scaling the
            # real rebatch will perform.
            out_batched, _, _, _ = _transform_step(
                step, batch_extent, 2, batched, shape_of)
            for out, out_shape in zip(step.out_names, step.out_shapes):
                shapes[out] = tuple(out_shape)
                if out_batched:
                    batched.add(out)
    except (NotStackable, ValueError, KeyError) as err:
        return BatchAnalysis(False, f"{err}", frozenset(), batch_extent)
    return BatchAnalysis(True, "", frozenset(batched), batch_extent)


def rebatch(program: ExecutionProgram, factor: int) -> ExecutionProgram:
    """The batch-``factor`` variant of ``program`` (cached per factor).

    The variant shares the base program's graph, kernels, step order,
    and value names; only batch-dependent state is rebuilt - output
    shapes, view chains, reshape/slice attrs, the input signature, and
    a freshly replayed :class:`SlotPlan` whose size classes scale the
    batched tensors by ``factor``.  Raises :class:`NotStackable` when
    :func:`analyze` refuted stacking.
    """
    if factor < 1:
        raise ValueError("batch factor must be at least 1")
    if factor == 1:
        return program
    variants = program.backend_cache.get(_VARIANTS_KEY)
    if variants is None:
        variants = program.backend_cache[_VARIANTS_KEY] = {}
    found = variants.get(factor)
    if found is None:
        found = variants[factor] = _build_variant(program, factor,
                                                  symbolic=False)
    return found


def symbolize(program: ExecutionProgram, factor: int) -> ExecutionProgram:
    """The extent-polymorphic bucket-``factor`` variant (cached).

    Where :func:`rebatch` pins the variant to one stacked extent,
    ``symbolize`` builds a variant that executes *any* leading extent
    up to the bound ``B * factor`` at that exact extent: output shapes
    carry the :data:`~repro.ir.symbolic.SYM` placeholder, reshape
    targets and batch-axis slices use the runtime-clamped spellings
    (``-1`` / :data:`~repro.ir.symbolic.OPEN_STOP`), and only the slot
    plan, conv scratch, and traffic accounting are sized at the bound.
    Unlike a stacked pass, no per-request GEMM splitting is applied -
    an exact-extent run issues the identical kernel calls a fresh
    concrete compile at that extent would, so outputs are
    byte-identical to it.  One variant per power-of-two bucket serves
    the whole shape family; ``factor == 1`` still builds a real variant
    (it serves extents below the base batch).  Raises
    :class:`NotStackable` when :func:`analyze` refuted scaling.
    """
    if factor < 1:
        raise ValueError("batch factor must be at least 1")
    variants = program.backend_cache.get(_SYMBOLIC_KEY)
    if variants is None:
        variants = program.backend_cache[_SYMBOLIC_KEY] = {}
    found = variants.get(factor)
    if found is None:
        found = variants[factor] = _build_variant(program, factor,
                                                  symbolic=True)
    return found


def _build_variant(program: ExecutionProgram, factor: int,
                   symbolic: bool) -> ExecutionProgram:
    """Shared variant builder behind :func:`rebatch` and
    :func:`symbolize` - one machinery, two output spellings (concrete
    scaled shapes vs extent-polymorphic placeholders)."""
    analysis = analyze(program)
    if not analysis.stackable:
        raise NotStackable(
            f"{program.graph.name!r} is not batch-stackable: "
            f"{analysis.reason}")
    B = analysis.batch_extent
    batched = analysis.batched
    plan, alloc_at, release_at = _variant_plan(program, factor, batched)
    shapes, shape_of = _shape_resolver(program)
    steps = []
    for index, step in enumerate(program.steps):
        out_batched, attrs, views, kernel = _transform_step(
            step, B, factor, batched, shape_of, symbolic)
        for out, out_shape in zip(step.out_names, step.out_shapes):
            shapes[out] = tuple(out_shape)
        if out_batched and symbolic:
            out_shapes = tuple(
                (SYM,) + tuple(shape[1:]) for shape in step.out_shapes)
        elif out_batched:
            out_shapes = tuple(
                (shape[0] * factor,) + tuple(shape[1:])
                for shape in step.out_shapes)
        else:
            out_shapes = tuple(tuple(shape) for shape in step.out_shapes)
        scale = factor if out_batched else 1
        steps.append(Step(
            node_id=step.node_id,
            op_type=step.op_type,
            kernel=kernel,
            arg_names=step.arg_names,
            appliers=tuple(
                (idx, _compile_view(chain)) for idx, chain in views),
            views=views,
            attrs=attrs,
            out_names=step.out_names,
            out_shapes=out_shapes,
            alloc_slots=tuple(alloc_at[index]),
            release_slots=tuple(release_at[index]),
            drops=step.drops,
            bytes_read=step.bytes_read * scale,
            bytes_written=step.bytes_written * scale,
            flops=step.flops * scale,
            scratch_bytes=step.scratch_bytes * scale,
        ))
    plan = replace(plan, scratch_sizes=tuple(
        s.scratch_bytes for s in steps if s.scratch_bytes))
    if symbolic:
        input_signature = tuple(
            (name, (SYM,) + tuple(shape[1:]), dtype)
            for name, shape, dtype in program.input_signature)
    else:
        input_signature = tuple(
            (name, (shape[0] * factor,) + tuple(shape[1:]), dtype)
            for name, shape, dtype in program.input_signature)
    # Chains are runs of step indices, stable across rebatching: the
    # variant inherits them verbatim and the codegen backend re-derives
    # its in-place decisions from the variant's scaled shapes.
    variant = ExecutionProgram(
        program.graph, tuple(steps), plan,
        input_signature=input_signature, batch_factor=factor,
        fused_chains=program.fused_chains,
        symbolic_extent=B * factor if symbolic else None)
    if symbolic:
        # A symbolic variant is never itself stacked or re-scaled:
        # requests route to it per bucket and run at their exact
        # extent.  Pre-seeding the analysis keeps anything that probes
        # the variant (which carries SYM shapes analyze cannot read)
        # on the sequential path.
        variant.backend_cache[_ANALYSIS_KEY] = BatchAnalysis(
            False, "symbolic bucket variant: requests execute at their "
            "exact runtime extent; bucketing replaces stacking",
            frozenset(), B * factor)
    return variant


# ---------------------------------------------------------------------------
# internals: shape resolution, view-chain scaling, per-op rules, slot replay
# ---------------------------------------------------------------------------


def _shape_resolver(program: ExecutionProgram):
    """A mutable name->shape map seeded from the input signature.

    Step outputs are added by the caller as the walk proceeds;
    parameters and interior constants (never produced by a step) resolve
    lazily from the graph's tensor specs.
    """
    shapes = {name: tuple(shape) for name, shape, _ in program.input_signature}
    tensors = program.graph.tensors

    def shape_of(name: str) -> tuple[int, ...]:
        shape = shapes.get(name)
        if shape is None:
            shape = shapes[name] = tuple(int(d) for d in tensors[name].shape)
        return shape

    return shapes, shape_of


def _scale_chain(chain: ViewChain, B: int, factor: int,
                 symbolic: bool = False):
    """Scale one view chain's batch axis from ``B`` to ``B * factor``.

    Tracks the batch axis *position* through the chain - transposes move
    it freely, reshapes must keep it the outermost non-trivial axis on
    both sides, slices must take its full range - and requires the chain
    to end with the batch back on axis 0 (the kernel-argument
    invariant).  Raises :class:`NotStackable` otherwise.

    ``symbolic`` additionally emits the extent-polymorphic twin: the
    batch position of a reshape target becomes ``-1`` and the batch-axis
    slice triple becomes ``(0, OPEN_STOP, 1)`` (both clamp to the actual
    runtime extent), packaged as a
    :class:`~repro.ir.symbolic.SymViewChain`.  The concrete scaled chain
    is still built and validated first, so the symbolic twin inherits
    every rule check.
    """
    shape = chain.in_shape
    if not shape or shape[0] != B:
        raise NotStackable(
            f"view chain input {shape} does not lead with the batch axis")
    pos = 0
    steps: list[ViewStep] = []
    sym_steps: list[ViewStep] = []
    for step in chain.steps:
        if step.kind == "transpose":
            steps.append(step)
            sym_steps.append(step)
            pos = step.arg.index(pos)
        elif step.kind == "slice":
            lo, hi, stride = step.arg[pos]
            if (lo, hi, stride) != (0, shape[pos], 1):
                raise NotStackable(
                    f"view slice {step.arg[pos]} cuts the batch axis")
            steps.append(ViewStep("slice", (
                step.arg[:pos] + ((0, B * factor, 1),) + step.arg[pos + 1:])))
            sym_steps.append(ViewStep("slice", (
                step.arg[:pos] + ((0, OPEN_STOP, 1),) + step.arg[pos + 1:])))
        else:  # reshape
            if any(d != 1 for d in shape[:pos]):
                raise NotStackable(
                    f"view reshape from {shape} buries the batch axis")
            target = step.arg
            q = None
            for i, d in enumerate(target):
                if d == B:
                    q = i
                    break
                if d != 1:
                    break
            if q is None:
                raise NotStackable(
                    f"view reshape to {target} merges the batch axis")
            steps.append(ViewStep(
                "reshape", target[:q] + (B * factor,) + target[q + 1:]))
            sym_steps.append(ViewStep(
                "reshape", target[:q] + (-1,) + target[q + 1:]))
            pos = q
        shape = step.output_shape(shape)
    if pos != 0:
        raise NotStackable("view chain leaves the batch off axis 0")
    try:
        scaled = ViewChain((B * factor,) + chain.in_shape[1:], tuple(steps))
    except ValueError as err:
        raise NotStackable(f"scaled view chain is inconsistent: {err}") \
            from err
    expected = (B * factor,) + chain.out_shape[1:]
    if scaled.out_shape != expected:
        raise NotStackable(
            f"scaled view chain produces {scaled.out_shape}, "
            f"expected {expected}")
    if symbolic:
        return SymViewChain((SYM,) + chain.in_shape[1:], sym_steps,
                            (SYM,) + chain.out_shape[1:])
    return scaled


def _axes(attrs: dict, rank: int, default) -> tuple[int, ...]:
    raw = attrs.get("axes", default)
    if isinstance(raw, int):
        raw = (raw,)
    return tuple(a % rank for a in raw)


def _per_request_rows(kernel, B: int):
    """Wrap a rank-2 GEMM kernel to keep per-request bit-exactness.

    A rank-2 ``dense``/``matmul`` folds the batch into the GEMM's M
    dimension, and BLAS row-blocking makes ``(N*B, k) @ (k, m)`` differ
    from the solo ``(B, k) @ (k, m)`` in the last float bits.  Lifting
    the stacked rows to ``(N, B, k)`` makes numpy loop the leading axis,
    issuing per request the *identical* GEMM call a solo run issues -
    byte-identical outputs by construction.  Every other stackable op
    already loops the leading axis (rank>=3 matmul, the conv2d einsum)
    or is element/row-local.
    """
    def stacked_kernel(inputs, attrs):
        x = inputs[0]
        lifted = x.reshape((x.shape[0] // B, B) + x.shape[1:])
        out = kernel([lifted, *inputs[1:]], attrs)
        return out.reshape((x.shape[0],) + out.shape[2:])

    return stacked_kernel


def _transform_step(step: Step, B: int, factor: int, batched,
                    shape_of, symbolic: bool = False,
                    ) -> tuple[bool, dict, tuple, object]:
    """Check one step's stacking rule and scale its batch-dependent
    capture.

    Returns ``(out_batched, attrs, views, kernel)``: whether the step's
    outputs carry the batch axis, the (possibly re-built) attrs dict,
    the (possibly re-scaled) ``(position, ViewChain)`` capture, and the
    kernel (wrapped by :func:`_per_request_rows` for rank-2 GEMMs).
    Raises :class:`NotStackable` when stacking would change results.

    ``symbolic`` keeps every rule check on the concrete base shapes but
    emits extent-polymorphic artifacts instead of scaled ones: reshape
    targets lead with ``-1``, slice stops with
    :data:`~repro.ir.symbolic.OPEN_STOP` (the ``slice`` kernel clamps),
    view chains become :class:`~repro.ir.symbolic.SymViewChain`, and
    rank-2 GEMMs are *not* wrapped by :func:`_per_request_rows` - an
    exact-extent pass must issue the same single GEMM call a concrete
    compile at that extent issues, which is what makes symbolic outputs
    byte-identical to fresh concrete compiles.
    """
    op = step.op_type
    arg_batched = tuple(name in batched for name in step.arg_names)
    views = []
    for idx, chain in step.views:
        views.append((idx, _scale_chain(chain, B, factor, symbolic)
                      if arg_batched[idx] else chain))
    views = tuple(views)
    if not any(arg_batched):
        # A pure parameter/constant subexpression: identical for every
        # request, so the variant runs it once, unscaled, and the output
        # is shared across the split.
        return False, step.attrs, views, step.kernel

    by_view = dict(views)

    def arg_shape(pos: int) -> tuple[int, ...]:
        # Base (unscaled) kernel-argument shape, i.e. post-view.
        chain = by_view.get(pos)
        if chain is not None:
            return (B,) + chain.out_shape[1:] if arg_batched[pos] \
                else chain.out_shape
        return shape_of(step.arg_names[pos])

    attrs = step.attrs
    kernel = step.kernel
    rank = len(arg_shape(0))

    if op in ("unary", "layout_convert"):
        pass
    elif op == "binary":
        ra, rb = rank, len(arg_shape(1))
        a_b, b_b = arg_batched[0], arg_batched[1]
        if a_b and b_b:
            if ra != rb:
                raise NotStackable(
                    f"binary: batched operands of ranks {ra} and {rb}")
        elif a_b:
            if rb > ra or (rb == ra and arg_shape(1)[0] != 1):
                raise NotStackable(
                    "binary: non-batched operand broadcasts over the "
                    "batch axis")
        else:
            if ra > rb or (ra == rb and arg_shape(0)[0] != 1):
                raise NotStackable(
                    "binary: non-batched operand broadcasts over the "
                    "batch axis")
    elif op == "matmul":
        ra, rb = rank, len(arg_shape(1))
        a_b, b_b = arg_batched[0], arg_batched[1]
        if a_b and b_b:
            if ra != rb or ra < 3:
                raise NotStackable(
                    "matmul: batched operands need aligned batch dims "
                    "(equal rank >= 3)")
        elif a_b:
            if ra < 2 or rb > 2:
                raise NotStackable(
                    "matmul: batch axis would join the contraction")
            if ra == 2:
                if attrs.get("transpose_a"):
                    raise NotStackable(
                        "matmul: transpose_a folds the batch axis")
                if not symbolic:
                    kernel = _per_request_rows(kernel, B)
        else:
            if rb < 3 or ra > 2:
                raise NotStackable(
                    "matmul: batched rhs without a broadcast batch dim")
    elif op == "dense":
        if not arg_batched[0] or any(arg_batched[1:]):
            raise NotStackable("dense: weights/bias must be non-batched")
        if rank < 2:
            raise NotStackable("dense: rank-1 activation contracts the "
                               "batch axis")
        if rank == 2 and not symbolic:
            kernel = _per_request_rows(kernel, B)
    elif op == "softmax":
        if int(attrs.get("axis", -1)) % rank == 0:
            raise NotStackable("softmax over the batch axis")
    elif op in ("layernorm", "rmsnorm"):
        if not arg_batched[0] or any(arg_batched[1:]):
            raise NotStackable(f"{op}: scale/bias must be non-batched")
        if 0 in _axes(attrs, rank, -1):
            raise NotStackable(f"{op} normalizes across the batch axis")
    elif op in ("instancenorm", "groupnorm", "batchnorm", "conv2d",
                "maxpool2d", "avgpool2d", "global_avgpool", "upsample2d",
                "depth_to_space", "space_to_depth"):
        if not arg_batched[0] or any(arg_batched[1:]):
            raise NotStackable(
                f"{op}: weights/scale/bias must be non-batched")
        if rank < 2:
            raise NotStackable(f"{op}: activation has no batch axis")
        if op == "conv2d":
            # The base kernel is bound to im2col scratch planned for the
            # solo batch extent; the variant needs its own binding sized
            # for the stacked leading axis.
            kernel, _ = bind_conv2d(
                (B * factor,) + arg_shape(0)[1:], arg_shape(1), attrs)
    elif op in ("reduce_mean", "reduce_sum", "reduce_max"):
        if 0 in _axes(attrs, rank, tuple(range(rank))):
            raise NotStackable(f"{op} reduces across the batch axis")
    elif op == "reshape":
        target = tuple(int(d) for d in attrs["shape"])
        if not target or target[0] != B:
            raise NotStackable(
                f"reshape to {target} merges the batch axis")
        attrs = {**attrs, "shape": ((-1,) if symbolic else (B * factor,))
                 + target[1:]}
    elif op == "transpose":
        if tuple(attrs["perm"])[0] != 0:
            raise NotStackable("transpose moves the batch axis")
    elif op == "slice":
        starts = tuple(int(v) for v in attrs["starts"])
        stops = tuple(int(v) for v in attrs["stops"])
        steps_ = attrs.get("steps")
        if starts[0] != 0 or stops[0] < B \
                or (steps_ is not None and int(steps_[0]) != 1):
            raise NotStackable("slice cuts the batch axis")
        attrs = {**attrs, "stops":
                 ((OPEN_STOP,) if symbolic else (B * factor,)) + stops[1:]}
    elif op == "gather":
        if int(attrs.get("axis", 0)) % rank == 0:
            raise NotStackable("gather indexes the batch axis")
    elif op == "concat":
        if not all(arg_batched):
            raise NotStackable(
                "concat mixes batched and non-batched operands")
        if int(attrs.get("axis", 0)) % rank == 0:
            raise NotStackable("concat along the batch axis")
    elif op == "split":
        if int(attrs.get("axis", 0)) % rank == 0:
            raise NotStackable("split along the batch axis")
    elif op == "pad":
        if tuple(attrs["pads"][0]) != (0, 0):
            raise NotStackable("pad grows the batch axis")
    elif op == "embedding":
        if arg_batched[0]:
            raise NotStackable("embedding: batched table")
    else:
        raise NotStackable(f"op {op!r} has no batch-stacking rule")

    for shape in step.out_shapes:
        if not shape or shape[0] != B:
            raise NotStackable(
                f"{op}: output shape {tuple(shape)} does not lead with "
                f"the batch axis")
    return True, attrs, views, kernel


def _variant_plan(program: ExecutionProgram, factor: int, batched,
                  ) -> tuple[SlotPlan, list[list[int]], list[list[int]]]:
    """Replay slot assignment with batched tensors scaled by ``factor``.

    A fresh replay (rather than scaling slot sizes in place) is
    required because base slots are *shared* across tensors of one size
    class - and a batched and a non-batched tensor of equal base size
    land in different classes once scaled.
    """
    base = program.slot_plan
    tensor_slot_base = base.tensor_slot
    base_sizes = base.slot_sizes

    def size_of(t: str) -> int:
        size = base_sizes[tensor_slot_base[t]]
        return size * factor if t in batched else size

    slot_sizes: list[int] = []
    free: dict[int, list[int]] = {}
    tensor_slot: dict[str, int] = {}

    def take(size: int) -> int:
        stack = free.get(size)
        if stack:
            return stack.pop()
        slot_sizes.append(size)
        return len(slot_sizes) - 1

    live = 0
    total = 0
    input_slots: list[int] = []
    for t in program.input_names:
        size = size_of(t)
        slot = take(size)
        tensor_slot[t] = slot
        input_slots.append(slot)
        live += size
        total += size

    steps = program.steps
    alloc_at: list[list[int]] = [[] for _ in steps]
    release_at: list[list[int]] = [[] for _ in steps]
    timeline_live: list[int] = []
    for index, step in enumerate(steps):
        for t in step.out_names:
            if t in tensor_slot_base:
                size = size_of(t)
                slot = take(size)
                tensor_slot[t] = slot
                alloc_at[index].append(slot)
                live += size
                total += size
        timeline_live.append(live)
        dying = [t for t in step.drops if t in tensor_slot_base]
        if len(dying) != len(step.release_slots):
            raise NotStackable(
                f"step {step.node_id!r}: pool releases do not line up "
                f"with value drops")
        for t in dying:
            slot = tensor_slot[t]
            size = slot_sizes[slot]
            free.setdefault(size, []).append(slot)
            release_at[index].append(slot)
            live -= size

    counts: dict[int, int] = {}
    for size in slot_sizes:
        counts[size] = counts.get(size, 0) + 1
    plan = SlotPlan(
        slot_sizes=tuple(slot_sizes),
        tensor_slot=tensor_slot,
        input_slots=tuple(input_slots),
        timeline_live=tuple(timeline_live),
        peak_bytes=max(timeline_live, default=0),
        total_allocated_bytes=total,
        size_class_counts=counts,
        allocs_per_run=len(input_slots) + sum(
            len(slots) for slots in alloc_at),
    )
    return plan, alloc_at, release_at


__all__ = [
    "BatchAnalysis", "NotStackable", "analyze", "bucket",
    "mark_unstackable", "rebatch", "symbolize",
]
