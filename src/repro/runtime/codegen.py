"""Pseudo-OpenCL kernel generation for fused groups.

The paper's Q3 (Section 2.2): "Implementing an operation efficiently for
a chosen layout (distinct from the original layout), including deciding
access pattern and simplifying index computations."  This module makes
that step concrete: for a fused group it emits a readable OpenCL-style
kernel showing

* the storage-address computation for each input under its *chosen*
  layout (buffer strides or texture coordinates),
* the residual index expressions from eliminated layout transforms,
  strength-reduced by ``repro.indexexpr`` (compare ``simplify=False`` to
  see exactly what Index Comprehension removes),
* the loop nest ordered so the innermost loop runs along the consumer's
  reduction dimension (the layout-selection contract).

The emitted source is documentation/inspection output - it is not
compiled - but every index expression in it is the same ``Expr`` object
the cost model charges for, so tests can hold the two together.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.layout_selection import LayoutPlan, consumer_preferences
from ..indexexpr.expr import Expr
from ..indexexpr.index_map import IndexMap
from ..ir.graph import Graph, Node
from ..ir.layout import Layout, MemoryKind, TEXTURE_VECTOR_WIDTH


def _expr_to_c(e: Expr) -> str:
    """Render an index expression as C source (// -> /, since operands
    are non-negative integers)."""
    text = repr(e)
    return text.replace("//", "/")


def _buffer_address(name: str, layout: Layout, shape, coord_exprs) -> str:
    strides = layout.strides(shape)
    terms = []
    for expr, stride in zip(coord_exprs, strides):
        if stride == 0:
            continue
        rendered = _expr_to_c(expr)
        terms.append(rendered if stride == 1 else f"({rendered}) * {stride}")
    body = " + ".join(terms) if terms else "0"
    return f"{name}[{body}]"


def _texture_address(name: str, layout: Layout, shape, coord_exprs) -> str:
    vec = layout.vector_dim
    lane = f"({_expr_to_c(coord_exprs[vec])}) % {TEXTURE_VECTOR_WIDTH}"
    vec_block = f"({_expr_to_c(coord_exprs[vec])}) / {TEXTURE_VECTOR_WIDTH}"
    vec_blocks = -(-shape[vec] // TEXTURE_VECTOR_WIDTH)
    texel_terms = []
    scale = 1
    # linearize dim_order from innermost outwards
    for dim in reversed(layout.dim_order):
        if dim == vec:
            term, extent = vec_block, vec_blocks
        else:
            term, extent = _expr_to_c(coord_exprs[dim]), shape[dim]
        texel_terms.append(f"({term}) * {scale}" if scale != 1 else f"({term})")
        scale *= extent
    texel = " + ".join(texel_terms)
    return f"read_imageh({name}, ({texel}))[{lane}]"


@dataclass
class GeneratedKernel:
    name: str
    source: str
    index_cost_units: int
    inputs: list[str]
    outputs: list[str]


def generate_kernel(
    graph: Graph,
    node: Node,
    plan: LayoutPlan | None = None,
    simplify_index: bool = True,
) -> GeneratedKernel:
    """Emit a pseudo-OpenCL kernel for one operator with its views.

    The loop nest covers the kernel's observed input shape for input 0;
    the innermost loop is the consumer's first reduction dimension when
    one exists (layout selection stores that dimension unit-stride, so
    the generated inner loop is the coalesced one).
    """
    plan = plan or LayoutPlan()
    tensor = node.inputs[0]
    stored_shape = graph.shape(tensor)
    view = node.input_views.get(0)
    if view is not None:
        imap = IndexMap.from_view_chain(view, simplified=simplify_index)
    else:
        imap = IndexMap.identity(stored_shape)
    observed = imap.out_shape

    prefs = consumer_preferences(graph, node, 0)
    rank = len(observed)
    inner = prefs[0] if prefs else rank - 1
    loop_order = [d for d in range(rank) if d != inner] + [inner]

    layout = plan.layouts.get(tensor, Layout.row_major(len(stored_shape)))
    if layout.memory is MemoryKind.TEXTURE_2D5:
        load = _texture_address(tensor, layout, stored_shape, imap.exprs)
    else:
        load = _buffer_address(tensor, layout, stored_shape, imap.exprs)

    lines = [
        f"// kernel for {node.id} ({node.op_type})",
        f"// observed input shape {list(observed)}; stored as "
        f"{list(stored_shape)} in "
        f"{'texture' if layout.memory is MemoryKind.TEXTURE_2D5 else 'buffer'}"
        f" layout {list(layout.dim_order)}",
    ]
    if view is not None:
        kinds = ", ".join(s.kind for s in view.steps)
        lines.append(f"// absorbs eliminated transforms: {kinds} "
                     f"(index cost {imap.cost()} units/elem)")
    lines.append(f"__kernel void {node.id}(...) {{")
    indent = "  "
    for depth, dim in enumerate(loop_order):
        var = f"o{dim}"
        lines.append(f"{indent * (depth + 1)}for (int {var} = 0; "
                     f"{var} < {observed[dim]}; ++{var}) {{"
                     + ("  // reduction dim, unit stride" if dim == inner
                        and prefs else ""))
    body_indent = indent * (rank + 1)
    lines.append(f"{body_indent}half v = {load};")
    lines.append(f"{body_indent}acc = {node.op_type}_step(acc, v);")
    for depth in reversed(range(rank)):
        lines.append(f"{indent * (depth + 1)}}}")
    lines.append("}")
    return GeneratedKernel(
        name=node.id,
        source="\n".join(lines),
        index_cost_units=imap.cost(),
        inputs=list(node.inputs),
        outputs=list(node.outputs),
    )


def generate_group(graph: Graph, group_id: int,
                   plan: LayoutPlan | None = None) -> list[GeneratedKernel]:
    """Kernels for every member of a fusion group, in execution order."""
    members = [n for n in graph.topo_order() if n.group == group_id]
    if not members:
        raise ValueError(f"no nodes in group {group_id}")
    return [generate_kernel(graph, node, plan) for node in members]
