"""Fused codegen execution backend: ExecutionPrograms compiled to Python.

The :class:`~repro.runtime.program.NumPyBackend` already pays per-step
dispatch only once per step - but it still pays it on every request: one
closure call, one argument-list comprehension, one dict read per input,
one dict write per output, one drop loop.  On dispatch-bound models
(tiny tensors, many steps) that residue is a measurable fraction of the
request wall time.

:class:`CodegenBackend` removes it by *compiling the whole step loop to
Python source* once per program:

* every step of the program becomes inline statements in a single
  generated function, so chains of elementwise/view steps are fused into
  one compiled unit with no per-step closure dispatch;
* interior values live in function locals (``LOAD_FAST``) instead of the
  values dict; inputs and parameters are read from the request dict
  exactly once;
* pre-resolved view chains are inlined as direct ndarray method calls
  (``.reshape(...)``, ``.transpose(...)``, constant slice subscripts)
  instead of applier-closure calls;
* kernels and per-step attrs are bound as module globals of the
  generated module; slot indices and byte sizes appear as integer
  literals, so the pool-accounted variant interleaves ``allocate(4096)``
  /-``release`` calls with the fused body;
* shape checks and error messages match the reference backend
  statement-for-statement, so a misbehaving kernel fails identically on
  both backends.

The module source is emitted by :func:`emit_program_source`, compiled
once by :func:`compile_program`, and cached on
:attr:`~repro.runtime.program.ExecutionProgram.backend_cache` - the
program itself is memoized per graph generation by
:func:`~repro.runtime.program.lower`, so the compiled runner inherits
exactly the lowering's lifetime and invalidation, mirroring the
``lower()`` memoization discipline.

Everything *around* the fused body - steady-state pool collapse, warm-up
slot accounting, failure cleanup, micro-batch coalescing, stacked
batch-N execution - is inherited from :class:`NumPyBackend` through the
:meth:`_compile_runners` hook, so there is still exactly one
pool/batching discipline in the codebase.  That includes dynamic
batching for free: a batch-N variant built by
:func:`repro.runtime.batching.rebatch` is an ordinary
``ExecutionProgram``, so ``run_stacked`` transparently compiles (and
caches) batch-N *source* for it through the same hook.

Select it anywhere a backend name is accepted::

    repro.compile("Pythia", repro.CompileOptions(backend="codegen"))
    verify_equivalence(graph, optimized, backend="codegen")

This is the template for future backends (multi-process, true OpenCL):
subclass, override :meth:`_compile_runners`, ``@register_backend``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..api.errors import BackendCompilationError, ExecutionError
from ..ir.symbolic import OPEN_STOP, SymDim, SymViewChain
from .kernels import _BINARY_IMPL, layout_convert_elided
from .program import ExecutionProgram, NumPyBackend, register_backend

_MODULE_CACHE_KEY = "codegen.module"

#: Module sources actually emitted+compiled (cache misses) since process
#: start - the regression-test observable for "one emission per bucket".
_EMISSIONS = 0


def emission_count() -> int:
    """How many program modules this process has emitted and compiled
    (cache hits excluded)."""
    return _EMISSIONS

#: Unary funcs with a bitwise-identical in-place recipe (plain ufuncs, or
#: ufunc compositions whose reference impl is the same op sequence).
#: gelu/silu/sigmoid and friends are *not* here: their impls build fresh
#: intermediates, so the chain falls back to the reference kernel call
#: (still fused into the register, just not written in place).
_INPLACE_UNARY = frozenset(
    {"relu", "relu6", "tanh", "exp", "neg", "abs", "sqrt"})

_UNPRINTABLE = re.compile(r"[^ -~]")


def _comment_text(text: str) -> str:
    """Comment-safe rendering of free-form names: anything outside
    printable ASCII (a newline would terminate the comment and corrupt
    the module) becomes ``?``.  Only cosmetic text goes through here -
    names that matter semantically are embedded via ``repr``."""
    return _UNPRINTABLE.sub("?", text)


@dataclass(frozen=True)
class CompiledProgramModule:
    """One program compiled to a Python module.

    ``source`` is the generated text (inspectable, like the pseudo-OpenCL
    kernels of :mod:`repro.runtime.codegen`); ``run_plain`` and
    ``run_accounted`` are the compiled runner pair the backend executes;
    ``namespace`` is the module globals the source was executed in
    (kernels and attrs bound by name).
    """

    source: str
    run_plain: Callable
    run_accounted: Callable
    namespace: dict
    fused_chains: int = 0
    """Elementwise chains collapsed into single-register expressions."""
    fused_steps: int = 0
    """Interior steps subsumed by those chains (never materialized)."""


class _SourceEmitter:
    """Builds the module source for one :class:`ExecutionProgram`."""

    def __init__(self, program: ExecutionProgram) -> None:
        self.program = program
        self.graph = program.graph
        # ExecutionError is pre-bound so the emitted shape checks raise
        # the same taxonomy type (and message) as the reference backend.
        self.namespace: dict = {"ExecutionError": ExecutionError}
        self._kernel_names: dict[int, str] = {}
        self._attrs_names: dict[int, str] = {}
        self._locals: dict[str, str] = {}
        self._externals: set[str] = set()
        self._external_loads: list[str] = []
        # Fused elementwise chains from the lowering analysis: step index
        # -> chain id, plus the head step of each chain.  Interiors are
        # never bound to the values dict and never nulled at drops (their
        # "local" IS the chain's live register).
        self._chain_of: dict[int, int] = {}
        self._chain_heads: set[int] = set()
        for ci, chain in enumerate(program.fused_chains):
            self._chain_heads.add(chain[0])
            for j in chain:
                self._chain_of[j] = ci
        self._chain_interiors = program.fused_interiors
        # Per-body chain state (reset by _emit_body): the register local,
        # whether the chain owns the register's buffer (fresh compute vs.
        # a view of an external - only owned buffers may be written in
        # place), and the register's current static shape.
        self._chain_reg: dict[int, str] = {}
        self._chain_owned: dict[int, bool] = {}
        self._chain_shape: dict[int, tuple] = {}

    # -- bindings ----------------------------------------------------------

    def _attrs(self, attrs: dict) -> str:
        """One module global per distinct attrs dict (shared between the
        plain and accounted variants, like kernels)."""
        key = id(attrs)
        name = self._attrs_names.get(key)
        if name is None:
            name = f"_a{len(self._attrs_names)}"
            self._attrs_names[key] = name
            self.namespace[name] = attrs
        return name

    def _kernel(self, step) -> str:
        """One module global per distinct kernel callable."""
        key = id(step.kernel)
        name = self._kernel_names.get(key)
        if name is None:
            base = "_k_" + re.sub(r"\W", "_", step.op_type)
            name = base
            suffix = 2
            while name in self.namespace:
                name = f"{base}_{suffix}"
                suffix += 1
            self.namespace[name] = step.kernel
            self._kernel_names[key] = name
        return name

    def _value(self, name: str) -> str:
        """The local identifier for a value, loading externals (graph
        inputs, parameters, interior constants) from the request dict
        exactly once at the top of the function."""
        found = self._locals.get(name)
        if found is None:
            found = self._locals[name] = f"v{len(self._locals)}"
            self._externals.add(name)
            self._external_loads.append(
                f"    {found} = values[{name!r}]")
        return found

    def _define(self, name: str) -> str:
        """The local identifier a step output is bound to."""
        found = self._locals.get(name)
        if found is None:
            found = self._locals[name] = f"v{len(self._locals)}"
        return found

    # -- rendering ---------------------------------------------------------

    @staticmethod
    def _render_view(expr: str, chain) -> str:
        """Inline a pre-resolved view chain as direct ndarray calls.

        Symbolic chains render their batch-axis placeholders against
        ``_n``, the per-request extent local emitted at the top of the
        function body - the runtime spelling of what a concrete variant
        embeds as a shape literal.
        """
        symbolic = isinstance(chain, SymViewChain)
        for step in chain.steps:
            if step.kind == "reshape":
                if symbolic and -1 in step.arg:
                    dims = ", ".join(
                        "_n" if d == -1 else str(d) for d in step.arg)
                    if len(step.arg) == 1:
                        dims += ","
                    expr = f"{expr}.reshape(({dims}))"
                else:
                    expr = f"{expr}.reshape({step.arg!r})"
            elif step.kind == "transpose":
                expr = f"{expr}.transpose({step.arg!r})"
            else:  # slice: constant subscript, no per-run slice building
                index = ", ".join(
                    f"{lo}:{'_n' if hi == OPEN_STOP else hi}:{st}"
                    for lo, hi, st in step.arg)
                expr = f"{expr}[{index}]"
        return expr

    def _emit_check(self, lines, out: str, step, shape) -> None:
        """The reference backend's shape check, verbatim semantics.

        Symbolic output specs pin rank and trailing extents only (the
        leading extent is per-request); the condition and the error text
        match the reference backend's symbolic branch exactly -
        ``repr(SYM)`` is ``"?"``, so both spell the spec ``(?, ...)``.
        """
        message = (f"kernel {step.op_type} ({step.node_id}) produced "
                   f"shape %r, spec says {shape!r}")
        if shape and isinstance(shape[0], SymDim):
            tail = tuple(shape[1:])
            lines.append(f"    if len({out}.shape) != {len(shape)} or "
                         f"{out}.shape[1:] != {tail!r}:")
        else:
            lines.append(f"    if {out}.shape != {shape!r}:")
        lines.append(f"        raise ExecutionError({message!r}"
                     f" % ({out}.shape,))")

    def _ufunc(self, name: str, fn) -> str:
        """One module global per numpy callable used by chain emission."""
        gname = f"_np_{name}"
        self.namespace[gname] = fn
        return gname

    def _args(self, step) -> tuple[list[str], dict]:
        """Argument expressions (views rendered inline) + the view map."""
        # Views come from the Step's lowering-time capture, never the
        # live graph: the program must stay faithful to the state it was
        # lowered from even if the graph mutates afterwards (the numpy
        # backend's appliers were compiled from the same capture).
        views = dict(step.views)
        args = []
        for pos, arg_name in enumerate(step.arg_names):
            expr = self._value(arg_name)
            view = views.get(pos)
            if view is not None:
                expr = self._render_view(expr, view)
            args.append(expr)
        return args, views

    def _emit_epilogue(self, lines: list[str], step,
                       accounted: bool, slot_sizes) -> None:
        """Pool accounting + value drops after a step's statement(s)."""
        if accounted:
            for slot in step.alloc_slots:
                lines.append(f"    allocate({slot_sizes[slot]}); "
                             f"active[{slot}] = 1")
            for slot in step.release_slots:
                lines.append(f"    release({slot_sizes[slot]}); "
                             f"active[{slot}] = 0")
        for dead in step.drops:
            if dead in self._chain_interiors:
                # A fused interior's "local" is the chain's live register
                # (and it was never written to the values dict): nulling
                # it here would kill the value the next statement reads.
                continue
            local = self._locals.get(dead)
            if local is not None:
                # Free the backing ndarray as soon as the value dies,
                # bounding process memory by the live set (the reference
                # backend's values.pop).
                lines.append(f"    {local} = None")
            if local is None or dead in self._externals:
                # Only externals (and never-referenced values) live in
                # the request dict; interior values are locals only.
                lines.append(f"    values.pop({dead!r}, None)")

    def _emit_step(self, lines: list[str], index: int, step,
                   accounted: bool, slot_sizes) -> None:
        if index in self._chain_of:
            self._emit_chain_step(lines, index, step, accounted, slot_sizes)
            return
        args, _ = self._args(step)
        call = (f"{self._kernel(step)}([{', '.join(args)}], "
                f"{self._attrs(step.attrs)})")
        lines.append("    # " + _comment_text(
            f"{step.node_id}: {step.op_type}({', '.join(step.arg_names)})"))
        if len(step.out_names) == 1:
            out = self._define(step.out_names[0])
            lines.append(f"    {out} = {call}")
            lines.append(f"    if type({out}) in (tuple, list):")
            lines.append(f"        {out} = {out}[0]")
            self._emit_check(lines, out, step, step.out_shapes[0])
        else:
            lines.append(f"    _r = {call}")
            for pos, (out_name, shape) in enumerate(
                    zip(step.out_names, step.out_shapes)):
                out = self._define(out_name)
                lines.append(f"    {out} = _r[{pos}]")
                self._emit_check(lines, out, step, shape)
            lines.append("    _r = None")
        self._emit_epilogue(lines, step, accounted, slot_sizes)

    # -- fused elementwise chains ------------------------------------------

    @staticmethod
    def _fresh_owned(step) -> bool:
        """Does a fresh kernel call for ``step`` yield a buffer the chain
        may write in place?  View kernels return aliases; the elided
        layout_convert may pass its input through; a scale/shift-less
        batchnorm returns its input."""
        op = step.op_type
        if op in ("reshape", "transpose"):
            return False
        if op == "layout_convert":
            return step.kernel is not layout_convert_elided
        if op == "batchnorm":
            return len(step.arg_names) > 1
        return True

    def _emit_chain_step(self, lines: list[str], index: int, step,
                         accounted: bool, slot_sizes) -> None:
        """Emit one member of a fused elementwise chain.

        The whole chain lives in ONE register local: the head computes
        into it, every later member transforms it - with an in-place
        ufunc (``out=register``) when the buffer is chain-owned, the
        shape is preserved, and the func has a bitwise-identical in-place
        recipe; with a re-view for reshape/transpose members; and with
        the ordinary reference-kernel call otherwise (still fused - the
        interior is never written to the values dict, never slotted,
        never dict-dropped).  Ownership tracking keeps in-place writes
        off buffers that alias graph inputs or parameters.
        """
        chain_id = self._chain_of[index]
        is_head = index in self._chain_heads
        op = step.op_type
        out_name = step.out_names[0]
        out_shape = tuple(step.out_shapes[0])
        args, views = self._args(step)
        lines.append("    # " + _comment_text(
            f"{step.node_id}: {step.op_type}({', '.join(step.arg_names)})"
            + (" [chain head]" if is_head else " [fused]")))

        def fresh_call(reg: str) -> bool:
            call = (f"{self._kernel(step)}([{', '.join(args)}], "
                    f"{self._attrs(step.attrs)})")
            lines.append(f"    {reg} = {call}")
            lines.append(f"    if type({reg}) in (tuple, list):")
            lines.append(f"        {reg} = {reg}[0]")
            return self._fresh_owned(step)

        if is_head:
            reg = self._define(out_name)
            if op == "reshape" and 0 not in views:
                lines.append(f"    {reg} = {args[0]}.reshape("
                             f"{tuple(step.attrs['shape'])!r})")
                owned = False
            elif op == "transpose" and 0 not in views:
                lines.append(f"    {reg} = {args[0]}.transpose("
                             f"{tuple(step.attrs['perm'])!r})")
                owned = False
            else:
                owned = fresh_call(reg)
            self._emit_check(lines, reg, step, out_shape)
        else:
            reg = self._chain_reg[chain_id]
            owned = self._chain_owned[chain_id]
            cur_shape = self._chain_shape[chain_id]
            prev_out = self.program.steps[index - 1].out_names[0]
            reg_pos = step.arg_names.index(prev_out)
            reg_viewed = reg_pos in views
            inplace_ok = owned and not reg_viewed and out_shape == cur_shape
            func = step.attrs.get("func")
            emitted = True
            if op == "reshape" and not reg_viewed:
                lines.append(f"    {reg} = {reg}.reshape("
                             f"{tuple(step.attrs['shape'])!r})")
                # The register may now be a strided view (reshape of a
                # transposed buffer is sometimes view-compatible).  An
                # in-place write through it would leave the chain output
                # with different strides than the numpy path's fresh
                # contiguous kernel output, and downstream reductions /
                # BLAS are only bitwise-stable on identical layouts - so
                # later members must fall back to a fresh kernel call.
                owned = False
            elif op == "transpose" and not reg_viewed:
                lines.append(f"    {reg} = {reg}.transpose("
                             f"{tuple(step.attrs['perm'])!r})")
                owned = False  # register is a view now - see above
            elif op == "layout_convert" and not reg_viewed:
                # Pass through when already contiguous, compact copy
                # otherwise - exactly the elided kernel.  Ownership is
                # unchanged: a pass-through keeps whatever alias the
                # register held.
                ac = self._ufunc("ascontiguousarray", np.ascontiguousarray)
                lines.append(f"    {reg} = {ac}({reg})")
            elif op == "unary" and inplace_ok and func in _INPLACE_UNARY:
                if func == "relu":
                    g = self._ufunc("maximum", np.maximum)
                    lines.append(f"    {g}({reg}, 0, out={reg})")
                elif func == "relu6":
                    g = self._ufunc("clip", np.clip)
                    lines.append(f"    {g}({reg}, 0, 6, out={reg})")
                elif func == "sqrt":
                    ga = self._ufunc("abs", np.abs)
                    gs = self._ufunc("sqrt", np.sqrt)
                    lines.append(f"    {ga}({reg}, out={reg})")
                    lines.append(f"    {gs}({reg}, out={reg})")
                else:  # tanh / exp / neg / abs: one ufunc, one pass
                    fn = {"tanh": np.tanh, "exp": np.exp,
                          "neg": np.negative, "abs": np.abs}[func]
                    g = self._ufunc(func, fn)
                    lines.append(f"    {g}({reg}, out={reg})")
            elif op == "binary" and inplace_ok and func in _BINARY_IMPL:
                g = self._ufunc(func, _BINARY_IMPL[func])
                other = args[1 - reg_pos]
                if reg_pos == 0:
                    lines.append(f"    {g}({reg}, {other}, out={reg})")
                else:
                    lines.append(f"    {g}({other}, {reg}, out={reg})")
            elif op == "batchnorm" and inplace_ok:
                bshape = [1] * len(cur_shape)
                bshape[1 if len(cur_shape) >= 2 else 0] = -1
                bshape = tuple(bshape)
                mul = self._ufunc("multiply", np.multiply)
                add = self._ufunc("add", np.add)
                if len(args) > 1:
                    lines.append(f"    {mul}({reg}, {args[1]}.reshape("
                                 f"{bshape!r}), out={reg})")
                if len(args) > 2:
                    lines.append(f"    {add}({reg}, {args[2]}.reshape("
                                 f"{bshape!r}), out={reg})")
                # len(args) == 1 is the identity batchnorm: no statement
            else:
                emitted = False
            if not emitted:
                owned = fresh_call(reg)
            self._emit_check(lines, reg, step, out_shape)

        self._locals[out_name] = reg
        self._chain_reg[chain_id] = reg
        self._chain_owned[chain_id] = owned
        self._chain_shape[chain_id] = out_shape
        self._emit_epilogue(lines, step, accounted, slot_sizes)

    def _emit_body(self, accounted: bool) -> list[str]:
        """The fused step loop, shared by both runner variants."""
        self._locals = {}
        self._externals = set()
        self._external_loads = []
        self._chain_reg = {}
        self._chain_owned = {}
        self._chain_shape = {}
        program = self.program
        slot_sizes = program.slot_plan.slot_sizes
        lines: list[str] = []
        if program.symbolic_extent is not None:
            # The symbolic extent is a *runtime local*, read off the
            # request once; everything shape-like downstream (batch-axis
            # slices, reshape targets) refers to it instead of a literal.
            lines.append(f"    # symbolic leading extent (bound "
                         f"{program.symbolic_extent}), decided per request")
            lines.append(
                f"    _n = values[{program.input_names[0]!r}].shape[0]")
        if accounted:
            for slot in program.slot_plan.input_slots:
                lines.append(f"    allocate({slot_sizes[slot]}); "
                             f"active[{slot}] = 1")
        for index, step in enumerate(program.steps):
            self._emit_step(lines, index, step, accounted, slot_sizes)
        returns = ", ".join(
            f"{name!r}: {self._locals[name]}"
            if name in self._locals else f"{name!r}: values[{name!r}]"
            for name in program.output_names)
        lines.append(f"    return {{{returns}}}")
        return self._external_loads + lines

    def emit(self) -> str:
        program = self.program
        plain = ["def run_plain(values):"] + self._emit_body(False)
        accounted = ["def run_accounted(values, allocate, release, "
                     "active):"] + self._emit_body(True)
        # Comments, not a module docstring: free-form graph names could
        # otherwise terminate the string literal.
        header = [
            "# Generated by repro.runtime.codegen_backend for "
            + _comment_text(repr(self.graph.name)) + ".",
            f"# {program.num_steps} steps fused into one function per "
            f"variant; {len(self._kernel_names)} distinct kernels "
            "bound as module globals.",
        ]
        if program.fused_chains:
            header.append(
                f"# {len(program.fused_chains)} elementwise chains "
                f"collapsed into register expressions "
                f"({program.fused_step_count} interior steps never "
                "materialized).")
        if program.symbolic_extent is not None:
            header.append(
                f"# Symbolic bucket variant (extent bound "
                f"{program.symbolic_extent}): one compiled module serves "
                "every leading extent up to the bound, at that exact "
                "extent.")
        elif program.batch_factor > 1:
            header.append(
                f"# Batch-{program.batch_factor} stacked variant: one "
                "kernel call per step serves the whole micro-batch.")
        header.append("")
        return "\n".join(header + plain + ["", ""] + accounted) + "\n"


def emit_program_source(program: ExecutionProgram) -> tuple[str, dict]:
    """Emit the Python module source for ``program``.

    Returns ``(source, namespace)``: the namespace carries the objects
    the source refers to by name (kernel callables, per-step attr
    dicts).  Pure emission - nothing is compiled or executed.
    """
    emitter = _SourceEmitter(program)
    # Emitting binds kernels/attrs into the namespace as a side effect,
    # so emit first and snapshot after.
    source = emitter.emit()
    return source, emitter.namespace


def compile_program(program: ExecutionProgram) -> CompiledProgramModule:
    """Compile ``program``'s generated module (cached on the program).

    The cache rides :attr:`ExecutionProgram.backend_cache`, and the
    program itself is memoized per graph generation by :func:`lower` -
    so a graph mutation invalidates the runner exactly when it
    invalidates the lowering.
    """
    found = program.backend_cache.get(_MODULE_CACHE_KEY)
    if found is None:
        global _EMISSIONS
        _EMISSIONS += 1
        try:
            source, namespace = emit_program_source(program)
            code = compile(source, f"<repro-codegen:{program.graph.name}>",
                           "exec")
            exec(code, namespace)
        except BackendCompilationError:
            raise
        except Exception as err:
            # Emission/compile bugs surface as the taxonomy's retryable
            # compile failure, which is what licenses the session to
            # degrade to the reference backend instead of failing the
            # request.  Nothing is cached: a later call retries.
            raise BackendCompilationError(
                f"codegen failed to compile {program.graph.name!r}: {err}",
                model=program.graph.name, backend=CodegenBackend.name,
            ) from err
        found = program.backend_cache[_MODULE_CACHE_KEY] = \
            CompiledProgramModule(
                source=source,
                run_plain=namespace["run_plain"],
                run_accounted=namespace["run_accounted"],
                namespace=namespace,
                fused_chains=len(program.fused_chains),
                fused_steps=program.fused_step_count,
            )
    return found


def program_source(program: ExecutionProgram) -> str:
    """The generated Python source serving ``program`` (for inspection,
    like :func:`repro.runtime.codegen.generate_kernel` for pseudo-OpenCL)."""
    return compile_program(program).source


@register_backend
class CodegenBackend(NumPyBackend):
    """Execution backend that runs the generated fused module.

    Inherits the entire pool/steady-state/micro-batching discipline from
    :class:`NumPyBackend`; only the per-program executors differ - they
    are the compiled ``run_plain`` / ``run_accounted`` functions of the
    generated module instead of closures over the step list.
    """

    name = "codegen"

    def fused_steps(self, program: ExecutionProgram) -> int:
        """The generated module executes each fused chain in one register
        expression - every chain interior is a step it never dispatches."""
        return program.fused_step_count

    def _compile_runners(self, program: ExecutionProgram):
        module = compile_program(program)
        return module.run_plain, module.run_accounted
