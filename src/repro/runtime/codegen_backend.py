"""Fused codegen execution backend: ExecutionPrograms compiled to Python.

The :class:`~repro.runtime.program.NumPyBackend` already pays per-step
dispatch only once per step - but it still pays it on every request: one
closure call, one argument-list comprehension, one dict read per input,
one dict write per output, one drop loop.  On dispatch-bound models
(tiny tensors, many steps) that residue is a measurable fraction of the
request wall time.

:class:`CodegenBackend` removes it by *compiling the whole step loop to
Python source* once per program:

* every step of the program becomes inline statements in a single
  generated function, so chains of elementwise/view steps are fused into
  one compiled unit with no per-step closure dispatch;
* interior values live in function locals (``LOAD_FAST``) instead of the
  values dict; inputs and parameters are read from the request dict
  exactly once;
* pre-resolved view chains are inlined as direct ndarray method calls
  (``.reshape(...)``, ``.transpose(...)``, constant slice subscripts)
  instead of applier-closure calls;
* kernels and per-step attrs are bound as module globals of the
  generated module; slot indices and byte sizes appear as integer
  literals, so the pool-accounted variant interleaves ``allocate(4096)``
  /-``release`` calls with the fused body;
* shape checks and error messages match the reference backend
  statement-for-statement, so a misbehaving kernel fails identically on
  both backends.

The module source is emitted by :func:`emit_program_source`, compiled
once by :func:`compile_program`, and cached on
:attr:`~repro.runtime.program.ExecutionProgram.backend_cache` - the
program itself is memoized per graph generation by
:func:`~repro.runtime.program.lower`, so the compiled runner inherits
exactly the lowering's lifetime and invalidation, mirroring the
``lower()`` memoization discipline.

Everything *around* the fused body - steady-state pool collapse, warm-up
slot accounting, failure cleanup, micro-batch coalescing, stacked
batch-N execution - is inherited from :class:`NumPyBackend` through the
:meth:`_compile_runners` hook, so there is still exactly one
pool/batching discipline in the codebase.  That includes dynamic
batching for free: a batch-N variant built by
:func:`repro.runtime.batching.rebatch` is an ordinary
``ExecutionProgram``, so ``run_stacked`` transparently compiles (and
caches) batch-N *source* for it through the same hook.

Select it anywhere a backend name is accepted::

    repro.compile("Pythia", repro.CompileOptions(backend="codegen"))
    verify_equivalence(graph, optimized, backend="codegen")

This is the template for future backends (multi-process, true OpenCL):
subclass, override :meth:`_compile_runners`, ``@register_backend``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from ..api.errors import BackendCompilationError, ExecutionError
from .program import ExecutionProgram, NumPyBackend, register_backend

_MODULE_CACHE_KEY = "codegen.module"

_UNPRINTABLE = re.compile(r"[^ -~]")


def _comment_text(text: str) -> str:
    """Comment-safe rendering of free-form names: anything outside
    printable ASCII (a newline would terminate the comment and corrupt
    the module) becomes ``?``.  Only cosmetic text goes through here -
    names that matter semantically are embedded via ``repr``."""
    return _UNPRINTABLE.sub("?", text)


@dataclass(frozen=True)
class CompiledProgramModule:
    """One program compiled to a Python module.

    ``source`` is the generated text (inspectable, like the pseudo-OpenCL
    kernels of :mod:`repro.runtime.codegen`); ``run_plain`` and
    ``run_accounted`` are the compiled runner pair the backend executes;
    ``namespace`` is the module globals the source was executed in
    (kernels and attrs bound by name).
    """

    source: str
    run_plain: Callable
    run_accounted: Callable
    namespace: dict


class _SourceEmitter:
    """Builds the module source for one :class:`ExecutionProgram`."""

    def __init__(self, program: ExecutionProgram) -> None:
        self.program = program
        self.graph = program.graph
        # ExecutionError is pre-bound so the emitted shape checks raise
        # the same taxonomy type (and message) as the reference backend.
        self.namespace: dict = {"ExecutionError": ExecutionError}
        self._kernel_names: dict[int, str] = {}
        self._attrs_names: dict[int, str] = {}
        self._locals: dict[str, str] = {}
        self._externals: set[str] = set()
        self._external_loads: list[str] = []

    # -- bindings ----------------------------------------------------------

    def _attrs(self, attrs: dict) -> str:
        """One module global per distinct attrs dict (shared between the
        plain and accounted variants, like kernels)."""
        key = id(attrs)
        name = self._attrs_names.get(key)
        if name is None:
            name = f"_a{len(self._attrs_names)}"
            self._attrs_names[key] = name
            self.namespace[name] = attrs
        return name

    def _kernel(self, step) -> str:
        """One module global per distinct kernel callable."""
        key = id(step.kernel)
        name = self._kernel_names.get(key)
        if name is None:
            base = "_k_" + re.sub(r"\W", "_", step.op_type)
            name = base
            suffix = 2
            while name in self.namespace:
                name = f"{base}_{suffix}"
                suffix += 1
            self.namespace[name] = step.kernel
            self._kernel_names[key] = name
        return name

    def _value(self, name: str) -> str:
        """The local identifier for a value, loading externals (graph
        inputs, parameters, interior constants) from the request dict
        exactly once at the top of the function."""
        found = self._locals.get(name)
        if found is None:
            found = self._locals[name] = f"v{len(self._locals)}"
            self._externals.add(name)
            self._external_loads.append(
                f"    {found} = values[{name!r}]")
        return found

    def _define(self, name: str) -> str:
        """The local identifier a step output is bound to."""
        found = self._locals.get(name)
        if found is None:
            found = self._locals[name] = f"v{len(self._locals)}"
        return found

    # -- rendering ---------------------------------------------------------

    @staticmethod
    def _render_view(expr: str, chain) -> str:
        """Inline a pre-resolved view chain as direct ndarray calls."""
        for step in chain.steps:
            if step.kind == "reshape":
                expr = f"{expr}.reshape({step.arg!r})"
            elif step.kind == "transpose":
                expr = f"{expr}.transpose({step.arg!r})"
            else:  # slice: constant subscript, no per-run slice building
                index = ", ".join(
                    f"{lo}:{hi}:{st}" for lo, hi, st in step.arg)
                expr = f"{expr}[{index}]"
        return expr

    def _emit_check(self, lines, out: str, step, shape) -> None:
        """The reference backend's shape check, verbatim semantics."""
        message = (f"kernel {step.op_type} ({step.node_id}) produced "
                   f"shape %r, spec says {shape!r}")
        lines.append(f"    if {out}.shape != {shape!r}:")
        lines.append(f"        raise ExecutionError({message!r}"
                     f" % ({out}.shape,))")

    def _emit_step(self, lines: list[str], step,
                   accounted: bool, slot_sizes) -> None:
        # Views come from the Step's lowering-time capture, never the
        # live graph: the program must stay faithful to the state it was
        # lowered from even if the graph mutates afterwards (the numpy
        # backend's appliers were compiled from the same capture).
        views = dict(step.views)
        args = []
        for pos, arg_name in enumerate(step.arg_names):
            expr = self._value(arg_name)
            view = views.get(pos)
            if view is not None:
                expr = self._render_view(expr, view)
            args.append(expr)
        call = (f"{self._kernel(step)}([{', '.join(args)}], "
                f"{self._attrs(step.attrs)})")
        lines.append("    # " + _comment_text(
            f"{step.node_id}: {step.op_type}({', '.join(step.arg_names)})"))
        if len(step.out_names) == 1:
            out = self._define(step.out_names[0])
            lines.append(f"    {out} = {call}")
            lines.append(f"    if type({out}) in (tuple, list):")
            lines.append(f"        {out} = {out}[0]")
            self._emit_check(lines, out, step, step.out_shapes[0])
        else:
            lines.append(f"    _r = {call}")
            for index, (out_name, shape) in enumerate(
                    zip(step.out_names, step.out_shapes)):
                out = self._define(out_name)
                lines.append(f"    {out} = _r[{index}]")
                self._emit_check(lines, out, step, shape)
            lines.append("    _r = None")
        if accounted:
            for slot in step.alloc_slots:
                lines.append(f"    allocate({slot_sizes[slot]}); "
                             f"active[{slot}] = 1")
            for slot in step.release_slots:
                lines.append(f"    release({slot_sizes[slot]}); "
                             f"active[{slot}] = 0")
        for dead in step.drops:
            local = self._locals.get(dead)
            if local is not None:
                # Free the backing ndarray as soon as the value dies,
                # bounding process memory by the live set (the reference
                # backend's values.pop).
                lines.append(f"    {local} = None")
            if local is None or dead in self._externals:
                # Only externals (and never-referenced values) live in
                # the request dict; interior values are locals only.
                lines.append(f"    values.pop({dead!r}, None)")

    def _emit_body(self, accounted: bool) -> list[str]:
        """The fused step loop, shared by both runner variants."""
        self._locals = {}
        self._externals = set()
        self._external_loads = []
        program = self.program
        slot_sizes = program.slot_plan.slot_sizes
        lines: list[str] = []
        if accounted:
            for slot in program.slot_plan.input_slots:
                lines.append(f"    allocate({slot_sizes[slot]}); "
                             f"active[{slot}] = 1")
        for step in program.steps:
            self._emit_step(lines, step, accounted, slot_sizes)
        returns = ", ".join(
            f"{name!r}: {self._locals[name]}"
            if name in self._locals else f"{name!r}: values[{name!r}]"
            for name in program.output_names)
        lines.append(f"    return {{{returns}}}")
        return self._external_loads + lines

    def emit(self) -> str:
        program = self.program
        plain = ["def run_plain(values):"] + self._emit_body(False)
        accounted = ["def run_accounted(values, allocate, release, "
                     "active):"] + self._emit_body(True)
        # Comments, not a module docstring: free-form graph names could
        # otherwise terminate the string literal.
        header = [
            "# Generated by repro.runtime.codegen_backend for "
            + _comment_text(repr(self.graph.name)) + ".",
            f"# {program.num_steps} steps fused into one function per "
            f"variant; {len(self._kernel_names)} distinct kernels "
            "bound as module globals.",
        ]
        if program.batch_factor > 1:
            header.append(
                f"# Batch-{program.batch_factor} stacked variant: one "
                "kernel call per step serves the whole micro-batch.")
        header.append("")
        return "\n".join(header + plain + ["", ""] + accounted) + "\n"


def emit_program_source(program: ExecutionProgram) -> tuple[str, dict]:
    """Emit the Python module source for ``program``.

    Returns ``(source, namespace)``: the namespace carries the objects
    the source refers to by name (kernel callables, per-step attr
    dicts).  Pure emission - nothing is compiled or executed.
    """
    emitter = _SourceEmitter(program)
    # Emitting binds kernels/attrs into the namespace as a side effect,
    # so emit first and snapshot after.
    source = emitter.emit()
    return source, emitter.namespace


def compile_program(program: ExecutionProgram) -> CompiledProgramModule:
    """Compile ``program``'s generated module (cached on the program).

    The cache rides :attr:`ExecutionProgram.backend_cache`, and the
    program itself is memoized per graph generation by :func:`lower` -
    so a graph mutation invalidates the runner exactly when it
    invalidates the lowering.
    """
    found = program.backend_cache.get(_MODULE_CACHE_KEY)
    if found is None:
        try:
            source, namespace = emit_program_source(program)
            code = compile(source, f"<repro-codegen:{program.graph.name}>",
                           "exec")
            exec(code, namespace)
        except BackendCompilationError:
            raise
        except Exception as err:
            # Emission/compile bugs surface as the taxonomy's retryable
            # compile failure, which is what licenses the session to
            # degrade to the reference backend instead of failing the
            # request.  Nothing is cached: a later call retries.
            raise BackendCompilationError(
                f"codegen failed to compile {program.graph.name!r}: {err}",
                model=program.graph.name, backend=CodegenBackend.name,
            ) from err
        found = program.backend_cache[_MODULE_CACHE_KEY] = \
            CompiledProgramModule(
                source=source,
                run_plain=namespace["run_plain"],
                run_accounted=namespace["run_accounted"],
                namespace=namespace,
            )
    return found


def program_source(program: ExecutionProgram) -> str:
    """The generated Python source serving ``program`` (for inspection,
    like :func:`repro.runtime.codegen.generate_kernel` for pseudo-OpenCL)."""
    return compile_program(program).source


@register_backend
class CodegenBackend(NumPyBackend):
    """Execution backend that runs the generated fused module.

    Inherits the entire pool/steady-state/micro-batching discipline from
    :class:`NumPyBackend`; only the per-program executors differ - they
    are the compiled ``run_plain`` / ``run_accounted`` functions of the
    generated module instead of closures over the step list.
    """

    name = "codegen"

    def _compile_runners(self, program: ExecutionProgram):
        module = compile_program(program)
        return module.run_plain, module.run_accounted
