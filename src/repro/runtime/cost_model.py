"""Analytical latency / memory-traffic model.

This is the hardware substitute for the paper's phone measurements.  Each
fused kernel (fusion group) is costed as::

    kernel_us = max(compute_us, memory_us) + index_us + launch_us

* ``compute_us``: MACs at the device's peak throughput scaled by a
  per-operator efficiency (group/depthwise convolutions use hardware
  worse than dense ones), plus elementwise FLOPs.
* ``memory_us``: bytes crossing the kernel boundary over the bandwidth of
  whichever memory class each tensor lives in (global buffer vs texture),
  amplified when the consumer's reduction dimension is not stored
  unit-stride (bad locality = wasted cache lines).  Intermediate values
  inside a fused group never touch memory: that is why fusion and
  elimination pay off.
* ``index_us``: residual index arithmetic from eliminated layout
  transforms (ViewChains); strength reduction lowers the per-element cost
  units, reproducing the Index Comprehension contribution of Section 4.3.
* ``launch_us``: fixed dispatch overhead per kernel - fewer operators
  (Table 7) means fewer launches.

The model also produces memory-access and cache-miss estimates (Figs. 7
and 9) and liveness-based peak memory (Section 4.6); the estimates are
cross-validated against the exact cache simulator in ``repro.memory`` on
small graphs by the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.fusion import groups_of
from ..core.layout_selection import LayoutPlan, consumer_preferences
from ..indexexpr.index_map import IndexMap
from ..ir.graph import Graph, Node
from ..ir.layout import Layout, MemoryKind
from ..ir.ops import Mapping
from .device import DeviceSpec

EXPLICIT_TRANSFORMS = ("reshape", "transpose", "depth_to_space", "space_to_depth")

# FLOPs per element for operators whose cost is not MAC-based.
ELEMENT_OPS = {
    "unary": 4.0, "binary": 1.0, "softmax": 8.0, "layernorm": 8.0,
    "rmsnorm": 6.0, "instancenorm": 8.0, "groupnorm": 8.0, "batchnorm": 2.0,
    "reduce_mean": 1.0, "reduce_sum": 1.0, "reduce_max": 1.0,
    "global_avgpool": 1.0, "upsample2d": 0.5, "gather": 0.5, "concat": 0.5,
    "pad": 0.5, "embedding": 0.5, "slice": 0.5, "split": 0.5,
    "reshape": 0.0, "transpose": 0.0, "layout_convert": 0.0,
    "depth_to_space": 0.0, "space_to_depth": 0.0,
    "maxpool2d": 1.0, "avgpool2d": 1.0,
}


@dataclass(frozen=True)
class CostModelConfig:
    """Tunable knobs (framework-independent unless overridden)."""

    conv_efficiency: float = 0.17
    matmul_efficiency: float = 0.10
    depthwise_efficiency: float = 0.05
    groupconv_efficiency: float = 0.05
    default_layout_eff: float = 0.55
    """Compute-efficiency multiplier when tensors use generic framework
    layouts instead of reduction-dimension-selected ones: unselected
    layouts break SIMD loads and coalescing inside the MAC loops
    (Section 3.2.2; this is the 'Layout Selecting' gain of Fig. 8)."""
    relayout_bytes_factor: float = 1.0
    """Traffic multiplier for relayout work (MNN stages image<->buffer
    conversions through fp32 and round-trips the texture path: factor 4)."""
    fused_mover_discount: float = 0.75
    """Data-movement ops fused into a compute kernel still shuffle their
    data, at this fraction of the standalone cost (one side is on-chip)."""
    small_channel_ref: int = 64
    """Convs narrower than this many output channels underutilize the GPU
    (Yolo-style early layers); efficiency scales down proportionally."""
    depthwise_area_scaling: bool = False
    """Efficiency of depthwise convs additionally degrades with kernel
    area (TVM's missing depthwise schedules; Section 4.2's ConvNext)."""
    untuned_factor: float = 0.7
    """Efficiency multiplier when the framework has no auto-tuner."""
    tuned: bool = True
    extra_efficiency: float = 1.0
    """Multiplier from kernel-config auto-tuning (the GA tuner's output)."""
    suboptimal_write_factor: float = 1.25
    """Write amplification when the selected output layout is not the
    producer's natural order (Section 3.2.2: cheaper than bad reads)."""
    texture_cache_miss_factor: float = 0.6
    """Dedicated texture cache absorbs a fraction of would-be misses."""
    simplify_index: bool = True
    """Strength-reduce eliminated-transform index expressions (Index
    Comprehension); False reproduces the ablation of Section 4.3."""
    efficiency_overrides: dict = field(default_factory=dict)
    """op_type (or 'group_conv') -> efficiency; lets baselines model gaps
    such as TVM's missing GroupConvolution layout (Section 4.2)."""


@dataclass
class KernelCost:
    group: int
    op_types: tuple[str, ...]
    macs: int
    compute_us: float
    memory_us: float
    index_us: float
    launch_us: float
    bytes_read: int
    bytes_written: int
    mem_accesses: int
    cache_misses: int
    category: str  # 'compute' | 'explicit' | 'implicit'

    @property
    def total_us(self) -> float:
        return max(self.compute_us, self.memory_us) + self.index_us + self.launch_us


@dataclass
class CostReport:
    device: DeviceSpec
    kernels: list[KernelCost]
    peak_memory_bytes: int
    param_bytes: int
    copy_bytes: int

    @property
    def latency_ms(self) -> float:
        return sum(k.total_us for k in self.kernels) / 1000.0

    @property
    def total_macs(self) -> int:
        return sum(k.macs for k in self.kernels)

    @property
    def gmacs_per_s(self) -> float:
        latency_s = self.latency_ms / 1000.0
        if latency_s == 0:
            return 0.0
        return self.total_macs / 1e9 / latency_s

    @property
    def num_kernels(self) -> int:
        return len(self.kernels)

    @property
    def mem_access_total(self) -> int:
        return sum(k.mem_accesses for k in self.kernels)

    @property
    def cache_miss_total(self) -> int:
        return sum(k.cache_misses for k in self.kernels)

    def breakdown(self) -> dict[str, float]:
        """Latency percentage per category (Table 1's Imp./Exp./Comp.)."""
        total = sum(k.total_us for k in self.kernels) or 1.0
        out = {"implicit": 0.0, "explicit": 0.0, "compute": 0.0}
        for k in self.kernels:
            out[k.category] += k.total_us
        return {key: 100.0 * value / total for key, value in out.items()}


def _op_efficiency(node: Node, graph: Graph, config: CostModelConfig) -> float:
    if node.op_type == "conv2d":
        groups = int(node.attrs.get("groups", 1))
        in_channels = graph.shape(node.inputs[0])[1]
        out_channels = graph.shape(node.outputs[0])[1]
        narrow = min(1.0, out_channels / config.small_channel_ref)
        if groups > 1 and groups == in_channels:  # depthwise
            eff = config.efficiency_overrides.get(
                "depthwise", config.depthwise_efficiency)
            if config.depthwise_area_scaling:
                kh, kw = node.attrs.get("kernel", (3, 3))
                eff *= 9.0 / (kh * kw)
            return eff
        if groups > 1:
            return config.efficiency_overrides.get(
                "group_conv", config.groupconv_efficiency) * narrow
        return config.efficiency_overrides.get(
            "conv2d", config.conv_efficiency) * narrow
    if node.op_type in ("matmul", "dense"):
        return config.efficiency_overrides.get(
            node.op_type, config.matmul_efficiency)
    return config.efficiency_overrides.get(node.op_type, 1.0)


def _kernel_category(members: list[Node]) -> str:
    kinds = {m.op_type for m in members}
    if kinds <= {"layout_convert"}:
        return "implicit"
    if kinds <= set(EXPLICIT_TRANSFORMS):
        return "explicit"
    return "compute"


def estimate(
    graph: Graph,
    device: DeviceSpec,
    plan: LayoutPlan | None = None,
    config: CostModelConfig | None = None,
) -> CostReport:
    """Cost every fusion group of ``graph`` on ``device``.

    The graph must already carry fusion groups (run a fusion policy or
    assign each node its own group).  ``plan`` carries per-tensor layouts;
    without one, row-major buffers are assumed.
    """
    config = config or CostModelConfig()
    plan = plan or LayoutPlan()
    kernels: list[KernelCost] = []
    tune = (1.0 if config.tuned else config.untuned_factor) * config.extra_efficiency

    layout_eff = 1.0 if plan.quality == "selected" else config.default_layout_eff

    tensors = graph.tensors
    producer_of = graph.producer_ids
    consumer_map = graph.consumer_map()
    graph_outputs = set(graph.outputs)
    plan_layouts = plan.layouts
    plan_copies = plan.copies
    line_bytes = device.cache.line_bytes
    strided_penalty = device.strided_penalty
    tex_strided_penalty = device.texture_strided_penalty
    index_ns = device.index_ns_per_unit
    has_texture = device.has_texture
    miss_factor = config.texture_cache_miss_factor

    for group_id, members in groups_of(graph).items():
        member_ids = {m.id for m in members}
        category = _kernel_category(members)
        is_relayout_kernel = all(
            m.opdef.mapping in (Mapping.REORGANIZE, Mapping.EXPAND)
            for m in members)

        macs = 0
        compute_us = 0.0
        index_us = 0.0
        bytes_read = 0
        bytes_written = 0
        accesses = 0
        misses = 0.0
        global_bytes = 0.0
        texture_bytes = 0.0

        for node in members:
            views = node.input_views
            opdef = node.opdef
            in_shapes = [
                views[i].out_shape if i in views else tensors[t].shape
                for i, t in enumerate(node.inputs)
            ]
            out_shapes = [tensors[t].shape for t in node.outputs]
            node_macs = opdef.macs(in_shapes, out_shapes, node.attrs)
            macs += node_macs
            if node_macs:
                eff = _op_efficiency(node, graph, config) * tune * layout_eff
                compute_us += node_macs / (device.peak_gmacs * 1e3 * eff)
            else:
                elems = sum(math.prod(s) for s in out_shapes)
                eops = ELEMENT_OPS.get(node.op_type, 1.0) * elems
                # FLOP rate assumed 2x MAC rate
                compute_us += eops / (device.peak_gmacs * 2e3 * tune)

            # Data-movement ops shuffle their whole output even when fused:
            # fused movers pay a discounted cost (one side stays on-chip).
            if (opdef.mapping in (Mapping.REORGANIZE, Mapping.EXPAND)
                    and not is_relayout_kernel):
                mover_bytes = sum(
                    math.prod(s) for s in out_shapes
                ) * tensors[node.outputs[0]].dtype.size_bytes
                mover_bytes *= config.relayout_bytes_factor
                index_us += (mover_bytes * config.fused_mover_discount
                             / (device.relayout_bw_gbps * 1e3))

            # -- reads that cross the group boundary --------------------
            for idx, name in enumerate(node.inputs):
                producer_id = producer_of.get(name)
                if producer_id is not None and producer_id in member_ids:
                    continue  # internal to the fused kernel: stays on chip
                spec = tensors[name]
                view = views.get(idx)
                read_elems = (math.prod(view.out_shape) if view is not None
                              else spec.num_elements)
                base = read_elems * spec.dtype.size_bytes
                if spec.is_param:
                    # weights are relaid out offline: always streamed at
                    # full bandwidth from the constant/texture path
                    texture = has_texture
                    factor = 1.0
                else:
                    layout = plan.layout_for_edge(name, node.id, idx) \
                        if name in plan_layouts else Layout.row_major(spec.rank)
                    texture = layout.memory is MemoryKind.TEXTURE_2D5
                    prefs = consumer_preferences(graph, node, idx)
                    if not prefs or layout.is_unit_stride(prefs[0]):
                        factor = 1.0
                    else:
                        factor = (tex_strided_penalty if texture
                                  else strided_penalty)
                if view is not None:
                    imap = _cached_map(view, config.simplify_index)
                    # A kernel can always fall back to one linearization +
                    # per-dim div/mod, so the per-element index cost is
                    # bounded even for deeply stacked unsimplified chains.
                    unit_cost = min(imap.cost(), 12 * len(imap.in_shape))
                    index_us += (read_elems * unit_cost * index_ns) / 1000.0
                effective = base * factor
                bytes_read += int(effective)
                accesses += read_elems
                miss = effective / line_bytes
                if texture:
                    miss *= miss_factor
                    texture_bytes += effective
                else:
                    global_bytes += effective
                misses += miss

            # -- writes that leave the group ------------------------------
            for out in node.outputs:
                consumed_outside = any(
                    cid not in member_ids
                    for cid, _ in consumer_map.get(out, ()))
                if not (consumed_outside or out in graph_outputs):
                    continue
                spec = tensors[out]
                layout = plan_layouts.get(out, Layout.row_major(spec.rank))
                texture = layout.memory is MemoryKind.TEXTURE_2D5
                factor = 1.0
                if layout.innermost_dim != spec.rank - 1 and \
                        not layout.is_unit_stride(spec.rank - 1):
                    factor = config.suboptimal_write_factor
                copies = 1 + len(plan_copies.get(out, ()))
                effective = spec.size_bytes * factor * copies
                bytes_written += int(effective)
                accesses += spec.num_elements * copies
                miss = effective / line_bytes
                if texture:
                    miss *= miss_factor
                    texture_bytes += effective
                else:
                    global_bytes += effective
                misses += miss

        if is_relayout_kernel:
            # Standalone data-reorganization kernel: two-sided uncoalesced
            # moves sustain only the device's relayout bandwidth, and some
            # frameworks stage them through wider dtypes.
            total = (global_bytes + texture_bytes) * config.relayout_bytes_factor
            memory_us = total / (device.relayout_bw_gbps * 1e3)
            bytes_read = int(bytes_read * config.relayout_bytes_factor)
            bytes_written = int(bytes_written * config.relayout_bytes_factor)
            misses *= config.relayout_bytes_factor
        else:
            memory_us = (global_bytes / (device.global_bw_gbps * 1e3)
                         + texture_bytes / (device.bandwidth_gbps(True) * 1e3))
        kernels.append(KernelCost(
            group=group_id,
            op_types=tuple(m.op_type for m in members),
            macs=macs,
            compute_us=compute_us,
            memory_us=memory_us,
            index_us=index_us,
            launch_us=device.kernel_launch_us,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            mem_accesses=accesses,
            cache_misses=int(misses),
            category=category,
        ))

    param_bytes = sum(s.size_bytes for s in graph.tensors.values() if s.is_param)
    copy_bytes = sum(
        graph.tensors[name].size_bytes * len(copies)
        for name, copies in plan.copies.items()
    )
    peak = peak_activation_bytes(graph, pooled=True) + param_bytes + copy_bytes
    return CostReport(device=device, kernels=kernels, peak_memory_bytes=peak,
                      param_bytes=param_bytes, copy_bytes=copy_bytes)


_MAP_CACHE: dict = {}


def _cached_map(view, simplified: bool = True) -> IndexMap:
    key = (view, simplified)
    found = _MAP_CACHE.get(key)
    if found is None:
        found = IndexMap.from_view_chain(view, simplified=simplified)
        _MAP_CACHE[key] = found
    return found


def peak_activation_bytes(graph: Graph, pooled: bool = True) -> int:
    """Peak concurrent activation memory.

    ``pooled=True`` models a memory pool with liveness reuse (SmartMem,
    TVM, DNNFusion; Section 4.6); ``pooled=False`` models naive per-tensor
    allocation (all intermediates resident), which is what makes large
    models and batch sizes fail on small devices in Figs. 10 and 11.

    Memoized per graph generation: the memory-feasibility check and the
    cost estimate both ask for the same graph.
    """
    cache = graph.analysis_cache()
    key = ("peak_activation_bytes", pooled)
    found = cache.get(key)
    if found is None:
        found = _peak_activation_bytes(graph, pooled)
        cache[key] = found
    return found


def _peak_activation_bytes(graph: Graph, pooled: bool) -> int:
    order = graph.topo_order()
    if not pooled:
        return sum(graph.tensors[t].size_bytes
                   for node in order for t in node.outputs)
    last_use: dict[str, int] = {}
    for step, node in enumerate(order):
        for t in node.inputs:
            last_use[t] = step
    for t in graph.outputs:
        last_use[t] = len(order)
    live = sum(graph.tensors[t].size_bytes for t in graph.inputs)
    peak = live
    for step, node in enumerate(order):
        for t in node.outputs:
            live += graph.tensors[t].size_bytes
        peak = max(peak, live)
        for t in set(node.inputs) | set(node.outputs):
            if last_use.get(t) == step and not graph.tensors[t].is_param \
                    and t not in graph.outputs:
                live -= graph.tensors[t].size_bytes
    return peak
