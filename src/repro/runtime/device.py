"""Device models for the platforms the paper evaluates.

Absolute phone latencies cannot be reproduced without the hardware; these
specs parameterize the analytical cost model with *published* numbers so
the latency shape is faithful:

* Snapdragon 8 Gen 2 / Adreno 740: 2.0 TMACs/s peak, 55 GB/s global
  memory bandwidth, 511 GB/s texture bandwidth (all three straight from
  the paper's roofline analysis, Fig. 12), 16 GB unified memory.
* Snapdragon 835 / Adreno 540 and Dimensity 700 / Mali-G57: scaled specs
  from public datasheets; both are the paper's portability targets
  (Fig. 11) with 6 GB and 4 GB memory.
* Tesla V100: the desktop GPU of Table 9 - no texture path (Section 6:
  desktop implementations "mainly rely on shared memory and cache"),
  FP32, high bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CacheSpec:
    """Parameters of the GPU's last-level/texture cache."""

    size_bytes: int
    line_bytes: int
    associativity: int = 4


@dataclass(frozen=True)
class DeviceSpec:
    """An execution platform for the cost model."""

    name: str
    peak_gmacs: float
    """Peak multiply-accumulate throughput, giga-MACs per second."""
    global_bw_gbps: float
    """1D buffer (global) memory bandwidth, GB/s."""
    texture_bw_gbps: float
    """2.5D texture path bandwidth, GB/s (== global when no texture unit)."""
    has_texture: bool
    memory_bytes: int
    kernel_launch_us: float
    """Fixed dispatch overhead per kernel (fused group)."""
    relayout_bw_gbps: float = 6.0
    """Effective bandwidth of standalone data-reorganization kernels
    (transpose / reshape / layout converts).  Mobile GPUs sustain only a
    small fraction of peak bandwidth on these uncoalesced two-sided moves
    (cf. Romou's mobile-GPU kernel study); this is the single largest
    reason layout transformations dominate Table 1."""
    strided_penalty: float = 4.0
    """Traffic amplification for non-unit-stride buffer access."""
    texture_strided_penalty: float = 2.0
    """Texture accesses off the fast axes still enjoy 2D cache locality."""
    index_ns_per_unit: float = 0.025
    """Nanoseconds per index-arithmetic cost unit per element (div/mod
    heavy index math slows kernels; strength reduction lowers the units)."""
    cache: CacheSpec = CacheSpec(size_bytes=128 * 1024, line_bytes=64)

    def bandwidth_gbps(self, texture: bool) -> float:
        return self.texture_bw_gbps if (texture and self.has_texture) else self.global_bw_gbps


GB = 1024 ** 3

SD8GEN2 = DeviceSpec(
    name="snapdragon-8gen2-adreno740",
    peak_gmacs=2000.0,
    global_bw_gbps=55.0,
    texture_bw_gbps=511.0,
    has_texture=True,
    memory_bytes=16 * GB,
    kernel_launch_us=18.0,
    relayout_bw_gbps=4.0,
)

SD835 = DeviceSpec(
    name="snapdragon-835-adreno540",
    peak_gmacs=350.0,
    global_bw_gbps=25.0,
    texture_bw_gbps=180.0,
    has_texture=True,
    memory_bytes=6 * GB,
    kernel_launch_us=30.0,
    relayout_bw_gbps=2.0,
    cache=CacheSpec(size_bytes=64 * 1024, line_bytes=64),
)

DIMENSITY700 = DeviceSpec(
    name="dimensity-700-mali-g57",
    peak_gmacs=250.0,
    global_bw_gbps=17.0,
    texture_bw_gbps=90.0,
    has_texture=True,
    memory_bytes=4 * GB,
    kernel_launch_us=35.0,
    relayout_bw_gbps=1.5,
    cache=CacheSpec(size_bytes=64 * 1024, line_bytes=64),
)

V100 = DeviceSpec(
    name="tesla-v100",
    peak_gmacs=7800.0,
    global_bw_gbps=900.0,
    texture_bw_gbps=900.0,
    has_texture=False,
    memory_bytes=16 * GB,
    kernel_launch_us=6.0,
    strided_penalty=3.0,
    relayout_bw_gbps=250.0,
    cache=CacheSpec(size_bytes=6 * 1024 * 1024, line_bytes=128),
)

DEVICES = {d.name: d for d in (SD8GEN2, SD835, DIMENSITY700, V100)}


def scaled(device: DeviceSpec, **overrides) -> DeviceSpec:
    """A modified copy of a device (used by ablation benchmarks)."""
    return replace(device, **overrides)
