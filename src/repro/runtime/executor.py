"""Reference executor: runs a graph with NumPy.

Purpose: *semantic verification* of optimizer rewrites.  Input views
attached by layout transformation elimination are applied before each
kernel runs; fusion groups are ignored (grouping does not change values).
The test suite uses ``outputs_equal(original, optimized)`` on every model.

Execution itself goes through the lowered-program path
(:mod:`repro.runtime.program`): :func:`execute` lowers the graph once per
generation and drives the reference NumPy backend - the same path the
serving session and the verifier use.  :func:`run_node` remains as the
single-node reference step (tests and the bench serving baseline use it
to cross-check the lowering).
"""

from __future__ import annotations

import numpy as np

from ..api.errors import ExecutionError
from ..ir.dtype import DType
from ..ir.graph import Graph, Node
from .kernels import get_kernel


def make_inputs(graph: Graph, seed: int = 0) -> dict[str, np.ndarray]:
    """Deterministic random inputs (and parameters) for a graph.

    Covers graph inputs, parameters, and *interior constants*: tensors
    carrying a ``const_value`` that are neither inputs nor parameters but
    have no producer (e.g. an epsilon table spliced in by a rewrite).
    Constants are filled with ``np.full`` and never consume random state,
    so adding one to a graph does not perturb the other values.
    """
    rng = np.random.default_rng(seed)
    values: dict[str, np.ndarray] = {}
    for name, spec in graph.tensors.items():
        if spec.is_param or name in graph.inputs:
            if spec.const_value is not None:
                values[name] = np.full(spec.shape, spec.const_value,
                                       dtype=spec.dtype.numpy_dtype)
            elif spec.dtype in (DType.INT32, DType.INT64):
                values[name] = rng.integers(
                    0, 8, size=spec.shape).astype(spec.dtype.numpy_dtype)
            else:
                values[name] = rng.standard_normal(spec.shape).astype(
                    spec.dtype.numpy_dtype) * 0.1
        elif spec.const_value is not None and graph.producer(name) is None:
            values[name] = np.full(spec.shape, spec.const_value,
                                   dtype=spec.dtype.numpy_dtype)
    return values


def run_node(graph: Graph, node: Node, values: dict[str, np.ndarray]) -> None:
    """Execute one node: apply input views, run the kernel, store outputs."""
    args = []
    for idx, name in enumerate(node.inputs):
        value = values[name]
        view = node.input_views.get(idx)
        if view is not None:
            value = view.apply(value)
        args.append(value)
    result = get_kernel(node.op_type)(args, node.attrs)
    outputs = result if isinstance(result, (tuple, list)) else (result,)
    for out_name, out_value in zip(node.outputs, outputs):
        expected = graph.shape(out_name)
        if tuple(out_value.shape) != expected:
            raise ExecutionError(
                f"kernel {node.op_type} ({node.id}) produced shape "
                f"{out_value.shape}, spec says {expected}"
            )
        values[out_name] = out_value


def execute(graph: Graph, inputs: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Run the graph; returns values of the graph outputs.

    Lowered once per graph generation (memoized on the graph's analysis
    cache) and driven through the reference NumPy backend - the same
    :class:`~repro.runtime.program.ExecutionProgram` path the serving
    session uses.
    """
    from .program import get_backend, lower

    return get_backend("numpy").run(lower(graph), dict(inputs))


def outputs_equal(
    a: Graph,
    b: Graph,
    seed: int = 0,
    rtol: float = 1e-4,
    atol: float = 1e-5,
) -> bool:
    """True when both graphs produce numerically equal outputs.

    Graph ``b`` may use different internal tensor names (rewrites rename
    nothing in this codebase, but output order is what matters).  A thin
    shim over :func:`~repro.runtime.verify.verify_equivalence`, so
    tolerance and NaN semantics live in exactly one place - which means
    NaNs at matching positions now count as *equal* (the verifier's
    semantics: both graphs agreeing on NaN is agreement), where this
    function previously treated any NaN as a mismatch.
    """
    from .verify import verify_equivalence

    if list(a.outputs) != list(b.outputs):
        return False
    return verify_equivalence(a, b, seeds=(seed,), rtol=rtol, atol=atol).passed
