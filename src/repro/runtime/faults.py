"""Deterministic fault injection for the serving stack.

The reliability layer (numpy fallback, circuit breaker, retry/backoff,
worker supervision) is only trustworthy if it can be *driven*: this
module provides the plan objects that make every failure path
reproducible on demand.

A :class:`FaultPlan` is a frozen, hashable tuple of :class:`FaultRule`\\ s
- frozen so it can ride :class:`~repro.api.CompileOptions` into the
session-cache key (a faulty compile never shares a session with a clean
one), hashable for the same reason.  All runtime state (fire counters,
the seeded RNG behind ``probability`` gates) lives in the
:class:`FaultInjector` a session or service builds from the plan, so one
plan object can be installed in many places independently.

Two injection sites consume the same plan, split by ``request_id``:

* **session-level** (rules with ``request_id=None``), consulted by
  :meth:`repro.runtime.session.Session.execute_values` once per backend
  invocation: ``latency`` sleeps, ``kernel``/``alloc`` raise
  :class:`~repro.api.errors.ExecutionError`, and ``compile`` raises
  :class:`~repro.api.errors.BackendCompilationError` for non-reference
  backends (exercising the numpy fallback + circuit breaker).  Install
  via ``CompileOptions(faults=...)``.
* **service-level** (rules naming a ``request_id``), consulted by the
  :class:`~repro.api.Service` scheduler per request *and attempt*:
  ``kernel`` faults a specific request deterministically on chosen
  attempts (exercising micro-batch isolation and retry), ``crash``
  kills the worker thread (exercising supervision), ``latency`` delays.
  Install via ``ServeOptions(faults=...)``.

Service-level ``kernel`` rules are *pure functions* of
``(request_id, attempt)`` - they fire identically whether the request is
executed in a coalesced batch or retried solo, which is what makes the
isolation tests deterministic.  ``crash`` rules are counted (default:
fire once) so a rescued batch does not crash the replacement worker
forever.

Chaos mode: ``REPRO_FAULT_SEED=<int>`` installs
:meth:`FaultPlan.chaos` on every session that was not given an explicit
plan.  The chaos plan injects only faults the reliability layer is
*required* to absorb - artificial latency and backend-compile failures
(which degrade to the reference backend with byte-identical outputs) -
so the whole tier-1 suite must stay green under any seed; CI runs
exactly that (see the ``chaos`` job).
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field

from ..api.errors import BackendCompilationError, ExecutionError

KINDS = ("kernel", "latency", "alloc", "compile", "crash", "worker_crash")

REFERENCE_BACKEND = "numpy"
"""Compile faults never target the reference backend - it has no
compile step and it is the fallback everything degrades to."""


class InjectedCrash(Exception):
    """An injected worker-thread crash.

    Deliberately *not* a :class:`~repro.api.errors.ReproError`: it must
    escape the scheduler's per-batch failure handling and kill the
    worker thread, so supervision (not request-failure bookkeeping) is
    what absorbs it.
    """


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault.

    Fields (all defaulted; unused fields are ignored per ``kind``):

    * ``kind`` - ``"kernel"``, ``"latency"``, ``"alloc"``,
      ``"compile"``, ``"crash"`` (worker *thread*), or
      ``"worker_crash"`` (parallel worker *process*; session-level
      only, consulted by the pool dispatcher via
      :meth:`FaultInjector.on_parallel_dispatch`).
    * ``request_id`` - when set, the rule is *service-level*: it matches
      the request with this id (see ``attempts``).  When ``None`` the
      rule is *session-level* and matches backend invocations.
    * ``attempts`` - service-level only: fire on these attempt numbers
      (0-based; ``None`` = every attempt, i.e. a persistent fault).
    * ``step`` - cosmetic step index named in injected kernel-fault
      messages.
    * ``request_index`` - session-level only: fire when this 0-based
      global request ordinal (counted per injector) is part of the
      invocation; ``None`` fires on any invocation.
    * ``after`` - session-level only: skip the first ``after`` matching
      invocations.
    * ``times`` - session-level and ``crash`` rules: fire at most this
      many times (``None`` = unlimited).
    * ``probability`` - session-level only: gate each firing on the
      plan-seeded RNG (deterministic per seed).
    * ``latency_ms`` - sleep duration for ``latency`` rules.
    * ``retryable`` - the ``retryable`` flag stamped on injected
      kernel/alloc errors (what the scheduler's retry policy keys on).
    """

    kind: str
    request_id: str | int | None = None
    attempts: tuple[int, ...] | None = None
    step: int | None = None
    request_index: int | None = None
    after: int = 0
    times: int | None = 1
    probability: float = 1.0
    latency_ms: float = 0.0
    retryable: bool = False

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of {KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.latency_ms < 0:
            raise ValueError("latency_ms cannot be negative")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be at least 1 (or None)")
        if self.attempts is not None and not isinstance(self.attempts, tuple):
            object.__setattr__(self, "attempts", tuple(self.attempts))

    @property
    def service_level(self) -> bool:
        """True when the rule targets a specific request by id."""
        return self.request_id is not None

    def matches_attempt(self, attempt: int) -> bool:
        return self.attempts is None or attempt in self.attempts


@dataclass(frozen=True)
class FaultPlan:
    """A frozen set of fault rules plus the seed gating probabilities.

    Hashable by construction so it can participate in session-cache
    keys via ``CompileOptions(faults=...)``.
    """

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.rules, tuple):
            object.__setattr__(self, "rules", tuple(self.rules))

    def injector(self) -> "FaultInjector | None":
        """A fresh stateful injector over this plan (``None`` when the
        plan is empty, so callers can skip the hook entirely)."""
        return FaultInjector(self) if self.rules else None

    @staticmethod
    def chaos(seed: int) -> "FaultPlan":
        """A randomized-but-seeded plan of *absorbable* faults.

        Only fault kinds the reliability layer must hide from callers
        are generated - artificial latency (slower, never wrong) and
        backend-compile failures (degraded to the reference backend
        with identical outputs) - so any test suite that passes clean
        must pass under any chaos seed.  Same seed, same plan.
        """
        rng = random.Random(seed)
        rules = [
            FaultRule(kind="latency", probability=0.05,
                      latency_ms=rng.uniform(0.05, 0.3), times=None),
            FaultRule(kind="compile", probability=rng.uniform(0.1, 0.3),
                      times=rng.randint(1, 3)),
            # Parallel-pool chaos: kill a worker process mid-shard.  Only
            # consulted by the pool dispatcher (on_parallel_dispatch), so
            # in-process sessions never see it; the pool must absorb it
            # by respawn + re-dispatch with byte-identical outputs.
            FaultRule(kind="worker_crash",
                      probability=rng.uniform(0.1, 0.3),
                      times=rng.randint(1, 2)),
        ]
        return FaultPlan(rules=tuple(rules), seed=seed)

    @staticmethod
    def from_env() -> "FaultPlan | None":
        """The ambient chaos plan, or ``None``.

        Reads ``REPRO_FAULT_SEED`` once per call (cheap); a non-integer
        value raises so a typo'd chaos run fails loudly instead of
        silently running clean.
        """
        seed = os.environ.get("REPRO_FAULT_SEED")
        if not seed:
            return None
        return FaultPlan.chaos(int(seed))


class FaultInjector:
    """Runtime state for one installation of a :class:`FaultPlan`.

    Holds the per-rule fire/match counters and the seeded RNG; the plan
    itself stays immutable.  Not thread-safe by design - each injector
    is owned by exactly one session (whose backend invocations are
    serialized) or one service worker.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._matched: dict[int, int] = {}
        self._fired: dict[int, int] = {}
        self._requests_seen = 0

    def fired(self, rule_index: int) -> int:
        """How many times rule ``rule_index`` has fired (tests)."""
        return self._fired.get(rule_index, 0)

    def _gate(self, index: int, rule: FaultRule) -> bool:
        """Stateful firing decision: ``after`` skip, ``times`` budget,
        seeded ``probability``."""
        seen = self._matched.get(index, 0)
        self._matched[index] = seen + 1
        if seen < rule.after:
            return False
        if rule.times is not None and self._fired.get(index, 0) >= rule.times:
            return False
        if rule.probability < 1.0 and self._rng.random() >= rule.probability:
            return False
        self._fired[index] = self._fired.get(index, 0) + 1
        return True

    # -- session-level ------------------------------------------------------

    def on_invocation(self, n_requests: int, backend: str,
                      context: dict | None = None) -> None:
        """Consulted once per backend invocation (before it runs).

        May sleep (latency), raise
        :class:`~repro.api.errors.BackendCompilationError` (compile
        faults, non-reference backends only), or raise
        :class:`~repro.api.errors.ExecutionError` (kernel/alloc
        faults).  ``context`` carries model/fingerprint for the error.
        """
        first = self._requests_seen
        self._requests_seen += n_requests
        context = context or {}
        for index, rule in enumerate(self.plan.rules):
            if rule.service_level:
                continue
            if rule.request_index is not None and not (
                    first <= rule.request_index < first + n_requests):
                continue
            if rule.kind == "latency":
                if self._gate(index, rule):
                    time.sleep(rule.latency_ms / 1e3)
            elif rule.kind == "compile":
                if backend != REFERENCE_BACKEND and self._gate(index, rule):
                    raise BackendCompilationError(
                        f"injected backend-compile failure "
                        f"(backend {backend!r})",
                        backend=backend, **context)
            elif rule.kind == "kernel":
                if self._gate(index, rule):
                    at = "" if rule.step is None else f" at step {rule.step}"
                    raise ExecutionError(
                        f"injected kernel fault{at}",
                        backend=backend, retryable=rule.retryable, **context)
            elif rule.kind == "alloc":
                if self._gate(index, rule):
                    raise ExecutionError(
                        "injected allocation failure (pool exhausted)",
                        backend=backend, retryable=rule.retryable, **context)

    def on_parallel_dispatch(self) -> bool:
        """Consulted by the parallel pool once per sharded dispatch
        (parent side, before any shard is sent).

        True when a session-level ``worker_crash`` rule fires: the pool
        then flags one shard so its worker process exits mid-batch,
        exercising process supervision (respawn + re-dispatch from the
        still-intact shared-memory segment).  The rule's ``times``
        budget is consumed here - in the parent - so the decision
        survives worker respawns deterministically.
        """
        fired = False
        for index, rule in enumerate(self.plan.rules):
            if rule.kind != "worker_crash" or rule.service_level:
                continue
            if self._gate(index, rule):
                fired = True
        return fired

    # -- service-level ------------------------------------------------------

    def request_faults(self, request_id: str | int | None,
                       attempt: int) -> list[FaultRule]:
        """The service-level rules firing for ``(request_id, attempt)``.

        ``kernel``/``latency`` rules are pure functions of the pair -
        they fire identically for the coalesced-batch pass and the solo
        isolation pass of the same attempt.  ``crash`` rules consume
        their ``times`` budget (default once), so a rescued batch does
        not re-crash the replacement worker forever.
        """
        firing: list[FaultRule] = []
        for index, rule in enumerate(self.plan.rules):
            if not rule.service_level or rule.request_id != request_id:
                continue
            if not rule.matches_attempt(attempt):
                continue
            if rule.kind == "crash":
                if self._gate(index, rule):
                    firing.append(rule)
            else:
                firing.append(rule)
        return firing


__all__ = [
    "FaultInjector", "FaultPlan", "FaultRule", "InjectedCrash", "KINDS",
    "REFERENCE_BACKEND",
]
