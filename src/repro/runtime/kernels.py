"""NumPy reference kernels for every operator.

These kernels define operator *semantics*.  They exist so that every graph
rewrite in the optimizer (fusion grouping, layout transformation
elimination, view absorption) can be verified numerically: the executor
runs the original and optimized graphs on the same inputs and the test
suite requires identical outputs.

They are written for clarity and correctness, not speed; model-scale
latency numbers come from the analytical cost model, never from timing
these kernels.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Callable

import numpy as np

_KERNELS: dict[str, Callable] = {}


def kernel(op_type: str):
    def decorate(fn):
        _KERNELS[op_type] = fn
        return fn
    return decorate


def get_kernel(op_type: str) -> Callable:
    try:
        return _KERNELS[op_type]
    except KeyError:
        raise KeyError(f"no reference kernel for operator {op_type!r}") from None


def _pair(value):
    return (value, value) if isinstance(value, int) else tuple(value)


# ---------------------------------------------------------------------------
# convolution
# ---------------------------------------------------------------------------


def _conv_geometry(x_shape, w_shape, attrs):
    """Static conv2d geometry from shapes + attrs (shared by the kernel,
    the scratch planner, and the roofline traffic model)."""
    groups = int(attrs.get("groups", 1))
    sh, sw = _pair(attrs.get("stride", 1))
    ph, pw = _pair(attrs.get("padding", 0))
    dh, dw = _pair(attrs.get("dilation", 1))
    n, c, h, wd = x_shape
    oc, cpg, kh, kw = w_shape
    oh = (h + 2 * ph - (dh * (kh - 1) + 1)) // sh + 1
    ow = (wd + 2 * pw - (dw * (kw - 1) + 1)) // sw + 1
    return (groups, (sh, sw), (ph, pw), (dh, dw),
            (n, c, h, wd), (oc, cpg, kh, kw), (oh, ow))


class ConvScratch:
    """Reusable im2col scratch for one lowered conv2d step.

    Sized statically at lowering time from the step's input specs and
    reused across every run of the program (the slot plan reports the
    bytes as a reusable-scratch class).  Buffers are per-thread: lowered
    programs are memoized per graph and shared across sessions, so a
    process-wide buffer would be corrupted by concurrent workers.

    The padded buffer is zero-filled once per thread; runs only rewrite
    the interior, so the halo stays zero - the pad cost drops from a
    full ``np.pad`` copy per call to an interior copy.
    """

    __slots__ = ("pad_shape", "cols_shape", "_local")

    def __init__(self, pad_shape, cols_shape) -> None:
        self.pad_shape = pad_shape  # None when the conv is unpadded
        self.cols_shape = cols_shape
        self._local = threading.local()

    @classmethod
    def plan(cls, x_shape, w_shape, attrs) -> "ConvScratch":
        (_, _, (ph, pw), _, (n, c, h, wd),
         (_, cpg, kh, kw), (oh, ow)) = _conv_geometry(x_shape, w_shape, attrs)
        pad_shape = (n, c, h + 2 * ph, wd + 2 * pw) if ph or pw else None
        cols_shape = (n, cpg * kh * kw, oh * ow)
        return cls(pad_shape, cols_shape)

    def nbytes(self, itemsize: int) -> int:
        """Static scratch footprint for the slot plan."""
        total = math.prod(self.cols_shape) * itemsize
        if self.pad_shape is not None:
            total += math.prod(self.pad_shape) * itemsize
        return total

    def buffers(self, dtype):
        state = self._local
        cached = getattr(state, "buffers", None)
        if cached is None or cached[0] != dtype:
            padded = (np.zeros(self.pad_shape, dtype=dtype)
                      if self.pad_shape is not None else None)
            cols = np.empty(self.cols_shape, dtype=dtype)
            cached = state.buffers = (dtype, padded, cols)
        return cached[1], cached[2]


def _im2col(xg, cols6, kh, kw, sh, sw, dh, dw, oh, ow):
    """Gather conv windows into the column buffer in one vectorized copy.

    The window gather is a pure striding trick: ``as_strided`` views the
    (already padded) input as a 6-D ``(n, cpg, kh, kw, oh, ow)`` patch
    tensor without touching data, and a single ``copyto`` materializes it
    into the preallocated column buffer - no per-(channel, tap) Python
    loop, no intermediate reshape copies, no astype.
    """
    n, cpg = xg.shape[:2]
    s0, s1, s2, s3 = xg.strides
    patches = np.lib.stride_tricks.as_strided(
        xg, (n, cpg, kh, kw, oh, ow),
        (s0, s1, s2 * dh, s3 * dw, s2 * sh, s3 * sw))
    np.copyto(cols6, patches)


def conv2d_gemm(inputs, attrs, scratch: ConvScratch | None = None):
    """GEMM-shaped conv2d: strided-view im2col + one BLAS matmul per group.

    ``scratch`` is the step's preallocated :class:`ConvScratch` when the
    kernel was bound by :func:`bind_conv2d` at lowering; unbound calls
    (graph interpreter, direct kernel use) plan a throwaway one.
    """
    x, w = inputs[0], inputs[1]
    bias = inputs[2] if len(inputs) > 2 else None
    (groups, (sh, sw), (ph, pw), (dh, dw),
     (n, _, h, wd), (oc, cpg, kh, kw), (oh, ow)) = _conv_geometry(
        x.shape, w.shape, attrs)
    if scratch is None:
        scratch = ConvScratch.plan(x.shape, w.shape, attrs)
    padded, cols = scratch.buffers(x.dtype)
    if cols.shape[0] != n:
        # Symbolic bucket variants bind scratch at the bucket's max
        # extent; smaller runtime extents use the leading-axis prefix.
        # A C-contiguous leading slice is itself contiguous, so the
        # strided im2col gather and the per-group GEMM below see the
        # exact buffers an extent-``n`` binding would have planned.
        cols = cols[:n]
        if padded is not None:
            padded = padded[:n]
    if padded is not None:
        padded[:, :, ph:ph + h, pw:pw + wd] = x
        xp = padded
    else:
        xp = x
    cols6 = cols.reshape(n, cpg, kh, kw, oh, ow)
    ocpg = oc // groups
    out = np.empty((n, oc, oh, ow), dtype=x.dtype)
    out3 = out.reshape(n, oc, oh * ow)
    for g in range(groups):
        _im2col(xp[:, g * cpg:(g + 1) * cpg], cols6,
                kh, kw, sh, sw, dh, dw, oh, ow)
        wg = w[g * ocpg:(g + 1) * ocpg].reshape(ocpg, cpg * kh * kw)
        np.matmul(wg, cols, out=out3[:, g * ocpg:(g + 1) * ocpg])
    if bias is not None:
        out += bias.reshape(1, -1, 1, 1)
    return out


def conv2d_reference(inputs, attrs):
    """Pre-GEMM reference conv2d (per-tap Python im2col + einsum).

    Kept behind ``REPRO_CONV_REFERENCE`` / :func:`use_reference_conv` as
    the parity oracle for the GEMM path: the im2col columns it gathers
    are byte-identical to :func:`_im2col`'s, while the contraction
    (einsum vs. BLAS matmul) agrees to float tolerance only - which is
    why zoo-wide byte-identity is asserted across backends/batching (all
    sharing one kernel), and GEMM-vs-reference is asserted via allclose.
    """
    x, w = inputs[0], inputs[1]
    bias = inputs[2] if len(inputs) > 2 else None
    groups = int(attrs.get("groups", 1))
    sh, sw = _pair(attrs.get("stride", 1))
    ph, pw = _pair(attrs.get("padding", 0))
    dh, dw = _pair(attrs.get("dilation", 1))
    n, c, h, wd = x.shape
    oc, cpg, kh, kw = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    oh = (h + 2 * ph - (dh * (kh - 1) + 1)) // sh + 1
    ow = (wd + 2 * pw - (dw * (kw - 1) + 1)) // sw + 1
    ocpg = oc // groups
    out = np.zeros((n, oc, oh, ow), dtype=x.dtype)
    # im2col per group
    for g in range(groups):
        xg = xp[:, g * cpg:(g + 1) * cpg]
        cols = np.empty((n, cpg * kh * kw, oh * ow), dtype=x.dtype)
        col = 0
        for ci in range(cpg):
            for ki in range(kh):
                for kj in range(kw):
                    patch = xg[:, ci,
                               ki * dh: ki * dh + oh * sh: sh,
                               kj * dw: kj * dw + ow * sw: sw]
                    cols[:, col] = patch.reshape(n, -1)
                    col += 1
        wg = w[g * ocpg:(g + 1) * ocpg].reshape(ocpg, -1)
        res = np.einsum("ok,nkp->nop", wg, cols)
        out[:, g * ocpg:(g + 1) * ocpg] = res.reshape(n, ocpg, oh, ow)
    if bias is not None:
        out = out + bias.reshape(1, -1, 1, 1)
    return out


_CONV_IMPL = (conv2d_reference if os.environ.get("REPRO_CONV_REFERENCE")
              else conv2d_gemm)


def use_reference_conv(flag: bool) -> None:
    """Route conv2d through the einsum reference (parity checks only)."""
    global _CONV_IMPL
    _CONV_IMPL = conv2d_reference if flag else conv2d_gemm


@kernel("conv2d")
def conv2d(inputs, attrs):
    return _CONV_IMPL(inputs, attrs)


def bind_conv2d(x_shape, w_shape, attrs):
    """Bind a conv2d step to a statically planned :class:`ConvScratch`.

    Returns ``(kernel, scratch)``; the kernel keeps honouring
    :func:`use_reference_conv` so flag flips reach already-lowered
    programs.  Called by ``lower()`` (and by ``rebatch`` with the scaled
    batch shape) so every run reuses the step's im2col buffers instead
    of reallocating them.
    """
    scratch = ConvScratch.plan(x_shape, w_shape, attrs)

    def bound(inputs, attrs, _scratch=scratch):
        impl = _CONV_IMPL
        if impl is conv2d_gemm:
            return conv2d_gemm(inputs, attrs, _scratch)
        return impl(inputs, attrs)

    return bound, scratch


@kernel("matmul")
def matmul(inputs, attrs):
    a, b = inputs
    if attrs.get("transpose_a"):
        a = np.swapaxes(a, -1, -2)
    if attrs.get("transpose_b"):
        b = np.swapaxes(b, -1, -2)
    return np.matmul(a, b)


@kernel("dense")
def dense(inputs, attrs):
    x, w = inputs[0], inputs[1]
    out = x @ w.T
    if len(inputs) > 2:
        out = out + inputs[2]
    return out


# ---------------------------------------------------------------------------
# elementwise
# ---------------------------------------------------------------------------

_GELU_C = math.sqrt(2.0 / math.pi)

_UNARY_IMPL = {
    "relu": lambda x: np.maximum(x, 0),
    "relu6": lambda x: np.clip(x, 0, 6),
    # x*x*x instead of x**3: same value, but half-precision pow is slow
    "gelu": lambda x: 0.5 * x * (1 + np.tanh(_GELU_C * (x + 0.044715 * (x * x * x)))),
    "silu": lambda x: x / (1 + np.exp(-x)),
    "sigmoid": lambda x: 1 / (1 + np.exp(-x)),
    "tanh": np.tanh,
    "exp": np.exp,
    "sqrt": lambda x: np.sqrt(np.abs(x)),
    "rsqrt": lambda x: 1 / np.sqrt(np.abs(x) + 1e-12),
    "neg": np.negative,
    "abs": np.abs,
    "erf": lambda x: np.vectorize(math.erf)(x).astype(x.dtype, copy=False),
    # copies: a kernel output must never alias the caller's input array
    # (unary's astype(copy=False) would otherwise pass x through)
    "identity": lambda x: x.copy(),
    "leaky_relu": lambda x: np.where(x > 0, x, 0.01 * x),
    "hardswish": lambda x: x * np.clip(x + 3, 0, 6) / 6,
}


@kernel("unary")
def unary(inputs, attrs):
    # copy=False: skip the redundant copy when the compute dtype already
    # matches (every impl returns a fresh array, so nothing aliases the
    # input)
    return _UNARY_IMPL[attrs["func"]](inputs[0]).astype(
        inputs[0].dtype, copy=False)


_BINARY_IMPL = {
    "add": np.add, "sub": np.subtract, "mul": np.multiply,
    "div": np.divide, "pow": np.power,
    "maximum": np.maximum, "minimum": np.minimum,
}


@kernel("binary")
def binary(inputs, attrs):
    return _BINARY_IMPL[attrs["func"]](inputs[0], inputs[1]).astype(
        inputs[0].dtype, copy=False)


# ---------------------------------------------------------------------------
# normalization / softmax / reduce
# ---------------------------------------------------------------------------


@kernel("softmax")
def softmax(inputs, attrs):
    x = inputs[0]
    axis = int(attrs.get("axis", -1))
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return (e / e.sum(axis=axis, keepdims=True)).astype(x.dtype, copy=False)


def _norm(x, axes, eps):
    # One subtraction pass shared between the variance and the output
    # (np.var would redo x - mean internally).
    mean = x.mean(axis=axes, keepdims=True)
    d = x - mean
    var = np.mean(d * d, axis=axes, keepdims=True)
    return d / np.sqrt(var + eps)


def _axes_tuple(attrs, rank):
    axes = attrs.get("axes", -1)
    if isinstance(axes, int):
        axes = (axes,)
    return tuple(sorted(a % rank for a in axes))


@kernel("layernorm")
def layernorm(inputs, attrs):
    x = inputs[0]
    axes = _axes_tuple(attrs, x.ndim)
    out = _norm(x, axes, attrs.get("eps", 1e-5))
    if len(inputs) > 1:
        shape = [x.shape[a] if a in axes else 1 for a in range(x.ndim)]
        out = out * inputs[1].reshape(shape)
        if len(inputs) > 2:
            out = out + inputs[2].reshape(shape)
    return out.astype(x.dtype, copy=False)


@kernel("rmsnorm")
def rmsnorm(inputs, attrs):
    x = inputs[0]
    axes = _axes_tuple(attrs, x.ndim)
    rms = np.sqrt((x * x).mean(axis=axes, keepdims=True) + attrs.get("eps", 1e-6))
    out = x / rms
    if len(inputs) > 1:
        shape = [x.shape[a] if a in axes else 1 for a in range(x.ndim)]
        out = out * inputs[1].reshape(shape)
    return out.astype(x.dtype, copy=False)


@kernel("instancenorm")
def instancenorm(inputs, attrs):
    x = inputs[0]
    out = _norm(x, (2, 3), attrs.get("eps", 1e-5))
    if len(inputs) > 1:
        out = out * inputs[1].reshape(1, -1, 1, 1)
        if len(inputs) > 2:
            out = out + inputs[2].reshape(1, -1, 1, 1)
    return out.astype(x.dtype, copy=False)


@kernel("groupnorm")
def groupnorm(inputs, attrs):
    x = inputs[0]
    n, c, h, w = x.shape
    groups = int(attrs.get("groups", 32))
    grouped = x.reshape(n, groups, c // groups, h, w)
    out = _norm(grouped, (2, 3, 4), attrs.get("eps", 1e-5)).reshape(n, c, h, w)
    if len(inputs) > 1:
        out = out * inputs[1].reshape(1, -1, 1, 1)
        if len(inputs) > 2:
            out = out + inputs[2].reshape(1, -1, 1, 1)
    return out.astype(x.dtype, copy=False)


@kernel("batchnorm")
def batchnorm(inputs, attrs):
    x = inputs[0]
    shape = [1] * x.ndim
    if x.ndim >= 2:
        shape[1] = -1
    else:
        shape[0] = -1
    out = x
    if len(inputs) > 1:
        out = out * inputs[1].reshape(shape)
    if len(inputs) > 2:
        out = out + inputs[2].reshape(shape)
    return out


def _reduce_impl(fn):
    def run(inputs, attrs):
        x = inputs[0]
        raw = attrs.get("axes", tuple(range(x.ndim)))
        if isinstance(raw, int):
            raw = (raw,)
        axes = tuple(sorted(a % x.ndim for a in raw))
        keepdims = bool(attrs.get("keepdims", False))
        out = fn(x, axis=axes, keepdims=keepdims)
        if not keepdims and out.ndim == 0:
            out = out.reshape(1)
        return out.astype(x.dtype, copy=False)
    return run


kernel("reduce_mean")(_reduce_impl(np.mean))
kernel("reduce_sum")(_reduce_impl(np.sum))
kernel("reduce_max")(_reduce_impl(np.max))


# ---------------------------------------------------------------------------
# layout / reorganization
# ---------------------------------------------------------------------------


@kernel("reshape")
def reshape(inputs, attrs):
    return inputs[0].reshape(attrs["shape"])


@kernel("transpose")
def transpose(inputs, attrs):
    return inputs[0].transpose(attrs["perm"])


@kernel("layout_convert")
def layout_convert(inputs, attrs):
    # Physically reorders data between layout domains; semantically identity.
    return inputs[0].copy()


def layout_convert_elided(inputs, attrs):
    """Copy-elided layout_convert, bound at lowering when the input is a
    pool interior that dies at this step: the array can be passed through
    when it is already contiguous (nothing else will ever read it), and
    otherwise needs only the compaction copy.  Never registered - graph
    interpretation keeps the alias-free reference kernel."""
    x = inputs[0]
    return x if x.flags.c_contiguous else np.ascontiguousarray(x)


@kernel("slice")
def slice_(inputs, attrs):
    x = inputs[0]
    steps = attrs.get("steps", (1,) * x.ndim)
    index = tuple(
        slice(start % (d + 1), min(stop, d), step)
        for d, start, stop, step in zip(x.shape, attrs["starts"], attrs["stops"], steps)
    )
    return x[index]


@kernel("gather")
def gather(inputs, attrs):
    return np.take(inputs[0], np.asarray(attrs["indices"]),
                   axis=int(attrs.get("axis", 0)))


@kernel("concat")
def concat(inputs, attrs):
    return np.concatenate(inputs, axis=int(attrs.get("axis", 0)))


@kernel("split")
def split(inputs, attrs):
    return tuple(np.split(inputs[0], int(attrs["sections"]),
                          axis=int(attrs.get("axis", 0))))


@kernel("pad")
def pad(inputs, attrs):
    return np.pad(inputs[0], tuple(tuple(p) for p in attrs["pads"]))


@kernel("depth_to_space")
def depth_to_space(inputs, attrs):
    x = inputs[0]
    n, c, h, w = x.shape
    b = int(attrs.get("block", 2))
    return (x.reshape(n, b, b, c // (b * b), h, w)
             .transpose(0, 3, 4, 1, 5, 2)
             .reshape(n, c // (b * b), h * b, w * b))


@kernel("space_to_depth")
def space_to_depth(inputs, attrs):
    x = inputs[0]
    n, c, h, w = x.shape
    b = int(attrs.get("block", 2))
    return (x.reshape(n, c, h // b, b, w // b, b)
             .transpose(0, 3, 5, 1, 2, 4)
             .reshape(n, c * b * b, h // b, w // b))


# ---------------------------------------------------------------------------
# pooling / resampling / lookup
# ---------------------------------------------------------------------------


def _pool_impl(reducer):
    def run(inputs, attrs):
        x = inputs[0]
        kh, kw = _pair(attrs["kernel"])
        sh, sw = _pair(attrs.get("stride", (kh, kw)))
        ph, pw = _pair(attrs.get("padding", 0))
        pad_value = -np.inf if reducer is np.max else 0.0
        xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)),
                    constant_values=pad_value)
        n, c, h, w = xp.shape
        oh = (h - kh) // sh + 1
        ow = (w - kw) // sw + 1
        stacked = np.empty((kh * kw, n, c, oh, ow), dtype=x.dtype)
        for ki in range(kh):
            for kj in range(kw):
                stacked[ki * kw + kj] = xp[:, :, ki: ki + oh * sh: sh,
                                           kj: kj + ow * sw: sw]
        if reducer is np.max:
            return stacked.max(axis=0)
        # average pooling: divide by window size (count_include_pad=True)
        return (stacked.sum(axis=0) / (kh * kw)).astype(x.dtype, copy=False)
    return run


kernel("maxpool2d")(_pool_impl(np.max))
kernel("avgpool2d")(_pool_impl(np.mean))


@kernel("global_avgpool")
def global_avgpool(inputs, attrs):
    return inputs[0].mean(axis=(2, 3), keepdims=True).astype(
        inputs[0].dtype, copy=False)


@kernel("upsample2d")
def upsample2d(inputs, attrs):
    scale = int(attrs.get("scale", 2))
    return inputs[0].repeat(scale, axis=2).repeat(scale, axis=3)


@kernel("embedding")
def embedding(inputs, attrs):
    table, ids = inputs
    return table[ids.astype(np.int64, copy=False)]
