"""Multi-process parallel execution backend.

The in-process backends (``numpy``, ``codegen``) execute a whole
invocation under one GIL, so aggregate throughput on kernel-bound models
is capped no matter how fast each kernel gets.  :class:`ParallelBackend`
escapes the cap by owning a supervised pool of **worker processes**,
each holding its own copy of the compiled program, materialized
parameters, and warmed :class:`~repro.memory.pool.SizeClassPool` - all
inherited for free over ``fork``, never pickled.

Dispatch composes with the existing layers instead of bypassing them:

* the dispatcher shards a scheduler micro-batch into contiguous chunks -
  one *whole stacked batch-N pass* per worker for batch-stackable
  programs (:func:`repro.runtime.batching.analyze`), per-request chunks
  otherwise;
* request/response tensors cross the process boundary through a ring of
  preallocated shared-memory segments (:mod:`repro.runtime.shm`) with a
  static layout computed from the program - the control pipe carries
  only ``(segment index, request count)`` tuples and per-request wall
  times;
* inside each worker, execution funnels through the normal
  :meth:`~repro.runtime.session.Session.execute_values` path with the
  configured *inner* backend (``numpy`` for ``"parallel"``, ``codegen``
  for ``"parallel-codegen"``), so stacked batching, fault injection,
  graceful degradation and the (per-process) circuit breaker all apply
  unchanged, and outputs stay byte-identical to single-process serving.

Supervision extends PR-6's worker-thread story to processes: a worker
that dies mid-shard is detected on its process sentinel, respawned by a
fresh fork, and the shard re-dispatched verbatim from its still-intact
segment; after :data:`_MAX_SHARD_RETRIES` deaths the shard executes
in-process as a last resort (still byte-identical).  Restarts are
counted on the pool and surface in ``ServiceReport.worker_restarts``.
Injected ``worker_crash`` faults (:mod:`repro.runtime.faults`) drive
exactly this path deterministically.

On platforms without the ``fork`` start method the backend degrades to
in-process execution on its inner backend (logged once) - same outputs,
no scale-out.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import pickle
import threading
import time
from collections import deque
from multiprocessing import connection

import numpy as np

from ..api.errors import WorkerCrashed
from ..memory.pool import PoolReport
from .program import ExecutionBackend, get_backend, register_backend
from .shm import SegmentRing, ShardLayout

logger = logging.getLogger("repro.runtime.parallel")

_MIN_STACKED_SHARD = 16
"""Smallest per-worker chunk of a stackable micro-batch: below this the
per-dispatch overhead (pipe roundtrip plus a context switch, ~1-2 ms)
outweighs what stacking inside the worker saves, so small batches run
as fewer, larger shards."""

_MAX_SHARD_RETRIES = 2
"""Worker deaths tolerated per shard before it executes in-process."""

_SPAWN_TIMEOUT_S = 60.0
_DISPATCH_TIMEOUT_S = 120.0


def parallel_supported() -> bool:
    """True when fork-based worker pools can run on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def _available_cpus() -> int:
    """CPUs this process may run on (affinity-aware where exposed)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def _portable(err: BaseException) -> BaseException:
    """An exception safe to ship over a pipe (pickle round-trip)."""
    try:
        pickle.loads(pickle.dumps(err))
        return err
    except Exception:  # noqa: BLE001 - unpicklable payload
        return RuntimeError(f"{type(err).__name__}: {err}")


def _worker_main(conn_, session, inner_name: str, ring: SegmentRing) -> None:
    """Worker-process entry point (child side of a ``fork``).

    The child inherits the session (program, params, warmed pools) and
    the segment ring by reference; it owns nothing - it never creates,
    unlinks, or recycles segments.  It exits via ``os._exit`` so the
    parent's inherited atexit hooks (segment unlink, bench writers)
    never run twice.
    """
    exit_code = 0
    try:
        # Forked locks may be held by threads that do not exist in the
        # child; give it private reliability state.
        from . import session as session_module
        session_module._CIRCUIT = session_module.CircuitBreaker()
        inner = get_backend(inner_name)
        # Per-extent layouts, built lazily and deterministically from
        # (program, capacity, extent) - the parent derives the same
        # offsets from the same triple, so only the extent crosses the
        # pipe.  ``None`` is the base (concrete) layout.
        capacity = ring.layout.capacity
        layouts: dict = {None: ShardLayout(session.program, capacity)}
        params = session._params
        conn_.send(("ready", os.getpid()))
        while True:
            message = conn_.recv()
            kind = message[0]
            if kind == "stop":
                break
            _, seg_index, count, crash, extent = message
            if crash:  # injected worker_crash: die mid-shard, uncleanly
                os._exit(17)
            layout = layouts.get(extent)
            if layout is None:
                layout = layouts[extent] = ShardLayout(
                    session.program, capacity, extent=extent)
            buf = ring.buf(seg_index)
            values_list = []
            for i in range(count):
                values = dict(params)
                values.update(layout.read_inputs(buf, i))
                values_list.append(values)
            try:
                results, backend_name, batched = session.execute_values(
                    values_list, backend=inner)
                walls = []
                for i, (outputs, _report, wall) in enumerate(results):
                    layout.write_outputs(buf, i, outputs)
                    walls.append(float(wall))
                conn_.send(("ok", seg_index, walls, backend_name, batched))
            except BaseException as err:  # noqa: BLE001 - ship to parent
                conn_.send(("err", seg_index, _portable(err)))
    except (EOFError, OSError, KeyboardInterrupt):
        exit_code = 1  # parent went away / interrupted: just leave
    except BaseException:  # pragma: no cover - setup failure
        exit_code = 1
    finally:
        os._exit(exit_code)


class _Worker:
    __slots__ = ("index", "proc", "conn")

    def __init__(self, index: int, proc, conn_) -> None:
        self.index = index
        self.proc = proc
        self.conn = conn_


class _Shard:
    __slots__ = ("start", "count", "seg", "crash", "tries", "error",
                 "batched")

    def __init__(self, start: int, count: int) -> None:
        self.start = start
        self.count = count
        self.seg = None
        self.crash = False
        self.tries = 0
        self.error = None
        self.batched = False


class WorkerPool:
    """A supervised pool of forked worker processes for one session.

    Owned by the session (``session.ensure_parallel_pool()``), created
    eagerly by the :class:`~repro.api.Service` front door before its
    scheduler thread starts (forking from a single-threaded parent is
    the safe point), lazily on first sharded invocation otherwise.
    """

    def __init__(self, session, inner: str = "numpy", workers: int = 1,
                 capacity: int = 16) -> None:
        from .batching import analyze

        self.session = session
        self.inner_name = inner
        self.workers = max(1, int(workers))
        self.capacity = max(1, int(capacity))
        self.restarts = 0
        self.closed = False
        self._lock = threading.Lock()
        self._ctx = multiprocessing.get_context("fork")
        program = session.program
        self.layout = ShardLayout(program, self.capacity)
        self.stackable = analyze(program).stackable
        self._input_names = frozenset(program.input_names)
        self._first_input = program.input_names[0]
        # Symbolic sessions add per-extent layouts (lazily, mirrored in
        # each worker) and size segments for whichever layout is the
        # largest - the base stacked layout or the max admitted extent.
        self._layouts: dict[int, ShardLayout] = {}
        ring_layout = self.layout
        sym = session.symbolic
        if sym is not None and sym.max_extent != sym.base_extent:
            widest = ShardLayout(program, self.capacity,
                                 extent=sym.max_extent)
            if widest.segment_bytes > ring_layout.segment_bytes:
                ring_layout = widest
        self._warm_parent()
        # Segments outlive individual workers: a respawned worker
        # inherits the *same* ring, so a crashed shard's inputs are
        # still in place for verbatim re-dispatch.
        self.ring = SegmentRing(ring_layout, count=self.workers + 2)
        try:
            self._workers = [self._spawn(i) for i in range(self.workers)]
        except BaseException:
            self.close()
            raise

    # -- lifecycle ---------------------------------------------------------

    def _warm_parent(self) -> None:
        """Build every per-program artifact the workers will need
        *before* forking, so each child inherits compiled runners,
        batch-N variants, warmed bucket pools, and materialized
        parameters instead of rebuilding them ``workers`` times."""
        session = self.session
        inner = get_backend(self.inner_name)
        values = session._admit(session.make_inputs(seed=0))
        session.execute_values([dict(values)], backend=inner)
        if self.stackable:
            for size in {self._shard_size(self.capacity),
                         self.capacity}:
                if size > 1:
                    session.execute_values(
                        [dict(values) for _ in range(size)], backend=inner)
        sym = session.symbolic
        if sym is not None:
            # One representative run per symbolic bucket: the children
            # inherit each bucket's compiled variant (and codegen
            # runner) plus its warmed pool instead of rebuilding them
            # ``workers`` times on first off-base request.
            from .batching import bucket

            reps: dict[int, int] = {}
            for extent in range(1, sym.max_extent + 1):
                factor = bucket(max(1, -(-extent // sym.base_extent)))
                reps[factor] = extent  # largest extent per bucket wins
            for extent in sorted(reps.values()):
                if extent == sym.base_extent:
                    continue
                warm = {
                    name: np.resize(value, (extent,) + value.shape[1:])
                    if name in sym.inputs else value
                    for name, value in values.items()}
                session.execute_values([warm], backend=inner)

    def _spawn(self, index: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.session, self.inner_name, self.ring),
            daemon=True, name=f"repro-parallel-{index}")
        proc.start()
        child_conn.close()
        if not parent_conn.poll(_SPAWN_TIMEOUT_S):
            proc.terminate()
            raise WorkerCrashed(
                f"parallel worker {index} failed to come up within "
                f"{_SPAWN_TIMEOUT_S:.0f}s", backend=self.name_for_errors())
        message = parent_conn.recv()
        if message[0] != "ready":  # pragma: no cover - protocol bug
            proc.terminate()
            raise WorkerCrashed(
                f"parallel worker {index} sent {message[0]!r} instead of "
                "the ready handshake", backend=self.name_for_errors())
        return _Worker(index, proc, parent_conn)

    def name_for_errors(self) -> str:
        return "parallel" if self.inner_name == "numpy" \
            else f"parallel-{self.inner_name}"

    @property
    def alive(self) -> bool:
        return not self.closed

    def close(self) -> None:
        """Stop every worker and unlink every segment; idempotent."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            workers = getattr(self, "_workers", [])
            for worker in workers:
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            for worker in workers:
                worker.proc.join(timeout=5)
                if worker.proc.is_alive():  # pragma: no cover - stuck
                    worker.proc.kill()
                    worker.proc.join(timeout=5)
                worker.conn.close()
            if getattr(self, "ring", None) is not None:
                self.ring.close()

    # -- dispatch ----------------------------------------------------------

    def _shard_size(self, n: int) -> int:
        return -(-n // self._num_shards(n))  # ceil

    def _num_shards(self, n: int) -> int:
        """How many worker chunks an ``n``-request invocation splits
        into.  Stackable programs prefer fewer, larger shards (each runs
        as one stacked pass inside its worker - below
        :data:`_MIN_STACKED_SHARD` requests per shard the dispatch
        overhead beats the spread); non-stackable programs spread
        per-request.  Per-wave fan-out is capped at the CPUs actually
        available to this process: extra shards beyond that only buy
        context switches, while the surplus workers stay warm as spares
        for crash absorption.  Segment capacity bounds a shard from
        above."""
        fanout = min(self.workers, _available_cpus())
        if self.stackable:
            num = max(1, min(fanout, n // _MIN_STACKED_SHARD))
        else:
            num = min(fanout, n)
        return max(num, -(-n // self.capacity))

    def run(self, values_list):
        """Serve one invocation across the pool.

        Returns ``(rows, batched)`` shaped like
        ``ExecutionBackend.run_many`` output, or ``None`` when the
        invocation cannot shard (per-request parameter overrides, or a
        symbolic micro-batch mixing leading extents - the in-process
        path groups those per extent) and must run in-process.
        """
        params = self.session._params
        for values in values_list:
            for key, value in values.items():
                if key not in self._input_names \
                        and params.get(key) is not value:
                    return None  # per-request params: in-process path
        extent = None
        sym = self.session.symbolic
        if sym is not None:
            extents = {values[self._first_input].shape[0]
                       for values in values_list}
            if len(extents) > 1:
                return None  # mixed extents: in-process grouping
            found = extents.pop()
            if found != sym.base_extent:
                extent = int(found)
        with self._lock:
            if self.closed:
                return None
            return self._run_locked(values_list, extent)

    def _layout_for(self, extent):
        """The (parent-side) layout serving one runtime extent;
        ``None`` is the base concrete layout."""
        if extent is None:
            return self.layout
        found = self._layouts.get(extent)
        if found is None:
            found = self._layouts[extent] = ShardLayout(
                self.session.program, self.capacity, extent=extent)
        return found

    def _run_locked(self, values_list, extent=None):
        n = len(values_list)
        num = self._num_shards(n)
        base, extra = divmod(n, num)
        shards, start = [], 0
        for i in range(num):
            count = base + (1 if i < extra else 0)
            shards.append(_Shard(start, count))
            start += count
        injector = self.session._injector
        if injector is not None and injector.on_parallel_dispatch():
            shards[0].crash = True
        rows = [None] * n
        pending = deque(range(num))
        idle = deque(range(len(self._workers)))
        active: dict[int, int] = {}
        deadline = time.monotonic() + _DISPATCH_TIMEOUT_S
        layout = self._layout_for(extent)
        while pending or active:
            while pending and idle:
                shard = shards[pending[0]]
                if shard.seg is None:
                    shard.seg = self.ring.acquire()
                    buf = self.ring.buf(shard.seg)
                    for i in range(shard.count):
                        layout.write_inputs(buf, i,
                                            values_list[shard.start + i])
                worker_index = idle.popleft()
                shard_index = pending.popleft()
                self._workers[worker_index].conn.send(
                    ("run", shard.seg, shard.count, shard.crash, extent))
                shard.crash = False  # an injected crash fires once
                active[worker_index] = shard_index
            conns = {self._workers[w].conn: w for w in active}
            sentinels = {self._workers[w].proc.sentinel: w for w in active}
            timeout = deadline - time.monotonic()
            if timeout <= 0:
                raise WorkerCrashed(
                    f"parallel dispatch stalled past "
                    f"{_DISPATCH_TIMEOUT_S:.0f}s with shards in flight",
                    backend=self.name_for_errors())
            ready = connection.wait(
                list(conns) + list(sentinels), timeout=timeout)
            handled = set()
            for obj in ready:
                worker_index = conns.get(obj)
                if worker_index is None:
                    worker_index = sentinels.get(obj)
                if worker_index is None or worker_index in handled \
                        or worker_index not in active:
                    continue
                handled.add(worker_index)
                self._settle(worker_index, shards, values_list, rows,
                             active, idle, pending, layout)
        for shard in shards:
            if shard.error is not None:
                raise shard.error
        self._fill_reports(rows, extent)
        return rows, any(shard.batched for shard in shards)

    def _settle(self, worker_index: int, shards, values_list, rows,
                active, idle, pending, layout) -> None:
        """Consume one worker's completion - a reply or a death."""
        worker = self._workers[worker_index]
        shard_index = active[worker_index]
        shard = shards[shard_index]
        message = None
        try:
            if worker.conn.poll():
                message = worker.conn.recv()
        except (EOFError, OSError):
            message = None
        if message is None:
            # No reply and the sentinel fired: the process died
            # mid-shard.  Respawn (the ring - with this shard's inputs
            # still in place - is re-inherited by the fresh fork) and
            # re-dispatch; after the retry budget, run in-process.
            del active[worker_index]
            worker.conn.close()
            worker.proc.join(timeout=5)
            self.restarts += 1
            shard.tries += 1
            logger.warning(
                "parallel worker %d died mid-shard (exit %s); respawning "
                "(restart %d, shard try %d/%d)", worker_index,
                worker.proc.exitcode, self.restarts, shard.tries,
                _MAX_SHARD_RETRIES + 1)
            self._workers[worker_index] = self._spawn(worker_index)
            idle.append(worker_index)
            if shard.tries <= _MAX_SHARD_RETRIES:
                pending.append(shard_index)
            else:
                self._rescue_in_process(shard, values_list, rows)
                self.ring.release(shard.seg)
                shard.seg = None
            return
        kind = message[0]
        del active[worker_index]
        idle.append(worker_index)
        if kind == "ok":
            _, seg_index, walls, _backend_name, was_batched = message
            shard.batched = bool(was_batched)
            buf = self.ring.buf(seg_index)
            for i in range(shard.count):
                rows[shard.start + i] = (
                    layout.read_outputs(buf, i), None, walls[i])
        else:
            shard.error = message[2]
        self.ring.release(shard.seg)
        shard.seg = None

    def _rescue_in_process(self, shard, values_list, rows) -> None:
        """Last-resort execution of a repeatedly-crashing shard in the
        parent, through the same ``execute_values`` funnel on the inner
        backend - byte-identical outputs, no scale-out for this shard."""
        logger.warning(
            "shard of %d requests exceeded its respawn budget; executing "
            "in-process on %r", shard.count, self.inner_name)
        copies = [dict(values_list[shard.start + i])
                  for i in range(shard.count)]
        results, _backend_name, _batched = self.session.execute_values(
            copies, backend=get_backend(self.inner_name))
        for i, row in enumerate(results):
            rows[shard.start + i] = row

    def _fill_reports(self, rows, extent=None) -> None:
        """Stamp the shared steady-state PoolReport on worker-served
        rows (the worker's pool did the real accounting in its own
        process; the parent-side report mirrors the steady-state shape
        ``run_many`` fabricates once a pool is warm)."""
        program = self.session.program
        if extent is not None:
            # Off-base extents executed through the bucket's symbolic
            # variant in the worker: report that variant's plan.
            from .batching import bucket, symbolize

            sym = self.session.symbolic
            factor = bucket(max(1, -(-extent // sym.base_extent)))
            program = symbolize(self.session.program, factor)
        plan = program.slot_plan
        report = PoolReport(
            peak_bytes=plan.peak_bytes,
            peak_copy_bytes=0,
            final_bytes=self.session.pool.live_bytes,
            timeline=program.timeline,
            allocations=0,
            reuses=plan.allocs_per_run,
            total_allocated_bytes=plan.total_allocated_bytes,
        )
        for i, row in enumerate(rows):
            if row is not None and row[1] is None:
                rows[i] = (row[0], report, row[2])


# ---------------------------------------------------------------------------
# the backends
# ---------------------------------------------------------------------------


@register_backend
class ParallelBackend(ExecutionBackend):
    """Multi-process backend: shards invocations across a worker pool.

    ``shards_requests`` marks it for
    :meth:`~repro.runtime.session.Session.execute_values`, which routes
    multi-request invocations through :meth:`try_sharded` instead of the
    in-process stacked/sequential paths.  Everything else - ``run``,
    ``run_serving``, ``run_many``, fusion attribution - delegates to the
    *inner* backend, so a parallel session that cannot shard (platform
    without ``fork``, per-request parameter overrides, pool startup
    failure) behaves exactly like its inner backend in-process.
    """

    name = "parallel"
    inner = "numpy"
    shards_requests = True

    def _inner(self) -> ExecutionBackend:
        return get_backend(self.inner)

    def fused_steps(self, program) -> int:
        return self._inner().fused_steps(program)

    def run(self, program, values):
        return self._inner().run(program, values)

    def run_serving(self, program, values, pool):
        return self._inner().run_serving(program, values, pool)

    def run_many(self, program, values_list, pool):
        return self._inner().run_many(program, values_list, pool)

    def run_stacked(self, program, variant, values_list, pool):
        return self._inner().run_stacked(program, variant, values_list, pool)

    def try_sharded(self, session, values_list):
        """Serve the invocation across the session's worker pool.

        Returns ``(rows, batched)`` or ``None`` when the pool is
        unavailable (unsupported platform, startup failure, closed) or
        the invocation carries per-request parameter overrides - the
        caller then takes the normal in-process path on :attr:`inner`.
        """
        pool = session.ensure_parallel_pool()
        if pool is None:
            return None
        return pool.run(values_list)


@register_backend
class ParallelCodegenBackend(ParallelBackend):
    """Worker processes executing the fused codegen path."""

    name = "parallel-codegen"
    inner = "codegen"


__all__ = [
    "ParallelBackend", "ParallelCodegenBackend", "WorkerPool",
    "parallel_supported",
]
