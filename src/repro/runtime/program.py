"""Lowered execution programs and pluggable execution backends.

SmartMem's central claim is that decisions made once at compile time pay
off on every inference.  The serving layer used to undercut that by
re-interpreting the :class:`~repro.ir.graph.Graph` per request: per-node
kernel dict lookups, per-node view resolution, per-run liveness dict
bookkeeping.  :func:`lower` moves all of that to compile time, producing
an :class:`ExecutionProgram`:

* a flat tuple of :class:`Step`\\ s - one per node, in execution order -
  with the kernel callable pre-bound via
  :func:`~repro.runtime.kernels.get_kernel`, input views pre-resolved to
  plain appliers, and output shapes pre-fetched from the tensor specs;
* a static :class:`SlotPlan` - register allocation of pool buffers over
  exact size classes, computed once from
  :func:`~repro.memory.pool.liveness_schedule` - so per-request pool
  accounting becomes slot-indexed integer ops instead of per-run dict
  bookkeeping.  The slot plan also fixes the per-step live-byte timeline,
  the peak footprint, and the total allocation traffic statically: they
  are identical for every request by construction.

Programs are memoized on the graph's analysis cache (keyed by graph
generation), so the executor, the verifier, and every
:class:`~repro.runtime.session.Session` serving the same compiled graph
share one lowering - and the PR-1 compile-core cache, which pins graph
objects, carries the program across sessions for free.

Execution itself lives behind the :class:`ExecutionBackend` interface
with a registry mirroring ``@register_pass``::

    @register_backend
    class MyBackend(ExecutionBackend):
        name = "my-backend"

        def run(self, program, values): ...
        def run_serving(self, program, values, pool): ...

:class:`NumPyBackend` is the reference implementation; ``Session``,
``executor.execute`` and ``verify_equivalence`` all drive it through the
same program path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from ..api.errors import ExecutionError
from ..ir.graph import Graph
from ..ir.symbolic import SymDim
from ..ir.view import ViewChain
from ..memory.pool import (
    MemoryPool, PoolEvent, PoolReport, liveness_schedule,
)
from .kernels import bind_conv2d, get_kernel, layout_convert_elided
from .traffic import roofline_summary, step_traffic

_PROGRAM_CACHE_KEY = "execution_program"


# ---------------------------------------------------------------------------
# lowered program
# ---------------------------------------------------------------------------


def _compile_view(chain: ViewChain) -> Callable[[np.ndarray], np.ndarray]:
    """Pre-resolve a ViewChain into one applier closure.

    Each relayout step becomes a direct ndarray method call (slice index
    tuples prebuilt), skipping the chain's per-apply shape check and step
    dispatch on the hot path.
    """
    fns: list[Callable[[np.ndarray], np.ndarray]] = []
    for step in chain.steps:
        if step.kind == "reshape":
            fns.append(lambda a, _shape=step.arg: a.reshape(_shape))
        elif step.kind == "transpose":
            fns.append(lambda a, _perm=step.arg: a.transpose(_perm))
        else:  # slice
            index = tuple(slice(lo, hi, st) for lo, hi, st in step.arg)
            fns.append(lambda a, _index=index: a[_index])
    if len(fns) == 1:
        return fns[0]

    def applier(array: np.ndarray, _fns=tuple(fns)) -> np.ndarray:
        for fn in _fns:
            array = fn(array)
        return array

    return applier


@dataclass(frozen=True)
class Step:
    """One pre-resolved node execution: everything a backend needs,
    fetched once at lowering time."""

    node_id: str
    op_type: str
    kernel: Callable
    arg_names: tuple[str, ...]
    appliers: tuple[tuple[int, Callable], ...]
    """(input position, compiled view applier) for non-identity views."""
    views: tuple[tuple[int, ViewChain], ...]
    """(input position, raw ViewChain) the appliers were compiled from -
    the lowering-time capture backends that re-emit the views (e.g.
    codegen) must read, never the live graph."""
    attrs: dict
    """The node's attrs dict, shared by reference (treat as read-only)."""
    out_names: tuple[str, ...]
    out_shapes: tuple[tuple[int, ...], ...]
    alloc_slots: tuple[int, ...]
    """Buffer slots acquired after this step runs (materialized outputs)."""
    release_slots: tuple[int, ...]
    """Buffer slots returned after this step runs (dying tensors)."""
    drops: tuple[str, ...]
    """Value names whose backing ndarrays die at this step (fusion-group
    internals included), bounding process memory by the live set."""
    bytes_read: int = 0
    """Static algorithmic input traffic (argument tensor bytes)."""
    bytes_written: int = 0
    """Static algorithmic output traffic (output tensor bytes)."""
    flops: int = 0
    """Static floating-point work dispatched by this step."""
    scratch_bytes: int = 0
    """Reusable scratch owned by this step's bound kernel (im2col
    buffers), sized statically at lowering; 0 for scratchless steps."""


@dataclass(frozen=True)
class SlotPlan:
    """Static buffer-slot assignment: register allocation over exact size
    classes, mirroring :class:`~repro.memory.pool.SizeClassPool`'s reuse
    discipline so slot-driven pool traffic matches the dynamic walk
    count-for-count."""

    slot_sizes: tuple[int, ...]
    """Byte size of each slot; index is the slot id."""
    tensor_slot: dict[str, int]
    """Pool-visible tensor -> its slot (read-only by convention)."""
    input_slots: tuple[int, ...]
    """Slots acquired at request admission, one per graph input."""
    timeline_live: tuple[int, ...]
    """Live pool bytes after each step's allocations - static, identical
    for every request."""
    peak_bytes: int
    total_allocated_bytes: int
    size_class_counts: dict[int, int]
    """Slot count per size class - the pool's exact free-block state
    between steady-state runs (read-only by convention)."""
    allocs_per_run: int
    """Pool allocation events per run (a slot freed mid-run can serve a
    later same-size tensor, so this can exceed the slot count)."""
    scratch_sizes: tuple[int, ...] = ()
    """Reusable-scratch classes (one per scratch-owning step, in step
    order): bytes held across runs by bound kernels (im2col buffers).
    Unlike slots these are never allocated or released per request -
    they are part of the program's resident footprint."""

    @property
    def num_slots(self) -> int:
        return len(self.slot_sizes)

    @property
    def scratch_bytes(self) -> int:
        return sum(self.scratch_sizes)


def _compile_step(step: Step) -> Callable[[dict], None]:
    """Fold one step into a single closure over pre-resolved state.

    The closure reads its inputs from / writes its outputs to a values
    dict; kernel, argument names, view appliers, attrs, and the expected
    output shapes are captured once here instead of being re-resolved per
    request.
    """
    kernel = step.kernel
    names = step.arg_names
    attrs = step.attrs
    appliers = step.appliers
    out_names = step.out_names
    shapes = step.out_shapes
    op_type = step.op_type
    node_id = step.node_id

    symbolic = any(s and isinstance(s[0], SymDim) for s in shapes)

    if len(out_names) > 1:
        if symbolic:
            # Symbolic specs pin rank and trailing extents; the leading
            # extent is the runtime extent, free by construction.  The
            # error text matches the concrete branch (and the codegen
            # backend) character-for-character - repr(SYM) is "?".
            tails = tuple((len(s), tuple(s[1:])) for s in shapes)

            def execute(values: dict) -> None:
                args = [values[n] for n in names]
                for idx, apply in appliers:
                    args[idx] = apply(args[idx])
                for name, shape, (rank, tail), value in zip(
                        out_names, shapes, tails, kernel(args, attrs)):
                    if len(value.shape) != rank or value.shape[1:] != tail:
                        raise ExecutionError(
                            f"kernel {op_type} ({node_id}) produced shape "
                            f"{value.shape}, spec says {shape}")
                    values[name] = value
            return execute

        def execute(values: dict) -> None:
            args = [values[n] for n in names]
            for idx, apply in appliers:
                args[idx] = apply(args[idx])
            for name, shape, value in zip(out_names, shapes,
                                          kernel(args, attrs)):
                if value.shape != shape:
                    raise ExecutionError(
                        f"kernel {op_type} ({node_id}) produced shape "
                        f"{value.shape}, spec says {shape}")
                values[name] = value
        return execute

    out = out_names[0]
    shape = shapes[0]

    if symbolic:
        rank = len(shape)
        tail = tuple(shape[1:])

        def execute(values: dict) -> None:
            args = [values[n] for n in names]
            for idx, apply in appliers:
                args[idx] = apply(args[idx])
            result = kernel(args, attrs)
            if type(result) in (tuple, list):
                result = result[0]
            if len(result.shape) != rank or result.shape[1:] != tail:
                raise ExecutionError(
                    f"kernel {op_type} ({node_id}) produced shape "
                    f"{result.shape}, spec says {shape}")
            values[out] = result

        return execute

    def execute(values: dict) -> None:
        args = [values[n] for n in names]
        for idx, apply in appliers:
            args[idx] = apply(args[idx])
        result = kernel(args, attrs)
        if type(result) in (tuple, list):
            result = result[0]
        if result.shape != shape:
            raise ExecutionError(
                f"kernel {op_type} ({node_id}) produced shape "
                f"{result.shape}, spec says {shape}")
        values[out] = result

    return execute


class ExecutionProgram:
    """A graph lowered for repeated execution on a pluggable backend."""

    __slots__ = ("graph", "steps", "slot_plan", "input_names",
                 "output_names", "input_signature", "batch_factor",
                 "timeline", "op_list", "backend_cache", "fused_chains",
                 "fused_interiors", "fused_step_count", "symbolic_extent")

    def __init__(self, graph: Graph, steps: tuple[Step, ...],
                 slot_plan: SlotPlan,
                 input_signature: tuple | None = None,
                 batch_factor: int = 1,
                 fused_chains: tuple[tuple[int, ...], ...] = (),
                 symbolic_extent: int | None = None) -> None:
        self.graph = graph
        self.steps = steps
        self.slot_plan = slot_plan
        # Elementwise chains (runs of step indices) the codegen backend
        # collapses into one register expression; interiors hold no slot
        # in either backend's plan.  Batch-N variants inherit the chains
        # verbatim - step indices are stable across rebatching.
        self.fused_chains = fused_chains
        self.fused_interiors = frozenset(
            steps[j].out_names[0] for chain in fused_chains
            for j in chain[:-1])
        self.fused_step_count = sum(
            len(chain) - 1 for chain in fused_chains)
        self.input_names = tuple(graph.inputs)
        self.output_names = tuple(graph.outputs)
        # Batch-compatibility metadata: the exact request shape this
        # program admits - (name, shape, dtype) per graph input.  The
        # service scheduler validates every request against it and only
        # coalesces requests admitted under an equal :attr:`batch_key`
        # into one backend invocation.  Batch-N variants built by
        # :func:`repro.runtime.batching.rebatch` pass their scaled
        # signature explicitly; base lowerings derive it from the graph.
        if input_signature is not None:
            self.input_signature = input_signature
        else:
            self.input_signature = tuple(
                (name, tuple(graph.shape(name)),
                 str(np.dtype(graph.tensors[name].dtype.numpy_dtype)))
                for name in graph.inputs)
        # How many stacked requests one pass of this program serves: 1
        # for base lowerings, the bucket size for rebatched variants.
        self.batch_factor = batch_factor
        # Symbolic (extent-polymorphic) variants: the *bound* - the
        # largest leading extent this variant's slot plan, scratch, and
        # shm layouts are sized for.  The variant executes any request
        # whose leading extent is <= the bound at that exact extent (no
        # padding); None for concrete programs.
        self.symbolic_extent = symbolic_extent
        # One PoolEvent tuple per program, shared across every run's
        # PoolReport: the live-byte walk is static, and a tuple keeps a
        # consumer of one run's report from mutating every other's.
        self.timeline = tuple(
            PoolEvent(i, live, 0)
            for i, live in enumerate(slot_plan.timeline_live))
        # The hot-loop form: one compiled closure + the dying value names
        # per step.
        self.op_list = tuple(
            (_compile_step(step), step.drops) for step in steps)
        # Per-backend compiled artifacts (e.g. the codegen backend's
        # generated module), keyed by backend name.  Living on the
        # program - itself memoized per graph generation by
        # :func:`lower` - gives backend runners the same lifetime and
        # invalidation as the lowering they were compiled from.
        self.backend_cache: dict[str, object] = {}

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    def roofline(self) -> dict[str, dict]:
        """Per-kernel-family static traffic summary (memoized)."""
        found = self.backend_cache.get("roofline")
        if found is None:
            found = self.backend_cache["roofline"] = \
                roofline_summary(self.steps)
        return found

    @property
    def batch_key(self):
        """Coalescing contract token.

        Requests are batch-compatible - eligible for one backend
        invocation - only when admitted against programs whose
        ``batch_key`` compares equal.  Equality is necessary, not
        sufficient: a scheduler guarantees sufficiency by admitting all
        coalesced requests against a single program (which is what
        :class:`repro.api.Service` does).

        Compatibility says nothing about *how* the coalesced batch
        executes.  Whether the requests can additionally be stacked
        along the leading batch axis into one kernel pass per step is a
        separate, per-program property proved by
        :func:`repro.runtime.batching.analyze`: elementwise / matmul /
        norm / NCHW chains qualify, while ops that reduce, reshape,
        transpose, concat, or gather across the batch axis do not.
        Non-stackable programs still coalesce - they just execute the
        batch sequentially inside the single invocation, never a wrong
        stacked result.  Batch-N variants built from this program are
        cached on :attr:`backend_cache` keyed by the bucket size -
        equivalently ``(batch_key, N)``, since the variant cache lives
        on the key's referent.
        """
        return (self.graph.name, self.input_signature)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ExecutionProgram({self.graph.name!r}, steps={len(self.steps)}, "
                f"slots={self.slot_plan.num_slots})")


# ---------------------------------------------------------------------------
# elementwise-chain fusion analysis
# ---------------------------------------------------------------------------

#: Ops whose chained execution the codegen backend collapses into one
#: expression over a single register (in-place ufuncs where bitwise-safe).
_CHAIN_ELEMENTWISE = frozenset(
    {"unary", "binary", "layout_convert", "batchnorm"})
#: Zero-copy layout ops that ride along inside a chain (the register is
#: re-viewed, never copied, except reshape-of-transpose compaction -
#: exactly what the unfused kernels do).
_CHAIN_VIEWS = frozenset({"reshape", "transpose"})
_CHAIN_OPS = _CHAIN_ELEMENTWISE | _CHAIN_VIEWS


def find_fused_chains(graph: Graph, order, schedule) -> tuple[tuple[int, ...], ...]:
    """Maximal fusible chains as runs of consecutive step indices.

    A chain is a run of *adjacent* steps in execution order where every
    member is a single-output chain op, every interior output feeds ONLY
    the immediately following step (so it dies there and its buffer
    never outlives the chain), no interior is a graph output, and every
    value touched by the chain shares one dtype (so the emitted in-place
    ufuncs are bitwise-identical to the reference kernels' astype path).
    At least one member must be genuinely elementwise - a pure
    reshape/transpose run is already zero-copy and gains nothing.

    Interiors are dropped from the slot plan by :func:`_assign_slots`:
    with the codegen backend they are never materialized, and the
    sequential reference backend still executes step-by-step against the
    same plan (its interiors are transient Python locals, not pool
    buffers - the accounting stays additive across backends).
    """
    consumers: dict[str, int] = {}
    for node in order:
        for t in node.inputs:
            consumers[t] = consumers.get(t, 0) + 1
    outputs = set(graph.outputs)
    tensors = graph.tensors

    def dtype_of(name):
        return np.dtype(tensors[name].dtype.numpy_dtype)

    def chainable(node) -> bool:
        if node.op_type not in _CHAIN_OPS or len(node.outputs) != 1:
            return False
        dtype = dtype_of(node.outputs[0])
        return all(dtype_of(t) == dtype for t in node.inputs)

    chains: list[tuple[int, ...]] = []
    i, n = 0, len(order)
    while i < n:
        if not chainable(order[i]):
            i += 1
            continue
        run = [i]
        while run[-1] + 1 < n:
            cur, nxt = order[run[-1]], order[run[-1] + 1]
            out = cur.outputs[0]
            if (out in outputs or consumers.get(out, 0) != 1
                    or not chainable(nxt) or out not in nxt.inputs
                    or dtype_of(out) != dtype_of(nxt.outputs[0])):
                break
            run.append(run[-1] + 1)
        if len(run) >= 2 and any(
                order[j].op_type in _CHAIN_ELEMENTWISE for j in run):
            chains.append(tuple(run))
        i = run[-1] + 1
    return tuple(chains)


def _assign_slots(graph: Graph, order, schedule,
                  fused_interiors: frozenset[str] = frozenset()) -> tuple[
        SlotPlan, list[list[int]], list[list[int]]]:
    """Register-allocate pool buffers over exact size classes.

    Replays the liveness schedule once: a dying tensor's slot returns to
    its size class's free stack and serves the next same-size request.
    The resulting slot count per class equals the peak number of
    concurrently live pool tensors of that class.
    """
    tensors = graph.tensors
    materialized = schedule.materialized
    slot_sizes: list[int] = []
    free: dict[int, list[int]] = {}
    tensor_slot: dict[str, int] = {}

    def take(size: int) -> int:
        stack = free.get(size)
        if stack:
            return stack.pop()
        slot_sizes.append(size)
        return len(slot_sizes) - 1

    live = 0
    total = 0
    input_slots: list[int] = []
    for t in graph.inputs:
        size = tensors[t].size_bytes
        slot = take(size)
        tensor_slot[t] = slot
        input_slots.append(slot)
        live += size
        total += size

    alloc_slots_at: list[list[int]] = [[] for _ in order]
    release_slots_at: list[list[int]] = [[] for _ in order]
    timeline_live: list[int] = []
    for step, node in enumerate(order):
        for t in node.outputs:
            if t in materialized and t not in fused_interiors:
                size = tensors[t].size_bytes
                slot = take(size)
                tensor_slot[t] = slot
                alloc_slots_at[step].append(slot)
                live += size
                total += size
        timeline_live.append(live)
        for t in schedule.releases_at[step]:
            slot = tensor_slot.get(t)
            if slot is None:  # interior constants never touch the pool
                continue
            size = slot_sizes[slot]
            free.setdefault(size, []).append(slot)
            release_slots_at[step].append(slot)
            live -= size

    counts: dict[int, int] = {}
    for size in slot_sizes:
        counts[size] = counts.get(size, 0) + 1
    plan = SlotPlan(
        slot_sizes=tuple(slot_sizes),
        tensor_slot=tensor_slot,
        input_slots=tuple(input_slots),
        timeline_live=tuple(timeline_live),
        peak_bytes=max(timeline_live, default=0),
        total_allocated_bytes=total,
        size_class_counts=counts,
        allocs_per_run=len(input_slots) + sum(
            len(slots) for slots in alloc_slots_at),
    )
    return plan, alloc_slots_at, release_slots_at


def lower(graph: Graph) -> ExecutionProgram:
    """Lower ``graph`` to an :class:`ExecutionProgram`.

    Memoized per graph generation through the graph's analysis cache:
    repeated calls (the executor, the verifier, every session serving
    this graph) share one lowering until the next structural mutation.
    """
    cache = graph.analysis_cache()
    found = cache.get(_PROGRAM_CACHE_KEY)
    if found is not None:
        return found
    order = graph.topo_order()
    schedule = liveness_schedule(graph)
    chains = find_fused_chains(graph, order, schedule)
    fused_interiors = frozenset(
        order[j].outputs[0] for chain in chains for j in chain[:-1])
    plan, alloc_slots_at, release_slots_at = _assign_slots(
        graph, order, schedule, fused_interiors)
    tensors = graph.tensors
    materialized = schedule.materialized
    graph_inputs = set(graph.inputs)

    def make_step(i: int, node) -> Step:
        # One view capture; the appliers are *derived* from it, so the
        # two fields cannot drift apart (the codegen backend re-emits
        # from ``views`` and must describe exactly what the compiled
        # appliers execute).
        views = tuple(
            (idx, view)
            for idx, view in sorted(node.input_views.items())
            if not view.is_identity)
        view_shapes = {idx: tuple(view.out_shape) for idx, view in views}
        arg_shapes = tuple(
            view_shapes.get(idx, tuple(graph.shape(t)))
            for idx, t in enumerate(node.inputs))
        arg_itemsizes = tuple(
            np.dtype(tensors[t].dtype.numpy_dtype).itemsize
            for t in node.inputs)
        out_shapes = tuple(graph.shape(t) for t in node.outputs)
        out_itemsizes = tuple(
            np.dtype(tensors[t].dtype.numpy_dtype).itemsize
            for t in node.outputs)
        reads, writes, flops = step_traffic(
            node.op_type, node.attrs, arg_shapes, arg_itemsizes,
            out_shapes, out_itemsizes)

        run_kernel = get_kernel(node.op_type)
        scratch_bytes = 0
        if node.op_type == "conv2d":
            # Bind the step to a statically planned im2col scratch: the
            # padded-input and column buffers are owned by the program
            # (reported as a reusable-scratch class on the slot plan)
            # and reused across every run instead of reallocated.
            run_kernel, scratch = bind_conv2d(
                arg_shapes[0], arg_shapes[1], node.attrs)
            scratch_bytes = scratch.nbytes(arg_itemsizes[0])
        elif node.op_type == "layout_convert":
            # Copy elision: when the converted value is a pool interior
            # dying at this very step, nothing else will ever read it -
            # pass it through if already contiguous, else compact it.
            # Graph inputs/params keep the alias-free reference kernel
            # (the caller's arrays must never be returned).
            src = node.inputs[0]
            if (src in materialized and src not in graph_inputs
                    and src in schedule.value_drops_at[i]):
                run_kernel = layout_convert_elided

        return Step(
            node_id=node.id,
            op_type=node.op_type,
            kernel=run_kernel,
            arg_names=tuple(node.inputs),
            appliers=tuple(
                (idx, _compile_view(view)) for idx, view in views),
            views=views,
            attrs=node.attrs,
            out_names=tuple(node.outputs),
            out_shapes=out_shapes,
            alloc_slots=tuple(alloc_slots_at[i]),
            release_slots=tuple(release_slots_at[i]),
            drops=tuple(schedule.value_drops_at[i]),
            bytes_read=reads,
            bytes_written=writes,
            flops=flops,
            scratch_bytes=scratch_bytes,
        )

    steps = tuple(make_step(i, node) for i, node in enumerate(order))
    plan = replace(plan, scratch_sizes=tuple(
        step.scratch_bytes for step in steps if step.scratch_bytes))
    program = ExecutionProgram(graph, steps, plan, fused_chains=chains)
    cache[_PROGRAM_CACHE_KEY] = program
    return program


# ---------------------------------------------------------------------------
# backend registry (mirrors the @register_pass registry)
# ---------------------------------------------------------------------------


class ExecutionBackend:
    """Executes lowered programs.  Subclass, set :attr:`name`, decorate
    with :func:`register_backend`, and implement :meth:`run` (plain
    verification execution) and :meth:`run_serving` (pool-accounted
    serving execution)."""

    name = "backend"

    def fused_steps(self, program: ExecutionProgram) -> int:
        """Steps this backend collapses into fused-chain expressions when
        serving ``program``.  The reference backend (and any backend that
        dispatches one kernel per step) reports 0; backends that execute
        the program's fused chains as single expressions report
        :attr:`ExecutionProgram.fused_step_count`."""
        return 0

    def run(self, program: ExecutionProgram,
            values: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Execute ``program`` over ``values`` (mutated in place; pass a
        private dict) and return the graph outputs."""
        raise NotImplementedError

    def run_serving(self, program: ExecutionProgram,
                    values: dict[str, np.ndarray],
                    pool: MemoryPool) -> tuple[dict[str, np.ndarray], PoolReport]:
        """Execute one request against a long-lived pool; returns
        ``(outputs, per-request PoolReport)``."""
        raise NotImplementedError

    def run_many(self, program: ExecutionProgram,
                 values_list: list[dict[str, np.ndarray]],
                 pool: MemoryPool,
                 ) -> list[tuple[dict[str, np.ndarray], PoolReport, float]]:
        """Serve a batch of requests in one backend invocation; returns
        ``(outputs, report, wall_seconds)`` per request."""
        perf = time.perf_counter
        results = []
        for values in values_list:
            start = perf()
            outputs, report = self.run_serving(program, values, pool)
            results.append((outputs, report, perf() - start))
        return results


BACKEND_REGISTRY: dict[str, type[ExecutionBackend]] = {}
_BACKEND_INSTANCES: dict[str, ExecutionBackend] = {}


def register_backend(cls: type[ExecutionBackend]) -> type[ExecutionBackend]:
    """Class decorator: make ``cls`` constructible by name."""
    if not cls.name or cls.name == ExecutionBackend.name:
        raise ValueError(f"backend class {cls.__name__} needs a distinct name")
    BACKEND_REGISTRY[cls.name] = cls
    _BACKEND_INSTANCES.pop(cls.name, None)  # re-registration resets singleton
    return cls


def get_backend(name: str = "numpy") -> ExecutionBackend:
    """Shared backend instance by registry name."""
    found = _BACKEND_INSTANCES.get(name)
    if found is None:
        try:
            cls = BACKEND_REGISTRY[name]
        except KeyError:
            raise KeyError(f"unknown backend {name!r}; "
                           f"available: {available_backends()}") from None
        found = _BACKEND_INSTANCES[name] = cls()
    return found


def available_backends() -> list[str]:
    return sorted(BACKEND_REGISTRY)


# ---------------------------------------------------------------------------
# the reference backend
# ---------------------------------------------------------------------------


@register_backend
class NumPyBackend(ExecutionBackend):
    """Reference backend: runs the pre-compiled step closures in order.

    The hot loop touches only program-local state: prebound kernels,
    precompiled view appliers, prefetched shapes, and slot-indexed pool
    ops - no graph, tensor-spec, or kernel-registry traffic per request.
    Once a session pool reaches steady state (its free blocks are exactly
    the program's slot plan), the pool interplay of a run is static by
    construction and collapses to one counter update.

    Execution strategy is a per-program *runner pair* built once by
    :meth:`_compile_runners` and cached on
    :attr:`ExecutionProgram.backend_cache`:

    * ``plain(values) -> outputs`` - the steady-state / verification
      executor (no pool traffic);
    * ``accounted(values, allocate, release, active) -> outputs`` - the
      warm-up executor, interleaving slot-indexed pool ops with the
      steps and marking acquired slots in ``active`` so the caller can
      release whatever is live even when a kernel raises.

    Subclasses that execute differently (e.g. the codegen backend, which
    compiles the whole step loop to Python source) only override
    :meth:`_compile_runners`; the pool/steady-state/batching discipline
    in :meth:`run_many` is shared.
    """

    name = "numpy"

    def _runners(self, program: ExecutionProgram):
        """The program's ``(plain, accounted)`` executors, built once per
        (program, backend) and cached on the program."""
        found = program.backend_cache.get(self.name)
        if found is None:
            found = program.backend_cache[self.name] = \
                self._compile_runners(program)
        return found

    def _compile_runners(self, program: ExecutionProgram):
        """Build the ``(plain, accounted)`` executor pair - the only
        method an execution-strategy subclass needs to override."""
        op_list = program.op_list
        output_names = program.output_names
        steps = program.steps
        plan = program.slot_plan
        slot_sizes = plan.slot_sizes
        input_slots = plan.input_slots

        def plain(values: dict) -> dict:
            for execute, drops in op_list:
                execute(values)
                for t in drops:
                    values.pop(t, None)
            return {name: values[name] for name in output_names}

        def accounted(values: dict, allocate, release, active) -> dict:
            for slot in input_slots:
                allocate(slot_sizes[slot])
                active[slot] = 1
            for index, (execute, drops) in enumerate(op_list):
                execute(values)
                step = steps[index]
                for slot in step.alloc_slots:
                    allocate(slot_sizes[slot])
                    active[slot] = 1
                for slot in step.release_slots:
                    release(slot_sizes[slot])
                    active[slot] = 0
                for t in drops:
                    values.pop(t, None)
            return {name: values[name] for name in output_names}

        return plain, accounted

    def run(self, program: ExecutionProgram,
            values: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        return self._runners(program)[0](values)

    def run_serving(self, program: ExecutionProgram,
                    values: dict[str, np.ndarray],
                    pool: MemoryPool) -> tuple[dict[str, np.ndarray], PoolReport]:
        return self.run_many(program, (values,), pool)[0][:2]

    def run_many(self, program: ExecutionProgram,
                 values_list, pool: MemoryPool,
                 ) -> list[tuple[dict[str, np.ndarray], PoolReport, float]]:
        # Dispatch state is hoisted out of the request loop once: batch
        # requests share one resolution of the program and pool.
        plain, accounted = self._runners(program)
        plan = program.slot_plan
        slot_sizes = plan.slot_sizes
        timeline = program.timeline
        peak_bytes = plan.peak_bytes
        total_allocated = plan.total_allocated_bytes
        steady_state = plan.size_class_counts
        allocs_per_run = plan.allocs_per_run
        matches_free_state = getattr(pool, "matches_free_state", None)
        allocate = pool.allocate
        release = pool.release
        perf = time.perf_counter
        results = []
        if values_list and matches_free_state is not None \
                and matches_free_state(steady_state):
            # Batched steady state: every run of the batch leaves the free
            # state invariant (each allocation is a reuse and every block
            # returns), so the per-request steady check, pool counter
            # updates, and PoolReport construction are hoisted out of the
            # request loop - one report, shared by every result of the
            # batch (read-only by convention, like the timeline tuple:
            # its fields are identical for every steady-state run by
            # construction), and the counters are applied per batch.  This
            # is the path the service scheduler's coalesced micro-batches
            # hit.  A raising kernel propagates with the pool untouched -
            # the ``finally`` still credits the runs that completed.
            report = PoolReport(
                peak_bytes=peak_bytes,
                peak_copy_bytes=0,
                final_bytes=pool.live_bytes,
                timeline=timeline,
                allocations=0,
                reuses=allocs_per_run,
                total_allocated_bytes=total_allocated,
            )
            completed = 0
            try:
                for values in values_list:
                    start = perf()
                    outputs = plain(values)
                    results.append((outputs, report, perf() - start))
                    completed += 1
            finally:
                if completed:
                    pool.reuses += allocs_per_run * completed
                    if pool.live_bytes + peak_bytes > pool.peak_bytes:
                        pool.peak_bytes = pool.live_bytes + peak_bytes
            return results
        for values in values_list:
            start = perf()
            if matches_free_state is not None \
                    and matches_free_state(steady_state):
                # Steady state mid-batch (the batch's first requests just
                # warmed the pool): apply the static deltas once.
                outputs = plain(values)
                pool.reuses += allocs_per_run
                if pool.live_bytes + peak_bytes > pool.peak_bytes:
                    pool.peak_bytes = pool.live_bytes + peak_bytes
                allocations = 0
                reuses = allocs_per_run
            else:
                allocations_before = pool.allocations
                reuses_before = pool.reuses
                # Slot-indexed liveness: every acquired slot is returned
                # even when a kernel raises, so a failed request cannot
                # corrupt the long-lived pool of a serving session.
                active = bytearray(len(slot_sizes))
                try:
                    outputs = accounted(values, allocate, release, active)
                finally:
                    # Graph outputs, never-consumed inputs, and - on
                    # failure - whatever was live at the raising step.
                    for slot, is_live in enumerate(active):
                        if is_live:
                            release(slot_sizes[slot])
                allocations = pool.allocations - allocations_before
                reuses = pool.reuses - reuses_before
            report = PoolReport(
                peak_bytes=peak_bytes,
                peak_copy_bytes=0,
                final_bytes=pool.live_bytes,
                timeline=timeline,
                allocations=allocations,
                reuses=reuses,
                total_allocated_bytes=total_allocated,
            )
            results.append((outputs, report, perf() - start))
        return results

    def run_stacked(self, program: ExecutionProgram,
                    variant: ExecutionProgram, values_list,
                    pool: MemoryPool,
                    ) -> list[tuple[dict[str, np.ndarray], PoolReport, float]]:
        """Serve a stackable micro-batch as ONE pass of ``variant``.

        Per-request input tensors are concatenated along the leading
        batch axis (padded up to ``variant.batch_factor`` by replicating
        the last request, so every bucket sees well-formed data), the
        batch-N variant runs once through :meth:`run_many` - one kernel
        invocation per step for the whole micro-batch - and the batched
        outputs are split back per request.  Values outside the batched
        set (graph outputs that are pure parameter expressions) are
        shared unsliced.  Subclasses inherit this unchanged: the variant
        is an ordinary program, so the codegen backend transparently
        emits batch-N source for it via ``_compile_runners``.

        Result rows mirror :meth:`run_many`: ``(outputs, report, wall)``
        per request, with the PoolReport *shared* (the pass is one pool
        interaction) and the stacked wall time divided evenly - callers
        flag the attribution via ``RunStats.batched``.
        """
        from .batching import analyze  # deferred: batching imports us

        analysis = analyze(program)
        extent = analysis.batch_extent
        batched = analysis.batched
        n = len(values_list)
        pad = variant.batch_factor - n
        stacked = dict(values_list[0])
        for name in program.input_names:
            arrays = [values[name] for values in values_list]
            if pad:
                arrays.extend([arrays[-1]] * pad)
            stacked[name] = np.concatenate(arrays, axis=0)
        (outputs, report, wall), = self.run_many(variant, (stacked,), pool)
        share = wall / n
        results = []
        for i in range(n):
            lo = i * extent
            hi = lo + extent
            results.append((
                {name: value[lo:hi] if name in batched else value
                 for name, value in outputs.items()},
                report, share))
        return results
