"""Compile-once / run-many execution sessions.

A :class:`Session` holds one compiled (model, framework, device) triple:
the optimized graph, its lowered
:class:`~repro.runtime.program.ExecutionProgram`, its cost-model config,
and a long-lived :class:`~repro.memory.pool.SizeClassPool`.  Compilation
goes through the bench harness's process-wide compile/cost cell cache
(PR 1), so compiling the same triple twice - or costing it in a benchmark
and then serving it - reuses one compile *and* one lowering.

The session itself is now only request admission + statistics: every
``run(inputs)`` / ``run_batch(list_of_inputs)`` validates the request,
merges it over the session's materialized parameters, and hands the
values to the session's :class:`~repro.runtime.program.ExecutionBackend`
- the per-node interpretation (kernel lookups, view resolution, liveness
bookkeeping) was all moved to compile time by
:func:`~repro.runtime.program.lower`:

* parameters are materialized once at session creation, not per request;
* buffer liveness is a static slot plan computed once from
  :func:`repro.memory.pool.liveness_schedule`, so per-request pool
  accounting is slot-indexed integer ops against the session's pool -
  the *second* run of a session satisfies every request from blocks the
  first run returned (observable as ``RunStats.pool.allocations``
  dropping to zero while ``reuses`` climbs);
* dead intermediate ndarrays are dropped mid-run, bounding true process
  memory by the live set rather than the whole graph;
* ``run_batch`` executes through one backend invocation, amortizing
  dispatch across the batch.

    >>> session = compile_session("Swin", "Ours")
    >>> out = session.run(session.make_inputs(seed=0))
    >>> out = session.run(session.make_inputs(seed=0))
    >>> session.stats.runs[-1].pool.reuses   # second run reuses blocks
"""

from __future__ import annotations

import time
import warnings
from collections import OrderedDict, deque
from dataclasses import dataclass, field

import numpy as np

from ..ir.graph import Graph
from ..memory.pool import PoolReport, SizeClassPool
from .device import DeviceSpec, SD8GEN2
from .executor import make_inputs
from .program import ExecutionProgram, get_backend, lower

_DEPRECATION_WARNED: set[str] = set()
"""Shim names that already warned this process (each warns exactly once)."""


def _warn_deprecated(name: str, instead: str) -> None:
    if name in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(name)
    warnings.warn(
        f"{name} is deprecated; use {instead} (see the repro.api package)",
        DeprecationWarning, stacklevel=3)


@dataclass
class RunStats:
    """Accounting for one ``run()`` request."""

    request: int
    wall_s: float
    est_latency_ms: float
    pool: PoolReport
    """Per-request pool delta: ``allocations`` counts *new* blocks this
    run created; ``reuses`` counts requests served from freed blocks."""


@dataclass
class SessionStats:
    """Aggregate accounting across a session's lifetime.

    ``runs`` keeps only the most recent requests (bounded deque): a
    long-lived serving session must not grow memory linearly with
    request count, while the aggregate counters cover the lifetime.
    """

    requests: int = 0
    total_wall_s: float = 0.0
    runs: deque[RunStats] = field(
        default_factory=lambda: deque(maxlen=256))

    @property
    def mean_wall_s(self) -> float:
        return self.total_wall_s / self.requests if self.requests else 0.0


class Session:
    """One compiled module, ready to serve repeated requests.

    The session is request admission + stats; execution is the lowered
    program on the configured backend (``"numpy"`` by default)."""

    def __init__(self, graph: Graph, plan, config, device: DeviceSpec,
                 framework: str = "Ours", model: str = "",
                 cell=None, program: ExecutionProgram | None = None,
                 backend: str = "numpy") -> None:
        self.graph = graph
        self.plan = plan
        self.config = config
        self.device = device
        self.framework = framework
        self.model = model
        self.backend = backend
        self._backend = get_backend(backend)
        self._cell = cell
        self._report = None
        self._est_latency_ms: float | None = None
        self.pool = SizeClassPool()
        self._program = program
        self._param_values: dict[str, np.ndarray] | None = None
        self._input_cache: dict[int, dict[str, np.ndarray]] = {}
        self.stats = SessionStats()

    @property
    def program(self) -> ExecutionProgram:
        """The lowered program this session serves.

        The ``Ours`` pipeline lowers as its final pass, so the program
        usually arrives with the compile-cache result; other frameworks
        lower lazily here (memoized on the graph, hence still shared
        across sessions of the same compiled graph)."""
        if self._program is None:
            self._program = lower(self.graph)
        return self._program

    @property
    def _params(self) -> dict[str, np.ndarray]:
        """Parameters (and interior constants), materialized once on the
        first request - not per run, and not at compile time."""
        if self._param_values is None:
            self._param_values = {
                name: value
                for name, value in make_inputs(self.graph, seed=0).items()
                if name not in self.graph.inputs
            }
        return self._param_values

    # -- costing -----------------------------------------------------------

    @property
    def report(self):
        """Cost-model report for this module (computed once)."""
        if self._report is None:
            if self._cell is not None:
                self._report = self._cell.report
            else:
                from .cost_model import estimate
                self._report = estimate(self.graph, self.device, self.plan,
                                        self.config)
        return self._report

    @property
    def est_latency_ms(self) -> float:
        return self.report.latency_ms

    # -- admission ---------------------------------------------------------

    def make_inputs(self, seed: int = 0) -> dict[str, np.ndarray]:
        """Deterministic random values for the graph inputs only.

        Memoized per seed: repeated seeded requests (load generators,
        tests) do not re-pay input generation.
        """
        found = self._input_cache.get(seed)
        if found is None:
            full = make_inputs(self.graph, seed=seed)
            found = {name: full[name] for name in self.graph.inputs}
            for value in found.values():
                value.setflags(write=False)  # cached values are shared
            if len(self._input_cache) >= 32:  # bound memory for wild seeds
                self._input_cache.pop(next(iter(self._input_cache)))
            self._input_cache[seed] = found
        return dict(found)

    def _admit(self, inputs: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Validate one request and merge it over the session parameters.

        Every tensor the compiled graph declares is adopted from
        ``inputs`` (extra tensors - e.g. the full value dict of the
        *source* graph - are ignored) and checked against its spec, so a
        wrong-shape or wrong-dtype request fails here with an error
        naming the tensor instead of deep inside a kernel.
        """
        tensors = self.graph.tensors
        values = dict(self._params)
        for name, value in inputs.items():
            spec = tensors.get(name)
            if spec is None:
                continue
            if not isinstance(value, np.ndarray):
                value = np.asarray(value)
            if value.shape != spec.shape:
                raise ValueError(
                    f"input {name!r}: got shape {tuple(value.shape)}, "
                    f"expected {spec.shape}")
            if value.dtype != spec.dtype.numpy_dtype:
                raise ValueError(
                    f"input {name!r}: got dtype {value.dtype}, expected "
                    f"{np.dtype(spec.dtype.numpy_dtype)}")
            values[name] = value
        missing = [name for name in self.graph.inputs if name not in values]
        if missing:
            raise ValueError(f"missing graph inputs: {missing}")
        return values

    # -- serving -----------------------------------------------------------

    def run(self, inputs: dict[str, np.ndarray] | None = None,
            seed: int = 0) -> dict[str, np.ndarray]:
        """Serve one request; returns the graph outputs.

        ``inputs`` may carry extra tensors (e.g. the full value dict of
        the *source* graph): anything the compiled graph declares
        overrides the session's own materialization, everything else is
        ignored.  ``seed`` applies only when ``inputs`` is None, in which
        case deterministic values for that seed are generated; passing
        both is rejected to avoid silently ignoring one.
        """
        start = time.perf_counter()
        if inputs is None:
            inputs = self.make_inputs(seed)
        elif seed != 0:
            raise ValueError("pass either inputs or seed, not both")
        values = self._admit(inputs)
        outputs, report = self._backend.run_serving(
            self.program, values, self.pool)
        self._record(time.perf_counter() - start, report)
        return outputs

    def run_batch(self, batch: list[dict[str, np.ndarray]]
                  ) -> list[dict[str, np.ndarray]]:
        """Serve a list of requests through *one* backend invocation on
        the shared pool, amortizing dispatch across the batch.

        Per-request ``RunStats.wall_s`` covers admission + execution,
        comparable to :meth:`run`.  The batch is all-or-nothing for
        *statistics*: a request failing mid-batch propagates before any
        of the batch is recorded (the pool itself stays consistent
        either way).
        """
        if not batch:
            raise ValueError(
                "run_batch() needs at least one request; got an empty batch")
        perf = time.perf_counter
        values_list = []
        admit_walls = []
        admit = self._admit
        for inputs in batch:
            start = perf()
            values_list.append(admit(inputs))
            admit_walls.append(perf() - start)
        results = self._backend.run_many(self.program, values_list, self.pool)
        outputs = []
        for admit_s, (out, report, wall_s) in zip(admit_walls, results):
            self._record(admit_s + wall_s, report)
            outputs.append(out)
        return outputs

    def _record(self, wall_s: float, report: PoolReport) -> RunStats:
        est = self._est_latency_ms
        if est is None:  # the cost report sums kernel costs; price once
            est = self._est_latency_ms = self.est_latency_ms
        stats = self.stats
        stats.requests += 1
        stats.total_wall_s += wall_s
        run = RunStats(
            request=stats.requests,
            wall_s=wall_s,
            est_latency_ms=est,
            pool=report,
        )
        stats.runs.append(run)
        return run


def _compile_session(model: str | Graph, framework: str = "Ours",
                     device: DeviceSpec = SD8GEN2, batch: int = 1,
                     check_memory: bool = False, backend: str = "numpy",
                     **fw_kwargs) -> Session:
    """Compile a (model, framework, device) triple into a fresh Session.

    Compilation is served by the bench harness's cell cache: repeated
    calls for the same triple (or a benchmark that already costed it)
    share one compile - and, through the program memoization, one
    lowering.  Raises ``RuntimeError`` when the framework does not
    support the model (capability or memory limits).

    Internal workhorse behind :func:`repro.api.compile` and
    :func:`repro.api.serve`; the public :func:`compile_session` is a
    deprecation shim over it.
    """
    # Imported lazily: the harness sits above the runtime layer.
    from ..bench.harness import run_cell

    get_backend(backend)  # fail on a bad backend name before compiling
    if batch != 1 and not isinstance(model, str):
        raise ValueError(
            "batch only applies to registry-name models; build the Graph "
            "at the desired batch size instead")
    cell = run_cell(model, framework, device, check_memory=check_memory,
                    batch=batch, **fw_kwargs)
    if not cell.supported:
        raise RuntimeError(
            f"{framework} cannot serve this model: {cell.reason}")
    result = cell.result
    return Session(
        graph=result.graph, plan=result.plan, config=result.config,
        device=device, framework=framework,
        model=model if isinstance(model, str) else model.name,
        cell=cell, program=result.program, backend=backend,
    )


def compile_session(model: str | Graph, framework: str = "Ours",
                    device: DeviceSpec = SD8GEN2, batch: int = 1,
                    check_memory: bool = False, backend: str = "numpy",
                    **fw_kwargs) -> Session:
    """Deprecated alias for the typed front door.

    Prefer ``repro.compile(model, CompileOptions(...))`` - a
    :class:`~repro.api.CompiledModel` wraps the same Session (exposed as
    ``.session``) behind typed request/response objects.
    """
    _warn_deprecated("compile_session()", "repro.compile()")
    return _compile_session(model, framework, device, batch,
                            check_memory=check_memory, backend=backend,
                            **fw_kwargs)


def stable_model_key(model: str | Graph):
    """Content identity of a model argument for session caching.

    Registry names key by value; graphs key by *content fingerprint*, so
    a user rebuilding an identical graph object hits the same session
    cache entry instead of recompiling (the cell cache underneath still
    keys graphs by object identity - only the session registry is
    normalized).
    """
    if isinstance(model, Graph):
        return ("graph", model.fingerprint())
    return ("name", model)


class SessionRegistry:
    """Session cache: one live Session per compiled triple.

    ``compile()`` returns the *same* Session for the same triple, so its
    pool (and its warmed free blocks) carry across callers - the
    compile-once/run-many contract at process scope.  Graph-object
    models are keyed by :meth:`~repro.ir.graph.Graph.fingerprint`, so
    recompiling a structurally identical user graph hits the cache.
    With ``max_sessions`` set, the registry is bounded: compiling a new
    triple past the limit evicts the least-recently-used session, so a
    long-lived process cannot grow sessions without bound.  ``evict()``
    drops a triple explicitly.
    """

    def __init__(self, device: DeviceSpec = SD8GEN2,
                 max_sessions: int | None = None) -> None:
        if max_sessions is not None and max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        self.device = device
        self.max_sessions = max_sessions
        self._sessions: OrderedDict = OrderedDict()

    def _key(self, model, framework, device, batch, backend, fw_kwargs):
        """Hashable triple identity, or None when uncacheable."""
        key = (stable_model_key(model), framework, device or self.device,
               batch, backend, tuple(sorted(fw_kwargs.items())))
        try:
            hash(key)
        except TypeError:  # unhashable config: compile uncached
            return None
        return key

    def compile(self, model: str | Graph, framework: str = "Ours",
                device: DeviceSpec | None = None, batch: int = 1,
                backend: str = "numpy", **fw_kwargs) -> Session:
        key = self._key(model, framework, device, batch, backend, fw_kwargs)
        if key is None:
            return _compile_session(model, framework, device or self.device,
                                    batch, backend=backend, **fw_kwargs)
        found = self._sessions.get(key)
        if found is not None:
            self._sessions.move_to_end(key)  # LRU: refresh recency
            return found
        session = _compile_session(model, framework, device or self.device,
                                   batch, backend=backend, **fw_kwargs)
        self._sessions[key] = session
        if self.max_sessions is not None \
                and len(self._sessions) > self.max_sessions:
            self._sessions.popitem(last=False)  # drop least recently used
        return session

    def evict(self, model: str | Graph, framework: str = "Ours",
              device: DeviceSpec | None = None, batch: int = 1,
              backend: str = "numpy", **fw_kwargs) -> bool:
        """Drop the live session for a triple; True when one was evicted."""
        key = self._key(model, framework, device, batch, backend, fw_kwargs)
        return key is not None and self._sessions.pop(key, None) is not None

    def clear(self) -> None:
        """Drop every live session."""
        self._sessions.clear()

    @property
    def num_sessions(self) -> int:
        return len(self._sessions)


class Engine(SessionRegistry):
    """Deprecated alias of :class:`SessionRegistry`.

    Prefer ``repro.compile()`` (which fronts a process-wide registry) or
    ``repro.serve()`` for a scheduled service; this shim only adds a
    one-time :class:`DeprecationWarning` on construction.
    """

    def __init__(self, device: DeviceSpec = SD8GEN2,
                 max_sessions: int | None = None) -> None:
        _warn_deprecated("Engine", "repro.compile() / repro.serve()")
        super().__init__(device, max_sessions)
