"""Compile-once / run-many execution sessions.

A :class:`Session` holds one compiled (model, framework, device) triple:
the optimized graph, its lowered
:class:`~repro.runtime.program.ExecutionProgram`, its cost-model config,
and a long-lived :class:`~repro.memory.pool.SizeClassPool`.  Compilation
goes through the bench harness's process-wide compile/cost cell cache
(PR 1), so compiling the same triple twice - or costing it in a benchmark
and then serving it - reuses one compile *and* one lowering.

The session itself is now only request admission + statistics: every
``run(inputs)`` / ``run_batch(list_of_inputs)`` validates the request,
merges it over the session's materialized parameters, and hands the
values to the session's :class:`~repro.runtime.program.ExecutionBackend`
- the per-node interpretation (kernel lookups, view resolution, liveness
bookkeeping) was all moved to compile time by
:func:`~repro.runtime.program.lower`:

* parameters are materialized once at session creation, not per request;
* buffer liveness is a static slot plan computed once from
  :func:`repro.memory.pool.liveness_schedule`, so per-request pool
  accounting is slot-indexed integer ops against the session's pool -
  the *second* run of a session satisfies every request from blocks the
  first run returned (observable as ``RunStats.pool.allocations``
  dropping to zero while ``reuses`` climbs);
* dead intermediate ndarrays are dropped mid-run, bounding true process
  memory by the live set rather than the whole graph;
* ``run_batch`` executes through one backend invocation - and, when the
  program is batch-stackable
  (:func:`repro.runtime.batching.analyze`), through ONE kernel pass for
  the whole micro-batch: inputs stacked along the batch axis, a cached
  batch-N program variant run once against a pre-warmed per-bucket
  pool, outputs split per request.  Non-stackable programs fall back to
  the sequential per-request loop inside the single invocation.

    >>> session = compile_session("Swin", "Ours")
    >>> out = session.run(session.make_inputs(seed=0))
    >>> out = session.run(session.make_inputs(seed=0))
    >>> session.stats.runs[-1].pool.reuses   # second run reuses blocks
"""

from __future__ import annotations

import logging
import threading
import time
import warnings
from collections import OrderedDict, deque
from dataclasses import dataclass, field

import numpy as np

from ..api.errors import (
    AdmissionError, BackendCompilationError, InvalidOptions, ReproError,
)
from ..ir.graph import Graph
from ..ir.symbolic import SYM, is_placeholder
from ..memory.pool import PoolReport, SizeClassPool
from .device import DeviceSpec, SD8GEN2
from .executor import make_inputs
from .faults import REFERENCE_BACKEND, FaultPlan
from .program import ExecutionProgram, get_backend, lower

logger = logging.getLogger("repro.runtime.session")

_DEPRECATION_WARNED: set[str] = set()
"""Shim names that already warned this process (each warns exactly once)."""


def _warn_deprecated(name: str, instead: str) -> None:
    if name in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(name)
    warnings.warn(
        f"{name} is deprecated; use {instead} (see the repro.api package)",
        DeprecationWarning, stacklevel=3)


@dataclass
class RunStats:
    """Accounting for one ``run()`` request."""

    request: int
    wall_s: float
    est_latency_ms: float
    pool: PoolReport
    """Per-request pool delta: ``allocations`` counts *new* blocks this
    run created; ``reuses`` counts requests served from freed blocks."""
    backend: str = ""
    """Backend that actually served the request - the session's
    configured backend unless graceful degradation substituted the
    reference backend (:attr:`SessionStats.fallbacks`)."""
    batched: bool = False
    """True when the request was served by a stacked batch-N pass.  The
    pass is one pool interaction and one wall-clock interval for the
    whole micro-batch, so :attr:`pool` is *shared* with the batchmates
    (identical PoolReport object) and :attr:`wall_s` carries this
    request's even share of the stacked execution time plus its own
    admission time."""
    fused_steps: int = 0
    """Program steps the serving backend collapsed into fused-chain
    expressions for this request: ``program.fused_step_count`` when the
    codegen backend served it, 0 on the reference backend (including
    degraded requests).  Per-request attribution stays additive - each
    request reports the fusion of the pass that served *it*."""


@dataclass
class SessionStats:
    """Aggregate accounting across a session's lifetime.

    ``runs`` keeps only the most recent requests (bounded deque): a
    long-lived serving session must not grow memory linearly with
    request count, while the aggregate counters cover the lifetime.
    """

    requests: int = 0
    total_wall_s: float = 0.0
    fallbacks: int = 0
    """Backend invocations degraded to the reference backend after the
    configured backend failed to compile or run."""
    runs: deque[RunStats] = field(
        default_factory=lambda: deque(maxlen=256))

    @property
    def mean_wall_s(self) -> float:
        return self.total_wall_s / self.requests if self.requests else 0.0


class CircuitBreaker:
    """Stops re-trying a persistently failing backend per program.

    Keyed by ``(backend name, graph fingerprint)``: after ``threshold``
    *consecutive* failures the circuit opens and
    :meth:`Session.execute_values` routes that program straight to the
    reference backend without re-attempting the failing one; a single
    success closes the circuit again.  Process-wide (like the backend
    registry) and thread-safe: every session serving the same program on
    the same backend shares one failure history.
    """

    def __init__(self, threshold: int = 3) -> None:
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.threshold = threshold
        self._lock = threading.Lock()
        self._consecutive: dict[tuple[str, str], int] = {}

    def is_open(self, backend: str, fingerprint: str) -> bool:
        with self._lock:
            return self._consecutive.get(
                (backend, fingerprint), 0) >= self.threshold

    def record_failure(self, backend: str, fingerprint: str) -> bool:
        """Count one failure; True when this one opened the circuit."""
        key = (backend, fingerprint)
        with self._lock:
            count = self._consecutive.get(key, 0) + 1
            self._consecutive[key] = count
            return count == self.threshold

    def record_success(self, backend: str, fingerprint: str) -> None:
        with self._lock:
            self._consecutive.pop((backend, fingerprint), None)

    def reset(self) -> None:
        """Forget every failure history (tests)."""
        with self._lock:
            self._consecutive.clear()


_CIRCUIT = CircuitBreaker()
"""Process-wide breaker consulted by every session's fallback path."""


@dataclass(frozen=True)
class SymbolicServing:
    """A session's symbolic-shape contract, fixed at compile time.

    ``base_extent`` is the leading extent the graph was built at (the
    concrete fast path); ``max_extent`` bounds the extents admission
    accepts (1..max_extent, sizing the largest bucket's slot plan,
    scratch, and shm layouts); ``inputs`` is the frozen set of
    graph-input names carrying the symbolic leading dim (all of them -
    the batch axis is shared by construction).
    """

    base_extent: int
    max_extent: int
    inputs: frozenset[str]


def circuit_breaker() -> CircuitBreaker:
    """The process-wide :class:`CircuitBreaker` (for inspection/reset)."""
    return _CIRCUIT


class Session:
    """One compiled module, ready to serve repeated requests.

    The session is request admission + stats; execution is the lowered
    program on the configured backend (``"numpy"`` by default)."""

    def __init__(self, graph: Graph, plan, config, device: DeviceSpec,
                 framework: str = "Ours", model: str = "",
                 cell=None, program: ExecutionProgram | None = None,
                 backend: str = "numpy",
                 faults: FaultPlan | None = None,
                 workers: int = 1,
                 signature=None, max_extent: int = 0) -> None:
        self.graph = graph
        self.plan = plan
        self.config = config
        self.device = device
        self.framework = framework
        self.model = model
        self.backend = backend
        self._backend = get_backend(backend)
        self._cell = cell
        self._report = None
        self._est_latency_ms: float | None = None
        self.pool = SizeClassPool()
        # One pool per batch bucket: stacked batch-N passes account
        # against their bucket's pool (pre-warmed to the variant's slot
        # plan at first use), keeping the base pool's steady state - and
        # the tests that assert it - untouched by batching.
        self._bucket_pools: dict[int, SizeClassPool] = {}
        self._program = program
        self._param_values: dict[str, np.ndarray] | None = None
        self._input_cache: dict[int, dict[str, np.ndarray]] = {}
        self.stats = SessionStats()
        # Fault injection: an explicit plan wins; otherwise the ambient
        # chaos plan (REPRO_FAULT_SEED) applies, injecting only faults
        # the reliability layer is required to absorb.
        if faults is None:
            faults = FaultPlan.from_env()
        self.faults = faults
        self._injector = faults.injector() if faults is not None else None
        self._fingerprint: str | None = None
        # Parallel-backend state: the worker-process pool is created
        # lazily (or eagerly by the Service front door, which owns the
        # fork-before-threads timing) and only for sharding backends.
        self.workers = max(1, int(workers))
        self.parallel_capacity = 16
        self._parallel_pool = None
        self._parallel_failed = False
        # Symbolic serving: one pool per symbolic bucket (warmed to that
        # bucket's slot plan on first use), mirroring _bucket_pools for
        # the stacked path.  None for concrete sessions.
        self.symbolic: SymbolicServing | None = None
        self._symbolic_pools: dict[int, SizeClassPool] = {}
        if signature is not None:
            self._init_symbolic(signature, max_extent)

    @property
    def program(self) -> ExecutionProgram:
        """The lowered program this session serves.

        The ``Ours`` pipeline lowers as its final pass, so the program
        usually arrives with the compile-cache result; other frameworks
        lower lazily here (memoized on the graph, hence still shared
        across sessions of the same compiled graph)."""
        if self._program is None:
            self._program = lower(self.graph)
        return self._program

    @property
    def _params(self) -> dict[str, np.ndarray]:
        """Parameters (and interior constants), materialized once on the
        first request - not per run, and not at compile time."""
        if self._param_values is None:
            self._param_values = {
                name: value
                for name, value in make_inputs(self.graph, seed=0).items()
                if name not in self.graph.inputs
            }
        return self._param_values

    # -- costing -----------------------------------------------------------

    @property
    def report(self):
        """Cost-model report for this module (computed once)."""
        if self._report is None:
            if self._cell is not None:
                self._report = self._cell.report
            else:
                from .cost_model import estimate
                self._report = estimate(self.graph, self.device, self.plan,
                                        self.config)
        return self._report

    @property
    def est_latency_ms(self) -> float:
        return self.report.latency_ms

    # -- admission ---------------------------------------------------------

    def make_inputs(self, seed: int = 0) -> dict[str, np.ndarray]:
        """Deterministic random values for the graph inputs only.

        Memoized per seed: repeated seeded requests (load generators,
        tests) do not re-pay input generation.
        """
        found = self._input_cache.get(seed)
        if found is None:
            full = make_inputs(self.graph, seed=seed)
            found = {name: full[name] for name in self.graph.inputs}
            for value in found.values():
                value.setflags(write=False)  # cached values are shared
            if len(self._input_cache) >= 32:  # bound memory for wild seeds
                self._input_cache.pop(next(iter(self._input_cache)))
            self._input_cache[seed] = found
        return dict(found)

    def _init_symbolic(self, signature, max_extent: int) -> None:
        """Validate and install the symbolic-shape contract.

        Refusals here mirror :func:`repro.runtime.batching.analyze`: a
        model whose program is not batch-scalable cannot serve a
        symbolic leading dim, and the refusal carries the analysis's
        recorded reason.  Raises
        :class:`~repro.api.errors.InvalidOptions` - this is an options
        problem (the model/signature pair), not a per-request one.
        """
        from .batching import analyze

        who = self.model or self.graph.name
        if not isinstance(max_extent, int) or max_extent < 1:
            raise InvalidOptions(
                f"symbolic signature for {who!r} needs max_extent >= 1, "
                f"got {max_extent!r}")
        items = signature.items() if isinstance(signature, dict) \
            else signature
        tensors = self.graph.tensors
        inputs = frozenset(self.graph.inputs)
        for name, shape in items:
            if name not in inputs:
                raise InvalidOptions(
                    f"symbolic signature names {name!r}, which is not a "
                    f"graph input of {who!r}; inputs are {sorted(inputs)}")
            dims = tuple(shape)
            spec_shape = tuple(tensors[name].shape)
            if not dims or not is_placeholder(dims[0]):
                raise InvalidOptions(
                    f"symbolic signature: input {name!r} must lead with a "
                    f"placeholder (None/SYM), got {dims!r}")
            if any(is_placeholder(d) for d in dims[1:]):
                raise InvalidOptions(
                    f"symbolic signature: input {name!r}: only the leading "
                    f"dim may be symbolic, got {dims!r}")
            if len(dims) != len(spec_shape) \
                    or tuple(int(d) for d in dims[1:]) != spec_shape[1:]:
                raise InvalidOptions(
                    f"symbolic signature: input {name!r} declares "
                    f"{(SYM,) + tuple(dims[1:])}, but the compiled graph "
                    f"expects {(SYM,) + spec_shape[1:]}")
        analysis = analyze(self.program)
        if not analysis.stackable:
            raise InvalidOptions(
                f"{who!r} cannot serve a symbolic leading extent: "
                f"{analysis.reason}")
        self.symbolic = SymbolicServing(
            base_extent=analysis.batch_extent,
            max_extent=max_extent,
            inputs=inputs)

    @property
    def serving_signature(self) -> dict[str, tuple]:
        """``{input name: (shape, dtype)}`` this session admits.

        Symbolic sessions spell the leading dim with
        :data:`~repro.ir.symbolic.SYM` (rendered ``?``); concrete
        sessions return the exact graph shapes.
        """
        tensors = self.graph.tensors
        out = {}
        for name in self.graph.inputs:
            spec = tensors[name]
            shape = tuple(spec.shape)
            if self.symbolic is not None:
                shape = (SYM,) + shape[1:]
            out[name] = (shape, np.dtype(spec.dtype.numpy_dtype))
        return out

    def _admit(self, inputs: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Validate one request and merge it over the session parameters.

        Every tensor the compiled graph declares is adopted from
        ``inputs`` (extra tensors - e.g. the full value dict of the
        *source* graph - are ignored) and checked against its spec, so a
        wrong-shape or wrong-dtype request fails here with an error
        naming the tensor instead of deep inside a kernel.
        """
        tensors = self.graph.tensors
        sym = self.symbolic
        values = dict(self._params)
        extent = extent_name = None
        for name, value in inputs.items():
            spec = tensors.get(name)
            if spec is None:
                continue
            if not isinstance(value, np.ndarray):
                value = np.asarray(value)
            if sym is not None and name in sym.inputs:
                expected = (SYM,) + tuple(spec.shape)[1:]
                shape = tuple(value.shape)
                if len(shape) != len(expected) \
                        or shape[1:] != expected[1:]:
                    raise AdmissionError(
                        f"input {name!r}: got shape {shape}, expected "
                        f"{expected} (symbolic leading extent, served "
                        f"bucket range 1..{sym.max_extent})",
                        model=self.model or self.graph.name)
                if not 1 <= shape[0] <= sym.max_extent:
                    raise AdmissionError(
                        f"input {name!r}: leading extent {shape[0]} is "
                        f"outside the served bucket range "
                        f"1..{sym.max_extent}",
                        model=self.model or self.graph.name)
                if extent is None:
                    extent, extent_name = shape[0], name
                elif shape[0] != extent:
                    raise AdmissionError(
                        f"input {name!r}: leading extent {shape[0]} "
                        f"disagrees with input {extent_name!r} (extent "
                        f"{extent}); a request's inputs share one "
                        f"symbolic extent",
                        model=self.model or self.graph.name)
            elif value.shape != spec.shape:
                raise AdmissionError(
                    f"input {name!r}: got shape {tuple(value.shape)}, "
                    f"expected {spec.shape}",
                    model=self.model or self.graph.name)
            if value.dtype != spec.dtype.numpy_dtype:
                raise AdmissionError(
                    f"input {name!r}: got dtype {value.dtype}, expected "
                    f"{np.dtype(spec.dtype.numpy_dtype)}",
                    model=self.model or self.graph.name)
            values[name] = value
        missing = [name for name in self.graph.inputs if name not in values]
        if missing:
            raise AdmissionError(f"missing graph inputs: {missing}",
                                 model=self.model or self.graph.name)
        return values

    # -- serving -----------------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """The served graph's content fingerprint (memoized) - the
        per-program key for error context and the circuit breaker."""
        if self._fingerprint is None:
            self._fingerprint = self.graph.fingerprint()
        return self._fingerprint

    def execute_values(self, values_list, backend=None):
        """The resilient execution core: run admitted value dicts through
        one backend invocation, with graceful degradation.

        Every execution path of the serving stack funnels through here -
        :meth:`run`, :meth:`run_batch`, ``CompiledModel.run[_batch]``,
        and the :class:`~repro.api.Service` scheduler - so fault
        injection, the numpy fallback, the circuit breaker, *and* the
        stacked-batch routing apply uniformly.  Returns ``(results,
        backend_name, batched)`` where results is the
        ``run_many``-shaped list of ``(outputs, report, wall_s)``,
        ``backend_name`` names the backend that actually served the
        invocation, and ``batched`` reports whether the requests were
        stacked into one kernel pass per step.

        Batching: a multi-request invocation of a batch-stackable
        program (:func:`repro.runtime.batching.analyze`) routes through
        ``run_stacked`` - inputs concatenated along the batch axis, one
        pass of the cached power-of-two batch variant against that
        bucket's pre-warmed pool, outputs split per request.
        Non-stackable programs, solo requests, and batches with
        per-request parameter overrides take the sequential ``run_many``
        path; both paths are byte-identical per request.

        Degradation: when the configured backend is not the reference
        one, a :class:`~repro.api.errors.BackendCompilationError` (or any
        runner failure) is retried on the reference ``numpy`` backend
        against pristine copies of the inputs - identical outputs, same
        pool discipline (the retry keeps the stacked/sequential routing
        of the failed attempt), logged and counted in
        :attr:`SessionStats.fallbacks` - and the failure feeds the
        process-wide :class:`CircuitBreaker`; once a program's circuit
        opens, it routes straight to the reference backend (a later
        explicit success on the primary closes it again).  Injected
        session-level faults (:attr:`faults`) fire before the primary
        invocation; injected kernel/alloc faults propagate (they model
        backend-independent failures), injected compile faults degrade.
        """
        primary = backend if backend is not None else self._backend
        name = getattr(primary, "name", self.backend)
        context = {"model": self.model or self.graph.name}
        fallback = None
        if name != REFERENCE_BACKEND:
            context["fingerprint"] = self.fingerprint
            if _CIRCUIT.is_open(name, self.fingerprint):
                primary = get_backend(REFERENCE_BACKEND)
                name = REFERENCE_BACKEND
            else:
                fallback = get_backend(REFERENCE_BACKEND)
        # Sharding backends (the parallel family) route whole
        # invocations across their worker pool; stacking then happens
        # *inside* each worker's shard, so the in-process stacked
        # context is only built when the pool declines the invocation.
        sharding = getattr(primary, "shards_requests", False)
        batched_flag = [False]
        if sharding:
            inner = get_backend(getattr(primary, "inner",
                                        REFERENCE_BACKEND))

            def invoke(bk, vlist):
                if getattr(bk, "shards_requests", False):
                    sharded = bk.try_sharded(self, vlist)
                    if sharded is not None:
                        rows, was_batched = sharded
                        batched_flag[0] = was_batched
                        return rows
                    bk = inner  # pool unavailable: in-process inner path
                return self._invoke_inprocess(bk, vlist, batched_flag)
        else:
            def invoke(bk, vlist):
                return self._invoke_inprocess(bk, vlist, batched_flag)
        # The runners mutate the value dicts in place (drops, outputs),
        # so the fallback replays pristine shallow copies.  Only armed
        # off the reference path: the default backend pays nothing.
        snapshots = [dict(values) for values in values_list] \
            if fallback is not None else None
        injector = self._injector
        try:
            if injector is not None:
                injector.on_invocation(len(values_list), name, context)
            results = invoke(primary, values_list)
        except BackendCompilationError as err:
            if fallback is None:
                raise
            self._degrade(name, err)
            results = invoke(fallback, snapshots)
            return results, REFERENCE_BACKEND, batched_flag[0]
        except ReproError:
            raise  # injected kernel/alloc faults are backend-independent
        except Exception as err:  # noqa: BLE001 - runner failure
            if fallback is None:
                raise
            # A runner failure on the primary backend degrades too: if
            # the failure was input-caused the reference backend raises
            # the same error (shape checks match text-for-text); if it
            # was a backend bug, the request is rescued.
            self._degrade(name, err)
            results = invoke(fallback, snapshots)
            return results, REFERENCE_BACKEND, batched_flag[0]
        if fallback is not None:
            _CIRCUIT.record_success(name, self.fingerprint)
        return results, name, batched_flag[0]

    def _invoke_inprocess(self, bk, vlist, batched_flag):
        """Route one in-process invocation through ``bk``.

        Concrete sessions keep the stacked-vs-sequential decision
        unchanged.  Symbolic sessions group requests by leading extent
        first: base-extent requests take the concrete path (including
        stacking); any other extent runs through its bucket's symbolic
        variant against that bucket's warmed pool, each request at its
        *exact* extent - never padded, never stacked - which is what
        keeps outputs byte-identical to a fresh concrete compile at
        that extent.  Results are scattered back in request order.
        """
        sym = self.symbolic
        if sym is None:
            return self._invoke_concrete(bk, vlist, batched_flag)
        name = self.program.input_names[0]
        groups: dict[int, list[int]] = {}
        for index, values in enumerate(vlist):
            groups.setdefault(values[name].shape[0], []).append(index)
        if len(groups) == 1 and sym.base_extent in groups:
            return self._invoke_concrete(bk, vlist, batched_flag)
        results = [None] * len(vlist)
        batched_any = False
        for extent, indices in groups.items():
            sub = [vlist[i] for i in indices]
            if extent == sym.base_extent:
                flag = [False]
                rows = self._invoke_concrete(bk, sub, flag)
                batched_any = batched_any or flag[0]
            else:
                variant, pool = self._symbolic_context(extent)
                rows = bk.run_many(variant, sub, pool)
            for index, row in zip(indices, rows):
                results[index] = row
        batched_flag[0] = batched_any
        return results

    def _invoke_concrete(self, bk, vlist, batched_flag):
        """The concrete serving path: one stacked pass when licensed,
        the sequential loop otherwise."""
        ctx = self._stacked_context(vlist) if len(vlist) > 1 else None
        if ctx is not None:
            batched_flag[0] = True
            return bk.run_stacked(self.program, ctx[0], vlist, ctx[1])
        batched_flag[0] = False
        return bk.run_many(self.program, vlist, self.pool)

    def _symbolic_context(self, extent: int):
        """The ``(symbolic variant, warmed pool)`` serving one runtime
        extent.

        The bucket factor is the power of two covering
        ``ceil(extent / base_extent)`` - one compiled variant (and one
        pool, warmed to its max-bound slot plan on first use) per
        bucket, however many distinct extents the bucket serves.
        """
        from .batching import bucket, symbolize

        sym = self.symbolic
        factor = bucket(max(1, -(-extent // sym.base_extent)))
        variant = symbolize(self.program, factor)
        pool = self._symbolic_pools.get(factor)
        if pool is None:
            pool = SizeClassPool()
            sizes = variant.slot_plan.slot_sizes
            for size in sizes:
                pool.allocate(size)
            for size in sizes:
                pool.release(size)
            self._symbolic_pools[factor] = pool
        return variant, pool

    def _stacked_context(self, values_list):
        """The ``(variant, bucket pool)`` serving one stacked pass, or
        None when the micro-batch must run sequentially.

        Sequential is chosen when analysis refuted stacking, when a
        request overrides a non-input tensor (per-request parameters
        cannot be shared across a stacked pass), or when building the
        variant fails unexpectedly - in which case the program is
        demoted for good: a wrong stacked result is never acceptable, a
        sequential one always is.  The bucket pool is created and warmed
        to the variant's slot plan on first use, so even the first
        stacked pass of a bucket runs pool-steady.
        """
        from .batching import analyze, bucket, mark_unstackable, rebatch

        program = self.program
        if not analyze(program).stackable:
            return None
        inputs = set(program.input_names)
        first = values_list[0]
        for values in values_list[1:]:
            for key, value in values.items():
                if key not in inputs and first.get(key) is not value:
                    return None
        factor = bucket(len(values_list))
        try:
            variant = rebatch(program, factor)
        except Exception as err:  # noqa: BLE001 - never risk wrong results
            logger.exception(
                "building batch-%d variant of %r failed; demoting to the "
                "sequential path", factor, self.model or self.graph.name)
            mark_unstackable(program, f"rebatch({factor}) failed: {err}")
            return None
        pool = self._bucket_pools.get(factor)
        if pool is None:
            pool = SizeClassPool()
            sizes = variant.slot_plan.slot_sizes
            for size in sizes:
                pool.allocate(size)
            for size in sizes:
                pool.release(size)
            self._bucket_pools[factor] = pool
        return variant, pool

    # -- parallel worker pool ----------------------------------------------

    def ensure_parallel_pool(self):
        """The session's worker-process pool, created on first need.

        Only meaningful for sharding backends (``"parallel"``,
        ``"parallel-codegen"``).  Returns ``None`` - permanently, after
        logging once - when the platform cannot fork or pool startup
        fails; the caller then serves in-process on the inner backend.
        The :class:`~repro.api.Service` front door calls this eagerly
        before starting its scheduler thread, so the fork happens while
        the parent is still effectively single-threaded.
        """
        pool = self._parallel_pool
        if pool is not None and pool.alive:
            return pool
        if self._parallel_failed:
            return None
        from .parallel_backend import WorkerPool, parallel_supported

        backend = self._backend
        inner = getattr(backend, "inner", REFERENCE_BACKEND)
        if not parallel_supported():
            self._parallel_failed = True
            logger.warning(
                "platform lacks the fork start method; %r serves "
                "in-process on %r", self.backend, inner)
            return None
        try:
            self._parallel_pool = WorkerPool(
                self, inner=inner, workers=self.workers,
                capacity=self.parallel_capacity)
        except Exception:
            self._parallel_failed = True
            logger.exception(
                "parallel worker pool failed to start for %r; serving "
                "in-process on %r", self.model or self.graph.name, inner)
            return None
        return self._parallel_pool

    @property
    def parallel_restarts(self) -> int:
        """Worker-process respawns performed by this session's pool."""
        pool = self._parallel_pool
        return pool.restarts if pool is not None else 0

    def close(self) -> None:
        """Release process-external resources (worker processes and
        shared-memory segments).  Idempotent; the session remains usable
        afterwards - a later sharded invocation simply recreates the
        pool."""
        pool = self._parallel_pool
        if pool is not None:
            self._parallel_pool = None
            pool.close()

    def _degrade(self, backend_name: str, err: BaseException) -> None:
        """Record one fallback to the reference backend."""
        self.stats.fallbacks += 1
        opened = _CIRCUIT.record_failure(backend_name, self.fingerprint)
        logger.warning(
            "backend %r failed for %r (%s); degrading to %r%s",
            backend_name, self.model or self.graph.name, err,
            REFERENCE_BACKEND,
            " - circuit open, routing straight to the reference backend"
            if opened else "")

    def run(self, inputs: dict[str, np.ndarray] | None = None,
            seed: int = 0) -> dict[str, np.ndarray]:
        """Serve one request; returns the graph outputs.

        ``inputs`` may carry extra tensors (e.g. the full value dict of
        the *source* graph): anything the compiled graph declares
        overrides the session's own materialization, everything else is
        ignored.  ``seed`` applies only when ``inputs`` is None, in which
        case deterministic values for that seed are generated; passing
        both is rejected to avoid silently ignoring one.
        """
        start = time.perf_counter()
        if inputs is None:
            inputs = self.make_inputs(seed)
        elif seed != 0:
            raise ValueError("pass either inputs or seed, not both")
        values = self._admit(inputs)
        results, backend_name, _ = self.execute_values([values])
        outputs, report, _ = results[0]
        self._record(time.perf_counter() - start, report, backend_name)
        return outputs

    def run_batch(self, batch: list[dict[str, np.ndarray]]
                  ) -> list[dict[str, np.ndarray]]:
        """Serve a list of requests through *one* backend invocation on
        the shared pool - a single stacked kernel pass when the program
        is batch-stackable, a sequential loop otherwise.

        Per-request ``RunStats.wall_s`` covers admission + execution,
        comparable to :meth:`run` (an even share of the stacked pass on
        the batched path, flagged by ``RunStats.batched``).  The batch is
        all-or-nothing for *statistics*: a request failing mid-batch
        propagates before any of the batch is recorded (the pool itself
        stays consistent either way).
        """
        if not batch:
            raise ValueError(
                "run_batch() needs at least one request; got an empty batch")
        perf = time.perf_counter
        values_list = []
        admit_walls = []
        admit = self._admit
        for inputs in batch:
            start = perf()
            values_list.append(admit(inputs))
            admit_walls.append(perf() - start)
        results, backend_name, batched = self.execute_values(values_list)
        outputs = []
        for admit_s, (out, report, wall_s) in zip(admit_walls, results):
            self._record(admit_s + wall_s, report, backend_name,
                         batched=batched)
            outputs.append(out)
        return outputs

    def _record(self, wall_s: float, report: PoolReport,
                backend: str | None = None,
                batched: bool = False) -> RunStats:
        est = self._est_latency_ms
        if est is None:  # the cost report sums kernel costs; price once
            est = self._est_latency_ms = self.est_latency_ms
        stats = self.stats
        stats.requests += 1
        stats.total_wall_s += wall_s
        served_by = backend if backend is not None else self.backend
        run = RunStats(
            request=stats.requests,
            wall_s=wall_s,
            est_latency_ms=est,
            pool=report,
            backend=served_by,
            batched=batched,
            fused_steps=get_backend(served_by).fused_steps(self.program),
        )
        stats.runs.append(run)
        return run


def _compile_session(model: str | Graph, framework: str = "Ours",
                     device: DeviceSpec = SD8GEN2, batch: int = 1,
                     check_memory: bool = False, backend: str = "numpy",
                     faults: FaultPlan | None = None, workers: int = 1,
                     signature=None, max_extent: int = 0,
                     **fw_kwargs) -> Session:
    """Compile a (model, framework, device) triple into a fresh Session.

    Compilation is served by the bench harness's cell cache: repeated
    calls for the same triple (or a benchmark that already costed it)
    share one compile - and, through the program memoization, one
    lowering.  Raises ``RuntimeError`` when the framework does not
    support the model (capability or memory limits).

    Internal workhorse behind :func:`repro.api.compile` and
    :func:`repro.api.serve`; the public :func:`compile_session` is a
    deprecation shim over it.
    """
    # Imported lazily: the harness sits above the runtime layer.
    from ..bench.harness import run_cell

    get_backend(backend)  # fail on a bad backend name before compiling
    if batch != 1 and not isinstance(model, str):
        raise ValueError(
            "batch only applies to registry-name models; build the Graph "
            "at the desired batch size instead")
    cell = run_cell(model, framework, device, check_memory=check_memory,
                    batch=batch, **fw_kwargs)
    if not cell.supported:
        raise RuntimeError(
            f"{framework} cannot serve this model: {cell.reason}")
    result = cell.result
    return Session(
        graph=result.graph, plan=result.plan, config=result.config,
        device=device, framework=framework,
        model=model if isinstance(model, str) else model.name,
        cell=cell, program=result.program, backend=backend,
        faults=faults, workers=workers,
        signature=signature, max_extent=max_extent,
    )


def compile_session(model: str | Graph, framework: str = "Ours",
                    device: DeviceSpec = SD8GEN2, batch: int = 1,
                    check_memory: bool = False, backend: str = "numpy",
                    **fw_kwargs) -> Session:
    """Deprecated alias for the typed front door.

    Prefer ``repro.compile(model, CompileOptions(...))`` - a
    :class:`~repro.api.CompiledModel` wraps the same Session (exposed as
    ``.session``) behind typed request/response objects.
    """
    _warn_deprecated("compile_session()", "repro.compile()")
    return _compile_session(model, framework, device, batch,
                            check_memory=check_memory, backend=backend,
                            **fw_kwargs)


def stable_model_key(model: str | Graph):
    """Content identity of a model argument for session caching.

    Registry names key by value; graphs key by *content fingerprint*, so
    a user rebuilding an identical graph object hits the same session
    cache entry instead of recompiling (the cell cache underneath still
    keys graphs by object identity - only the session registry is
    normalized).
    """
    if isinstance(model, Graph):
        return ("graph", model.fingerprint())
    return ("name", model)


class SessionRegistry:
    """Session cache: one live Session per compiled triple.

    ``compile()`` returns the *same* Session for the same triple, so its
    pool (and its warmed free blocks) carry across callers - the
    compile-once/run-many contract at process scope.  Graph-object
    models are keyed by :meth:`~repro.ir.graph.Graph.fingerprint`, so
    recompiling a structurally identical user graph hits the cache.
    With ``max_sessions`` set, the registry is bounded: compiling a new
    triple past the limit evicts the least-recently-used session, so a
    long-lived process cannot grow sessions without bound.  ``evict()``
    drops a triple explicitly.
    """

    def __init__(self, device: DeviceSpec = SD8GEN2,
                 max_sessions: int | None = None) -> None:
        if max_sessions is not None and max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        self.device = device
        self.max_sessions = max_sessions
        self._sessions: OrderedDict = OrderedDict()

    def _key(self, model, framework, device, batch, backend, fw_kwargs,
             faults=None, workers=1, signature=None, max_extent=0):
        """Hashable triple identity, or None when uncacheable."""
        if isinstance(signature, dict):
            signature = tuple(sorted(
                (name, tuple(shape)) for name, shape in signature.items()))
        key = (stable_model_key(model), framework, device or self.device,
               batch, backend, faults, workers, signature, max_extent,
               tuple(sorted(fw_kwargs.items())))
        try:
            hash(key)
        except TypeError:  # unhashable config: compile uncached
            return None
        return key

    def compile(self, model: str | Graph, framework: str = "Ours",
                device: DeviceSpec | None = None, batch: int = 1,
                backend: str = "numpy", faults: FaultPlan | None = None,
                workers: int = 1, signature=None, max_extent: int = 0,
                **fw_kwargs) -> Session:
        key = self._key(model, framework, device, batch, backend, fw_kwargs,
                        faults, workers, signature, max_extent)
        if key is None:
            return _compile_session(model, framework, device or self.device,
                                    batch, backend=backend, faults=faults,
                                    workers=workers, signature=signature,
                                    max_extent=max_extent, **fw_kwargs)
        found = self._sessions.get(key)
        if found is not None:
            self._sessions.move_to_end(key)  # LRU: refresh recency
            return found
        session = _compile_session(model, framework, device or self.device,
                                   batch, backend=backend, faults=faults,
                                   workers=workers, signature=signature,
                                   max_extent=max_extent, **fw_kwargs)
        self._sessions[key] = session
        if self.max_sessions is not None \
                and len(self._sessions) > self.max_sessions:
            self._sessions.popitem(last=False)  # drop least recently used
        return session

    def evict(self, model: str | Graph, framework: str = "Ours",
              device: DeviceSpec | None = None, batch: int = 1,
              backend: str = "numpy", faults: FaultPlan | None = None,
              workers: int = 1, signature=None, max_extent: int = 0,
              **fw_kwargs) -> bool:
        """Drop the live session for a triple; True when one was evicted."""
        key = self._key(model, framework, device, batch, backend, fw_kwargs,
                        faults, workers, signature, max_extent)
        return key is not None and self._sessions.pop(key, None) is not None

    def clear(self) -> None:
        """Drop every live session."""
        self._sessions.clear()

    @property
    def num_sessions(self) -> int:
        return len(self._sessions)


class Engine(SessionRegistry):
    """Deprecated alias of :class:`SessionRegistry`.

    Prefer ``repro.compile()`` (which fronts a process-wide registry) or
    ``repro.serve()`` for a scheduled service; this shim only adds a
    one-time :class:`DeprecationWarning` on construction.
    """

    def __init__(self, device: DeviceSpec = SD8GEN2,
                 max_sessions: int | None = None) -> None:
        _warn_deprecated("Engine", "repro.compile() / repro.serve()")
        super().__init__(device, max_sessions)
