"""Compile-once / run-many execution sessions.

A :class:`Session` holds one compiled (model, framework, device) triple:
the optimized graph, its layout plan, its cost-model config, and a
long-lived :class:`~repro.memory.pool.MemoryPool`.  Compilation goes
through the bench harness's process-wide compile/cost cell cache (PR 1),
so compiling the same triple twice - or costing it in a benchmark and
then serving it - reuses one compile.  Repeated ``run(inputs)`` /
``run_batch(list_of_inputs)`` calls then execute through the NumPy
executor with pool-backed buffer accounting and per-request latency/cost
bookkeeping:

* parameters are materialized once at session creation, not per request;
* the liveness schedule (which tensors are materialized, when each dies)
  is precomputed once from :func:`repro.memory.pool.liveness_schedule`;
* every run allocates activations from the session's pool and releases
  them as they die, so the *second* run of a session satisfies its
  requests from blocks the first run returned - observable as
  ``RunStats.pool.allocations`` dropping to (near) zero while
  ``reuses`` climbs;
* dead intermediate ndarrays are dropped mid-run, bounding true process
  memory by the live set rather than the whole graph.

    >>> session = compile_session("Swin", "Ours")
    >>> out = session.run(session.make_inputs(seed=0))
    >>> out = session.run(session.make_inputs(seed=0))
    >>> session.stats.runs[-1].pool.reuses   # second run reuses blocks
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..ir.graph import Graph
from ..memory.pool import (
    LivenessSchedule, PoolEvent, PoolReport, SizeClassPool, liveness_schedule,
)
from .device import DeviceSpec, SD8GEN2
from .executor import make_inputs, run_node


@dataclass
class RunStats:
    """Accounting for one ``run()`` request."""

    request: int
    wall_s: float
    est_latency_ms: float
    pool: PoolReport
    """Per-request pool delta: ``allocations`` counts *new* blocks this
    run created; ``reuses`` counts requests served from freed blocks."""


@dataclass
class SessionStats:
    """Aggregate accounting across a session's lifetime.

    ``runs`` keeps only the most recent requests (bounded deque): a
    long-lived serving session must not grow memory linearly with
    request count, while the aggregate counters cover the lifetime.
    """

    requests: int = 0
    total_wall_s: float = 0.0
    runs: deque[RunStats] = field(
        default_factory=lambda: deque(maxlen=256))

    @property
    def mean_wall_s(self) -> float:
        return self.total_wall_s / self.requests if self.requests else 0.0


class Session:
    """One compiled module, ready to serve repeated requests."""

    def __init__(self, graph: Graph, plan, config, device: DeviceSpec,
                 framework: str = "Ours", model: str = "",
                 cell=None) -> None:
        self.graph = graph
        self.plan = plan
        self.config = config
        self.device = device
        self.framework = framework
        self.model = model
        self._cell = cell
        self._report = None
        self.pool = SizeClassPool()
        self._schedule: LivenessSchedule = liveness_schedule(graph)
        self._order = graph.topo_order()
        self._param_values: dict[str, np.ndarray] | None = None
        self._input_cache: dict[int, dict[str, np.ndarray]] = {}
        self.stats = SessionStats()

    @property
    def _params(self) -> dict[str, np.ndarray]:
        """Parameters (and interior constants), materialized once on the
        first request - not per run, and not at compile time."""
        if self._param_values is None:
            self._param_values = {
                name: value
                for name, value in make_inputs(self.graph, seed=0).items()
                if name not in self.graph.inputs
            }
        return self._param_values

    # -- costing -----------------------------------------------------------

    @property
    def report(self):
        """Cost-model report for this module (computed once)."""
        if self._report is None:
            if self._cell is not None:
                self._report = self._cell.report
            else:
                from .cost_model import estimate
                self._report = estimate(self.graph, self.device, self.plan,
                                        self.config)
        return self._report

    @property
    def est_latency_ms(self) -> float:
        return self.report.latency_ms

    # -- serving -----------------------------------------------------------

    def make_inputs(self, seed: int = 0) -> dict[str, np.ndarray]:
        """Deterministic random values for the graph inputs only.

        Memoized per seed: repeated seeded requests (load generators,
        tests) do not re-pay input generation.
        """
        found = self._input_cache.get(seed)
        if found is None:
            full = make_inputs(self.graph, seed=seed)
            found = {name: full[name] for name in self.graph.inputs}
            for value in found.values():
                value.setflags(write=False)  # cached values are shared
            if len(self._input_cache) >= 32:  # bound memory for wild seeds
                self._input_cache.pop(next(iter(self._input_cache)))
            self._input_cache[seed] = found
        return dict(found)

    def run(self, inputs: dict[str, np.ndarray] | None = None,
            seed: int = 0) -> dict[str, np.ndarray]:
        """Serve one request; returns the graph outputs.

        ``inputs`` may carry extra tensors (e.g. the full value dict of
        the *source* graph): anything the compiled graph declares
        overrides the session's own materialization, everything else is
        ignored.  ``seed`` applies only when ``inputs`` is None, in which
        case deterministic values for that seed are generated; passing
        both is rejected to avoid silently ignoring one.
        """
        start = time.perf_counter()
        graph = self.graph
        if inputs is None:
            inputs = self.make_inputs(seed)
        elif seed != 0:
            raise ValueError("pass either inputs or seed, not both")
        values = dict(self._params)
        for name, value in inputs.items():
            if name in graph.tensors:
                values[name] = value
        missing = [name for name in graph.inputs if name not in values]
        if missing:
            raise ValueError(f"missing graph inputs: {missing}")

        pool = self.pool
        before = pool.stats()
        tensors = graph.tensors
        schedule = self._schedule
        materialized = schedule.materialized
        live: dict[str, int] = {}
        total_allocated = 0
        timeline: list[PoolEvent] = []
        peak_live = 0

        # Every allocated block is returned to the pool even when a kernel
        # raises (bad input shapes, etc.): a failed request must not
        # corrupt the long-lived pool of a serving session.
        try:
            for t in graph.inputs:
                size = tensors[t].size_bytes
                pool.allocate(size)
                live[t] = size
                total_allocated += size
            for step, node in enumerate(self._order):
                run_node(graph, node, values)
                for t in node.outputs:
                    if t in materialized:
                        size = tensors[t].size_bytes
                        pool.allocate(size)
                        live[t] = size
                        total_allocated += size
                peak_live = max(peak_live, pool.live_bytes)
                timeline.append(PoolEvent(step, pool.live_bytes, 0))
                for t in schedule.releases_at[step]:
                    size = live.pop(t, None)
                    if size is not None:
                        pool.release(size)
                # Drop dead ndarrays - fusion-group-internal values
                # included - so process memory tracks the live set, not
                # the whole graph.
                for t in schedule.value_drops_at[step]:
                    values.pop(t, None)
            outputs = {name: values[name] for name in graph.outputs}
        finally:
            # Return every remaining block - graph outputs, never-consumed
            # inputs, and (on failure) whatever was live at the raising
            # step - so the next request reuses them.
            for size in live.values():
                pool.release(size)
            live.clear()
        after = pool.stats()

        wall_s = time.perf_counter() - start
        run_report = PoolReport(
            peak_bytes=peak_live,
            peak_copy_bytes=0,
            final_bytes=pool.live_bytes,
            timeline=timeline,
            allocations=after["allocations"] - before["allocations"],
            reuses=after["reuses"] - before["reuses"],
            total_allocated_bytes=total_allocated,
        )
        self.stats.requests += 1
        self.stats.total_wall_s += wall_s
        self.stats.runs.append(RunStats(
            request=self.stats.requests,
            wall_s=wall_s,
            est_latency_ms=self.est_latency_ms,
            pool=run_report,
        ))
        return outputs

    def run_batch(self, batch: list[dict[str, np.ndarray]]
                  ) -> list[dict[str, np.ndarray]]:
        """Serve a list of requests back to back on the shared pool."""
        return [self.run(inputs) for inputs in batch]


def compile_session(model: str | Graph, framework: str = "Ours",
                    device: DeviceSpec = SD8GEN2, batch: int = 1,
                    check_memory: bool = False, **fw_kwargs) -> Session:
    """Compile a (model, framework, device) triple into a fresh Session.

    Compilation is served by the bench harness's cell cache: repeated
    calls for the same triple (or a benchmark that already costed it)
    share one compile.  Raises ``RuntimeError`` when the framework does
    not support the model (capability or memory limits).
    """
    # Imported lazily: the harness sits above the runtime layer.
    from ..bench.harness import run_cell

    if batch != 1 and not isinstance(model, str):
        raise ValueError(
            "batch only applies to registry-name models; build the Graph "
            "at the desired batch size instead")
    cell = run_cell(model, framework, device, check_memory=check_memory,
                    batch=batch, **fw_kwargs)
    if not cell.supported:
        raise RuntimeError(
            f"{framework} cannot serve this model: {cell.reason}")
    result = cell.result
    return Session(
        graph=result.graph, plan=result.plan, config=result.config,
        device=device, framework=framework,
        model=model if isinstance(model, str) else model.name,
        cell=cell,
    )


class Engine:
    """Session registry: one live Session per compiled triple.

    ``compile()`` returns the *same* Session for the same triple, so its
    pool (and its warmed free blocks) carry across callers - the
    compile-once/run-many contract at process scope.
    """

    def __init__(self, device: DeviceSpec = SD8GEN2) -> None:
        self.device = device
        self._sessions: dict = {}

    def compile(self, model: str | Graph, framework: str = "Ours",
                device: DeviceSpec | None = None, batch: int = 1,
                **fw_kwargs) -> Session:
        # The harness defines model identity (name, or graph id +
        # generation) so this registry agrees with the cell cache it
        # fronts; pinning the graph in the entry keeps the id valid.
        from ..bench.harness import model_cache_key

        key = (model_cache_key(model), framework, device or self.device,
               batch, tuple(sorted(fw_kwargs.items())))
        try:
            found = self._sessions.get(key)
        except TypeError:  # unhashable config: compile uncached
            return compile_session(model, framework, device or self.device,
                                   batch, **fw_kwargs)
        if found is None:
            session = compile_session(model, framework, device or self.device,
                                      batch, **fw_kwargs)
            self._sessions[key] = (
                session, model if isinstance(model, Graph) else None)
            return session
        return found[0]

    @property
    def num_sessions(self) -> int:
        return len(self._sessions)
