"""Shared-memory ndarray transport for the parallel execution backend.

Request and response tensors cross the process boundary through a ring
of preallocated ``multiprocessing.shared_memory`` segments instead of
being pickled over a pipe.  The layout is *static*: every program's
request shape is fixed (:attr:`ExecutionProgram.input_signature`) and so
are its output specs, so one :class:`ShardLayout` computed at pool
construction gives every request slot a fixed byte offset - writers and
readers never exchange metadata, only a segment index and a request
count.

Segment lifecycle is the hazard here: a leaked segment outlives the
process in ``/dev/shm``.  Every segment registers in a module-level
registry on creation and unregisters on unlink; :func:`unlink_all` runs
at interpreter exit as a backstop, and :func:`active_segments` lets
tests assert nothing leaked.  Worker processes *inherit* segments over
``fork`` and never create or unlink any - ownership stays with the
parent.
"""

from __future__ import annotations

import atexit
import threading
from collections import deque
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

# ---------------------------------------------------------------------------
# segment registry - leak guarantee
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, shared_memory.SharedMemory] = {}
_REGISTRY_LOCK = threading.Lock()


def active_segments() -> tuple[str, ...]:
    """Names of every live segment this process created (tests assert
    this is empty after ``Service.close()`` / ``Session.close()``)."""
    with _REGISTRY_LOCK:
        return tuple(sorted(_REGISTRY))


def unlink_all() -> int:
    """Unlink every registered segment; returns how many were closed.

    Registered with :mod:`atexit` so an interpreter that dies without
    closing its services still leaves ``/dev/shm`` clean.
    """
    with _REGISTRY_LOCK:
        segments = list(_REGISTRY.values())
        _REGISTRY.clear()
    for segment in segments:
        try:
            segment.close()
            segment.unlink()
        except (FileNotFoundError, OSError):  # already gone - fine
            pass
    return len(segments)


atexit.register(unlink_all)


class SharedSegment:
    """One owned shared-memory segment, registered for cleanup."""

    __slots__ = ("shm", "_unlinked")

    def __init__(self, nbytes: int) -> None:
        self.shm = shared_memory.SharedMemory(create=True,
                                              size=max(1, nbytes))
        self._unlinked = False
        with _REGISTRY_LOCK:
            _REGISTRY[self.shm.name] = self.shm

    @property
    def name(self) -> str:
        return self.shm.name

    @property
    def buf(self) -> memoryview:
        return self.shm.buf

    def unlink(self) -> None:
        """Close and unlink; idempotent."""
        if self._unlinked:
            return
        self._unlinked = True
        with _REGISTRY_LOCK:
            _REGISTRY.pop(self.shm.name, None)
        try:
            self.shm.close()
            self.shm.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - raced
            pass


# ---------------------------------------------------------------------------
# static per-request layout
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TensorSlot:
    """One tensor's place inside a request's input or output block."""

    name: str
    shape: tuple
    dtype: str
    offset: int
    nbytes: int


def _align(offset: int, alignment: int = 64) -> int:
    return (offset + alignment - 1) // alignment * alignment


def _pack(specs) -> tuple[tuple[TensorSlot, ...], int]:
    """Lay tensors head-to-tail (64-byte aligned) in one block."""
    slots, offset = [], 0
    for name, shape, dtype in specs:
        nbytes = int(np.dtype(dtype).itemsize * int(np.prod(shape, dtype=np.int64)))
        slots.append(TensorSlot(name, tuple(int(d) for d in shape),
                                str(dtype), offset, nbytes))
        offset = _align(offset + nbytes)
    return tuple(slots), _align(max(offset, 1))


class ShardLayout:
    """Fixed byte layout of one segment: ``capacity`` request slots.

    A segment is split into an input region and an output region, each
    an array of per-request blocks::

        [in_0 | in_1 | ... | in_{cap-1} | out_0 | ... | out_{cap-1}]

    The dispatcher writes request ``i``'s input tensors into ``in_i``
    and the worker writes its outputs into ``out_i`` - both sides
    compute the same offsets from the program alone.

    Symbolic serving keeps the no-metadata property per *extent*: a
    layout built with ``extent=S`` substitutes ``S`` for the leading
    dim of every input and every batch-carrying output, so parent and
    worker - both holding the same base program - derive identical
    offsets from ``(program, capacity, S)`` with nothing but ``S``
    crossing the pipe.  Tensors whose leading dim the batch analysis
    proved batch-independent keep their exact shapes.
    """

    __slots__ = ("capacity", "extent", "inputs", "outputs",
                 "request_in_bytes", "request_out_bytes", "segment_bytes")

    def __init__(self, program, capacity: int,
                 extent: int | None = None) -> None:
        if capacity < 1:
            raise ValueError("ShardLayout capacity must be at least 1")
        self.capacity = int(capacity)
        self.extent = extent
        graph = program.graph
        input_specs = program.input_signature
        output_specs = [
            (name, tuple(graph.shape(name)),
             str(np.dtype(graph.tensors[name].dtype.numpy_dtype)))
            for name in program.output_names]
        if extent is not None:
            from .batching import analyze  # deferred: cyclic at import
            analysis = analyze(program)
            if not analysis.stackable:
                raise ValueError(
                    f"per-extent layout needs a batch-scalable program: "
                    f"{analysis.reason}")
            base = analysis.batch_extent
            input_specs = [
                (name, (int(extent),) + tuple(shape[1:]), dtype)
                for name, shape, dtype in input_specs]
            output_specs = [
                (name,
                 (shape[0] * int(extent) // base,) + shape[1:]
                 if name in analysis.batched else shape,
                 dtype)
                for name, shape, dtype in output_specs]
        self.inputs, self.request_in_bytes = _pack(input_specs)
        self.outputs, self.request_out_bytes = _pack(output_specs)
        self.segment_bytes = self.capacity * (
            self.request_in_bytes + self.request_out_bytes)

    # -- offsets ----------------------------------------------------------

    def _in_base(self, index: int) -> int:
        if not 0 <= index < self.capacity:
            raise IndexError(f"request index {index} outside segment "
                             f"capacity {self.capacity}")
        return index * self.request_in_bytes

    def _out_base(self, index: int) -> int:
        if not 0 <= index < self.capacity:
            raise IndexError(f"request index {index} outside segment "
                             f"capacity {self.capacity}")
        return (self.capacity * self.request_in_bytes
                + index * self.request_out_bytes)

    @staticmethod
    def _view(buf, base: int, slot: TensorSlot) -> np.ndarray:
        start = base + slot.offset
        return np.ndarray(slot.shape, dtype=slot.dtype,
                          buffer=buf, offset=start)

    # -- transport --------------------------------------------------------

    def write_inputs(self, buf, index: int, values: dict) -> None:
        base = self._in_base(index)
        for slot in self.inputs:
            self._view(buf, base, slot)[...] = values[slot.name]

    def read_inputs(self, buf, index: int) -> dict:
        """Copies - the returned arrays do not alias the segment."""
        base = self._in_base(index)
        return {slot.name: self._view(buf, base, slot).copy()
                for slot in self.inputs}

    def write_outputs(self, buf, index: int, outputs: dict) -> None:
        base = self._out_base(index)
        for slot in self.outputs:
            self._view(buf, base, slot)[...] = outputs[slot.name]

    def read_outputs(self, buf, index: int) -> dict:
        """Copies - safe to hand to callers after the segment recycles."""
        base = self._out_base(index)
        return {slot.name: self._view(buf, base, slot).copy()
                for slot in self.outputs}


# ---------------------------------------------------------------------------
# segment ring
# ---------------------------------------------------------------------------

class SegmentRing:
    """A fixed pool of segments handed out one per in-flight shard.

    ``acquire`` blocks when every segment is in flight (the dispatcher
    never has more shards outstanding than workers, so with
    ``>= workers`` segments this only waits during respawn races).
    """

    __slots__ = ("layout", "segments", "_free", "_cond", "_closed")

    def __init__(self, layout: ShardLayout, count: int) -> None:
        self.layout = layout
        self.segments = tuple(SharedSegment(layout.segment_bytes)
                              for _ in range(max(1, count)))
        self._free = deque(range(len(self.segments)))
        self._cond = threading.Condition()
        self._closed = False

    def acquire(self, timeout: float = 30.0) -> int:
        with self._cond:
            if not self._cond.wait_for(
                    lambda: self._free or self._closed, timeout):
                raise TimeoutError("no free shared-memory segment "
                                   f"after {timeout:.0f}s")
            if self._closed:
                raise RuntimeError("segment ring is closed")
            return self._free.popleft()

    def release(self, index: int) -> None:
        with self._cond:
            if not self._closed:
                self._free.append(index)
                self._cond.notify()

    def buf(self, index: int) -> memoryview:
        return self.segments[index].buf

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._free.clear()
            self._cond.notify_all()
        for segment in self.segments:
            segment.unlink()


__all__ = [
    "SegmentRing", "ShardLayout", "SharedSegment", "TensorSlot",
    "active_segments", "unlink_all",
]
