"""Static per-step memory-traffic and FLOP stamps for the roofline report.

``lower()`` stamps every :class:`~repro.runtime.program.Step` with the
bytes it reads, the bytes it writes, and the floating-point work it
dispatches - all derived from tensor specs at compile time, so the
stamps are identical for every request.  Aggregated per *kernel family*
they make the serving cost legible the way the nnfusion Table-6
methodology does: once dispatch overhead is compiled away, the remaining
wall time tracks bytes moved per kernel, and arithmetic intensity
(FLOPs / byte) says which families are memory-bound and which are
compute-bound - i.e. where the next kernel PR should aim.

Traffic is *algorithmic*: the tensor bytes a minimal implementation must
move (inputs read once, outputs written once).  Scratch traffic the
im2col lowering adds is reported separately through the slot plan's
scratch classes, not folded in here - the point of the stamp is a
stable, implementation-independent denominator for intensity.
"""

from __future__ import annotations

import math

#: op_type -> kernel family used by the roofline aggregation.
_FAMILY = {
    "conv2d": "conv",
    "matmul": "gemm",
    "dense": "gemm",
    "unary": "elementwise",
    "binary": "elementwise",
    "softmax": "norm",
    "layernorm": "norm",
    "rmsnorm": "norm",
    "instancenorm": "norm",
    "groupnorm": "norm",
    "batchnorm": "elementwise",
    "reduce_mean": "reduce",
    "reduce_sum": "reduce",
    "reduce_max": "reduce",
    "maxpool2d": "pool",
    "avgpool2d": "pool",
    "global_avgpool": "pool",
    "upsample2d": "pool",
    "embedding": "layout",
}

#: Families in report order.
FAMILIES = ("conv", "gemm", "norm", "elementwise", "reduce", "pool", "layout")


def family(op_type: str) -> str:
    """Kernel family an op_type is accounted under (default: layout)."""
    return _FAMILY.get(op_type, "layout")


def _elems(shape) -> int:
    return math.prod(shape) if shape else 1


#: Approximate FLOPs per output element for multi-pass families.  These
#: are static estimates (mean/var/normalize passes for norms; shift, exp,
#: sum, divide for softmax), fixed constants so the stamps stay
#: comparable across PRs.
_NORM_FLOPS = {"layernorm": 7, "rmsnorm": 5, "instancenorm": 7,
               "groupnorm": 7, "softmax": 5}


def step_flops(op_type: str, attrs: dict, arg_shapes, out_shapes) -> int:
    """Static floating-point work dispatched by one step."""
    out = _elems(out_shapes[0]) if out_shapes else 0
    if op_type == "conv2d":
        _, cpg, kh, kw = arg_shapes[1]
        flops = 2 * out * cpg * kh * kw
        if len(arg_shapes) > 2:
            flops += out
        return flops
    if op_type == "matmul":
        a = arg_shapes[0]
        k = a[-2] if attrs.get("transpose_a") else a[-1]
        return 2 * out * k
    if op_type == "dense":
        k = arg_shapes[0][-1]
        flops = 2 * out * k
        if len(arg_shapes) > 2:
            flops += out
        return flops
    if op_type in _NORM_FLOPS:
        return _NORM_FLOPS[op_type] * _elems(arg_shapes[0])
    if op_type == "batchnorm":
        return _elems(arg_shapes[0]) * max(1, len(arg_shapes) - 1)
    if op_type in ("unary", "binary"):
        return _elems(arg_shapes[0])
    if op_type in ("reduce_mean", "reduce_sum", "reduce_max",
                   "global_avgpool"):
        return _elems(arg_shapes[0])
    if op_type in ("maxpool2d", "avgpool2d"):
        kh, kw = attrs["kernel"] if not isinstance(attrs["kernel"], int) \
            else (attrs["kernel"], attrs["kernel"])
        return out * kh * kw
    return 0  # layout / lookup families move bytes, no arithmetic


def step_traffic(op_type: str, attrs: dict, arg_shapes, arg_itemsizes,
                 out_shapes, out_itemsizes) -> tuple[int, int, int]:
    """``(bytes_read, bytes_written, flops)`` for one lowered step."""
    reads = sum(_elems(s) * i for s, i in zip(arg_shapes, arg_itemsizes))
    writes = sum(_elems(s) * i for s, i in zip(out_shapes, out_itemsizes))
    return reads, writes, step_flops(op_type, attrs, arg_shapes, out_shapes)


def roofline_summary(steps) -> dict[str, dict]:
    """Aggregate step stamps per kernel family.

    Returns ``{family: {steps, bytes_read, bytes_written, flops,
    intensity}}`` where ``intensity`` is FLOPs per byte moved - the
    x-axis of a roofline plot.
    """
    summary: dict[str, dict] = {}
    for step in steps:
        entry = summary.setdefault(family(step.op_type), {
            "steps": 0, "bytes_read": 0, "bytes_written": 0, "flops": 0})
        entry["steps"] += 1
        entry["bytes_read"] += step.bytes_read
        entry["bytes_written"] += step.bytes_written
        entry["flops"] += step.flops
    for entry in summary.values():
        moved = entry["bytes_read"] + entry["bytes_written"]
        entry["intensity"] = round(entry["flops"] / moved, 3) if moved else 0.0
    return summary
