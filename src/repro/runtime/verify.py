"""Structured semantic verification of graph rewrites.

``verify_equivalence`` runs two graphs on shared random inputs and
produces a per-output error report - the tool behind every
"optimized == original" guarantee in the examples and tests, with
actionable output when something diverges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ir.graph import Graph
from .executor import make_inputs
from .program import get_backend, lower


@dataclass
class OutputCheck:
    name: str
    shape: tuple[int, ...]
    max_abs_error: float
    max_rel_error: float
    matches: bool


@dataclass
class VerificationReport:
    checks: list[OutputCheck] = field(default_factory=list)
    seeds: tuple[int, ...] = ()

    @property
    def passed(self) -> bool:
        return all(c.matches for c in self.checks)

    @property
    def worst_abs_error(self) -> float:
        return max((c.max_abs_error for c in self.checks), default=0.0)

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [f"verification {status} over seeds {list(self.seeds)}"]
        for c in self.checks:
            mark = "ok " if c.matches else "BAD"
            lines.append(
                f"  [{mark}] {c.name} {c.shape}: max abs err "
                f"{c.max_abs_error:.3e}, max rel err {c.max_rel_error:.3e}")
        return "\n".join(lines)


def verify_equivalence(
    reference: Graph,
    candidate: Graph,
    seeds: tuple[int, ...] = (0, 1),
    rtol: float = 1e-4,
    atol: float = 1e-5,
    backend: str = "numpy",
) -> VerificationReport:
    """Compare graph outputs over several input seeds.

    Both graphs are lowered once (memoized per graph generation) and
    executed through the named
    :class:`~repro.runtime.program.ExecutionBackend` - the same program
    path the executor and the serving sessions use, so verification
    exercises exactly the code that serves requests.
    """
    run = get_backend(backend).run
    ref_program = lower(reference)
    cand_program = lower(candidate)
    report = VerificationReport(seeds=tuple(seeds))
    worst: dict[str, OutputCheck] = {}
    for seed in seeds:
        inputs = make_inputs(reference, seed=seed)
        ref_out = run(ref_program, dict(inputs))
        cand_out = run(
            cand_program, {k: v for k, v in inputs.items()
                           if k in candidate.tensors})
        for name in ref_out:
            a = np.asarray(ref_out[name], dtype=np.float64)
            b = np.asarray(cand_out[name], dtype=np.float64)
            abs_err = float(np.nanmax(np.abs(a - b))) if a.size else 0.0
            scale = np.maximum(np.abs(a), 1e-12)
            rel_err = float(np.nanmax(np.abs(a - b) / scale)) if a.size else 0.0
            matches = bool(np.allclose(a, b, rtol=rtol, atol=atol,
                                       equal_nan=True))
            check = OutputCheck(name, tuple(a.shape), abs_err, rel_err, matches)
            prev = worst.get(name)
            if prev is None or check.max_abs_error > prev.max_abs_error \
                    or not check.matches:
                worst[name] = check
    report.checks = list(worst.values())
    return report
