"""Genetic-algorithm kernel auto-tuning (Section 3.3, 'Other opt')."""

from .config_space import KernelConfig, KernelShape, fitness
from .genetic import GAParams, GAResult, run_ga
from .tuner import (
    TunedKernel, TuningReport, kernel_shapes, stage_config, tune_graph,
    tune_kernel,
)

__all__ = [
    "GAParams", "GAResult", "KernelConfig", "KernelShape", "TunedKernel",
    "TuningReport", "fitness", "kernel_shapes", "run_ga", "stage_config",
    "tune_graph", "tune_kernel",
]
