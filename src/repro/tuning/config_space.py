"""Kernel execution-configuration space.

Section 3.3 ("Other optimizations"): SmartMem auto-tunes GPU execution
configurations - block dimensions, unrolling factors, and tiling shapes -
with a genetic algorithm inherited from DNNFusion.  This module defines
the discrete configuration space and a deterministic analytic fitness
function (occupancy x reuse x vectorization match) standing in for
on-device measurement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

WORKGROUP_SIZES = (1, 2, 4, 8, 16, 32, 64, 128, 256)
TILE_SIZES = (1, 2, 4, 8, 16, 32)
UNROLL_FACTORS = (1, 2, 4, 8)
VECTOR_WIDTHS = (1, 2, 4)


@dataclass(frozen=True)
class KernelConfig:
    """One point in the execution-configuration space."""

    workgroup_x: int = 64
    workgroup_y: int = 1
    tile_m: int = 4
    tile_n: int = 4
    unroll: int = 4
    vector_width: int = 4

    def __post_init__(self):
        if self.workgroup_x not in WORKGROUP_SIZES:
            raise ValueError(f"workgroup_x {self.workgroup_x} not in space")
        if self.workgroup_y not in WORKGROUP_SIZES:
            raise ValueError(f"workgroup_y {self.workgroup_y} not in space")
        if self.tile_m not in TILE_SIZES or self.tile_n not in TILE_SIZES:
            raise ValueError("tile sizes out of space")
        if self.unroll not in UNROLL_FACTORS:
            raise ValueError(f"unroll {self.unroll} out of space")
        if self.vector_width not in VECTOR_WIDTHS:
            raise ValueError(f"vector width {self.vector_width} out of space")

    @property
    def threads(self) -> int:
        return self.workgroup_x * self.workgroup_y

    def as_genes(self) -> tuple[int, ...]:
        return (
            WORKGROUP_SIZES.index(self.workgroup_x),
            WORKGROUP_SIZES.index(self.workgroup_y),
            TILE_SIZES.index(self.tile_m),
            TILE_SIZES.index(self.tile_n),
            UNROLL_FACTORS.index(self.unroll),
            VECTOR_WIDTHS.index(self.vector_width),
        )

    @staticmethod
    def from_genes(genes: Sequence[int]) -> "KernelConfig":
        return KernelConfig(
            workgroup_x=WORKGROUP_SIZES[genes[0] % len(WORKGROUP_SIZES)],
            workgroup_y=WORKGROUP_SIZES[genes[1] % len(WORKGROUP_SIZES)],
            tile_m=TILE_SIZES[genes[2] % len(TILE_SIZES)],
            tile_n=TILE_SIZES[genes[3] % len(TILE_SIZES)],
            unroll=UNROLL_FACTORS[genes[4] % len(UNROLL_FACTORS)],
            vector_width=VECTOR_WIDTHS[genes[5] % len(VECTOR_WIDTHS)],
        )

    @staticmethod
    def gene_space() -> tuple[int, ...]:
        """Number of alleles per gene position."""
        return (len(WORKGROUP_SIZES), len(WORKGROUP_SIZES), len(TILE_SIZES),
                len(TILE_SIZES), len(UNROLL_FACTORS), len(VECTOR_WIDTHS))


@dataclass(frozen=True)
class KernelShape:
    """The iteration space being tuned: an (M, N, K) work shape with a
    preferred SIMD width (4 on texture-backed tensors)."""

    m: int
    n: int
    k: int
    simd_width: int = 4
    max_threads: int = 1024
    registers_per_thread: int = 64


def fitness(config: KernelConfig, shape: KernelShape) -> float:
    """Deterministic efficiency estimate in (0, 1].

    Rewards: full workgroups (occupancy), square-ish tiles (register
    reuse), vector width matching the storage vector width, unrolling
    that divides K.  Penalizes: register spill (too much tile x unroll),
    workgroups larger than the work, tile waste on non-divisible shapes.
    """
    if config.threads > shape.max_threads:
        return 1e-6

    # occupancy: prefer 64..256 threads
    occ = min(1.0, config.threads / 64.0)
    if config.threads > 256:
        occ *= 256.0 / config.threads

    # utilization: don't launch more threads than work items along x/y
    work_x = max(1, shape.n // max(1, config.tile_n))
    work_y = max(1, shape.m // max(1, config.tile_m))
    util_x = min(1.0, work_x / config.workgroup_x)
    util_y = min(1.0, work_y / config.workgroup_y)

    # register pressure: tile_m*tile_n accumulators + unroll staging
    regs = config.tile_m * config.tile_n + config.unroll * config.vector_width
    spill = 1.0 if regs <= shape.registers_per_thread else \
        shape.registers_per_thread / regs

    # data reuse grows with tile area but saturates
    reuse = math.tanh(config.tile_m * config.tile_n / 16.0) * 0.5 + 0.5

    # vectorization: matching the memory vector width is free bandwidth
    vec = config.vector_width / shape.simd_width
    vec = vec if vec <= 1.0 else 1.0 / vec

    # unroll should divide K
    unroll_fit = 1.0 if shape.k % config.unroll == 0 else 0.8

    # tile waste on ragged edges
    waste_m = (shape.m % config.tile_m) / max(shape.m, 1)
    waste_n = (shape.n % config.tile_n) / max(shape.n, 1)
    waste = 1.0 - 0.5 * (waste_m + waste_n)

    return occ * util_x * util_y * spill * reuse * (0.5 + 0.5 * vec) \
        * unroll_fit * waste
