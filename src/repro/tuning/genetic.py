"""Generic genetic algorithm (Section 3.3's auto-tuning mechanism).

A small, deterministic (seeded) GA over integer gene vectors: tournament
selection, single-point crossover, per-gene mutation, elitism.  Used by
the tuner to search kernel configurations, and directly testable against
exhaustive search on small spaces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

Genes = tuple[int, ...]


@dataclass(frozen=True)
class GAParams:
    population: int = 32
    generations: int = 25
    tournament: int = 3
    crossover_rate: float = 0.8
    mutation_rate: float = 0.15
    elites: int = 2
    seed: int = 0


@dataclass
class GAResult:
    best: Genes
    best_fitness: float
    history: list[float]
    evaluations: int


def run_ga(
    gene_space: Sequence[int],
    fitness_fn: Callable[[Genes], float],
    params: GAParams = GAParams(),
) -> GAResult:
    """Maximize ``fitness_fn`` over the integer box defined by gene_space."""
    if not gene_space:
        raise ValueError("gene space must be non-empty")
    rng = random.Random(params.seed)
    evaluations = 0

    def random_genes() -> Genes:
        return tuple(rng.randrange(size) for size in gene_space)

    def evaluate(genes: Genes) -> float:
        nonlocal evaluations
        evaluations += 1
        return fitness_fn(genes)

    population = [random_genes() for _ in range(params.population)]
    scored = sorted(((evaluate(g), g) for g in population), reverse=True)
    history = [scored[0][0]]

    def tournament() -> Genes:
        entrants = rng.sample(scored, min(params.tournament, len(scored)))
        return max(entrants)[1]

    for _ in range(params.generations):
        next_pop: list[Genes] = [g for _, g in scored[: params.elites]]
        while len(next_pop) < params.population:
            a, b = tournament(), tournament()
            if rng.random() < params.crossover_rate and len(gene_space) > 1:
                cut = rng.randrange(1, len(gene_space))
                child = a[:cut] + b[cut:]
            else:
                child = a
            child = tuple(
                rng.randrange(gene_space[i])
                if rng.random() < params.mutation_rate else allele
                for i, allele in enumerate(child)
            )
            next_pop.append(child)
        scored = sorted(((evaluate(g), g) for g in next_pop), reverse=True)
        history.append(scored[0][0])

    best_fit, best = scored[0]
    return GAResult(best=best, best_fitness=best_fit, history=history,
                    evaluations=evaluations)
