"""Kernel auto-tuner: GA search over execution configurations.

``tune_kernel`` finds the best KernelConfig for one kernel shape;
``tune_graph`` tunes the distinct heavy-op shapes of an optimized graph
and summarizes the result as the ``extra_efficiency`` multiplier the cost
model applies (the "Other opt" tuning contribution of Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.graph import Graph
from .config_space import KernelConfig, KernelShape, fitness
from .genetic import GAParams, GAResult, run_ga


@dataclass
class TunedKernel:
    shape: KernelShape
    config: KernelConfig
    efficiency: float
    ga: GAResult


@dataclass
class TuningReport:
    kernels: list[TunedKernel] = field(default_factory=list)

    @property
    def mean_efficiency(self) -> float:
        if not self.kernels:
            return 1.0
        return sum(k.efficiency for k in self.kernels) / len(self.kernels)

    def extra_efficiency(self, untuned_baseline: float = 0.62) -> float:
        """Speed multiplier over an untuned default configuration.

        The default config's average fitness over the same shapes is the
        baseline; the ratio (clamped to a modest range) feeds the cost
        model's ``extra_efficiency``."""
        if not self.kernels:
            return 1.0
        default = KernelConfig()
        base = sum(fitness(default, k.shape) for k in self.kernels) / len(self.kernels)
        base = max(base, 1e-6)
        return float(min(1.25, max(1.0, self.mean_efficiency / base)))


def tune_kernel(shape: KernelShape, params: GAParams | None = None) -> TunedKernel:
    params = params or GAParams()
    result = run_ga(
        KernelConfig.gene_space(),
        lambda genes: fitness(KernelConfig.from_genes(genes), shape),
        params,
    )
    config = KernelConfig.from_genes(result.best)
    return TunedKernel(shape=shape, config=config,
                       efficiency=result.best_fitness, ga=result)


def kernel_shapes(graph: Graph, limit: int = 16) -> list[KernelShape]:
    """Distinct (M, N, K) shapes of the graph's heavy operators.

    Memoized per graph generation (the tuner and the roofline analysis
    both walk the same optimized graph); treat the result as read-only.
    """
    cache = graph.analysis_cache()
    key = ("kernel_shapes", limit)
    found = cache.get(key)
    if found is None:
        found = _kernel_shapes(graph, limit)
        cache[key] = found
    return found


def _kernel_shapes(graph: Graph, limit: int) -> list[KernelShape]:
    seen: set[tuple[int, int, int]] = set()
    shapes: list[KernelShape] = []
    for node in graph.iter_nodes():
        if node.op_type == "dense":
            k = graph.shape(node.inputs[1])[1]
            n = graph.shape(node.inputs[1])[0]
            m = 1
            for d in graph.shape(node.inputs[0])[:-1]:
                m *= d
        elif node.op_type == "matmul":
            out = graph.shape(node.outputs[0])
            m, n = out[-2], out[-1]
            a = graph.shape(node.inputs[0])
            k = a[-2] if node.attrs.get("transpose_a") else a[-1]
        elif node.op_type == "conv2d":
            out = graph.shape(node.outputs[0])
            w = graph.shape(node.inputs[1])
            m = out[2] * out[3]
            n = w[0]
            k = w[1] * w[2] * w[3]
        else:
            continue
        key = (m, n, k)
        if key in seen:
            continue
        seen.add(key)
        shapes.append(KernelShape(m=m, n=n, k=k))
        if len(shapes) >= limit:
            break
    return shapes


def tune_graph(graph: Graph, params: GAParams | None = None,
               limit: int = 16) -> TuningReport:
    report = TuningReport()
    for shape in kernel_shapes(graph, limit=limit):
        report.kernels.append(tune_kernel(shape, params))
    return report


def stage_config(graph: Graph, params: GAParams | None = None,
                 limit: int = 16, base=None):
    """Express the tuner as a *pass-config producer*.

    Runs the GA over ``graph``'s heavy-op shapes and returns a
    :class:`~repro.core.passes.PipelineStages` whose ``tuned_boost`` is
    the measured efficiency ratio instead of the static default - the
    value the pipeline's ``tuning`` pass applies and
    ``OptimizeResult.cost_config()`` hands to the cost model.  ``base``
    (default stages) supplies every other knob unchanged.
    """
    from dataclasses import replace

    from ..core.passes import PipelineStages

    report = tune_graph(graph, params, limit=limit)
    return replace(base or PipelineStages(),
                   tuned_boost=report.extra_efficiency())
