"""Shared fixtures: small graphs that exercise every optimizer path."""

from __future__ import annotations

import pytest

from repro.ir import GraphBuilder


@pytest.fixture
def linear_graph():
    """input -> conv -> relu -> reshape -> transpose -> layernorm -> dense."""
    b = GraphBuilder("linear")
    x = b.input("x", (1, 8, 8, 8))
    y = b.conv2d(x, 16, 3, padding=1)
    y = b.relu(y)
    y = b.reshape(y, (1, 16, 64))
    y = b.transpose(y, (0, 2, 1))
    y = b.layernorm(y)
    y = b.dense(y, 32)
    b.output(y)
    return b.finish()


@pytest.fixture
def attention_graph():
    """A miniature attention block with the full qkv choreography."""
    b = GraphBuilder("attention")
    x = b.input("x", (1, 16, 24))
    h = b.layernorm(x)
    qkv = b.dense(h, 72)
    qkv = b.reshape(qkv, (1, 16, 3, 2, 12))
    qkv = b.transpose(qkv, (2, 0, 3, 1, 4))
    q = b.reshape(b.slice_axis(qkv, 0, 0, 1), (2, 16, 12))
    k = b.reshape(b.slice_axis(qkv, 0, 1, 2), (2, 16, 12))
    v = b.reshape(b.slice_axis(qkv, 0, 2, 3), (2, 16, 12))
    attn = b.matmul(q, k, transpose_b=True)
    attn = b.softmax(attn)
    o = b.matmul(attn, v)
    o = b.transpose(o, (1, 0, 2))
    o = b.reshape(o, (1, 16, 24))
    o = b.dense(o, 24)
    b.output(b.add(o, x))
    return b.finish()


@pytest.fixture
def multi_consumer_graph():
    """One producer feeding consumers with different reduction dims."""
    b = GraphBuilder("fanout")
    x = b.input("x", (4, 8, 16))
    y = b.dense(x, 16)
    r1 = b.reduce(y, "reduce_sum", axes=1)   # wants dim 1 contiguous
    r2 = b.reduce(y, "reduce_sum", axes=2)   # wants dim 2 contiguous
    m = b.matmul(y, y, transpose_b=True)     # wants dim 2 contiguous
    b.output(r1)
    b.output(r2)
    b.output(m)
    return b.finish()


@pytest.fixture
def conv_net_graph():
    """Small CNN: conv/bn/relu stacks with a residual."""
    b = GraphBuilder("cnn")
    x = b.input("x", (1, 3, 16, 16))
    y = b.conv2d(x, 8, 3, padding=1, bias=False)
    y = b.batchnorm(y)
    y = b.relu(y)
    z = b.conv2d(y, 8, 3, padding=1, bias=False)
    z = b.batchnorm(z)
    y = b.relu(b.add(y, z))
    y = b.maxpool2d(y, 2)
    y = b.global_avgpool(y)
    y = b.reshape(y, (1, 8))
    b.output(b.dense(y, 10))
    return b.finish()
