"""Tests for the typed service-layer API: repro.compile / repro.serve."""

import threading
import time
import warnings

import numpy as np
import pytest

import repro
from repro.api import (
    CompileOptions, InferenceRequest, ServeOptions, Service, serve,
)
from repro.models import SMOKE_CONFIGS, build
from repro.runtime import Engine, compile_session, execute, make_inputs
from repro.runtime import session as session_module


def _smoke(name):
    return build(name, **SMOKE_CONFIGS[name])


def _reference(graph, inputs):
    """What the service must produce: the compiled graph executed over
    seed-0 parameters overlaid with the request's input tensors."""
    return execute(graph, {**make_inputs(graph, seed=0), **inputs})


def _graph_inputs(graph, seed):
    full = make_inputs(graph, seed=seed)
    return {name: full[name] for name in graph.inputs}


class TestCompileFrontDoor:
    @pytest.fixture(scope="class")
    def model(self):
        return repro.compile(_smoke("ViT"))

    def test_run_matches_execute(self, model):
        inputs = _graph_inputs(model.graph, seed=3)
        response = model.run(InferenceRequest(inputs=inputs, request_id="r3"))
        ref = _reference(model.graph, inputs)
        assert sorted(response.outputs) == sorted(ref)
        for key in ref:
            assert np.array_equal(response.outputs[key], ref[key]), key
        assert response.request_id == "r3"
        assert response.batch_size == 1
        assert response.stats.wall_s > 0
        assert response.stats.pool.total_allocated_bytes > 0

    def test_plain_mapping_accepted(self, model):
        inputs = _graph_inputs(model.graph, seed=1)
        assert model.run(inputs).outputs

    def test_run_batch(self, model):
        requests = [InferenceRequest(inputs=_graph_inputs(model.graph, s),
                                     request_id=s) for s in range(3)]
        responses = model.run_batch(requests)
        assert [r.request_id for r in responses] == [0, 1, 2]
        assert all(r.batch_size == 3 for r in responses)
        name = next(iter(responses[0].outputs))
        assert not np.array_equal(responses[0].outputs[name],
                                  responses[1].outputs[name])

    def test_identical_rebuilt_graph_hits_session_cache(self):
        g1, g2 = _smoke("ViT"), _smoke("ViT")
        assert g1 is not g2
        assert g1.fingerprint() == g2.fingerprint()
        assert repro.compile(g1).session is repro.compile(g2).session

    def test_options_merge_and_validation(self):
        g = _smoke("ViT")
        options = CompileOptions(framework="Ours")
        assert repro.compile(g, options).session \
            is repro.compile(g, framework="Ours").session
        with pytest.raises(TypeError, match="unknown CompileOptions fields"):
            repro.compile(g, options, not_a_field=1)
        with pytest.raises(KeyError, match="unknown backend"):
            repro.compile(g, backend="tpu")
        with pytest.raises(RuntimeError, match="cannot serve"):
            repro.compile(g, framework="NCNN")

    def test_input_signature_is_admission_spec(self, model):
        assert model.input_signature == model.program.input_signature
        names = [name for name, _, _ in model.input_signature]
        assert names == list(model.graph.inputs)

    def test_batch_key_stable_across_identical_compiles(self):
        a = repro.compile(_smoke("ViT")).program.batch_key
        b = repro.compile(_smoke("ViT")).program.batch_key
        assert a == b


class TestStrictAdmission:
    """The typed surface rejects malformed requests at admission, with an
    error naming the tensor - including wrong-*name* tensors, which the
    legacy Session silently ignored."""

    @pytest.fixture(scope="class")
    def model(self):
        return repro.compile(_smoke("ViT"))

    def test_unknown_tensor_name_rejected(self, model):
        inputs = _graph_inputs(model.graph, 0)
        inputs["not_a_tensor"] = np.zeros(3)
        with pytest.raises(ValueError, match="unknown input tensor "
                                             "'not_a_tensor'"):
            model.run(inputs)

    def test_empty_request_rejected(self, model):
        with pytest.raises(ValueError, match="no input tensors"):
            model.run({})

    def test_missing_input_rejected(self):
        model = repro.compile(_smoke("SD-UNet"))  # three inputs: drop one
        inputs = _graph_inputs(model.graph, 0)
        assert len(inputs) > 1
        del inputs[sorted(inputs)[0]]
        with pytest.raises(ValueError, match="missing input tensors"):
            model.run(inputs)

    def test_wrong_shape_names_tensor(self, model):
        inputs = _graph_inputs(model.graph, 0)
        name = next(iter(inputs))
        inputs[name] = inputs[name][..., :-1]
        with pytest.raises(ValueError, match=f"input {name!r}.*shape"):
            model.run(inputs)

    def test_wrong_dtype_names_tensor(self, model):
        inputs = _graph_inputs(model.graph, 0)
        name = next(iter(inputs))
        inputs[name] = inputs[name].astype(np.float64)
        with pytest.raises(ValueError, match=f"input {name!r}.*dtype"):
            model.run(inputs)

    def test_empty_batch_rejected(self, model):
        with pytest.raises(ValueError, match="empty batch"):
            model.run_batch([])

    def test_session_empty_batch_rejected(self, model):
        with pytest.raises(ValueError, match="empty batch"):
            model.session.run_batch([])

    def test_submit_rejects_before_queueing(self):
        service = serve(_smoke("ViT"), max_wait_ms=0.0)
        try:
            with pytest.raises(ValueError, match="unknown input tensor"):
                service.submit({"bogus": np.zeros(3)})
            assert service.report().requests == 0
        finally:
            service.close()


class TestServiceScheduler:
    def test_concurrent_submitters_get_their_own_outputs(self):
        service = serve(_smoke("Pythia"), max_batch_size=4, max_wait_ms=10.0)
        graph = service.program.graph
        seeds = list(range(12))
        refs = {s: _reference(graph, _graph_inputs(graph, s)) for s in seeds}
        responses = {}
        errors = []

        def client(worker_seeds):
            try:
                futures = [
                    (s, service.submit(InferenceRequest(
                        inputs=_graph_inputs(graph, s), request_id=s)))
                    for s in worker_seeds]
                for s, future in futures:
                    responses[s] = future.result(timeout=30)
            except Exception as err:  # noqa: BLE001 - surfaced below
                errors.append(err)

        threads = [threading.Thread(target=client, args=(seeds[i::4],))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        service.close()
        assert not errors
        assert sorted(responses) == seeds
        for s in seeds:
            assert responses[s].request_id == s
            for key in refs[s]:
                assert np.array_equal(responses[s].outputs[key],
                                      refs[s][key]), (s, key)

    def test_coalescing_respects_max_batch_size(self):
        service = serve(_smoke("Pythia"), max_batch_size=4, max_wait_ms=200.0)
        inputs = _graph_inputs(service.program.graph, 0)
        futures = [service.submit(inputs) for _ in range(10)]
        responses = [f.result(timeout=30) for f in futures]
        service.close()
        report = service.report()
        assert all(1 <= r.batch_size <= 4 for r in responses)
        assert report.largest_batch <= 4
        assert report.requests == 10
        assert report.batches >= 3  # 10 requests cannot fit 2 batches of 4
        assert any(r.batch_size > 1 for r in responses), \
            "burst submission must coalesce"

    def test_zero_wait_serves_immediately(self):
        service = serve(_smoke("Pythia"), max_batch_size=8, max_wait_ms=0.0)
        start = time.perf_counter()
        response = service.infer(_graph_inputs(service.program.graph, 0),
                                 timeout=30)
        wall = time.perf_counter() - start
        service.close()
        assert response.batch_size == 1
        assert wall < 5  # no artificial coalescing delay

    def test_close_drains_queue(self):
        service = serve(_smoke("Pythia"), max_batch_size=4, max_wait_ms=50.0)
        inputs = _graph_inputs(service.program.graph, 0)
        futures = [service.submit(inputs) for _ in range(25)]
        service.close()
        assert all(f.done() for f in futures)
        assert all(f.result().outputs for f in futures)
        report = service.report()
        assert report.requests == 25
        assert report.queue_depth == 0
        assert report.closed
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(inputs)

    def test_priority_orders_the_queue(self):
        model = repro.compile(_smoke("Pythia"))
        service = Service(model, ServeOptions(max_batch_size=2,
                                              max_wait_ms=0.0), _start=False)
        inputs = _graph_inputs(service.program.graph, 0)
        service.submit(InferenceRequest(inputs, request_id="a"))
        service.submit(InferenceRequest(inputs, request_id="b"))
        service.submit(InferenceRequest(inputs, request_id="c", priority=5))
        first = service._next_batch()
        second = service._next_batch()
        assert [e.request_id for e in first] == ["c", "a"]
        assert [e.request_id for e in second] == ["b"]
        service._execute(first)
        service._execute(second)
        service.close()

    def test_deadline_miss_fails_with_timeout(self):
        model = repro.compile(_smoke("Pythia"))
        service = Service(model, ServeOptions(max_batch_size=2,
                                              max_wait_ms=0.0), _start=False)
        inputs = _graph_inputs(service.program.graph, 0)
        expired = service.submit(InferenceRequest(inputs, deadline_ms=0.0))
        alive = service.submit(InferenceRequest(inputs))
        time.sleep(0.005)
        service._execute(service._next_batch())
        with pytest.raises(TimeoutError, match="missed its deadline"):
            expired.result()
        assert isinstance(expired.exception(), TimeoutError)
        assert alive.result().outputs
        report = service.report()
        assert report.expired == 1
        assert report.requests == 1
        service.close()

    def test_backend_failure_fails_the_batch(self):
        model = repro.compile(_smoke("Pythia"))
        service = Service(model, ServeOptions(max_batch_size=4,
                                              max_wait_ms=0.0), _start=False)
        inputs = _graph_inputs(service.program.graph, 0)

        class FailingBackend:
            def run_many(self, program, values_list, pool):
                raise RuntimeError("kernel exploded")

        service._backend = FailingBackend()
        futures = [service.submit(inputs) for _ in range(2)]
        service._execute(service._next_batch())
        for future in futures:
            with pytest.raises(RuntimeError, match="kernel exploded"):
                future.result()
        assert service.report().failed == 2
        service.close()

    def test_queue_backpressure(self):
        model = repro.compile(_smoke("Pythia"))
        service = Service(model, ServeOptions(max_batch_size=2,
                                              max_wait_ms=0.0, max_queue=2),
                          _start=False)
        inputs = _graph_inputs(service.program.graph, 0)
        service.submit(inputs)
        service.submit(inputs)
        with pytest.raises(RuntimeError, match="queue is full"):
            service.submit(inputs)
        service._execute(service._next_batch())
        service.close()

    def test_future_result_timeout(self):
        model = repro.compile(_smoke("Pythia"))
        service = Service(model, ServeOptions(max_wait_ms=0.0), _start=False)
        future = service.submit(_graph_inputs(service.program.graph, 0))
        with pytest.raises(TimeoutError, match="pending"):
            future.result(timeout=0.01)
        service._execute(service._next_batch())
        assert future.result().outputs
        service.close()

    def test_report_statistics(self):
        with serve(_smoke("Pythia"), max_batch_size=8,
                   max_wait_ms=20.0) as service:
            inputs = _graph_inputs(service.program.graph, 0)
            for future in [service.submit(inputs) for _ in range(16)]:
                future.result(timeout=30)
            report = service.report()
        assert report.requests == 16
        assert report.batches >= 2
        assert report.mean_batch_size == pytest.approx(
            report.requests / report.batches)
        assert report.queue_depth_peak >= report.largest_batch > 0
        assert report.total_exec_s > 0
        assert report.throughput_rps > 0

    def test_batch_key_is_the_programs(self):
        with serve(_smoke("Pythia"), max_wait_ms=0.0) as service:
            assert service.batch_key == service.program.batch_key

    def test_service_records_into_session_stats(self):
        with serve(_smoke("Pythia"), max_wait_ms=0.0) as service:
            inputs = _graph_inputs(service.program.graph, 0)
            service.infer(inputs, timeout=30)
            service.infer(inputs, timeout=30)
            session = service.compiled.session
            assert session.stats.requests == 2
            # steady state: the second request reuses every pool block
            assert session.stats.runs[-1].pool.allocations == 0

    def test_serve_options_validated(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            ServeOptions(max_batch_size=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            ServeOptions(max_wait_ms=-1.0)
        with pytest.raises(ValueError, match="max_queue"):
            ServeOptions(max_queue=0)


class TestDeprecationShims:
    def _reset(self, name):
        session_module._DEPRECATION_WARNED.discard(name)

    def test_compile_session_warns_exactly_once(self):
        self._reset("compile_session()")
        g = _smoke("ViT")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            session = compile_session(g, "Ours")
            compile_session(g, "Ours")
        relevant = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)
                    and "compile_session" in str(w.message)]
        assert len(relevant) == 1
        assert "repro.compile" in str(relevant[0].message)
        assert session.run(session.make_inputs())  # still fully functional

    def test_engine_warns_exactly_once(self):
        self._reset("Engine")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            Engine()
            engine = Engine()
        relevant = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)
                    and "Engine" in str(w.message)]
        assert len(relevant) == 1
        g = _smoke("ViT")
        assert engine.compile(g) is engine.compile(g)  # shim still works

    def test_engine_normalizes_graph_keys_by_fingerprint(self):
        engine = Engine()
        g1, g2 = _smoke("ViT"), _smoke("ViT")
        assert engine.compile(g1) is engine.compile(g2)
        assert engine.num_sessions == 1
        assert engine.evict(g2) is True  # either object addresses the entry
        assert engine.num_sessions == 0
