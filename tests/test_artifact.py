"""Tests for deployment artifacts (save/load optimized modules)."""

import pytest

from repro.core import smartmem_optimize
from repro.ir import validate
from repro.runtime import SD8GEN2, estimate, outputs_equal
from repro.runtime.artifact import Artifact, plan_from_json, plan_to_json
from repro.runtime.cost_model import CostModelConfig


class TestPlanSerialization:
    def test_roundtrip(self, multi_consumer_graph):
        from repro.core import select_layouts
        plan = select_layouts(multi_consumer_graph, use_texture=False)
        restored = plan_from_json(plan_to_json(plan))
        assert restored.layouts == plan.layouts
        assert restored.copies == plan.copies
        assert restored.edge_assignment == plan.edge_assignment
        assert restored.quality == plan.quality


class TestArtifact:
    def test_roundtrip_in_memory(self, attention_graph):
        result = smartmem_optimize(attention_graph)
        artifact = Artifact.from_result(result, metadata={"model": "mini"})
        restored = Artifact.from_json(artifact.to_json())
        validate(restored.graph)
        assert restored.metadata == {"model": "mini"}
        assert restored.extra_efficiency == result.extra_efficiency

    def test_loaded_artifact_costs_identically(self, attention_graph):
        result = smartmem_optimize(attention_graph)
        artifact = Artifact.from_result(result)
        restored = Artifact.from_json(artifact.to_json())
        config = CostModelConfig(extra_efficiency=result.extra_efficiency)
        original = estimate(result.graph, SD8GEN2, result.plan, config)
        loaded = estimate(restored.graph, SD8GEN2, restored.plan, config)
        assert loaded.latency_ms == pytest.approx(original.latency_ms)
        assert loaded.num_kernels == original.num_kernels
        assert loaded.cache_miss_total == original.cache_miss_total

    def test_loaded_artifact_executes_identically(self, attention_graph):
        result = smartmem_optimize(attention_graph)
        restored = Artifact.from_json(Artifact.from_result(result).to_json())
        assert outputs_equal(attention_graph, restored.graph)

    def test_save_load_file(self, attention_graph, tmp_path):
        result = smartmem_optimize(attention_graph)
        path = tmp_path / "module.json"
        Artifact.from_result(result).save(path)
        restored = Artifact.load(path)
        validate(restored.graph)
        assert outputs_equal(attention_graph, restored.graph)

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "onnx"}')
        with pytest.raises(ValueError, match="not a SmartMem artifact"):
            Artifact.load(path)


class TestSplitOp:
    def test_split_shapes_and_execution(self):
        import numpy as np
        from repro.ir import GraphBuilder
        from repro.runtime import execute, make_inputs
        b = GraphBuilder()
        x = b.input("x", (2, 6, 4))
        parts = b.split(x, 3, axis=1)
        assert len(parts) == 3
        assert all(b.shape(p) == (2, 2, 4) for p in parts)
        y = b.concat(parts, axis=1)
        b.output(y)
        g = b.finish()
        validate(g)
        inputs = make_inputs(g)
        out = execute(g, inputs)
        assert np.array_equal(list(out.values())[0], inputs["x"])

    def test_split_divisibility(self):
        from repro.ir import GraphBuilder
        b = GraphBuilder()
        x = b.input("x", (2, 5))
        with pytest.raises(ValueError):
            b.split(x, 2, axis=1)

    def test_split_survives_pipeline(self):
        from repro.ir import GraphBuilder
        b = GraphBuilder()
        x = b.input("x", (2, 8, 4))
        h = b.dense(x, 4)
        parts = b.split(h, 2, axis=1)
        y = b.add(parts[0], parts[1])
        b.output(y)
        g = b.finish()
        result = smartmem_optimize(g)
        validate(result.graph)
        assert outputs_equal(g, result.graph)
