"""Asyncio front door: submit_async parity, cancellation, deadlines.

``Service.submit_async`` bridges the scheduler's futures onto the
caller's event loop; these tests pin the contract: awaited responses
are byte-identical to ``submit()``'s, typed errors re-raise through
``await``, cancelling an awaitable withdraws the queued request, and a
single loop can hold a thousand in-flight awaitables.
"""

import asyncio

import pytest

from repro.api import (
    CompileOptions, DeadlineExceeded, InferenceRequest, RequestCancelled,
    ServeOptions, serve,
)
from repro.models import build_smoke
from repro.runtime import FaultPlan
from repro.runtime.session import _compile_session

NO_FAULTS = FaultPlan()


@pytest.fixture()
def pythia_service():
    service = serve(build_smoke("Pythia"), ServeOptions(
        max_batch_size=8, max_wait_ms=5.0,
        compile=CompileOptions(faults=NO_FAULTS)))
    yield service
    service.close()


def make_burst(count):
    session = _compile_session(build_smoke("Pythia"), "Ours",
                               faults=NO_FAULTS)
    inputs = [session.make_inputs(seed=seed) for seed in range(count)]
    expected = [session.run(dict(values)) for values in inputs]
    return inputs, expected


class TestSubmitAsync:
    def test_parity_with_submit_byte_identical(self, pythia_service):
        inputs, expected = make_burst(16)

        async def burst():
            calls = [pythia_service.submit_async(
                InferenceRequest(inputs=values)) for values in inputs]
            return await asyncio.gather(*calls)

        responses = asyncio.run(burst())
        sync_responses = [
            pythia_service.submit(InferenceRequest(inputs=values)).result(
                timeout=60)
            for values in inputs]
        for got, sync, want in zip(responses, sync_responses, expected):
            for key, value in want.items():
                assert got.outputs[key].tobytes() == value.tobytes()
                assert sync.outputs[key].tobytes() == value.tobytes()

    def test_requires_running_loop(self, pythia_service):
        inputs, _ = make_burst(1)
        with pytest.raises(RuntimeError):
            pythia_service.submit_async(InferenceRequest(inputs=inputs[0]))

    def test_thousand_inflight_awaitables_on_one_loop(self, pythia_service):
        inputs, expected = make_burst(1)
        request = InferenceRequest(inputs=inputs[0])

        async def storm():
            calls = [pythia_service.submit_async(request)
                     for _ in range(1000)]
            return await asyncio.gather(*calls)

        responses = asyncio.run(storm())
        assert len(responses) == 1000
        for key, value in expected[0].items():
            assert all(r.outputs[key].tobytes() == value.tobytes()
                       for r in responses)


class TestCancellation:
    def slow_service(self):
        # A wide batch window so submitted requests sit queued long
        # enough to be withdrawn deterministically.
        return serve(build_smoke("Pythia"), ServeOptions(
            max_batch_size=64, max_wait_ms=500.0,
            compile=CompileOptions(faults=NO_FAULTS)))

    def test_sync_cancel_raises_request_cancelled(self):
        inputs, _ = make_burst(1)
        service = self.slow_service()
        try:
            future = service.submit(InferenceRequest(inputs=inputs[0]))
            assert future.cancel()
            assert future.cancelled()
            assert not future.cancel()  # second call: already resolved
            with pytest.raises(RequestCancelled):
                future.result(timeout=10)
            assert service.report().cancelled == 1
        finally:
            service.close()

    def test_cancelled_awaitable_withdraws_queued_request(self):
        inputs, _ = make_burst(2)
        service = self.slow_service()
        try:
            async def run():
                keep = service.submit_async(
                    InferenceRequest(inputs=inputs[0]))
                drop = service.submit_async(
                    InferenceRequest(inputs=inputs[1]))
                drop.cancel()
                response = await keep
                with pytest.raises(asyncio.CancelledError):
                    await drop
                return response

            response = asyncio.run(run())
            assert response.outputs
            assert service.report().cancelled == 1
        finally:
            service.close()

    def test_cancel_after_resolution_is_a_noop(self, pythia_service):
        inputs, _ = make_burst(1)
        future = pythia_service.submit(InferenceRequest(inputs=inputs[0]))
        future.result(timeout=60)
        assert not future.cancel()
        assert not future.cancelled()
        assert pythia_service.report().cancelled == 0


class TestDeadlines:
    def test_deadline_expiry_while_queued(self):
        inputs, _ = make_burst(1)
        service = serve(build_smoke("Pythia"), ServeOptions(
            max_batch_size=64, max_wait_ms=300.0,
            compile=CompileOptions(faults=NO_FAULTS)))
        try:
            async def run():
                call = service.submit_async(InferenceRequest(
                    inputs=inputs[0], deadline_ms=1.0))
                with pytest.raises(DeadlineExceeded):
                    await call

            asyncio.run(run())
            assert service.report().expired == 1
        finally:
            service.close()
