"""Tests for automatic operator categorization (Sec 6 future work)."""

import pytest

from repro.core.auto_classify import (
    agreement_with_registry, auto_classify, auto_classify_all,
    probe_layout_sensitivity,
)
from repro.ir import GraphBuilder, Quadrant
from repro.models import build


class TestStructuralClassification:
    def graph_with(self, emit):
        b = GraphBuilder()
        out = emit(b)
        b.output(out)
        g = b.finish()
        return g, g.producer(out)

    def test_conv_is_ild_variable(self):
        g, node = self.graph_with(
            lambda b: b.conv2d(b.input("x", (1, 4, 8, 8)), 8, 3, padding=1))
        ev = auto_classify(g, node)
        assert ev.quadrant is Quadrant.ILD_VARIABLE
        assert "reduction" in ev.reason_ild

    def test_relu_is_ili_variable(self):
        g, node = self.graph_with(lambda b: b.relu(b.input("x", (4, 4))))
        assert auto_classify(g, node).quadrant is Quadrant.ILI_VARIABLE

    def test_transpose_is_ild_fixed(self):
        g, node = self.graph_with(
            lambda b: b.transpose(b.input("x", (4, 4)), (1, 0)))
        ev = auto_classify(g, node)
        assert ev.quadrant is Quadrant.ILD_FIXED
        assert "definition" in ev.reason_output

    def test_slice_is_ili_fixed(self):
        g, node = self.graph_with(
            lambda b: b.slice_axis(b.input("x", (8, 4)), 0, 0, 4))
        assert auto_classify(g, node).quadrant is Quadrant.ILI_FIXED

    def test_softmax_is_ild_variable(self):
        g, node = self.graph_with(lambda b: b.softmax(b.input("x", (4, 8))))
        assert auto_classify(g, node).quadrant is Quadrant.ILD_VARIABLE

    def test_gather_fixed(self):
        g, node = self.graph_with(
            lambda b: b.gather(b.input("x", (8, 4)), [0, 3], axis=0))
        assert auto_classify(g, node).quadrant is Quadrant.ILI_FIXED


class TestBehaviouralProbe:
    def test_reuse_pattern_is_layout_sensitive(self):
        """Re-reading reduction slices under a bad layout thrashes the
        cache: the probe's miss ratio clearly exceeds 1."""
        ratio = probe_layout_sensitivity((64, 64), reduction_dim=1, reuse=4)
        assert ratio > 2.0

    def test_small_tensor_insensitive(self):
        """When the whole tensor fits in cache, layout cannot matter."""
        ratio = probe_layout_sensitivity((4, 8), reduction_dim=1, reuse=4)
        assert ratio == pytest.approx(1.0, abs=0.3)


@pytest.mark.parametrize("name", ["Swin", "ResNext", "Pythia", "Conformer"])
def test_full_agreement_with_registry(name):
    """The paper's validation criterion: the automated tool reproduces the
    hand classification on whole real models."""
    configs = {
        "Swin": dict(image=56, dim=24, depths=(1, 1), heads=(2, 4)),
        "ResNext": dict(image=32),
        "Pythia": dict(seq=8, hidden=32, depth=1, heads=2, vocab=64),
        "Conformer": dict(frames=32, mels=8, dim=16, depth=1, heads=2),
    }
    g = build(name, **configs[name])
    assert agreement_with_registry(g) == 1.0


def test_evidence_is_complete(attention_graph):
    for evidence in auto_classify_all(attention_graph).values():
        assert evidence.reason_ild
        assert evidence.reason_output
        assert evidence.quadrant.input_layout_dependent == \
            evidence.input_layout_dependent
        assert evidence.quadrant.output_variable == evidence.output_variable
