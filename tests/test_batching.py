"""Tests for tensor-level dynamic batching: stacked micro-batches.

The contract: a micro-batch of batch-compatible requests against a
*stackable* program executes as ONE kernel pass per step (a cached
power-of-two batch-N program variant), with per-request outputs
byte-identical to solo runs and to the sequential ``run_many`` path -
on both execution backends, padded buckets included.  Non-stackable
programs must fall back to the sequential path explicitly, never
produce wrong stacked results.
"""

import numpy as np
import pytest

import repro
from repro import FaultPlan, FaultRule
from repro.api import (
    CompileOptions, InferenceRequest, ServeOptions, Service, compile_private,
)
from repro.ir import GraphBuilder
from repro.memory.pool import SizeClassPool
from repro.models import SMOKE_CONFIGS, build
from repro.runtime import get_backend, lower
from repro.runtime.batching import (
    NotStackable, analyze, bucket, mark_unstackable, rebatch,
)
from repro.runtime.session import _compile_session

BACKENDS = ("numpy", "codegen")
STACKED_MODELS = ("Pythia", "SD-TextEncoder")
"""Dispatch-bound models the serving benchmark stacks (both stackable)."""


def _smoke(name):
    return build(name, **SMOKE_CONFIGS[name])


def _assert_outputs_equal(got, want, context=""):
    assert set(got) == set(want), context
    for key in want:
        assert np.array_equal(got[key], want[key]), f"{context}: {key}"


def _mini_stackable():
    """Elementwise/dense/norm chain: stackable by the documented rules."""
    b = GraphBuilder("mini-stackable")
    x = b.input("x", (1, 8, 16))
    y = b.layernorm(x)
    y = b.dense(y, 16)
    y = b.relu(y)
    b.output(b.add(y, x))
    return b.finish()


class TestBucket:
    def test_power_of_two_buckets(self):
        assert [bucket(n) for n in (1, 2, 3, 4, 5, 8, 9, 16, 17)] == \
            [1, 2, 4, 4, 8, 8, 16, 16, 32]

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            bucket(0)


# ---------------------------------------------------------------------------
# Parity across the model zoo (satellite: all SMOKE_CONFIGS, both backends)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(SMOKE_CONFIGS))
class TestZooParity:
    def test_batched_matches_sequential_and_solo(self, name, backend):
        model = compile_private(_smoke(name), CompileOptions(backend=backend))
        session = model.session
        program = session.program
        stackable = analyze(program).stackable
        inputs = [session.make_inputs(seed=s) for s in range(2)]
        solo = [session.run(dict(i)) for i in inputs]
        outs = session.run_batch([dict(i) for i in inputs])
        stats = list(session.stats.runs)[-2:]
        assert [s.batched for s in stats] == [stackable, stackable]
        for got, want in zip(outs, solo):
            _assert_outputs_equal(got, want, f"{name}/{backend}")
        if not stackable:
            with pytest.raises(NotStackable):
                rebatch(program, 2)
            return
        # the stacked pass must also match the sequential run_many path
    # on a private pool (the explicit fallback both paths share)
        seq = get_backend(backend).run_many(
            program, [session._admit(dict(i)) for i in inputs],
            SizeClassPool())
        for got, (want, _, _) in zip(outs, seq):
            _assert_outputs_equal(got, want, f"{name}/{backend}/seq")
        # shared attribution: one PoolReport for the pass, pre-warmed
        # bucket pool means even the first stacked run is steady-state
        assert stats[0].pool is stats[1].pool
        assert stats[0].pool.allocations == 0


# ---------------------------------------------------------------------------
# Padded buckets and the variant cache
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", STACKED_MODELS)
class TestPaddedBuckets:
    def test_non_bucket_exact_batches(self, name, backend):
        model = compile_private(_smoke(name), CompileOptions(backend=backend))
        session = model.session
        for n in (3, 5):  # buckets 4 and 8, both padded
            inputs = [session.make_inputs(seed=100 + s) for s in range(n)]
            solo = [session.run(dict(i)) for i in inputs]
            outs = session.run_batch([dict(i) for i in inputs])
            assert session.stats.runs[-1].batched
            for got, want in zip(outs, solo):
                _assert_outputs_equal(got, want, f"{name}/{backend}/n={n}")
        variants = session.program.backend_cache["batching.variants"]
        assert sorted(variants) == [4, 8]
        assert variants[4].batch_factor == 4
        assert rebatch(session.program, 8) is variants[8]  # cached


class TestOneKernelPass:
    def test_stacked_batch_is_one_backend_invocation(self, monkeypatch):
        session = _compile_session(_mini_stackable(), "Ours")
        calls = []
        original = session._backend.run_many

        def counting_run_many(program, values_list, pool):
            calls.append((program.batch_factor, len(values_list)))
            return original(program, values_list, pool)

        monkeypatch.setattr(session._backend, "run_many", counting_run_many)
        session.run_batch([session.make_inputs(seed=s) for s in range(3)])
        # one invocation, one stacked values dict, the bucket-4 variant:
        # each program step ran its kernel exactly once for the batch
        assert calls == [(4, 1)]

    def test_variant_scales_shapes_and_slots(self):
        program = lower(_mini_stackable())
        variant = rebatch(program, 4)
        assert variant.batch_factor == 4
        assert [shape for _, shape, _ in variant.input_signature] == \
            [(4, 8, 16)]
        assert variant.num_steps == program.num_steps
        for base, scaled in zip(program.steps, variant.steps):
            assert scaled.out_shapes == tuple(
                (s[0] * 4,) + s[1:] for s in base.out_shapes)
        plan = variant.slot_plan
        assert plan.peak_bytes == 4 * program.slot_plan.peak_bytes
        assert plan.allocs_per_run == program.slot_plan.allocs_per_run

    def test_codegen_emits_batch_variant_source(self):
        from repro.runtime.codegen_backend import program_source

        variant = rebatch(lower(_mini_stackable()), 4)
        source = program_source(variant)
        assert "Batch-4 stacked variant" in source
        assert "def run_plain(values):" in source


# ---------------------------------------------------------------------------
# Non-stackable programs fall back explicitly (satellite: batch_key rules)
# ---------------------------------------------------------------------------


def _non_stackable_graphs():
    b = GraphBuilder("reduce-over-batch")
    x = b.input("x", (1, 8))
    b.output(b.reduce(b.dense(x, 8), "reduce_sum", axes=0))
    yield "reduce over axis 0", b.finish()

    b = GraphBuilder("batch-merging-reshape")
    x = b.input("x", (1, 8))
    b.output(b.relu(b.reshape(x, (8,))))
    yield "reshape merges batch", b.finish()

    b = GraphBuilder("transpose-moves-batch")
    x = b.input("x", (1, 8))
    b.output(b.relu(b.transpose(x, (1, 0))))
    yield "transpose moves batch", b.finish()

    b = GraphBuilder("softmax-over-batch")
    x = b.input("x", (1, 8))
    b.output(b.softmax(x, axis=0))
    yield "softmax over batch", b.finish()


class TestNonStackableFallback:
    @pytest.mark.parametrize(
        "label,graph", list(_non_stackable_graphs()),
        ids=lambda v: v if isinstance(v, str) else "")
    def test_refuted_programs_run_sequentially_and_correctly(
            self, label, graph):
        program = lower(graph)
        verdict = analyze(program)
        assert not verdict.stackable, label
        assert verdict.reason, label
        with pytest.raises(NotStackable):
            rebatch(program, 2)
        session = _compile_session(graph, "Ours")
        inputs = [session.make_inputs(seed=s) for s in range(3)]
        solo = [session.run(dict(i)) for i in inputs]
        outs = session.run_batch([dict(i) for i in inputs])
        assert not session.stats.runs[-1].batched
        for got, want in zip(outs, solo):
            _assert_outputs_equal(got, want, label)

    def test_stackable_analysis_names_batched_values(self):
        verdict = analyze(lower(_mini_stackable()))
        assert verdict.stackable
        assert verdict.batch_extent == 1
        assert "x" in verdict.batched

    def test_mark_unstackable_demotes_for_good(self):
        session = _compile_session(_mini_stackable(), "Ours")
        program = session.program
        assert analyze(program).stackable
        mark_unstackable(program, "test demotion")
        assert not analyze(program).stackable
        assert analyze(program).reason == "test demotion"
        outs = session.run_batch(
            [session.make_inputs(seed=s) for s in range(2)])
        assert len(outs) == 2
        assert not session.stats.runs[-1].batched

    def test_per_request_parameter_override_goes_sequential(self):
        session = _compile_session(_mini_stackable(), "Ours")
        param = next(iter(session._params))
        a = session.make_inputs(seed=0)
        b_inputs = session.make_inputs(seed=1)
        b_inputs[param] = session._params[param] + 1.0
        solo_b = session.run(dict(b_inputs))
        outs = session.run_batch([dict(a), dict(b_inputs)])
        assert not session.stats.runs[-1].batched  # params differ per request
        _assert_outputs_equal(outs[1], solo_b, "override")


# ---------------------------------------------------------------------------
# Stats attribution (satellite: batched=True, shared PoolReport)
# ---------------------------------------------------------------------------


class TestStackedStats:
    def test_run_stats_flag_wall_share_and_shared_pool(self):
        model = compile_private(_smoke("Pythia"), CompileOptions())
        requests = [InferenceRequest(inputs=model.session.make_inputs(seed=s),
                                     request_id=s) for s in range(3)]
        responses = model.run_batch(requests)
        reports = {id(r.stats.pool) for r in responses}
        assert len(reports) == 1  # one PoolReport for the stacked pass
        for response in responses:
            assert response.batch_size == 3
            assert response.stats.batched
            assert response.stats.wall_s > 0
            assert response.stats.backend == "numpy"

    def test_solo_requests_stay_unbatched(self):
        session = _compile_session(_mini_stackable(), "Ours")
        session.run(session.make_inputs(seed=0))
        assert not session.stats.runs[-1].batched

    def test_bucket_pool_is_prewarmed_and_steady(self):
        session = _compile_session(_mini_stackable(), "Ours")
        batch = [session.make_inputs(seed=s) for s in range(3)]
        session.run_batch([dict(i) for i in batch])
        pool = session._bucket_pools[4]
        warm_allocations = pool.allocations
        assert session.stats.runs[-1].pool.allocations == 0
        session.run_batch([dict(i) for i in batch])
        assert pool.allocations == warm_allocations  # steady: reuse only
        assert pool.live_bytes == 0


# ---------------------------------------------------------------------------
# Reliability semantics on the stacked path
# ---------------------------------------------------------------------------


class TestStackedReliability:
    def test_faulting_batchmate_is_isolated_from_stacked_batch(self):
        plan = FaultPlan(rules=(FaultRule(kind="kernel", request_id="bad"),))
        compiled = compile_private(_smoke("Pythia"), CompileOptions())
        reference = {}
        service = Service(
            compiled, ServeOptions(max_batch_size=4, max_wait_ms=0.0,
                                   faults=plan),
            _start=False)
        futures = {}
        for rid in ("ok-1", "bad", "ok-2"):
            inputs = compiled.session.make_inputs(seed=hash(rid) % 100)
            reference[rid] = compiled.session.run(dict(inputs))
            futures[rid] = service.submit(
                InferenceRequest(inputs=inputs, request_id=rid))
        service._execute(service._next_batch())
        for rid in ("ok-1", "ok-2"):
            response = futures[rid].result()
            _assert_outputs_equal(response.outputs, reference[rid], rid)
            assert not response.stats.batched  # isolation re-runs are solo
        assert futures["bad"].exception() is not None
        report = service.report()
        assert report.isolated == 3
        assert report.failed == 1
        service.close()

    def test_service_counts_stacked_batches(self):
        with repro.serve(_smoke("Pythia"), max_batch_size=8,
                         max_wait_ms=20.0) as service:
            model = service.compiled
            futures = [service.submit(model.make_request(seed=s))
                       for s in range(16)]
            responses = [f.result(timeout=60) for f in futures]
        report = service.report()
        assert report.requests == 16
        assert report.stacked_batches >= 1
        assert any(r.stats.batched for r in responses)

    def test_stacked_batch_degrades_as_a_unit(self):
        plan = FaultPlan(rules=(FaultRule(kind="compile"),))
        model = compile_private(
            _smoke("Pythia"), CompileOptions(backend="codegen", faults=plan))
        session = model.session
        requests = [InferenceRequest(inputs=session.make_inputs(seed=s))
                    for s in range(3)]
        responses = model.run_batch(requests)
        assert [r.stats.backend for r in responses] == ["numpy"] * 3
        assert session.stats.fallbacks == 1
        # degradation preserved the stacked routing on the fallback
        assert all(r.stats.batched for r in responses)
        reference = compile_private(_smoke("Pythia"), CompileOptions())
        for seed, response in enumerate(responses):
            want = reference.session.run(
                reference.session.make_inputs(seed=seed))
            _assert_outputs_equal(response.outputs, want, f"seed={seed}")
