"""Shape tests for the benchmark harness: every experiment must regenerate
the paper's qualitative result, not just run.

Full-suite experiments (all 18 models x 6 frameworks) run in the
benchmarks/ directory; here each experiment runs on a representative
subset so the whole test suite stays fast.
"""

import pytest

from repro.bench import (
    EXPERIMENTS, fig7, fig8, fig9, fig10, fig11, fig12, geomean,
    memory_footprint, micro_rw, table1, table7, table8, table9,
)


class TestHarness:
    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0

    def test_experiment_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table1", "table7", "table8", "table9", "fig7", "fig8", "fig9",
            "fig10", "fig11", "fig12", "micro_rw", "memory_footprint",
            "ablations",
        }


class TestTable1:
    def test_transformers_dominated_by_transforms(self):
        exp = table1.run(models=["ResNet50", "Swin"])
        resnet = exp.data["ResNet50"]
        swin = exp.data["Swin"]
        transform_pct = lambda d: d["implicit_pct"] + d["explicit_pct"]
        assert transform_pct(resnet) < 25
        assert transform_pct(swin) > 35
        assert resnet["gmacs"] > 3 * swin["gmacs"]

    def test_transform_counts(self):
        exp = table1.run(models=["ResNet50", "Swin"])
        assert exp.data["Swin"]["transforms"] > 20 * max(
            1, exp.data["ResNet50"]["transforms"])


class TestTable7:
    MODELS = ["Swin", "ResNext"]

    def test_ours_has_fewest_operators(self):
        exp = table7.run(models=self.MODELS)
        for name in self.MODELS:
            counts = exp.data[name]
            supported = {k: v for k, v in counts.items()
                         if k != "unoptimized" and v}
            assert min(supported, key=supported.get) == "Ours"

    def test_unsupported_marked(self):
        exp = table7.run(models=["Swin"])
        assert exp.data["Swin"]["NCNN"] is None
        assert exp.data["Swin"]["TFLite"] is None

    def test_cnn_supported_by_all(self):
        exp = table7.run(models=["ResNext"])
        assert all(v for k, v in exp.data["ResNext"].items())


class TestTable8:
    MODELS = ["Swin", "ResNext", "EfficientVit"]

    def test_ours_fastest(self):
        exp = table8.run(models=self.MODELS)
        for name in self.MODELS:
            lat = exp.data[name]
            ours = lat["Ours"]
            assert all(v >= ours for v in lat.values() if v is not None)

    def test_geomean_ordering(self):
        exp = table8.run(models=self.MODELS)
        gm = exp.data["geomean"]
        # DNNFusion is the strongest baseline (smallest geomean ratio)
        others = [gm[f] for f in ("MNN", "TVM") if gm.get(f)]
        assert all(gm["DNNF"] <= v for v in others)


class TestTable9:
    def test_modest_desktop_speedup(self):
        exp = table9.run(models=["Swin"])
        speedup = exp.data["Swin"]["speedup"]
        assert 1.0 < speedup < 2.0  # paper: 1.23x


class TestFig7:
    def test_normalized_to_ours(self):
        exp = fig7.run(models=["ResNext"])
        for metric in ("mem access", "cache miss"):
            values = exp.data["ResNext"][metric]
            assert values["Ours"] == pytest.approx(1.0)
            assert all(v is None or v >= 0.99 for v in values.values())


class TestFig8:
    MODELS = ["Swin", "ResNext"]

    def test_stages_cumulative(self):
        exp = fig8.run(models=self.MODELS)
        for name in self.MODELS:
            d = exp.data[name]
            assert d["+LTE"] <= d["+LayoutSelect"] + 1e-9
            assert d["+LayoutSelect"] <= d["+OtherOpt"] + 1e-9
            assert d["+OtherOpt"] > 1.3

    def test_transformer_lte_gain_larger(self):
        exp = fig8.run(models=["Swin", "ResNext"])
        assert exp.data["Swin"]["+LTE"] > exp.data["ResNext"]["+LTE"]

    def test_index_comprehension_contribution(self):
        exp = fig8.run(models=["Swin"])
        gain = exp.data["Swin"]["index_comprehension"]
        assert 1.0 <= gain < 1.5  # paper: 1.1-1.3x


class TestFig9:
    def test_lte_cuts_accesses(self):
        exp = fig9.run(models=["CSwin"])
        accesses = exp.data["CSwin"]["mem access"]
        assert accesses["DNNF"] > accesses["+LTE"]


class TestFig10:
    def test_speedup_stable_across_batches(self):
        exp = fig10.run(batches=[1, 4])
        for batch in (1, 4):
            lat = exp.data[batch]
            assert lat["Ours"] < lat["DNNF"] < lat["MNN"]
        # latency roughly scales with batch
        assert exp.data[4]["Ours"] > 2.5 * exp.data[1]["Ours"]


class TestFig11:
    def test_portability(self):
        experiments = fig11.run(models=["Swin", "ResNext"])
        assert len(experiments) == 2
        for exp in experiments:
            for name in ("Swin", "ResNext"):
                lat = exp.data[name]
                supported = [v for v in lat.values() if v is not None]
                assert min(supported) == lat["Ours"]

    def test_slower_devices_slower(self):
        d700, sd835 = fig11.run(models=["ResNext"])
        assert d700.data["ResNext"]["Ours"] > sd835.data["ResNext"]["Ours"]


class TestFig12:
    def test_gmacs_ordering(self):
        exp = fig12.run()
        gmacs = {m: exp.data[m]["gmacs"] for m in exp.data}
        assert (gmacs["Swin"] < gmacs["ViT"] < gmacs["ResNext"]
                < gmacs["SD-VAEDecoder"])

    def test_below_roofline(self):
        exp = fig12.run()
        for name, d in exp.data.items():
            assert d["gmacs"] <= d["roof"]


class TestMicroRW:
    def test_paper_ordering(self):
        exp = micro_rw.run()
        assert exp.data["conv2d"] > exp.data["matmul"] > exp.data["activation"]
        assert exp.data["activation"] > 1.0

    def test_magnitudes(self):
        exp = micro_rw.run()
        assert exp.data["conv2d"] == pytest.approx(1.7, abs=0.4)
        assert exp.data["matmul"] == pytest.approx(1.4, abs=0.3)
        assert exp.data["activation"] == pytest.approx(1.1, abs=0.15)


class TestMemoryFootprint:
    def test_reductions(self):
        exp = memory_footprint.run(models=["Swin"])
        d = exp.data["Swin"]
        assert d["op_reduction_pct"] > 15
        assert d["memory_reduction_pct"] > 5
        assert d["max_copy_mb"] < 10
