"""Tests for the benchmark CLI (python -m repro.bench)."""

import json

import pytest

from repro.bench.__main__ import main as bench_main


class TestBenchCli:
    def test_single_experiment(self, capsys):
        assert bench_main(["micro_rw"]) == 0
        out = capsys.readouterr().out
        assert "Micro (Sec 3.2.2)" in out
        assert "conv2d" in out

    def test_unknown_experiment(self, capsys):
        assert bench_main(["table99"]) == 2
        assert "unknown experiments" in capsys.readouterr().out

    def test_json_export(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        assert bench_main(["micro_rw", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert len(data) == 1
        assert data[0]["name"] == "Micro (Sec 3.2.2)"
        assert data[0]["data"]["conv2d"] > 1.0

    def test_json_missing_path(self, capsys):
        assert bench_main(["micro_rw", "--json"]) == 2

    def test_multi_experiment_fig11_list(self, tmp_path):
        """fig11 returns a list of experiments (one per device); the CLI
        flattens it."""
        path = tmp_path / "out.json"
        assert bench_main(["table9", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data[0]["name"] == "Table 9"
