"""Tests for the benchmark CLI (python -m repro.bench)."""

import json

import pytest

from repro.bench.__main__ import main as bench_main
from repro.bench.harness import cell_cache_stats, run_cell
from repro.core.pipeline import PipelineStages
from repro.runtime.device import SD8GEN2, V100


class TestBenchCli:
    def test_single_experiment(self, capsys):
        assert bench_main(["micro_rw"]) == 0
        out = capsys.readouterr().out
        assert "Micro (Sec 3.2.2)" in out
        assert "conv2d" in out

    def test_unknown_experiment(self, capsys):
        assert bench_main(["table99"]) == 2
        assert "unknown experiments" in capsys.readouterr().out

    def test_json_export(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        assert bench_main(["micro_rw", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert len(data) == 1
        assert data[0]["name"] == "Micro (Sec 3.2.2)"
        assert data[0]["data"]["conv2d"] > 1.0

    def test_json_missing_path(self, capsys):
        assert bench_main(["micro_rw", "--json"]) == 2

    def test_multi_experiment_fig11_list(self, tmp_path):
        """fig11 returns a list of experiments (one per device); the CLI
        flattens it."""
        path = tmp_path / "out.json"
        assert bench_main(["table9", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data[0]["name"] == "Table 9"

    def test_all_flag_excludes_explicit_targets(self, capsys):
        assert bench_main(["--all", "micro_rw"]) == 2
        assert "cannot be combined" in capsys.readouterr().out

    def test_unknown_flag_rejected(self, capsys):
        assert bench_main(["micro_rw", "--frobnicate"]) == 2
        assert "unknown flags" in capsys.readouterr().out


class TestTimings:
    def test_timings_writes_pipeline_json(self, tmp_path, capsys):
        path = tmp_path / "BENCH_pipeline.json"
        assert bench_main(["table1", "micro_rw", "--timings",
                           "--timings-out", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["suite"] == ["table1", "micro_rw"]
        assert set(data["cell_cache"]) == {"hits", "misses"}
        assert len(data["experiments"]) == 2
        for entry in data["experiments"]:
            assert entry["wall_s"] >= 0
            assert entry["cells_computed"] >= 0
            assert entry["cache_hits"] >= 0
            assert isinstance(entry["passes"], dict)
        # per-pass wall-time breakdown accompanies the trajectory
        assert isinstance(data["pass_timings"], dict)
        for entry in data["pass_timings"].values():
            assert entry["runs"] >= 1
            assert entry["wall_s"] >= 0
        # serving walls belong to the full-suite trajectory only
        assert "serve" not in data
        out = capsys.readouterr().out
        assert "Pipeline timings" in out

    def test_pass_timings_attributed_to_experiment(self, tmp_path):
        """An experiment that compiles SmartMem modules shows per-pass
        runs/wall-time in its trajectory entry."""
        from repro.bench.harness import clear_cell_cache

        clear_cell_cache()  # force real compiles so passes actually run
        path = tmp_path / "traj.json"
        assert bench_main(["ablations", "--timings-out", str(path)]) == 0
        entry = json.loads(path.read_text())["experiments"][0]
        assert entry["passes"]["lte"]["runs"] > 0
        assert entry["passes"]["fusion"]["runs"] > 0
        assert entry["passes"]["lte"]["wall_s"] >= 0

    def test_timings_out_missing_path(self):
        assert bench_main(["micro_rw", "--timings-out"]) == 2

    def test_timings_out_implies_timings(self, tmp_path, capsys):
        path = tmp_path / "traj.json"
        assert bench_main(["micro_rw", "--timings-out", str(path)]) == 0
        assert json.loads(path.read_text())["suite"] == ["micro_rw"]


class TestCellCache:
    def test_repeated_cell_is_cached(self):
        first = run_cell("ViT", "MNN", SD8GEN2)
        before = cell_cache_stats()
        second = run_cell("ViT", "MNN", SD8GEN2)
        after = cell_cache_stats()
        assert second is first
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_distinct_kwargs_get_distinct_cells(self):
        plain = run_cell("ViT", "Ours", SD8GEN2)
        ablated = run_cell("ViT", "Ours", SD8GEN2,
                           stages=PipelineStages(lte=False))
        assert ablated is not plain
        assert ablated.operator_count >= plain.operator_count

    def test_distinct_devices_get_distinct_cells(self):
        a = run_cell("ViT", "DNNF", SD8GEN2)
        b = run_cell("ViT", "DNNF", V100)
        assert a is not b

    def test_report_computed_once(self):
        cell = run_cell("ViT", "DNNF", SD8GEN2)
        assert cell.report is cell.report
        assert cell.latency_ms == pytest.approx(cell.report.latency_ms)
