"""Tests for GraphBuilder, validate, serialize, and pattern matching."""

import pytest

from repro.ir import (
    GraphBuilder, GraphError, dumps, find_chains, layout_transform_chains,
    loads, validate,
)
from repro.ir.view import ViewChain


class TestBuilder:
    def test_shapes_tracked(self):
        b = GraphBuilder()
        x = b.input("x", (1, 3, 8, 8))
        y = b.conv2d(x, 4, 3, padding=1)
        assert b.shape(y) == (1, 4, 8, 8)

    def test_params_created(self):
        b = GraphBuilder()
        x = b.input("x", (1, 4))
        b.dense(x, 8)
        params = [t for t in b.graph.tensors.values() if t.is_param]
        assert {tuple(p.shape) for p in params} == {(8, 4), (8,)}

    def test_finish_autodetects_outputs(self):
        b = GraphBuilder()
        x = b.input("x", (4,))
        b.relu(x)
        g = b.finish()
        assert len(g.outputs) == 1

    def test_explicit_output_respected(self):
        b = GraphBuilder()
        x = b.input("x", (4,))
        y = b.relu(x)
        b.relu(y)
        b.output(y)
        assert b.finish().outputs == [y]

    def test_unknown_unary(self):
        b = GraphBuilder()
        x = b.input("x", (4,))
        with pytest.raises(ValueError):
            b.unary(x, "quantum_leap")

    def test_depthwise_helper(self):
        b = GraphBuilder()
        x = b.input("x", (1, 6, 8, 8))
        y = b.depthwise_conv2d(x, 3, padding=1)
        node = b.graph.producer(y)
        assert node.attrs["groups"] == 6

    def test_slice_axis(self):
        b = GraphBuilder()
        x = b.input("x", (2, 10, 4))
        y = b.slice_axis(x, 1, 2, 7)
        assert b.shape(y) == (2, 5, 4)

    def test_scale_shift(self):
        b = GraphBuilder()
        x = b.input("x", (2, 6, 4))
        y = b.scale_shift(x, axis=1)
        assert b.shape(y) == (2, 6, 4)


class TestValidate:
    def test_valid_graph(self, attention_graph):
        validate(attention_graph)

    def test_bad_recorded_shape(self, linear_graph):
        g = linear_graph
        out = next(iter(g.nodes.values())).outputs[0]
        g.tensors[out] = g.tensors[out].with_shape((1, 1, 1, 1))
        with pytest.raises(GraphError):
            validate(g)

    def test_view_shape_mismatch(self, linear_graph):
        g = linear_graph
        node = next(n for n in g.iter_nodes() if n.op_type == "dense")
        node.input_views[0] = ViewChain.identity((9, 9))
        with pytest.raises(GraphError, match="view expects"):
            validate(g)

    def test_input_also_produced(self, linear_graph):
        g = linear_graph
        node = next(iter(g.nodes.values()))
        node.outputs[0] = "x"
        with pytest.raises(GraphError):
            validate(g)


class TestSerialize:
    def test_roundtrip(self, attention_graph):
        restored = loads(dumps(attention_graph))
        validate(restored)
        assert restored.inputs == attention_graph.inputs
        assert restored.outputs == attention_graph.outputs
        assert set(restored.nodes) == set(attention_graph.nodes)
        for node_id, node in attention_graph.nodes.items():
            other = restored.nodes[node_id]
            assert other.op_type == node.op_type
            assert other.attrs == node.attrs

    def test_roundtrip_with_views_and_groups(self, attention_graph):
        from repro.core import eliminate_layout_transforms, fuse, SMARTMEM_POLICY
        g = attention_graph.clone()
        eliminate_layout_transforms(g)
        fuse(g, SMARTMEM_POLICY)
        restored = loads(dumps(g))
        validate(restored)
        for node_id, node in g.nodes.items():
            other = restored.nodes[node_id]
            assert other.group == node.group
            assert other.input_views == node.input_views

    def test_roundtrip_preserves_semantics(self, attention_graph):
        from repro.runtime import outputs_equal
        restored = loads(dumps(attention_graph))
        assert outputs_equal(attention_graph, restored)


class TestPatterns:
    def test_find_simple_chain(self, conv_net_graph):
        matches = list(find_chains(conv_net_graph, ["conv2d", "batchnorm", "unary"]))
        assert len(matches) >= 1
        for m in matches:
            assert [n.op_type for n in m.nodes] == ["conv2d", "batchnorm", "unary"]

    def test_predicate_matcher(self, conv_net_graph):
        matches = list(find_chains(
            conv_net_graph,
            [lambda n: n.op_type == "conv2d", "batchnorm"]))
        assert matches

    def test_chains_do_not_overlap(self, conv_net_graph):
        matches = list(find_chains(conv_net_graph, ["conv2d", "batchnorm"]))
        seen = set()
        for m in matches:
            for node in m.nodes:
                assert node.id not in seen
                seen.add(node.id)

    def test_layout_transform_chains(self, attention_graph):
        chains = list(layout_transform_chains(attention_graph))
        assert chains
        # the qkv reshape->transpose pair should be one chain
        assert any(len(c.nodes) >= 2 for c in chains)
        for c in chains:
            for node in c.nodes:
                assert node.opdef.is_layout_transform

    def test_multi_consumer_breaks_chain(self):
        b = GraphBuilder()
        x = b.input("x", (4, 4))
        t = b.transpose(x, (1, 0))
        b.output(b.relu(t))
        b.output(b.sigmoid(t))
        g = b.finish()
        chains = list(layout_transform_chains(g))
        assert all(len(c.nodes) == 1 for c in chains)
