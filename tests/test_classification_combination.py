"""Tests for operator classification (Sec 3.1) and combination tables
(Sec 3.2, Tables 5 and 6)."""

import pytest

from repro.core import (
    Action, SearchPolicy, action_for, classify, classify_all, decision_for,
    needs_layout_search, quadrant_histogram,
)
from repro.ir import GraphBuilder, Quadrant


class TestClassify:
    def test_defaults_pass_through(self, attention_graph):
        kinds = classify_all(attention_graph)
        by_type = {}
        for node in attention_graph.iter_nodes():
            by_type.setdefault(node.op_type, kinds[node.id])
        assert by_type["dense"] is Quadrant.ILD_VARIABLE
        assert by_type["softmax"] is Quadrant.ILD_VARIABLE
        assert by_type["reshape"] is Quadrant.ILD_FIXED
        assert by_type["slice"] is Quadrant.ILI_FIXED

    def test_same_shape_binary_is_ili(self):
        b = GraphBuilder()
        x = b.input("x", (2, 4))
        y = b.input("y", (2, 4))
        out = b.add(x, y)
        g = b.finish()
        assert classify(g, g.producer(out)) is Quadrant.ILI_VARIABLE

    def test_broadcast_binary_becomes_ild(self):
        b = GraphBuilder()
        x = b.input("x", (2, 8, 4))
        y = b.input("y", (8, 1))
        out = b.add(x, y)
        g = b.finish()
        assert classify(g, g.producer(out)) is Quadrant.ILD_VARIABLE

    def test_param_broadcast_stays_ili(self):
        # bias adds (param operand) keep the Table 3 ILI classification
        b = GraphBuilder()
        x = b.input("x", (2, 8, 4))
        out = b.add_const(x, (1, 1, 4))
        g = b.finish()
        assert classify(g, g.producer(out)) is Quadrant.ILI_VARIABLE

    def test_histogram_counts_everything(self, attention_graph):
        hist = quadrant_histogram(attention_graph)
        assert sum(hist.values()) == len(attention_graph.nodes)


class TestTable5:
    """Every cell of the combination-action table."""

    Q = Quadrant

    def test_keep_both_only_double_ild_variable(self):
        assert action_for(self.Q.ILD_VARIABLE, self.Q.ILD_VARIABLE) is Action.KEEP_BOTH

    @pytest.mark.parametrize("first,second", [
        (Quadrant.ILD_VARIABLE, Quadrant.ILI_VARIABLE),
        (Quadrant.ILI_VARIABLE, Quadrant.ILD_VARIABLE),
        (Quadrant.ILI_VARIABLE, Quadrant.ILI_VARIABLE),
    ])
    def test_try_fuse_cells(self, first, second):
        assert action_for(first, second) is Action.TRY_FUSE

    @pytest.mark.parametrize("first", [Quadrant.ILD_VARIABLE, Quadrant.ILI_VARIABLE])
    @pytest.mark.parametrize("second", [Quadrant.ILD_FIXED, Quadrant.ILI_FIXED])
    def test_eliminate_second(self, first, second):
        assert action_for(first, second) is Action.ELIMINATE_SECOND

    @pytest.mark.parametrize("first", [Quadrant.ILD_FIXED, Quadrant.ILI_FIXED])
    @pytest.mark.parametrize("second", [Quadrant.ILD_VARIABLE, Quadrant.ILI_VARIABLE])
    def test_eliminate_first(self, first, second):
        assert action_for(first, second) is Action.ELIMINATE_FIRST

    @pytest.mark.parametrize("first", [Quadrant.ILD_FIXED, Quadrant.ILI_FIXED])
    @pytest.mark.parametrize("second", [Quadrant.ILD_FIXED, Quadrant.ILI_FIXED])
    def test_eliminate_both(self, first, second):
        assert action_for(first, second) is Action.ELIMINATE_BOTH

    def test_fixed_ops_always_eliminated(self):
        """Any pair involving a Fixed-output op never survives intact."""
        for first in Quadrant:
            for second in Quadrant:
                action = action_for(first, second)
                if not first.output_variable or not second.output_variable:
                    assert action in (Action.ELIMINATE_FIRST,
                                      Action.ELIMINATE_SECOND,
                                      Action.ELIMINATE_BOTH)


class TestTable6:
    def test_conv_reshape_example(self):
        """The paper's worked example: Conv + Reshape eliminates the
        Reshape, keeps an ILD&Variable operator, searches the first."""
        d = decision_for(Quadrant.ILD_VARIABLE, Quadrant.ILD_FIXED)
        assert d.action is Action.ELIMINATE_SECOND
        assert d.result_type is Quadrant.ILD_VARIABLE
        assert d.search is SearchPolicy.SEARCH_FIRST

    def test_double_ild_searches_both(self):
        d = decision_for(Quadrant.ILD_VARIABLE, Quadrant.ILD_VARIABLE)
        assert d.search is SearchPolicy.SEARCH_BOTH

    def test_fused_pairs(self):
        d = decision_for(Quadrant.ILI_VARIABLE, Quadrant.ILD_VARIABLE)
        assert d.result_type is Quadrant.ILD_VARIABLE
        assert d.search is SearchPolicy.SEARCH_FUSED

    def test_result_type_dominance(self):
        """The surviving type is the more optimization-complex one: an
        ILD&Variable anywhere in the pair dominates."""
        for first in Quadrant:
            for second in Quadrant:
                d = decision_for(first, second)
                if Quadrant.ILD_VARIABLE in (first, second):
                    assert d.result_type is Quadrant.ILD_VARIABLE

    def test_search_only_for_ild_variable_pairs(self):
        """Section 3.2: 'the layout search only happens for the operator
        pairs involving ILD & Variable'."""
        for first in Quadrant:
            for second in Quadrant:
                if needs_layout_search(first, second):
                    assert Quadrant.ILD_VARIABLE in (first, second)

    def test_fixed_fixed_has_no_result_type(self):
        d = decision_for(Quadrant.ILD_FIXED, Quadrant.ILI_FIXED)
        assert d.result_type is None
        assert d.search is SearchPolicy.NO_SEARCH
