"""Tests for pseudo-kernel generation (repro.runtime.codegen)."""

import pytest

from repro.core import smartmem_optimize
from repro.indexexpr.index_map import IndexMap
from repro.ir import GraphBuilder, Layout
from repro.runtime.codegen import _expr_to_c, generate_group, generate_kernel


def eliminated_graph():
    b = GraphBuilder()
    x = b.input("x", (2, 12, 4))
    t = b.reshape(x, (2, 3, 4, 4))
    t = b.transpose(t, (0, 2, 1, 3))
    out = b.softmax(t, axis=-1)
    b.output(out)
    g = b.finish()
    return smartmem_optimize(g)


class TestGenerateKernel:
    def test_plain_kernel(self):
        b = GraphBuilder()
        x = b.input("x", (4, 8))
        out = b.softmax(x)
        b.output(out)
        g = b.finish()
        node = g.producer(out)
        kernel = generate_kernel(g, node)
        assert "__kernel" in kernel.source
        assert "for (int o0" in kernel.source
        assert kernel.index_cost_units == 0

    def test_view_absorbed_kernel(self):
        result = eliminated_graph()
        node = next(n for n in result.graph.iter_nodes()
                    if n.op_type == "softmax")
        kernel = generate_kernel(result.graph, node, result.plan)
        assert "absorbs eliminated transforms" in kernel.source
        assert "reshape" in kernel.source
        assert kernel.index_cost_units > 0

    def test_strength_reduction_visible_in_source(self):
        result = eliminated_graph()
        node = next(n for n in result.graph.iter_nodes()
                    if n.op_type == "softmax")
        simplified = generate_kernel(result.graph, node, result.plan,
                                     simplify_index=True)
        raw = generate_kernel(result.graph, node, result.plan,
                              simplify_index=False)
        assert simplified.index_cost_units <= raw.index_cost_units
        # raw form carries more division/modulo operators
        assert raw.source.count("%") >= simplified.source.count("%")

    def test_source_carries_the_simplified_index_exprs(self):
        """The address computation in the emitted source is rendered from
        the same ``Expr`` objects the cost model charges for - every
        non-trivial simplified coordinate expression appears verbatim."""
        result = eliminated_graph()
        node = next(n for n in result.graph.iter_nodes()
                    if n.op_type == "softmax")
        kernel = generate_kernel(result.graph, node, result.plan)
        imap = IndexMap.from_view_chain(node.input_views[0], simplified=True)
        rendered = [_expr_to_c(e) for e in imap.exprs]
        nontrivial = [r for r in rendered if not r.isidentifier()]
        assert nontrivial, "the absorbed views must leave residual index math"
        for text in nontrivial:
            assert text in kernel.source, text

    def test_unsimplified_source_differs(self):
        """``simplify=False`` emits the raw (pre-Index-Comprehension)
        expressions, so the two sources must visibly diverge."""
        result = eliminated_graph()
        node = next(n for n in result.graph.iter_nodes()
                    if n.op_type == "softmax")
        simplified = generate_kernel(result.graph, node, result.plan,
                                     simplify_index=True)
        raw = generate_kernel(result.graph, node, result.plan,
                              simplify_index=False)
        assert raw.source != simplified.source
        raw_map = IndexMap.from_view_chain(node.input_views[0],
                                           simplified=False)
        # and the raw source is built from the raw exprs, same contract
        assert any(
            _expr_to_c(e) in raw.source for e in raw_map.exprs
            if not _expr_to_c(e).isidentifier())

    def test_reduction_dim_is_innermost_loop(self):
        b = GraphBuilder()
        x = b.input("x", (4, 8))
        out = b.softmax(x, axis=0)   # reduction over dim 0
        b.output(out)
        g = b.finish()
        kernel = generate_kernel(g, g.producer(out))
        lines = [l for l in kernel.source.splitlines() if "for (int" in l]
        assert "o0" in lines[-1]     # dim 0 innermost
        assert "reduction dim" in lines[-1]

    def test_texture_load_emitted(self):
        from repro.core.layout_selection import LayoutPlan
        b = GraphBuilder()
        x = b.input("x", (4, 8))
        out = b.softmax(x)
        b.output(out)
        g = b.finish()
        plan = LayoutPlan()
        plan.layouts["x"] = Layout.texture((0, 1), vector_dim=1)
        kernel = generate_kernel(g, g.producer(out), plan)
        assert "read_imageh" in kernel.source

    def test_buffer_strides_in_address(self):
        b = GraphBuilder()
        x = b.input("x", (4, 8))
        out = b.relu(x)
        b.output(out)
        g = b.finish()
        kernel = generate_kernel(g, g.producer(out))
        assert "x[" in kernel.source
        assert "* 8" in kernel.source  # row stride of the (4, 8) tensor


class TestGenerateGroup:
    def test_group_in_order(self, attention_graph):
        result = smartmem_optimize(attention_graph)
        groups = {n.group for n in result.graph.iter_nodes()}
        some_group = sorted(groups)[0]
        kernels = generate_group(result.graph, some_group, result.plan)
        assert kernels
        for k in kernels:
            assert "__kernel" in k.source

    def test_unknown_group(self, attention_graph):
        result = smartmem_optimize(attention_graph)
        with pytest.raises(ValueError):
            generate_group(result.graph, 10 ** 9, result.plan)
