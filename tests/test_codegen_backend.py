"""Tests for the fused codegen execution backend.

The contract: the ``codegen`` backend is a drop-in for ``numpy`` -
identical outputs, identical pool accounting, identical failure
semantics - with the whole step loop compiled to Python source once per
program and cached on it.
"""

import numpy as np
import pytest

from repro.api import CompileOptions
from repro.core import smartmem_optimize
from repro.memory.pool import SizeClassPool
from repro.models import SMOKE_CONFIGS, build
from repro.runtime import (
    CodegenBackend, available_backends, compile_program, execute,
    emit_program_source, get_backend, lower, make_inputs, program_source,
    verify_equivalence,
)
from repro.runtime.session import _compile_session


@pytest.mark.parametrize("name", sorted(SMOKE_CONFIGS))
class TestCodegenParity:
    """Generated-module execution == reference backend on the whole zoo,
    through the verifier's own backend selection."""

    def test_verify_equivalence_on_codegen_backend(self, name):
        graph = build(name, **SMOKE_CONFIGS[name])
        optimized = smartmem_optimize(graph).graph
        report = verify_equivalence(graph, optimized, backend="codegen")
        assert report.passed, report.summary()


class TestGeneratedModule:
    def test_source_is_fused_python(self, attention_graph):
        optimized = smartmem_optimize(attention_graph).graph
        program = lower(optimized)
        source = program_source(program)
        assert "def run_plain(values):" in source
        assert "def run_accounted(values, allocate, release, active):" in source
        # per-step closure dispatch is gone: kernels are called directly
        assert "_k_matmul(" in source
        # pre-resolved views are inlined as direct ndarray method calls
        assert ".reshape(" in source or ".transpose(" in source
        # the accounted variant carries slot sizes as integer literals
        for size in program.slot_plan.slot_sizes:
            assert f"allocate({size})" in source

    def test_emit_is_pure_and_compile_is_cached(self, attention_graph):
        program = lower(attention_graph)
        source, namespace = emit_program_source(program)
        assert "run_plain" not in namespace  # emitted, not executed
        module = compile_program(program)
        assert module is compile_program(program)  # cached on the program
        assert module.source == source
        assert module.namespace["run_plain"] is module.run_plain

    def test_runner_cache_follows_graph_generation(self, attention_graph):
        from repro.ir.tensor import TensorSpec

        module = compile_program(lower(attention_graph))
        assert compile_program(lower(attention_graph)) is module
        attention_graph.add_tensor(TensorSpec("scratch", (1,)))
        # a structural mutation re-lowers, and the new program carries a
        # fresh (empty) backend cache
        assert compile_program(lower(attention_graph)) is not module

    def test_emission_reads_lowering_time_views_not_the_live_graph(
            self, attention_graph):
        """The generated module must be faithful to the state the
        program was lowered from: a graph mutated after lower() (without
        a structural invalidation) may not leak into a later first-run
        emission - the numpy backend executes its lowering-time
        appliers, and codegen must emit from the same capture."""
        optimized = smartmem_optimize(attention_graph).graph
        program = lower(optimized)
        inputs = {k: v for k, v in make_inputs(attention_graph).items()
                  if k in optimized.tensors}
        ref = get_backend("numpy").run(program, dict(inputs))
        viewed = [n for n in optimized.iter_nodes()
                  if any(not v.is_identity for v in n.input_views.values())]
        assert viewed, "the optimized graph must carry absorbed views"
        for node in viewed:
            node.input_views.clear()  # in-place: no cache invalidation
        out = get_backend("codegen").run(program, dict(inputs))
        for key in ref:
            assert np.array_equal(out[key], ref[key]), key

    def test_plain_runner_matches_execute(self, attention_graph):
        program = lower(attention_graph)
        values = make_inputs(attention_graph)
        out = get_backend("codegen").run(program, dict(values))
        ref = execute(attention_graph, values)
        for key in ref:
            assert np.array_equal(out[key], ref[key]), key


class TestCodegenServing:
    def test_pool_accounting_matches_numpy(self, attention_graph):
        program = lower(attention_graph)
        values = make_inputs(attention_graph)
        backend = get_backend("codegen")
        pool = SizeClassPool()
        _, first = backend.run_serving(program, dict(values), pool)
        assert first.allocations == program.slot_plan.num_slots
        assert pool.matches_free_state(program.slot_plan.size_class_counts)
        _, second = backend.run_serving(program, dict(values), pool)
        assert second.allocations == 0
        assert second.reuses == program.slot_plan.allocs_per_run
        assert second.final_bytes == 0

    def test_failed_run_leaves_pool_consistent(self, attention_graph):
        program = lower(attention_graph)
        backend = get_backend("codegen")
        pool = SizeClassPool()
        values = make_inputs(attention_graph)
        bad = dict(values)
        bad["x"] = bad["x"][:, :-1]  # wrong shape -> step raises mid-run
        with pytest.raises(Exception):
            backend.run_serving(program, dict(bad), pool)
        assert pool.live_bytes == 0
        backend.run_serving(program, dict(values), pool)
        with pytest.raises(Exception):
            backend.run_serving(program, dict(bad), pool)
        assert pool.live_bytes == 0
        _, report = backend.run_serving(program, dict(values), pool)
        assert report.allocations == 0

    def test_shape_error_matches_reference_backend(self, attention_graph):
        program = lower(attention_graph)
        values = make_inputs(attention_graph)
        bad = dict(values)
        bad["x"] = bad["x"][:, :-1]
        errors = {}
        for backend in ("numpy", "codegen"):
            with pytest.raises(Exception) as info:
                get_backend(backend).run(program, dict(bad))
            errors[backend] = str(info.value)
        assert errors["numpy"] == errors["codegen"]

    def test_run_many_matches_single_runs(self, attention_graph):
        program = lower(attention_graph)
        backend = get_backend("codegen")
        pool = SizeClassPool()
        batch = [make_inputs(attention_graph, seed=s) for s in range(3)]
        results = backend.run_many(program, [dict(b) for b in batch], pool)
        for inputs, (out, report, wall_s) in zip(batch, results):
            ref = execute(attention_graph, inputs)
            assert wall_s > 0
            for key in ref:
                assert np.array_equal(out[key], ref[key])


class TestCodegenPlumbing:
    """backend="codegen" is selectable end-to-end through the typed API."""

    def test_registered(self):
        assert "codegen" in available_backends()
        assert isinstance(get_backend("codegen"), CodegenBackend)
        assert get_backend("codegen") is get_backend("codegen")

    def test_session_backend_selection(self, attention_graph):
        session = _compile_session(attention_graph, "Ours", backend="codegen")
        assert session.backend == "codegen"
        reference = _compile_session(attention_graph, "Ours")
        inputs = session.make_inputs(seed=3)
        out = session.run(dict(inputs))
        ref = reference.run(dict(inputs))
        for key in ref:
            assert np.array_equal(out[key], ref[key]), key
        # second request is served entirely from the warmed pool
        session.run(dict(inputs))
        assert session.stats.runs[-1].pool.allocations == 0

    def test_compile_options_front_door(self, attention_graph):
        import repro

        fast = repro.compile(attention_graph,
                             CompileOptions(backend="codegen"))
        assert fast.session.backend == "codegen"
        baseline = repro.compile(attention_graph)
        assert baseline.session is not fast.session  # distinct cache keys
        request = fast.make_request(seed=1)
        out = fast.run(request).outputs
        ref = baseline.run(baseline.make_request(seed=1)).outputs
        for key in ref:
            assert np.array_equal(out[key], ref[key]), key

    def test_serve_coalesces_on_codegen_backend(self, attention_graph):
        import repro

        options = repro.ServeOptions(
            max_batch_size=8, max_wait_ms=20.0,
            compile=CompileOptions(backend="codegen"))
        with repro.serve(attention_graph, options) as service:
            model = service.compiled
            futures = [service.submit(model.make_request(seed=s))
                       for s in range(16)]
            responses = [f.result(timeout=60) for f in futures]
        assert service._backend is get_backend("codegen")
        assert len(responses) == 16
        assert any(r.batch_size > 1 for r in responses), "burst must coalesce"
        baseline = repro.compile(attention_graph)  # numpy-backend reference
        ref = baseline.run(baseline.make_request(seed=2)).outputs
        for key in ref:
            assert np.array_equal(responses[2].outputs[key], ref[key]), key
