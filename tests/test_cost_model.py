"""Tests for the analytical cost model and device specs."""

import pytest

from repro.core import (
    PipelineStages, default_plan, fuse, SMARTMEM_POLICY, smartmem_optimize,
)
from repro.ir import GraphBuilder
from repro.runtime import (
    CostModelConfig, DIMENSITY700, SD835, SD8GEN2, V100, estimate,
    peak_activation_bytes, scaled,
)


def singleton_groups(graph):
    for i, node in enumerate(graph.iter_nodes()):
        node.group = i
    return graph


class TestDevices:
    def test_paper_roofline_numbers(self):
        """The SD 8 Gen 2 parameters come straight from Fig. 12."""
        assert SD8GEN2.peak_gmacs == 2000.0
        assert SD8GEN2.global_bw_gbps == 55.0
        assert SD8GEN2.texture_bw_gbps == 511.0

    def test_memory_sizes(self):
        gb = 1024 ** 3
        assert SD8GEN2.memory_bytes == 16 * gb
        assert SD835.memory_bytes == 6 * gb
        assert DIMENSITY700.memory_bytes == 4 * gb

    def test_v100_has_no_texture(self):
        assert not V100.has_texture
        assert V100.bandwidth_gbps(texture=True) == V100.global_bw_gbps

    def test_scaled(self):
        dev = scaled(SD8GEN2, peak_gmacs=100.0)
        assert dev.peak_gmacs == 100.0
        assert dev.global_bw_gbps == SD8GEN2.global_bw_gbps


class TestEstimate:
    def test_fusion_reduces_latency(self, attention_graph):
        g1 = singleton_groups(attention_graph.clone())
        p1 = default_plan(g1)
        unfused = estimate(g1, SD8GEN2, p1)
        g2 = attention_graph.clone()
        fuse(g2, SMARTMEM_POLICY)
        p2 = default_plan(g2)
        fused = estimate(g2, SD8GEN2, p2)
        assert fused.latency_ms < unfused.latency_ms
        assert fused.num_kernels < unfused.num_kernels

    def test_elimination_reduces_traffic(self, attention_graph):
        base = singleton_groups(attention_graph.clone())
        before = estimate(base, SD8GEN2, default_plan(base))
        result = smartmem_optimize(attention_graph)
        after = estimate(result.graph, SD8GEN2, result.plan)
        assert after.mem_access_total < before.mem_access_total

    def test_macs_invariant_under_optimization(self, attention_graph):
        base = singleton_groups(attention_graph.clone())
        before = estimate(base, SD8GEN2, default_plan(base))
        result = smartmem_optimize(attention_graph)
        after = estimate(result.graph, SD8GEN2, result.plan)
        assert before.total_macs == after.total_macs

    def test_selected_plan_beats_default(self, attention_graph):
        result = smartmem_optimize(attention_graph)
        good = estimate(result.graph, SD8GEN2, result.plan)
        bad_plan = default_plan(result.graph)
        bad = estimate(result.graph, SD8GEN2, bad_plan)
        assert good.latency_ms < bad.latency_ms

    def test_faster_device_is_faster(self, conv_net_graph):
        g = singleton_groups(conv_net_graph)
        plan = default_plan(g)
        fast = estimate(g, SD8GEN2, plan)
        slow = estimate(g, DIMENSITY700, plan)
        assert fast.latency_ms < slow.latency_ms

    def test_untuned_slower(self, conv_net_graph):
        g = singleton_groups(conv_net_graph)
        plan = default_plan(g)
        tuned = estimate(g, SD8GEN2, plan, CostModelConfig(tuned=True))
        untuned = estimate(g, SD8GEN2, plan, CostModelConfig(tuned=False))
        assert untuned.latency_ms > tuned.latency_ms

    def test_efficiency_override(self, conv_net_graph):
        g = singleton_groups(conv_net_graph)
        plan = default_plan(g)
        base = estimate(g, SD8GEN2, plan)
        crippled = estimate(g, SD8GEN2, plan, CostModelConfig(
            efficiency_overrides={"conv2d": 0.001}))
        assert crippled.latency_ms > base.latency_ms * 5

    def test_breakdown_sums_to_100(self, attention_graph):
        g = singleton_groups(attention_graph)
        report = estimate(g, SD8GEN2, default_plan(g))
        assert sum(report.breakdown().values()) == pytest.approx(100.0)

    def test_transform_kernels_categorized(self, attention_graph):
        g = singleton_groups(attention_graph.clone())
        report = estimate(g, SD8GEN2, default_plan(g))
        categories = {k.category for k in report.kernels}
        assert "explicit" in categories
        assert "compute" in categories

    def test_simplify_index_ablation(self, attention_graph):
        result = smartmem_optimize(attention_graph)
        fast = estimate(result.graph, SD8GEN2, result.plan,
                        CostModelConfig(simplify_index=True))
        slow = estimate(result.graph, SD8GEN2, result.plan,
                        CostModelConfig(simplify_index=False))
        assert slow.latency_ms >= fast.latency_ms

    def test_gmacs_consistency(self, conv_net_graph):
        g = singleton_groups(conv_net_graph)
        report = estimate(g, SD8GEN2, default_plan(g))
        expected = report.total_macs / 1e9 / (report.latency_ms / 1e3)
        assert report.gmacs_per_s == pytest.approx(expected)


class TestMoverCosts:
    def test_standalone_transpose_uses_relayout_bw(self):
        b = GraphBuilder()
        x = b.input("x", (512, 512))
        t = b.transpose(x, (1, 0))
        b.output(b.relu(t))
        g = singleton_groups(b.finish())
        report = estimate(g, SD8GEN2, default_plan(g))
        transpose_kernel = next(k for k in report.kernels
                                if k.op_types == ("transpose",))
        relu_kernel = next(k for k in report.kernels
                           if k.op_types == ("unary",))
        # same bytes, but the transform runs at relayout bandwidth
        assert transpose_kernel.memory_us > relu_kernel.memory_us * 3

    def test_mnn_staging_factor(self):
        b = GraphBuilder()
        x = b.input("x", (256, 256))
        t = b.transpose(x, (1, 0))
        b.output(b.relu(t))
        g = singleton_groups(b.finish())
        plan = default_plan(g)
        normal = estimate(g, SD8GEN2, plan)
        staged = estimate(g, SD8GEN2, plan,
                          CostModelConfig(relayout_bytes_factor=4.0))
        k_n = next(k for k in normal.kernels if k.op_types == ("transpose",))
        k_s = next(k for k in staged.kernels if k.op_types == ("transpose",))
        assert k_s.memory_us == pytest.approx(k_n.memory_us * 4.0)


class TestPeakMemory:
    def test_pooled_below_unpooled(self, attention_graph):
        pooled = peak_activation_bytes(attention_graph, pooled=True)
        unpooled = peak_activation_bytes(attention_graph, pooled=False)
        assert pooled < unpooled

    def test_peak_at_least_largest_tensor(self, attention_graph):
        peak = peak_activation_bytes(attention_graph, pooled=True)
        largest = max(
            attention_graph.tensors[t].size_bytes
            for node in attention_graph.iter_nodes() for t in node.outputs)
        assert peak >= largest
