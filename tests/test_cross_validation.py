"""Cross-validation: the cost model's analytical estimates against the
exact simulators (the DESIGN.md promise that each cost-model term maps
onto a mechanism we can simulate precisely)."""

import pytest

from repro.core import default_plan, select_layouts
from repro.ir import GraphBuilder, Layout
from repro.memory import SetAssociativeCache, TensorStorage, traversal
from repro.runtime import SD8GEN2, estimate, scaled
from repro.runtime.device import CacheSpec


def _singleton(graph):
    for i, node in enumerate(graph.iter_nodes()):
        node.group = i
    return graph


class TestAnalyticalVsExactCacheMisses:
    def test_streaming_read_matches(self):
        """For a unit-stride streaming kernel, the analytical estimate
        (bytes / line) equals the exact compulsory-miss count."""
        shape = (64, 128)
        b = GraphBuilder()
        x = b.input("x", shape)
        b.output(b.relu(x))
        g = _singleton(b.finish())
        plan = default_plan(g, use_texture=False)
        device = scaled(SD8GEN2, cache=CacheSpec(size_bytes=4096, line_bytes=64))
        report = estimate(g, device, plan)

        storage = TensorStorage(shape, Layout.row_major(2), 2)
        cache = SetAssociativeCache(4096, 64)
        for coords in traversal(shape, (0, 1)):
            cache.access(storage.address_of(coords))
        exact_read_misses = cache.stats.misses

        kernel = report.kernels[0]
        # analytical misses cover read + write; the read half must match
        # the exact compulsory count within 2x
        analytic = kernel.cache_misses
        assert exact_read_misses <= analytic <= 4 * exact_read_misses

    def test_strided_amplification_direction(self):
        """The analytical strided-read amplification has the same sign
        and comparable magnitude as exact simulation."""
        shape = (128, 128)
        # exact: column-order traversal of a row-major tensor
        def exact(order):
            storage = TensorStorage(shape, Layout.row_major(2), 2)
            cache = SetAssociativeCache(4096, 64)
            for coords in traversal(shape, order):
                cache.access(storage.address_of(coords))
            return cache.stats.misses

        good, bad = exact((0, 1)), exact((1, 0))
        exact_ratio = bad / good

        # analytical: a matmul whose reduction dim is or isn't unit-stride
        b = GraphBuilder()
        xa = b.input("a", shape)
        xb = b.input("b", shape)
        b.output(b.matmul(xa, xb))
        g = _singleton(b.finish())
        device = scaled(SD8GEN2, cache=CacheSpec(size_bytes=4096, line_bytes=64))
        good_plan = select_layouts(g.clone() if False else g, use_texture=False)
        rep_good = estimate(g, device, good_plan)
        bad_plan = default_plan(g, use_texture=False)
        # force b's layout so its reduction dim (0) strides
        rep_bad = estimate(g, device, bad_plan)
        analytic_ratio = (rep_bad.cache_miss_total
                          / max(1, rep_good.cache_miss_total))
        assert exact_ratio > 2.0
        assert analytic_ratio > 1.2
        # same order of magnitude (the analytical model is deliberately
        # conservative: device.strided_penalty vs full-thrash)
        assert analytic_ratio < exact_ratio * 2


class TestPoolVsLiveness:
    def test_pool_peak_close_to_liveness_bound(self, attention_graph):
        """The pool simulator's peak is bounded below by the liveness
        analysis the cost model uses, and stays within fragmentation
        distance above it."""
        from repro.memory import simulate_pool
        from repro.runtime import peak_activation_bytes
        g = attention_graph
        for i, node in enumerate(g.iter_nodes()):
            node.group = i
        report = simulate_pool(g)
        liveness = peak_activation_bytes(g, pooled=True)
        assert report.peak_bytes >= liveness * 0.5
        assert report.peak_bytes <= liveness * 2.0


class TestExperimentJson:
    def test_roundtrip(self):
        import json
        from repro.bench import micro_rw
        exp = micro_rw.run()
        text = json.dumps(exp.to_json())
        restored = json.loads(text)
        assert restored["name"] == exp.name
        assert restored["rows"] == exp.rows
        assert set(restored["data"]) == {"conv2d", "matmul", "activation"}
