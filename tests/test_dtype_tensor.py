"""Tests for repro.ir.dtype and repro.ir.tensor."""

import numpy as np
import pytest

from repro.ir.dtype import DType, parse_dtype
from repro.ir.tensor import TensorSpec, normalize_shape


class TestDType:
    def test_sizes(self):
        assert DType.FP16.size_bytes == 2
        assert DType.FP32.size_bytes == 4
        assert DType.INT8.size_bytes == 1
        assert DType.INT32.size_bytes == 4
        assert DType.INT64.size_bytes == 8
        assert DType.BOOL.size_bytes == 1

    def test_fp16_executes_as_fp32(self):
        # reference kernels verify semantics, not rounding
        assert DType.FP16.numpy_dtype == np.dtype(np.float32)

    def test_parse_from_string(self):
        assert parse_dtype("fp16") is DType.FP16
        assert parse_dtype("int32") is DType.INT32

    def test_parse_passthrough(self):
        assert parse_dtype(DType.FP32) is DType.FP32

    def test_parse_unknown(self):
        with pytest.raises(ValueError, match="unknown dtype"):
            parse_dtype("float64x")


class TestShape:
    def test_normalize(self):
        assert normalize_shape([1, 2, 3]) == (1, 2, 3)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            normalize_shape((1, 0, 3))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            normalize_shape((-1, 3))


class TestTensorSpec:
    def test_basic_facts(self):
        spec = TensorSpec("t", (2, 3, 4), DType.FP16)
        assert spec.rank == 3
        assert spec.num_elements == 24
        assert spec.size_bytes == 48

    def test_param_flag(self):
        spec = TensorSpec("w", (4, 4), DType.FP16, is_param=True)
        assert spec.is_param

    def test_with_shape(self):
        spec = TensorSpec("t", (2, 3), DType.FP32)
        new = spec.with_shape((6,))
        assert new.shape == (6,)
        assert new.dtype is DType.FP32
        assert spec.shape == (2, 3)  # original untouched

    def test_with_name(self):
        assert TensorSpec("a", (1,)).with_name("b").name == "b"

    def test_string_dtype_coerced(self):
        assert TensorSpec("t", (1,), "fp32").dtype is DType.FP32

    def test_json_roundtrip(self):
        spec = TensorSpec("t", (5, 7), DType.INT32, is_param=True)
        assert TensorSpec.from_json(spec.to_json()) == spec

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec("t", (0,))
