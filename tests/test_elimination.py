"""Tests for Layout Transformation Elimination (Sec 3.2.1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.elimination import (
    count_layout_transforms, eliminate_dead_nodes, eliminate_layout_transforms,
)
from repro.ir import GraphBuilder, validate
from repro.runtime import execute, make_inputs, outputs_equal


class TestBasicElimination:
    def test_removes_all_transforms(self, attention_graph):
        g = attention_graph.clone()
        stats = eliminate_layout_transforms(g)
        assert count_layout_transforms(g, include_slice=True) == 0
        assert stats.total_eliminated > 0
        validate(g)

    def test_semantics_preserved(self, attention_graph):
        g = attention_graph.clone()
        eliminate_layout_transforms(g)
        assert outputs_equal(attention_graph, g)

    def test_views_attached(self, attention_graph):
        g = attention_graph.clone()
        eliminate_layout_transforms(g)
        assert any(node.input_views for node in g.iter_nodes())

    def test_stats_by_kind(self, attention_graph):
        g = attention_graph.clone()
        stats = eliminate_layout_transforms(g)
        assert stats.eliminated["reshape"] >= 5
        assert stats.eliminated["transpose"] >= 2
        assert stats.eliminated["slice"] == 3

    def test_exclude_slice(self, attention_graph):
        g = attention_graph.clone()
        eliminate_layout_transforms(g, include_slice=False)
        remaining = [n.op_type for n in g.iter_nodes()]
        assert "slice" in remaining
        assert "reshape" not in remaining
        assert outputs_equal(attention_graph, g)


class TestEdgeCases:
    def test_graph_output_transform_kept(self):
        b = GraphBuilder()
        x = b.input("x", (2, 6))
        t = b.transpose(x, (1, 0))
        b.output(t)
        g = b.finish()
        stats = eliminate_layout_transforms(g)
        assert stats.kept_graph_outputs == 1
        assert count_layout_transforms(g) == 1

    def test_output_transform_absorbs_upstream(self):
        b = GraphBuilder()
        x = b.input("x", (2, 6))
        r = b.reshape(x, (6, 2))
        t = b.transpose(r, (1, 0))
        b.output(t)
        g = b.finish()
        eliminate_layout_transforms(g)
        # the reshape is gone; the final transpose holds its view
        assert count_layout_transforms(g) == 1
        kept = next(n for n in g.iter_nodes())
        assert 0 in kept.input_views
        assert outputs_equal(b.graph, g) or True  # semantic check below
        inputs = make_inputs(b.graph)
        ref = execute(b.graph, inputs)
        opt = execute(g, {k: v for k, v in inputs.items() if k in g.tensors})
        for name in ref:
            assert np.array_equal(ref[name], opt[name])

    def test_multi_consumer_transform(self):
        b = GraphBuilder()
        x = b.input("x", (4, 6))
        t = b.transpose(x, (1, 0))
        b.output(b.relu(t))
        b.output(b.sigmoid(t))
        g0 = b.finish()
        g = g0.clone()
        eliminate_layout_transforms(g)
        assert count_layout_transforms(g) == 0
        # both consumers got the view
        viewed = [n for n in g.iter_nodes() if n.input_views]
        assert len(viewed) == 2
        assert outputs_equal(g0, g)

    def test_dead_transform_removed(self):
        b = GraphBuilder()
        x = b.input("x", (4, 6))
        b.transpose(x, (1, 0))  # dead: never consumed, not an output
        y = b.relu(x)
        b.output(y)
        g = b.graph
        eliminate_layout_transforms(g)
        assert count_layout_transforms(g) == 0

    def test_chain_collapses_to_single_view(self):
        b = GraphBuilder()
        x = b.input("x", (2, 3, 4))
        y = b.reshape(x, (6, 4))
        y = b.transpose(y, (1, 0))
        y = b.reshape(y, (2, 2, 6))
        out = b.relu(y)
        b.output(out)
        g0 = b.finish()
        g = g0.clone()
        eliminate_layout_transforms(g)
        relu = next(n for n in g.iter_nodes())
        assert relu.op_type == "unary"
        assert relu.inputs == ["x"]
        assert len(relu.input_views[0].steps) == 3
        assert outputs_equal(g0, g)

    def test_depth_to_space_eliminated(self):
        b = GraphBuilder()
        x = b.input("x", (1, 8, 4, 4))
        y = b.depth_to_space(x, 2)
        b.output(b.relu(y))
        g0 = b.finish()
        g = g0.clone()
        eliminate_layout_transforms(g)
        assert count_layout_transforms(g) == 0
        assert outputs_equal(g0, g)

    def test_idempotent(self, attention_graph):
        g = attention_graph.clone()
        eliminate_layout_transforms(g)
        stats2 = eliminate_layout_transforms(g)
        assert stats2.total_eliminated == 0


class TestDeadCode:
    def test_removes_dead_chain(self):
        b = GraphBuilder()
        x = b.input("x", (4,))
        live = b.relu(x)
        dead1 = b.sigmoid(x)
        b.unary(dead1, "tanh")
        b.output(live)
        g = b.graph
        removed = eliminate_dead_nodes(g)
        assert removed == 2
        assert len(g.nodes) == 1

    def test_keeps_everything_live(self, attention_graph):
        g = attention_graph.clone()
        assert eliminate_dead_nodes(g) == 0


@st.composite
def transform_heavy_graph(draw):
    """A random graph alternating compute and layout-transform ops."""
    b = GraphBuilder("random")
    x = b.input("x", (2, 4, 8))
    y = b.dense(x, 8)
    for _ in range(draw(st.integers(1, 5))):
        kind = draw(st.sampled_from(["reshape", "transpose", "compute", "slice"]))
        shape = b.shape(y)
        if kind == "reshape":
            import math
            total = math.prod(shape)
            if total % 4 == 0:
                y = b.reshape(y, (total // 4, 4))
            else:
                y = b.reshape(y, (total,))
        elif kind == "transpose":
            perm = tuple(draw(st.permutations(range(len(shape)))))
            y = b.transpose(y, perm)
        elif kind == "slice":
            if shape[0] > 1:
                y = b.slice_axis(y, 0, 0, shape[0] - 1)
        else:
            y = b.unary(y, draw(st.sampled_from(["relu", "sigmoid", "tanh"])))
    b.output(y)
    return b.finish()


@given(transform_heavy_graph())
@settings(max_examples=40, deadline=None)
def test_elimination_always_preserves_semantics(graph):
    g = graph.clone()
    eliminate_layout_transforms(g)
    validate(g)
    assert outputs_equal(graph, g)
