"""Executor tests and end-to-end pipeline semantic-equivalence tests."""

import numpy as np
import pytest

from repro.core import PipelineStages, smartmem_optimize
from repro.ir import GraphBuilder, validate
from repro.runtime import execute, make_inputs, outputs_equal


class TestExecutor:
    def test_deterministic_inputs(self, attention_graph):
        a = make_inputs(attention_graph, seed=7)
        b = make_inputs(attention_graph, seed=7)
        for name in a:
            assert np.array_equal(a[name], b[name])

    def test_seed_changes_inputs(self, attention_graph):
        a = make_inputs(attention_graph, seed=0)
        b = make_inputs(attention_graph, seed=1)
        assert any(not np.array_equal(a[n], b[n]) for n in a)

    def test_int_inputs_for_ids(self):
        b = GraphBuilder()
        ids = b.input("ids", (1, 4), "int32")
        b.output(b.embedding(ids, 16, 8))
        g = b.finish()
        inputs = make_inputs(g)
        assert inputs["ids"].dtype == np.int32
        out = execute(g, inputs)
        assert list(out.values())[0].shape == (1, 4, 8)

    def test_execute_shapes_checked(self, linear_graph):
        inputs = make_inputs(linear_graph)
        out = execute(linear_graph, inputs)
        for name, value in out.items():
            assert tuple(value.shape) == linear_graph.shape(name)

    def test_outputs_equal_detects_difference(self, linear_graph):
        g = linear_graph.clone()
        # perturb: swap relu for sigmoid
        node = next(n for n in g.iter_nodes() if n.op_type == "unary")
        node.attrs["func"] = "sigmoid"
        assert not outputs_equal(linear_graph, g)

    def test_interior_constant_materialized(self):
        """A const_value tensor that is neither a parameter nor a graph
        input must still be filled (regression: execute() used to KeyError
        on it)."""
        from repro.ir.graph import Graph
        from repro.ir.tensor import TensorSpec

        g = Graph("interior_const")
        g.add_input("x", (2, 3))
        g.add_tensor(TensorSpec("c", (2, 3), const_value=2.0))
        g.add_tensor(TensorSpec("y", (2, 3)))
        g.add_node("binary", ["x", "c"], ["y"], {"func": "mul"})
        g.mark_output("y")

        inputs = make_inputs(g, seed=0)
        assert "c" in inputs
        assert np.all(inputs["c"] == 2.0)
        out = execute(g, inputs)
        assert np.allclose(out["y"], inputs["x"] * 2.0)

    def test_interior_constant_does_not_shift_rng(self):
        """Constants are np.full-filled and never consume random state, so
        adding one leaves every other tensor's values unchanged."""
        from repro.ir.graph import Graph
        from repro.ir.tensor import TensorSpec

        def base(with_const):
            g = Graph("g")
            g.add_input("x", (2, 3))
            g.add_param("w", (3, 4))
            if with_const:
                g.add_tensor(TensorSpec("eps", (1,), const_value=0.5))
            return g

        a = make_inputs(base(False), seed=5)
        b = make_inputs(base(True), seed=5)
        assert np.array_equal(a["x"], b["x"])
        assert np.array_equal(a["w"], b["w"])
        assert np.all(b["eps"] == 0.5)


class TestPipelineEndToEnd:
    @pytest.mark.parametrize("fixture", [
        "linear_graph", "attention_graph", "multi_consumer_graph",
        "conv_net_graph"])
    def test_full_pipeline_preserves_semantics(self, fixture, request):
        graph = request.getfixturevalue(fixture)
        result = smartmem_optimize(graph)
        validate(result.graph)
        assert outputs_equal(graph, result.graph)

    def test_operator_count_drops(self, attention_graph):
        result = smartmem_optimize(attention_graph)
        assert result.operator_count < len(attention_graph.nodes)
        assert result.source_operator_count == len(attention_graph.nodes)

    def test_no_layout_transforms_remain(self, attention_graph):
        result = smartmem_optimize(attention_graph)
        assert result.remaining_layout_transforms == 0

    def test_stage_toggles(self, attention_graph):
        no_lte = smartmem_optimize(
            attention_graph, PipelineStages(lte=False))
        assert no_lte.remaining_layout_transforms > 0
        no_fuse = smartmem_optimize(
            attention_graph, PipelineStages(fusion=False))
        assert no_fuse.operator_count >= smartmem_optimize(
            attention_graph).operator_count
        assert outputs_equal(attention_graph, no_lte.graph)
        assert outputs_equal(attention_graph, no_fuse.graph)

    def test_stage_monotonicity(self, attention_graph):
        """Each stage never increases the operator count."""
        baseline = smartmem_optimize(
            attention_graph, PipelineStages(lte=False, fusion=True,
                                            layout_selection=False,
                                            full_texture=False))
        lte = smartmem_optimize(
            attention_graph, PipelineStages(lte=True, fusion=True,
                                            layout_selection=False,
                                            full_texture=False))
        assert lte.operator_count <= baseline.operator_count

    def test_no_texture_mode(self, attention_graph):
        result = smartmem_optimize(
            attention_graph, PipelineStages(use_texture=False))
        from repro.ir import MemoryKind
        assert all(l.memory is MemoryKind.BUFFER_1D
                   for l in result.plan.layouts.values())
        assert outputs_equal(attention_graph, result.graph)

    def test_source_graph_untouched(self, attention_graph):
        before_nodes = set(attention_graph.nodes)
        smartmem_optimize(attention_graph)
        assert set(attention_graph.nodes) == before_nodes

    def test_extra_efficiency_property(self, attention_graph):
        full = smartmem_optimize(attention_graph)
        assert full.extra_efficiency > 1.0
        partial = smartmem_optimize(
            attention_graph, PipelineStages(full_texture=False))
        assert partial.extra_efficiency == 1.0
