"""Tests for the symbolic index algebra (repro.indexexpr.expr)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.indexexpr.expr import (
    BinOp, Const, Var, add, classify_dependency, floordiv, mod, mul, simplify,
)


class TestConstFolding:
    def test_add(self):
        assert add(Const(2), Const(3)) == Const(5)

    def test_mul(self):
        assert mul(Const(2), Const(3)) == Const(6)

    def test_div(self):
        assert floordiv(Const(7), Const(2)) == Const(3)

    def test_mod(self):
        assert mod(Const(7), Const(4)) == Const(3)

    def test_negative_const_rejected(self):
        with pytest.raises(ValueError):
            Const(-1)

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            floordiv(Var("i", 4), Const(0))

    def test_mod_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            mod(Var("i", 4), Const(0))


class TestIdentities:
    def setup_method(self):
        self.i = Var("i", 100)

    def test_add_zero(self):
        assert add(self.i, Const(0)) == self.i

    def test_mul_one(self):
        assert mul(self.i, Const(1)) == self.i

    def test_mul_zero(self):
        assert mul(self.i, Const(0)) == Const(0)

    def test_div_one(self):
        assert floordiv(self.i, Const(1)) == self.i

    def test_mod_one(self):
        assert mod(self.i, Const(1)) == Const(0)

    def test_mod_below_bound(self):
        # i < 100, so i % 128 == i
        assert mod(self.i, Const(128)) == self.i

    def test_div_above_bound(self):
        assert floordiv(self.i, Const(128)) == Const(0)


class TestPaperRules:
    """The strength-reduction rules called out in Section 3.2.1."""

    def test_mod_mod_collapse(self):
        # i % Ca % Cb -> i % Cb when Ca % Cb == 0
        i = Var("i", 1000)
        assert mod(mod(i, Const(12)), Const(4)) == mod(i, Const(4))

    def test_nested_div_merge(self):
        i = Var("i", 1000)
        assert floordiv(floordiv(i, Const(4)), Const(8)) == floordiv(i, Const(32))

    def test_merge_then_split_identity(self):
        # (i*C + j) // C == i and (i*C + j) % C == j for j < C
        i, j = Var("i", 8), Var("j", 4)
        linear = add(mul(i, Const(4)), j)
        assert floordiv(linear, Const(4)) == i
        assert mod(linear, Const(4)) == j

    def test_mul_div_divisible(self):
        i = Var("i", 8)
        assert floordiv(mul(i, Const(32)), Const(8)) == mul(i, Const(4))

    def test_mul_div_inverse_factor(self):
        i = Var("i", 16)
        assert floordiv(mul(i, Const(4)), Const(8)) == floordiv(i, Const(2))

    def test_mul_mod_zero(self):
        i = Var("i", 16)
        assert mod(mul(i, Const(8)), Const(4)) == Const(0)

    def test_carry_free_split(self):
        # (i*128 + j) // 1024 with j < 128 -> i // 8
        i, j = Var("i", 16), Var("j", 128)
        linear = add(mul(i, Const(128)), j)
        assert floordiv(linear, Const(1024)) == floordiv(i, Const(8))


class TestBounds:
    def test_var(self):
        assert Var("i", 10).bounds() == (0, 9)

    def test_add(self):
        e = add(Var("i", 4), Var("j", 5))
        assert e.bounds() == (0, 7)

    def test_mul(self):
        assert mul(Var("i", 4), Const(3)).bounds() == (0, 9)

    def test_mod_tight(self):
        assert mod(Var("i", 100), Const(7)).bounds() == (0, 6)

    def test_div(self):
        assert floordiv(Var("i", 100), Const(10)).bounds() == (0, 9)


class TestCost:
    def test_div_mod_expensive(self):
        i = Var("i", 100)
        cheap = add(i, Const(1))
        costly = mod(floordiv(i, Const(7)), Const(3))
        assert cheap.cost() == 1
        assert costly.cost() == 8

    def test_leaf_cost_zero(self):
        assert Var("i", 5).cost() == 0
        assert Const(3).cost() == 0


class TestClassify:
    def test_identity(self):
        assert classify_dependency(Var("o0", 4)) == "identity"

    def test_split(self):
        i = Var("o0", 64)
        assert classify_dependency(BinOp("%", BinOp("//", i, Const(4)), Const(4))) == "split"

    def test_merge(self):
        e = BinOp("+", BinOp("*", Var("o0", 4), Const(8)), Var("o1", 8))
        assert classify_dependency(e) == "merge"

    def test_compound(self):
        e = BinOp("%", BinOp("+", BinOp("*", Var("o0", 4), Const(8)),
                             Var("o1", 8)), Const(3))
        assert classify_dependency(e) == "compound"


# -- property-based: every rewrite preserves value ---------------------------


@st.composite
def exprs(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return draw(st.sampled_from(
                [Var("i", 8), Var("j", 12), Var("k", 64)]))
        return Const(draw(st.integers(0, 20)))
    op = draw(st.sampled_from(["+", "*", "//", "%"]))
    lhs = draw(exprs(depth=depth - 1))
    if op in ("//", "%"):
        rhs = Const(draw(st.integers(1, 16)))
    else:
        rhs = draw(exprs(depth=depth - 1))
    return BinOp(op, lhs, rhs)


@given(exprs())
@settings(max_examples=200, deadline=None)
def test_simplify_preserves_value(e):
    simplified = simplify(e)
    # evaluate over a grid of all variable values
    ii, jj, kk = np.meshgrid(np.arange(8), np.arange(12), np.arange(64),
                             indexing="ij")
    env = {"i": ii, "j": jj, "k": kk}
    grid = ii.shape
    before = np.broadcast_to(np.asarray(e.evaluate(env)), grid)
    after = np.broadcast_to(np.asarray(simplified.evaluate(env)), grid)
    assert np.array_equal(before, after)


@given(exprs())
@settings(max_examples=200, deadline=None)
def test_simplify_never_increases_cost(e):
    assert simplify(e).cost() <= e.cost()


@given(exprs())
@settings(max_examples=200, deadline=None)
def test_bounds_are_sound(e):
    lo, hi = e.bounds()
    ii, jj, kk = np.meshgrid(np.arange(8), np.arange(12), np.arange(64),
                             indexing="ij")
    values = np.asarray(e.evaluate({"i": ii, "j": jj, "k": kk}))
    assert values.min() >= lo
    assert values.max() <= hi
