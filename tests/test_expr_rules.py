"""Exhaustive per-rule coverage of the strength-reduction algebra.

Each smart-constructor branch in repro.indexexpr.expr gets a direct test
pinning its exact rewrite, complementing the property tests that only
check value preservation.
"""

import pytest

from repro.indexexpr.expr import (
    BinOp, Const, Var, add, floordiv, mod, mul, simplify,
)


class TestAddBranches:
    def test_const_normalized_right(self):
        i = Var("i", 8)
        e = add(Const(3), i)
        assert isinstance(e, BinOp) and e.lhs == i and e.rhs == Const(3)

    def test_reassociation(self):
        i = Var("i", 8)
        e = add(add(i, Const(2)), Const(5))
        assert e == add(i, Const(7))

    def test_operator_sugar(self):
        i = Var("i", 8)
        assert (i + 0) == i
        assert (i + 2) == add(i, Const(2))


class TestMulBranches:
    def test_const_collapse(self):
        i = Var("i", 8)
        assert mul(mul(i, Const(3)), Const(4)) == mul(i, Const(12))

    def test_distribute_enables_collapse(self):
        # (i*4 + j) * 8 distributes so that a later //32 can split it
        i, j = Var("i", 8), Var("j", 4)
        e = mul(add(mul(i, Const(4)), j), Const(8))
        collapsed = floordiv(e, Const(32))
        assert collapsed == i

    def test_sugar(self):
        i = Var("i", 8)
        assert (i * 1) == i
        assert (i * 0) == Const(0)


class TestDivBranches:
    def test_nested_div(self):
        i = Var("i", 100)
        assert (i // 2) // 5 == i // 10

    def test_exact_term_extraction(self):
        i, j = Var("i", 8), Var("j", 4)
        # (i*12 + j) // 4 -> i*3 + j//4 -> i*3 + 0
        assert floordiv(add(mul(i, Const(12)), j), Const(4)) == mul(i, Const(3))

    def test_extraction_right_operand(self):
        i, j = Var("i", 8), Var("j", 4)
        assert floordiv(add(j, mul(i, Const(12))), Const(4)) == mul(i, Const(3))

    def test_mul_factor_divides(self):
        i = Var("i", 8)
        assert floordiv(mul(i, Const(12)), Const(4)) == mul(i, Const(3))

    def test_divisor_divides_factor_inverse(self):
        i = Var("i", 32)
        assert floordiv(mul(i, Const(4)), Const(12)) == floordiv(i, Const(3))

    def test_carry_free_requires_bound(self):
        # (i*3 + j)//3 with j < 4 is NOT carry-free (j can reach 3)
        i, j = Var("i", 8), Var("j", 4)
        e = floordiv(add(mul(i, Const(3)), j), Const(3))
        # exact extraction applies (3 | 3): i + j//3, which is NOT just i
        assert e == add(i, floordiv(j, Const(3)))


class TestModBranches:
    def test_paper_rule_exact(self):
        i = Var("i", 10 ** 6)
        assert mod(mod(i, Const(64)), Const(16)) == mod(i, Const(16))

    def test_paper_rule_requires_divisibility(self):
        i = Var("i", 10 ** 6)
        e = mod(mod(i, Const(10)), Const(4))
        # 4 does not divide 10: must stay nested
        assert isinstance(e, BinOp) and e.op == "%"
        assert isinstance(e.lhs, BinOp) and e.lhs.op == "%"

    def test_term_drop(self):
        i, j = Var("i", 8), Var("j", 4)
        assert mod(add(mul(i, Const(8)), j), Const(4)) == j

    def test_mul_multiple_vanishes(self):
        i = Var("i", 8)
        assert mod(mul(i, Const(12)), Const(4)) == Const(0)

    def test_mul_factor_divides_modulus(self):
        i = Var("i", 100)
        # (i*4) % 12 == (i % 3) * 4
        assert mod(mul(i, Const(4)), Const(12)) == mul(mod(i, Const(3)), Const(4))

    def test_bound_elision(self):
        j = Var("j", 4)
        assert mod(j, Const(7)) == j


class TestSimplifyFixpoint:
    def test_deep_chain_collapses(self):
        i = Var("i", 64)
        e = BinOp("%", BinOp("%", BinOp("%", i, Const(48)), Const(24)),
                  Const(8))
        assert simplify(e) == mod(i, Const(8))

    def test_idempotent(self):
        i, j = Var("i", 8), Var("j", 4)
        e = mod(floordiv(add(mul(i, Const(4)), j), Const(2)), Const(8))
        once = simplify(e)
        assert simplify(once) == once

    def test_returns_cheapest_seen(self):
        # distribution alone would raise cost; simplify must not regress
        i = Var("i", 8)
        e = BinOp("*", BinOp("+", i, i), Const(2))
        assert simplify(e).cost() <= e.cost()


class TestEvaluation:
    def test_scalar_env(self):
        i, j = Var("i", 8), Var("j", 4)
        e = add(mul(i, Const(4)), j)
        assert e.evaluate({"i": 3, "j": 2}) == 14

    def test_free_vars(self):
        i, j = Var("i", 8), Var("j", 4)
        assert add(mul(i, Const(4)), j).free_vars() == {"i", "j"}

    def test_bad_binop(self):
        with pytest.raises(ValueError):
            BinOp("**", Var("i", 4), Const(2))

    def test_coercion_rejects_floats(self):
        with pytest.raises(TypeError):
            Var("i", 4) + 1.5
