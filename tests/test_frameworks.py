"""Tests for the baseline framework models (repro.baselines)."""

import pytest

from repro.baselines import ALL_FRAMEWORKS, make_framework
from repro.baselines.base import Framework
from repro.core.elimination import count_layout_transforms
from repro.ir import GraphBuilder
from repro.runtime import SD8GEN2, V100, outputs_equal, scaled


def attention_model():
    b = GraphBuilder("mini_transformer")
    x = b.input("x", (1, 16, 24))
    h = b.layernorm(x)
    qkv = b.dense(h, 72)
    qkv = b.reshape(qkv, (1, 16, 3, 2, 12))
    qkv = b.transpose(qkv, (2, 0, 3, 1, 4))
    q = b.reshape(b.slice_axis(qkv, 0, 0, 1), (2, 16, 12))
    k = b.reshape(b.slice_axis(qkv, 0, 1, 2), (2, 16, 12))
    attn = b.softmax(b.matmul(q, k, transpose_b=True))
    b.output(attn)
    return b.finish()


def conv_model():
    b = GraphBuilder("mini_cnn")
    x = b.input("x", (1, 3, 16, 16))
    y = b.conv2d(x, 8, 3, padding=1, bias=False)
    y = b.batchnorm(y)
    y = b.relu(y)
    y = b.global_avgpool(y)
    y = b.reshape(y, (1, 8))
    b.output(b.dense(y, 10))
    return b.finish()


def hybrid_model():
    """Conv feeding a linear-domain op: forces implicit converts."""
    b = GraphBuilder("mini_hybrid")
    x = b.input("x", (1, 4, 8, 8))
    y = b.conv2d(x, 4, 3, padding=1)
    y = b.instancenorm(y)
    y = b.conv2d(y, 4, 3, padding=1)
    b.output(y)
    return b.finish()


class TestSupportMatrix:
    def test_ncnn_rejects_transformers(self):
        res = make_framework("NCNN").compile(attention_model(), SD8GEN2)
        assert not res.supported
        assert "not supported" in res.reason

    def test_tflite_rejects_transformers(self):
        res = make_framework("TFLite").compile(attention_model(), SD8GEN2)
        assert not res.supported

    def test_cnn_supported_everywhere(self):
        g = conv_model()
        for fw in ALL_FRAMEWORKS:
            assert make_framework(fw).compile(g, SD8GEN2).supported, fw

    def test_transformers_supported_by_others(self):
        g = attention_model()
        for fw in ("MNN", "TVM", "DNNF", "Ours"):
            assert make_framework(fw).compile(g, SD8GEN2).supported, fw

    def test_unknown_framework(self):
        with pytest.raises(KeyError):
            make_framework("XLA")


class TestImplicitConverts:
    def test_mnn_wraps_instancenorm(self):
        """Fig. 1(b): MNN inserts converts around InstanceNorm."""
        res = make_framework("MNN").compile(hybrid_model(), SD8GEN2)
        assert res.implicit_converts >= 2
        ops = res.graph.count_op_types()
        assert ops.get("layout_convert", 0) == res.implicit_converts

    def test_converts_preserve_semantics(self):
        g = hybrid_model()
        res = make_framework("MNN").compile(g, SD8GEN2)
        assert outputs_equal(g, res.graph)

    def test_tvm_inserts_fewer(self):
        g = hybrid_model()
        mnn = make_framework("MNN").compile(g, SD8GEN2)
        tvm = make_framework("TVM").compile(g, SD8GEN2)
        assert tvm.implicit_converts <= mnn.implicit_converts

    def test_smartmem_inserts_none(self):
        res = make_framework("Ours").compile(hybrid_model(), SD8GEN2)
        assert res.graph.count_op_types().get("layout_convert", 0) == 0


class TestOperatorCounts:
    def test_ours_fewest(self):
        g = attention_model()
        counts = {}
        for fw in ("MNN", "TVM", "DNNF", "Ours"):
            counts[fw] = make_framework(fw).compile(g, SD8GEN2).operator_count
        assert counts["Ours"] <= counts["DNNF"] <= counts["TVM"] <= counts["MNN"]

    def test_ours_eliminates_transforms(self):
        g = attention_model()
        ours = make_framework("Ours").compile(g, SD8GEN2)
        dnnf = make_framework("DNNF").compile(g, SD8GEN2)
        assert count_layout_transforms(ours.graph) == 0
        assert count_layout_transforms(dnnf.graph) > 0


class TestLatencyOrdering:
    def test_transformer_ordering(self):
        g = attention_model()
        lat = {fw: make_framework(fw).compile(g, SD8GEN2).cost(SD8GEN2).latency_ms
               for fw in ("MNN", "TVM", "DNNF", "Ours")}
        assert lat["Ours"] < lat["DNNF"] < lat["MNN"]
        assert lat["Ours"] < lat["TVM"]

    def test_all_semantics_preserved(self):
        g = attention_model()
        for fw in ("MNN", "TVM", "DNNF", "Ours"):
            res = make_framework(fw).compile(g, SD8GEN2)
            assert outputs_equal(g, res.graph), fw

    def test_cost_raises_when_unsupported(self):
        res = make_framework("NCNN").compile(attention_model(), SD8GEN2)
        with pytest.raises(RuntimeError):
            res.cost(SD8GEN2)


class TestMemoryFeasibility:
    def test_memory_check_triggers(self):
        g = conv_model()
        tiny = scaled(SD8GEN2, memory_bytes=1024)
        res = make_framework("MNN").compile(g, tiny, check_memory=True)
        assert not res.supported
        assert "memory" in res.reason

    def test_ours_needs_least_memory(self):
        g = attention_model()
        ours = make_framework("Ours")
        mnn = make_framework("MNN")
        r_ours = ours.compile(g, SD8GEN2)
        r_mnn = mnn.compile(g, SD8GEN2)
        assert (ours.required_memory_bytes(r_ours.graph)
                < mnn.required_memory_bytes(r_mnn.graph))


class TestSmartMemOnDesktop:
    def test_no_texture_on_v100(self):
        g = attention_model()
        res = make_framework("Ours").compile(g, V100)
        from repro.ir import MemoryKind
        assert all(l.memory is MemoryKind.BUFFER_1D
                   for l in res.plan.layouts.values())

    def test_beats_torchinductor_on_v100(self):
        g = attention_model()
        ti = make_framework("TorchInductor").compile(g, V100).cost(V100)
        ours = make_framework("Ours").compile(g, V100).cost(V100)
        assert ours.latency_ms < ti.latency_ms
        # modest gain, as in Table 9 (not a mobile-scale speedup)
        assert ti.latency_ms / ours.latency_ms < 3.0
