"""Tests for the fusion engine and the framework policies."""

import pytest

from repro.core.fusion import (
    DNNFUSION_POLICY, FusionPolicy, MNN_POLICY, SMARTMEM_POLICY, TVM_POLICY,
    fuse, groups_of,
)
from repro.ir import GraphBuilder


def group_of(graph, tensor):
    return graph.producer(tensor).group


class TestPatternFusion:
    def test_conv_relu_pattern(self):
        b = GraphBuilder()
        x = b.input("x", (1, 3, 8, 8))
        c = b.conv2d(x, 4, 3, padding=1)
        r = b.relu(c)
        b.output(r)
        g = b.finish()
        stats = fuse(g, MNN_POLICY)
        assert group_of(g, c) == group_of(g, r)
        assert stats.groups == 1

    def test_unmatched_ops_stay_separate(self):
        b = GraphBuilder()
        x = b.input("x", (1, 4, 8, 8))
        y = b.softmax(x)
        z = b.relu(y)
        b.output(z)
        g = b.finish()
        fuse(g, MNN_POLICY)  # MNN has no softmax+unary pattern
        assert group_of(g, y) != group_of(g, z)


class TestRuleFusion:
    def test_elementwise_chain(self):
        b = GraphBuilder()
        x = b.input("x", (8,))
        y = b.relu(x)
        z = b.sigmoid(y)
        w = b.unary(z, "tanh")
        b.output(w)
        g = b.finish()
        stats = fuse(g, TVM_POLICY)
        assert stats.groups == 1

    def test_epilogue(self):
        b = GraphBuilder()
        x = b.input("x", (4, 8))
        y = b.dense(x, 8)
        z = b.relu(y)
        b.output(z)
        g = b.finish()
        fuse(g, TVM_POLICY)
        assert group_of(g, y) == group_of(g, z)

    def test_prologue_dnnf_only(self):
        b = GraphBuilder()
        x = b.input("x", (4, 8))
        y = b.relu(x)
        z = b.dense(y, 8)
        b.output(z)
        g = b.finish()
        fuse(g, TVM_POLICY)
        tvm_sep = group_of(g, y) != group_of(g, z)
        g2 = b.graph.clone()
        fuse(g2, DNNFUSION_POLICY)
        assert tvm_sep
        assert group_of(g2, y) == group_of(g2, z)

    def test_two_heavies_never_merge(self):
        b = GraphBuilder()
        x = b.input("x", (4, 8))
        y = b.dense(x, 8)
        z = b.dense(y, 8)
        b.output(z)
        g = b.finish()
        fuse(g, DNNFUSION_POLICY)
        assert group_of(g, y) != group_of(g, z)

    def test_multi_consumer_edge_not_merged(self):
        b = GraphBuilder()
        x = b.input("x", (8,))
        y = b.relu(x)
        b.output(b.sigmoid(y))
        b.output(b.unary(y, "tanh"))
        g = b.finish()
        fuse(g, DNNFUSION_POLICY)
        # y has two consumers; it must stay materialized in its own group
        consumers = [n for n, _ in g.consumers(y)]
        assert any(c.group != g.producer(y).group for c in consumers)

    def test_graph_output_not_fused_away(self):
        b = GraphBuilder()
        x = b.input("x", (8,))
        y = b.relu(x)
        b.output(y)
        z = b.sigmoid(y)
        b.output(z)
        g = b.finish()
        fuse(g, DNNFUSION_POLICY)
        assert group_of(g, y) != group_of(g, z)

    def test_reshape_fuses_with_elementwise_under_dnnf(self):
        b = GraphBuilder()
        x = b.input("x", (2, 8))
        y = b.relu(x)
        r = b.reshape(y, (16,))
        z = b.sigmoid(r)
        b.output(z)
        g = b.finish()
        fuse(g, DNNFUSION_POLICY)
        assert group_of(g, y) == group_of(g, r) == group_of(g, z)

    def test_transpose_never_fuses(self):
        """Transpose-like shufflers stay standalone under every baseline
        (only SmartMem removes them, via elimination)."""
        b = GraphBuilder()
        x = b.input("x", (2, 8))
        y = b.relu(x)
        t = b.transpose(y, (1, 0))
        z = b.sigmoid(t)
        b.output(z)
        g = b.finish()
        fuse(g, DNNFUSION_POLICY)
        assert group_of(g, t) != group_of(g, y)
        assert group_of(g, t) != group_of(g, z)


class TestGrouping:
    def test_groups_of_requires_fusion(self, linear_graph):
        with pytest.raises(ValueError):
            groups_of(linear_graph)

    def test_groups_partition_nodes(self, attention_graph):
        fuse(attention_graph, SMARTMEM_POLICY)
        groups = groups_of(attention_graph)
        total = sum(len(nodes) for nodes in groups.values())
        assert total == len(attention_graph.nodes)

    def test_fusion_reduces_operator_count(self, attention_graph):
        before = attention_graph.num_operators
        fuse(attention_graph, SMARTMEM_POLICY)
        assert attention_graph.num_operators < before

    def test_policy_ordering(self, attention_graph):
        """More aggressive policies yield fewer (or equal) groups."""
        counts = {}
        for policy in (MNN_POLICY, TVM_POLICY, DNNFUSION_POLICY):
            g = attention_graph.clone()
            counts[policy.name] = fuse(g, policy).groups
        assert counts["dnnfusion"] <= counts["tvm"] <= counts["mnn"]

    def test_fusion_preserves_semantics(self, attention_graph):
        from repro.runtime import outputs_equal
        g = attention_graph.clone()
        fuse(g, SMARTMEM_POLICY)
        assert outputs_equal(attention_graph, g)
