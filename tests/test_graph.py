"""Tests for the Graph DAG (repro.ir.graph)."""

import pytest

from repro.ir import Graph, GraphBuilder, GraphError


def small_graph() -> Graph:
    b = GraphBuilder("g")
    x = b.input("x", (2, 4))
    y = b.dense(x, 8)
    z = b.relu(y)
    b.output(z)
    return b.finish()


class TestConstruction:
    def test_duplicate_tensor(self):
        g = Graph()
        g.add_input("x", (2,))
        with pytest.raises(GraphError):
            g.add_input("x", (3,))

    def test_unknown_input_tensor(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_node("unary", ["missing"], ["y"], {"func": "relu"})

    def test_double_producer(self):
        b = GraphBuilder()
        x = b.input("x", (2,))
        g = b.graph
        from repro.ir.tensor import TensorSpec
        g.add_tensor(TensorSpec("y", (2,)))
        g.add_node("unary", [x], ["y"], {"func": "relu"})
        with pytest.raises(GraphError):
            g.add_node("unary", [x], ["y"], {"func": "relu"})

    def test_arity_check(self):
        b = GraphBuilder()
        x = b.input("x", (2,))
        from repro.ir.tensor import TensorSpec
        b.graph.add_tensor(TensorSpec("y", (2,)))
        with pytest.raises(GraphError):
            b.graph.add_node("binary", [x], ["y"], {"func": "add"})

    def test_mark_unknown_output(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.mark_output("nope")


class TestQueries:
    def test_producer_consumer(self):
        g = small_graph()
        dense = next(n for n in g.iter_nodes() if n.op_type == "dense")
        relu = next(n for n in g.iter_nodes() if n.op_type == "unary")
        out = dense.outputs[0]
        assert g.producer(out) is dense
        assert [(n.id, i) for n, i in g.consumers(out)] == [(relu.id, 0)]

    def test_consumer_cache_tracks_replace(self):
        g = small_graph()
        relu = next(n for n in g.iter_nodes() if n.op_type == "unary")
        g.consumers(relu.inputs[0])  # warm the cache
        g.replace_input(relu, 0, "x")
        assert (relu, 0) in [(n, i) for n, i in g.consumers("x")]

    def test_topo_order(self):
        g = small_graph()
        order = [n.op_type for n in g.topo_order()]
        assert order == ["dense", "unary"]

    def test_cycle_detected(self):
        g = small_graph()
        # wire the dense's input to the relu's output -> cycle
        dense = next(n for n in g.iter_nodes() if n.op_type == "dense")
        relu = next(n for n in g.iter_nodes() if n.op_type == "unary")
        dense.inputs[0] = relu.outputs[0]
        with pytest.raises(GraphError, match="cycle"):
            g.topo_order()

    def test_counts(self):
        g = small_graph()
        assert g.num_operators == 2
        assert g.num_params == 4 * 8 + 8
        assert g.total_macs() == 2 * 4 * 8
        assert g.count_op_types() == {"dense": 1, "unary": 1}

    def test_group_counting(self):
        g = small_graph()
        for node in g.iter_nodes():
            node.group = 0
        assert g.num_operators == 1


class TestRewrites:
    def test_remove_leaf_node(self):
        b = GraphBuilder()
        x = b.input("x", (2,))
        y = b.relu(x)
        dead = b.relu(x)
        b.output(y)
        g = b.graph
        dead_node = g.producer(dead)
        g.remove_node(dead_node.id)
        assert dead not in g.tensors
        assert len(g.nodes) == 1

    def test_remove_consumed_node_fails(self):
        g = small_graph()
        dense = next(n for n in g.iter_nodes() if n.op_type == "dense")
        with pytest.raises(GraphError):
            g.remove_node(dense.id)

    def test_remove_output_node_fails(self):
        g = small_graph()
        relu = next(n for n in g.iter_nodes() if n.op_type == "unary")
        with pytest.raises(GraphError):
            g.remove_node(relu.id)

    def test_replace_input_unknown(self):
        g = small_graph()
        relu = next(n for n in g.iter_nodes() if n.op_type == "unary")
        with pytest.raises(GraphError):
            g.replace_input(relu, 0, "ghost")

    def test_clone_is_deep_structurally(self):
        g = small_graph()
        clone = g.clone()
        relu = next(n for n in clone.iter_nodes() if n.op_type == "unary")
        clone.replace_input(relu, 0, "x")
        original_relu = next(n for n in g.iter_nodes() if n.op_type == "unary")
        assert original_relu.inputs[0] != "x"

    def test_clone_fresh_ids_do_not_collide(self):
        g = small_graph()
        clone = g.clone()
        new_id = clone.fresh_id("t")
        assert new_id not in clone.nodes
        assert new_id not in clone.tensors
