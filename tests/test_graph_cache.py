"""Regression tests for the graph engine's derived-state caches.

Covers the cached O(V+E) topo order (mutate-after-order scenarios) and
consumer-cache invalidation on node removal / input rewiring — the stale
cases that motivated routing every structural mutation through one
shared ``Graph._invalidate`` hook.
"""

from __future__ import annotations

import pytest

from repro.ir import Graph, GraphBuilder, GraphError
from repro.ir.tensor import TensorSpec
from repro.models import ALL_MODELS, build


def reference_topo_order(g: Graph) -> list[str]:
    """From-scratch recompute with the historical repeated-scan algorithm."""
    ready = dict.fromkeys(g.inputs, True)
    ready.update(dict.fromkeys(
        (t for t, s in g.tensors.items() if s.is_param), True))
    remaining = [g.nodes[n] for n in g._order]
    ordered: list[str] = []
    while remaining:
        progressed = False
        still = []
        for node in remaining:
            if all(name in ready for name in node.inputs):
                ordered.append(node.id)
                for out in node.outputs:
                    ready[out] = True
                progressed = True
            else:
                still.append(node)
        if not progressed:
            raise GraphError("cycle")
        remaining = still
    return ordered


def diamond_graph() -> Graph:
    b = GraphBuilder("diamond")
    x = b.input("x", (2, 8))
    y = b.dense(x, 8)
    left = b.relu(y)
    right = b.sigmoid(y)
    b.output(b.add(left, right))
    return b.finish()


class TestTopoCache:
    def test_cached_order_matches_reference(self):
        g = diamond_graph()
        assert [n.id for n in g.topo_order()] == reference_topo_order(g)
        # second call serves the cache; contents must be identical
        assert [n.id for n in g.topo_order()] == reference_topo_order(g)

    def test_add_node_after_order_invalidates(self):
        g = diamond_graph()
        before = [n.id for n in g.topo_order()]
        g.add_tensor(TensorSpec("extra", (2, 8)))
        node = g.add_node("unary", [g.outputs[0]], ["extra"], {"func": "relu"})
        after = [n.id for n in g.topo_order()]
        assert node.id in after
        assert node.id not in before
        assert after == reference_topo_order(g)

    def test_remove_node_after_order_invalidates(self):
        b = GraphBuilder()
        x = b.input("x", (4,))
        y = b.relu(x)
        dead = b.relu(x)
        b.output(y)
        g = b.graph
        dead_id = g.producer(dead).id
        assert dead_id in [n.id for n in g.topo_order()]
        g.remove_node(dead_id)
        order = [n.id for n in g.topo_order()]
        assert dead_id not in order
        assert order == reference_topo_order(g)

    def test_cycle_after_cached_order_still_raises(self):
        g = diamond_graph()
        g.topo_order()  # warm the cache
        dense = next(n for n in g.iter_nodes() if n.op_type == "dense")
        add = next(n for n in g.iter_nodes() if n.op_type == "binary")
        g.replace_input(dense, 0, add.outputs[0])
        with pytest.raises(GraphError, match="cycle"):
            g.topo_order()

    def test_undefined_input_detected(self):
        g = Graph()
        g.add_input("x", (2,))
        g.add_tensor(TensorSpec("dangling", (2,)))
        g.add_tensor(TensorSpec("y", (2,)))
        g.add_node("binary", ["x", "dangling"], ["y"], {"func": "add"})
        with pytest.raises(GraphError, match="undefined"):
            g.topo_order()

    def test_generation_bumps_on_mutation(self):
        g = diamond_graph()
        gen = g.generation
        relu = next(n for n in g.iter_nodes() if n.op_type == "unary")
        g.replace_input(relu, 0, "x")
        assert g.generation > gen

    @pytest.mark.parametrize("name", sorted(ALL_MODELS))
    def test_cached_order_equals_recompute_across_registry(self, name):
        g = build(name)
        assert [n.id for n in g.topo_order()] == reference_topo_order(g)
        # order survives an unrelated query and a cache round-trip
        g.consumers(g.inputs[0])
        assert [n.id for n in g.topo_order()] == reference_topo_order(g)


class TestConsumerCacheInvalidation:
    def test_remove_node_updates_consumers(self):
        b = GraphBuilder()
        x = b.input("x", (4,))
        y = b.relu(x)
        dead = b.relu(x)
        b.output(y)
        g = b.graph
        assert len(g.consumers("x")) == 2  # warm the cache
        g.remove_node(g.producer(dead).id)
        assert [(n.op_type, i) for n, i in g.consumers("x")] == [("unary", 0)]

    def test_replace_input_updates_consumers(self):
        g = diamond_graph()
        relu = next(n for n in g.iter_nodes()
                    if n.op_type == "unary" and n.attrs.get("func") == "relu")
        old = relu.inputs[0]
        g.consumers(old)  # warm the cache
        g.replace_input(relu, 0, "x")
        assert all(n.id != relu.id for n, _ in g.consumers(old))
        assert (relu.id, 0) in [(n.id, i) for n, i in g.consumers("x")]

    def test_add_node_updates_consumers(self):
        g = diamond_graph()
        g.consumers("x")  # warm the cache
        g.add_tensor(TensorSpec("t", (2, 8)))
        node = g.add_node("unary", ["x"], ["t"], {"func": "relu"})
        assert (node.id, 0) in [(n.id, i) for n, i in g.consumers("x")]

    def test_analysis_cache_cleared_on_mutation(self):
        g = diamond_graph()
        g.analysis_cache()["probe"] = "stale"
        relu = next(n for n in g.iter_nodes() if n.op_type == "unary")
        g.replace_input(relu, 0, "x")
        assert "probe" not in g.analysis_cache()

    def test_elimination_pass_leaves_consistent_consumers(self):
        """End-to-end stale-cache regression: run LTE (which removes nodes
        and rewires inputs mid-iteration) and check the consumer map equals
        a from-scratch rebuild."""
        from repro.core.elimination import eliminate_layout_transforms

        b = GraphBuilder("lte")
        x = b.input("x", (1, 8, 8))
        y = b.relu(x)
        y = b.reshape(y, (1, 64))
        y = b.transpose(y, (1, 0))
        y = b.dense(y, 4)
        b.output(y)
        g = b.finish()
        g.consumers("x")  # warm the cache before the rewrites
        eliminate_layout_transforms(g)
        fresh: dict[str, list[tuple[str, int]]] = {}
        for node in g.iter_nodes():
            for idx, name in enumerate(node.inputs):
                fresh.setdefault(name, []).append((node.id, idx))
        for tensor in g.tensors:
            got = [(n.id, i) for n, i in g.consumers(tensor)]
            assert got == fresh.get(tensor, [])
