"""Tests for IndexMap (repro.indexexpr.index_map)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.indexexpr import IndexMap, Var
from repro.ir.view import ViewChain
from test_view import random_chain


class TestIdentity:
    def test_identity_map(self):
        m = IndexMap.identity((3, 4))
        assert m.is_identity()
        assert m.cost() == 0
        x = np.arange(12).reshape(3, 4)
        assert np.array_equal(m.apply(x), x)

    def test_roundtrip_reshape_is_identity(self):
        chain = (ViewChain.identity((4, 6)).then_reshape((24,))
                 .then_reshape((4, 6)))
        assert IndexMap.from_view_chain(chain).is_identity()

    def test_double_transpose_is_identity(self):
        chain = (ViewChain.identity((4, 6)).then_transpose((1, 0))
                 .then_transpose((1, 0)))
        assert IndexMap.from_view_chain(chain).is_identity()


class TestFig3Example:
    """The paper's Fig. 3: reshape [2,256,4]->[16,8,4,4], transpose."""

    def setup_method(self):
        self.chain = (ViewChain.identity((2, 256, 4))
                      .then_reshape((16, 8, 4, 4))
                      .then_transpose((0, 2, 1, 3)))

    def test_semantics(self):
        x = np.arange(2 * 256 * 4).reshape(2, 256, 4)
        m = IndexMap.from_view_chain(self.chain)
        assert np.array_equal(m.apply(x), self.chain.apply(x))

    def test_strength_reduction_lowers_cost(self):
        simplified = IndexMap.from_view_chain(self.chain)
        raw = IndexMap.from_view_chain(self.chain, simplified=False)
        assert simplified.cost() < raw.cost()

    def test_innermost_dim_is_identity(self):
        # output dim 3 maps straight to input dim 2 (the paper's l' = k)
        m = IndexMap.from_view_chain(self.chain)
        assert isinstance(m.exprs[2], Var)
        assert m.exprs[2].name == "o3"

    def test_unit_stride_detected(self):
        m = IndexMap.from_view_chain(self.chain)
        assert m.input_stride_of_output_dim(3) == 1

    def test_dependency_kinds(self):
        raw = IndexMap.from_view_chain(self.chain, simplified=False)
        # before simplification everything looks compound (stacked div/mod
        # over a merged linear index)
        assert all(k in ("compound", "split", "merge", "identity")
                   for k in raw.dependency_kinds())


class TestStride:
    def test_transpose_stride(self):
        chain = ViewChain.identity((4, 6)).then_transpose((1, 0))
        m = IndexMap.from_view_chain(chain)
        # stepping output dim 0 walks input dim 1: stride 1
        assert m.input_stride_of_output_dim(0) == 1
        # stepping output dim 1 walks input dim 0: stride 6
        assert m.input_stride_of_output_dim(1) == 6

    def test_slice_stride(self):
        chain = ViewChain.identity((8,)).then_slice(((1, 8, 2),))
        m = IndexMap.from_view_chain(chain)
        assert m.input_stride_of_output_dim(0) == 2

    def test_size_one_dim(self):
        chain = ViewChain.identity((1, 4))
        m = IndexMap.from_view_chain(chain)
        assert m.input_stride_of_output_dim(0) == 0


class TestErrors:
    def test_apply_shape_mismatch(self):
        m = IndexMap.identity((2, 2))
        with pytest.raises(ValueError):
            m.apply(np.zeros((3, 3)))

    def test_expr_count_mismatch(self):
        with pytest.raises(ValueError):
            IndexMap((2, 3), (6,), (Var("o0", 6),) * 3)


@given(random_chain())
@settings(max_examples=80, deadline=None)
def test_index_map_equals_view_semantics(chain):
    """The composed symbolic map gathers exactly what the views move."""
    x = np.arange(np.prod(chain.in_shape)).reshape(chain.in_shape)
    expected = chain.apply(x)
    simplified = IndexMap.from_view_chain(chain)
    raw = IndexMap.from_view_chain(chain, simplified=False)
    assert np.array_equal(simplified.apply(x), expected)
    assert np.array_equal(raw.apply(x), expected)


@given(random_chain())
@settings(max_examples=80, deadline=None)
def test_simplification_never_hurts(chain):
    simplified = IndexMap.from_view_chain(chain)
    raw = IndexMap.from_view_chain(chain, simplified=False)
    assert simplified.cost() <= raw.cost()
