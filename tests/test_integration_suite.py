"""Full-suite integration: all 18 evaluation models under all frameworks.

Structure-level checks only (no numeric execution at full scale), so the
whole matrix runs in seconds; the latency shape assertions live in
benchmarks/.
"""

import pytest

from repro.baselines import ALL_FRAMEWORKS, make_framework
from repro.bench.paper_data import TABLE7
from repro.core.elimination import count_layout_transforms
from repro.ir import validate
from repro.models import EVAL_MODELS
from repro.runtime import SD8GEN2

from repro.bench.harness import cached_model


@pytest.fixture(scope="module")
def compiled():
    """(model, framework) -> FrameworkResult for the full matrix."""
    out = {}
    for name in EVAL_MODELS:
        graph = cached_model(name)
        for fw in ALL_FRAMEWORKS:
            out[(name, fw)] = make_framework(fw).compile(
                graph, SD8GEN2, check_memory=False)
    return out


def test_support_matrix_matches_table7(compiled):
    for name in EVAL_MODELS:
        paper_counts = TABLE7[name][1]
        for fw in ALL_FRAMEWORKS:
            expected_supported = paper_counts[fw] is not None
            actual = compiled[(name, fw)].supported
            assert actual == expected_supported, (name, fw)


def test_all_supported_graphs_validate(compiled):
    for (name, fw), result in compiled.items():
        if result.supported:
            validate(result.graph)


def test_ours_eliminates_everything(compiled):
    """Every layout transform is gone except ones producing graph outputs
    (those must stay materialized - their value leaves the graph)."""
    for name in EVAL_MODELS:
        result = compiled[(name, "Ours")]
        g = result.graph
        for node in g.iter_nodes():
            if node.opdef.is_layout_transform:
                assert any(t in g.outputs for t in node.outputs), (name, node.id)
        assert g.count_op_types().get("layout_convert", 0) == 0


def test_baselines_keep_transforms(compiled):
    for name, info in EVAL_MODELS.items():
        if info.model_type == "ConvNet" and name in ("RegNet", "ResNext"):
            continue  # plain ConvNets have almost no transforms to keep
        dnnf = compiled[(name, "DNNF")]
        assert count_layout_transforms(dnnf.graph) > 0, name


def test_operator_count_ordering(compiled):
    """Ours <= DNNF <= TVM <= MNN wherever all are supported."""
    for name in EVAL_MODELS:
        counts = {}
        for fw in ("MNN", "TVM", "DNNF", "Ours"):
            result = compiled[(name, fw)]
            if result.supported:
                counts[fw] = result.operator_count
        assert counts["Ours"] <= counts["DNNF"], name
        assert counts["DNNF"] <= counts["TVM"], name
        assert counts["TVM"] <= counts["MNN"] * 1.05, name


def test_elimination_ratio_band(compiled):
    """SmartMem's elimination gain over DNNFusion stays in a plausible
    band: >1.05x on transformer/hybrid models, ~1x on plain ConvNets."""
    for name, info in EVAL_MODELS.items():
        ours = compiled[(name, "Ours")].operator_count
        dnnf = compiled[(name, "DNNF")].operator_count
        ratio = dnnf / ours
        if info.model_type in ("Transformer", "Hybrid"):
            assert 1.05 < ratio < 3.0, (name, ratio)
        else:
            assert 0.95 < ratio < 2.5, (name, ratio)


def test_mnn_inserts_converts_on_hybrids(compiled):
    hybrid_hits = 0
    for name, info in EVAL_MODELS.items():
        result = compiled[(name, "MNN")]
        if result.implicit_converts > 0:
            hybrid_hits += 1
    # a solid majority of the suite crosses layout domains under MNN
    assert hybrid_hits >= 10


def test_plans_cover_graphs(compiled):
    for (name, fw), result in compiled.items():
        if not result.supported:
            continue
        g = result.graph
        for node in g.iter_nodes():
            for out in node.outputs:
                assert out in result.plan.layouts, (name, fw, out)
