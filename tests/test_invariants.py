"""Cross-cutting optimizer invariants, enforced on fixtures and models.

These are the properties a downstream user relies on without reading the
implementation: fusion groups form a DAG, plans cover every activation,
optimization never changes MACs or semantics, and the printer never
crashes on any graph state.
"""

from collections import defaultdict

import pytest

from repro.core import (
    DNNFUSION_POLICY, SMARTMEM_POLICY, fuse, groups_of, smartmem_optimize,
)
from repro.ir import validate
from repro.ir.printer import format_graph, summarize
from repro.models import build

SMALL = {
    "Swin": dict(image=56, dim=24, depths=(1, 1), heads=(2, 4)),
    "Pythia": dict(seq=8, hidden=32, depth=1, heads=2, vocab=64),
    "Yolo-V8": dict(image=64),
    "ConvNext": dict(image=32, dim=16, depths=(1, 1)),
}


def quotient_is_acyclic(graph) -> bool:
    """Kahn's algorithm over the group-contracted graph."""
    edges = set()
    for node in graph.iter_nodes():
        for tensor in node.inputs:
            producer = graph.producer(tensor)
            if producer is not None and producer.group != node.group:
                edges.add((producer.group, node.group))
    nodes = {n.group for n in graph.iter_nodes()}
    indeg = defaultdict(int)
    adj = defaultdict(list)
    for a, b in edges:
        adj[a].append(b)
        indeg[b] += 1
    queue = [n for n in nodes if indeg[n] == 0]
    seen = 0
    while queue:
        n = queue.pop()
        seen += 1
        for m in adj[n]:
            indeg[m] -= 1
            if indeg[m] == 0:
                queue.append(m)
    return seen == len(nodes)


class TestFusionInvariants:
    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_quotient_acyclic(self, name):
        g = build(name, **SMALL[name])
        fuse(g, DNNFUSION_POLICY)
        assert quotient_is_acyclic(g)

    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_quotient_acyclic_after_elimination(self, name):
        result = smartmem_optimize(build(name, **SMALL[name]))
        assert quotient_is_acyclic(result.graph)

    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_one_heavy_per_group(self, name):
        from repro.core.fusion import HEAVY
        g = build(name, **SMALL[name])
        fuse(g, SMARTMEM_POLICY)
        for members in groups_of(g).values():
            heavies = [m for m in members if m.opdef.mapping in HEAVY]
            assert len(heavies) <= 1

    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_groups_are_connected_regions(self, name):
        """Every fusion group is weakly connected through its own edges
        (no kernel made of unrelated islands)."""
        g = build(name, **SMALL[name])
        fuse(g, SMARTMEM_POLICY)
        for group_id, members in groups_of(g).items():
            if len(members) == 1:
                continue
            ids = {m.id for m in members}
            adj = defaultdict(set)
            for m in members:
                for t in m.inputs:
                    producer = g.producer(t)
                    if producer is not None and producer.id in ids:
                        adj[m.id].add(producer.id)
                        adj[producer.id].add(m.id)
            # BFS from any member
            start = next(iter(ids))
            seen = {start}
            stack = [start]
            while stack:
                cur = stack.pop()
                for other in adj[cur]:
                    if other not in seen:
                        seen.add(other)
                        stack.append(other)
            assert seen == ids, f"group {group_id} is disconnected"


class TestPlanInvariants:
    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_plan_covers_all_activations(self, name):
        result = smartmem_optimize(build(name, **SMALL[name]))
        g = result.graph
        for node in g.iter_nodes():
            for out in node.outputs:
                assert out in result.plan.layouts, out
        for inp in g.inputs:
            assert inp in result.plan.layouts

    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_layout_ranks_match(self, name):
        result = smartmem_optimize(build(name, **SMALL[name]))
        for tensor, layout in result.plan.layouts.items():
            assert layout.rank == len(result.graph.shape(tensor))

    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_macs_preserved(self, name):
        g = build(name, **SMALL[name])
        result = smartmem_optimize(g)
        assert result.graph.total_macs() == g.total_macs()

    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_params_preserved(self, name):
        g = build(name, **SMALL[name])
        result = smartmem_optimize(g)
        # elimination never touches weights
        assert result.graph.num_params == g.num_params

    @pytest.mark.parametrize("name", sorted(SMALL))
    def test_validates_after_every_stage(self, name):
        from repro.core import PipelineStages
        g = build(name, **SMALL[name])
        for stages in (PipelineStages(lte=False), PipelineStages(fusion=False),
                       PipelineStages(layout_selection=False),
                       PipelineStages()):
            validate(smartmem_optimize(g, stages).graph)


class TestPrinter:
    def test_format_plain(self, attention_graph):
        text = format_graph(attention_graph)
        assert "graph" in text
        assert "dense" in text
        assert "input" in text

    def test_format_optimized(self, attention_graph):
        result = smartmem_optimize(attention_graph)
        text = format_graph(result.graph)
        assert "[view:" in text     # attached views are visible
        assert " g" in text         # groups are visible
        assert "@" in text          # layouts are visible

    def test_truncation(self, attention_graph):
        text = format_graph(attention_graph, max_nodes=3)
        assert "more nodes" in text

    def test_summarize(self, attention_graph):
        text = summarize(attention_graph)
        assert "operators" in text
        assert "params" in text
